// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation, exercising the code path that experiment measures on a
// reduced fixed workload. `go run ./cmd/experiments` regenerates the full
// tables; these benches track regressions of the underlying primitives.
package motivo

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/ags"
	"repro/internal/build"
	"repro/internal/ccbaseline"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/sample"
	"repro/internal/table"
	"repro/internal/treelet"
)

// benchGraph is the shared small workload: heavy-tailed, ~9k edges.
func benchGraph() *graph.Graph { return gen.BarabasiAlbert(3000, 3, 1001) }

// hubGraph triggers neighbor buffering.
func hubGraph() *graph.Graph { return gen.StarHeavy(1, 3000, 200, 1003) }

func buildFor(b *testing.B, g *graph.Graph, k int, zeroRooted bool, workers int) (*coloring.Coloring, *treelet.Catalog, *buildOut) {
	b.Helper()
	col := coloring.Uniform(g.NumNodes(), k, 1007)
	cat := treelet.NewCatalog(k)
	opts := build.DefaultOptions()
	opts.ZeroRooted = zeroRooted
	opts.Workers = workers
	tab, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
	if err != nil {
		b.Fatal(err)
	}
	return col, cat, &buildOut{tab, stats}
}

type buildOut struct {
	tab   *table.Table
	stats *build.Stats
}

// --- Figure 2: check-and-merge, succinct vs pointer treelets ------------

func BenchmarkFig2CheckMergeSuccinct(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1007)
	cat := treelet.NewCatalog(5)
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		opts := build.DefaultOptions()
		opts.ZeroRooted = false
		opts.Workers = 1
		_, stats, err := build.Run(context.Background(), g, col, 5, cat, opts)
		if err != nil {
			b.Fatal(err)
		}
		ops += stats.CheckMergeOps
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops), "ns/checkmerge")
}

func BenchmarkFig2CheckMergePointerCC(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1007)
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		_, stats, err := ccbaseline.Build(g, col, 5)
		if err != nil {
			b.Fatal(err)
		}
		ops += stats.CheckMergeOps
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops), "ns/checkmerge")
}

// --- Figure 3 / §5.1 build table: full build, motivo vs CC --------------

func BenchmarkFig3BuildMotivo(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1009)
	cat := treelet.NewCatalog(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := build.DefaultOptions()
		opts.ZeroRooted = false
		if _, _, err := build.Run(context.Background(), g, col, 5, cat, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3BuildCC(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1009)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ccbaseline.Build(g, col, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3BuildMotivoSpill(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1009)
	cat := treelet.NewCatalog(5)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := build.DefaultOptions()
		opts.SpillDir = dir
		if _, _, err := build.Run(context.Background(), g, col, 5, cat, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: 0-rooting ------------------------------------------------

func BenchmarkFig4ZeroRootingOff(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1013)
	cat := treelet.NewCatalog(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := build.DefaultOptions()
		opts.ZeroRooted = false
		if _, _, err := build.Run(context.Background(), g, col, 5, cat, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4ZeroRootingOn(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1013)
	cat := treelet.NewCatalog(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := build.Run(context.Background(), g, col, 5, cat, build.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5 / §5.1 sampling table: samples/s --------------------------

func benchSampling(b *testing.B, g *graph.Graph, bufferThreshold int) {
	b.Helper()
	col, cat, out := buildFor(b, g, 5, true, 0)
	urn, err := sample.NewUrn(g, col, out.tab, cat)
	if err != nil {
		b.Fatal(err)
	}
	urn.BufferThreshold = bufferThreshold
	rng := rand.New(rand.NewSource(1017))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		urn.Sample(rng)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkFig5SamplingBuffered(b *testing.B)   { benchSampling(b, hubGraph(), 1000) }
func BenchmarkFig5SamplingUnbuffered(b *testing.B) { benchSampling(b, hubGraph(), 1<<30) }

func BenchmarkTableSamplingMotivo(b *testing.B) { benchSampling(b, benchGraph(), 1000) }

func BenchmarkTableSamplingCC(b *testing.B) {
	g := benchGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1007)
	tab, _, err := ccbaseline.Build(g, col, 5)
	if err != nil {
		b.Fatal(err)
	}
	smp, err := ccbaseline.NewSampler(g.Neighbors, g.HasEdge, g.Degree, tab)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1017))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.Sample(rng)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// --- Figure 6: biased coloring build ------------------------------------

func BenchmarkFig6BuildUniform(b *testing.B) {
	g := benchGraph()
	cat := treelet.NewCatalog(5)
	col := coloring.Uniform(g.NumNodes(), 5, 1019)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := build.Run(context.Background(), g, col, 5, cat, build.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6BuildBiased(b *testing.B) {
	g := benchGraph()
	cat := treelet.NewCatalog(5)
	col := coloring.Biased(g.NumNodes(), 5, 0.12, 1019)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := build.Run(context.Background(), g, col, 5, cat, build.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: build scaling in k ---------------------------------------

func BenchmarkFig7Scaling(b *testing.B) {
	g := benchGraph()
	for k := 4; k <= 6; k++ {
		k := k
		b.Run(string(rune('0'+k))+"k", func(b *testing.B) {
			col := coloring.Uniform(g.NumNodes(), k, 1021)
			cat := treelet.NewCatalog(k)
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				_, stats, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				bytes = stats.TableBytes
			}
			b.ReportMetric(float64(bytes)*8/float64(g.NumNodes()), "bits/node")
		})
	}
}

// --- Figures 8–10 / §5.2–5.3: estimator pipelines -----------------------

func BenchmarkFig8NaivePipeline(b *testing.B) {
	g := benchGraph()
	col, cat, out := buildFor(b, g, 5, true, 0)
	urn, err := sample.NewUrn(g, col, out.tab, cat)
	if err != nil {
		b.Fatal(err)
	}
	sig := estimate.NewSigma(5)
	rng := rand.New(rand.NewSource(1023))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tallies := make(map[graphlet.Code]int64)
		for s := 0; s < 2000; s++ {
			code, _ := urn.Sample(rng)
			tallies[code]++
		}
		if _, err := estimate.Naive(tallies, 2000, urn.Total().Float64(), sig, col.PColorful); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8AGSPipeline(b *testing.B) {
	g := hubGraph()
	col, cat, out := buildFor(b, g, 5, true, 0)
	_ = col
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		urn, err := sample.NewUrn(g, col, out.tab, cat)
		if err != nil {
			b.Fatal(err)
		}
		_, err = ags.Run(context.Background(), urn, ags.Options{
			CoverThreshold: 200,
			Budget:         2000,
			Rng:            rand.New(rand.NewSource(int64(1031 + i))),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*2000)/b.Elapsed().Seconds(), "samples/s")
}

// --- Parallel AGS: epoch-based sampling across urn clones ---------------

// benchAGS measures end-to-end AGS sampling throughput (build excluded)
// on the shared benchGraph workload; the parallel variants fan the same
// budget across per-worker shape-urn clones with epoch barriers.
func benchAGS(b *testing.B, workers int) {
	g := benchGraph()
	col, cat, out := buildFor(b, g, 5, true, 0)
	urn, err := sample.NewUrn(g, col, out.tab, cat)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := ags.Run(context.Background(), urn.Clone(), ags.Options{
			CoverThreshold: 200,
			Budget:         budget,
			Workers:        workers,
			Rng:            rand.New(rand.NewSource(int64(2001 + i))),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*budget)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkAGSSequential(b *testing.B) { benchAGS(b, 1) }

func BenchmarkAGSParallel(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchAGS(b, w) })
	}
}

// --- Storage engine: packed table size and build/open -------------------

// storageGraph is the benchmark ER workload of the size acceptance test.
func storageGraph() *graph.Graph { return gen.ErdosRenyi(800, 2400, 1033) }

// BenchmarkTableBytesPerPair tracks the packed table's memory footprint:
// bytes/pair is the succinctness headline (the dense slice layout was 24)
// and totalKB the whole-table size, so BENCH_ci.json records memory
// regressions alongside time. The smartstars arm synthesizes the star
// family from degree summaries (stored pairs shrink AND total bytes drop
// ≥2x, the smart-star headline); materialized is the pre-smart layout.
func BenchmarkTableBytesPerPair(b *testing.B) {
	g := storageGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1007)
	cat := treelet.NewCatalog(5)
	for _, bm := range []struct {
		name  string
		smart bool
	}{
		{"smartstars", true},
		{"materialized", false},
	} {
		b.Run(bm.name, func(b *testing.B) {
			var bytes, pairs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := build.DefaultOptions()
				opts.SmartStars = bm.smart
				_, stats, err := build.Run(context.Background(), g, col, 5, cat, opts)
				if err != nil {
					b.Fatal(err)
				}
				bytes, pairs = stats.TableBytes, stats.Pairs
			}
			b.ReportMetric(float64(bytes)/float64(pairs), "bytes/pair")
			b.ReportMetric(float64(bytes)/1024, "totalKB")
		})
	}
}

// BenchmarkBuildSmartStars vs BenchmarkBuildMaterializedStars track the
// build-phase half of the smart-star trade at the acceptance scenario
// (k=6 on the storage ER graph): the smart build skips the DP for every
// height-≤2 shape (check-and-merge ops drop ~2.3x) but synthesizes its DP
// inputs on read; the regression pipeline watches both arms so neither
// side of the trade silently rots.
func benchBuildStars(b *testing.B, smart bool) {
	g := storageGraph()
	k := 6
	col := coloring.Uniform(g.NumNodes(), k, 1007)
	cat := treelet.NewCatalog(k)
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := build.DefaultOptions()
		opts.SmartStars = smart
		_, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
		if err != nil {
			b.Fatal(err)
		}
		bytes = stats.TableBytes
	}
	b.ReportMetric(float64(bytes)/1024, "tableKB")
}

func BenchmarkBuildSmartStars(b *testing.B)        { benchBuildStars(b, true) }
func BenchmarkBuildMaterializedStars(b *testing.B) { benchBuildStars(b, false) }

// benchBuiltTable builds the storage workload once, for the save/open
// benches.
func benchBuiltTable(b *testing.B) (*table.Table, *coloring.Coloring) {
	b.Helper()
	g := storageGraph()
	col := coloring.Uniform(g.NumNodes(), 5, 1007)
	tab, _, err := build.Run(context.Background(), g, col, 5, treelet.NewCatalog(5), build.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return tab, col
}

// BenchmarkTableSave measures persisting the arena + index to disk (the
// "build once" half of the serving workflow).
func BenchmarkTableSave(b *testing.B) {
	tab, col := benchBuiltTable(b)
	path := b.TempDir() + "/bench.tbl"
	var n int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if n, err = table.SaveFile(path, tab, col); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(n)
}

// BenchmarkTableOpen measures opening a persisted table — the cost every
// "query many" run pays instead of a build (compare BenchmarkFig3BuildMotivo).
// The heap path reads, copies and validates every level; the mapped path
// parses only the header and level directory, so it stays O(ms) no matter
// the arena size (the ISSUE 8 startup claim; this family feeds the
// regression gate).
func BenchmarkTableOpen(b *testing.B) {
	tab, col := benchBuiltTable(b)
	path := b.TempDir() + "/bench.tbl"
	n, err := table.SaveFile(path, tab, col)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("heap", func(b *testing.B) {
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			if _, _, err := table.LoadFile(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mapped", func(b *testing.B) {
		if mt, _, err := table.OpenMapped(path); err != nil {
			b.Skipf("mapping unavailable here: %v", err)
		} else {
			mt.Close()
		}
		b.SetBytes(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mt, _, err := table.OpenMapped(path)
			if err != nil {
				b.Fatal(err)
			}
			// Close per iteration: finalizers run too late to keep a tight
			// open loop under the kernel's per-process mapping limit.
			mt.Close()
		}
	})
}

// --- Batched sampling hot path: the k=6 acceptance workload --------------

// servingTable6 persists the ER storage workload's k=6 table once — the
// graph/size pair of the batching acceptance criterion (ISSUE 7): records
// are large enough that per-draw varint decode dominates an unamortized
// sampler.
func servingTable6(b *testing.B) (*graph.Graph, string) {
	b.Helper()
	g := storageGraph()
	path := b.TempDir() + "/serving6.tbl"
	if _, _, err := core.BuildTable(g, core.Config{K: 6, Seed: 1007}, path); err != nil {
		b.Fatal(err)
	}
	return g, path
}

// BenchmarkEngineQueryBatched measures end-to-end sampling throughput of
// the batched hot path at k=6: one long-lived engine, repeated queries,
// samples/s as the headline metric. This family is the floor recorded in
// BENCH_baseline.json — the benchjson -compare CI gate fails when its
// samples/s regresses, so the batching win cannot silently rot.
func BenchmarkEngineQueryBatched(b *testing.B) {
	g, path := servingTable6(b)
	eng, err := core.Open(g, path)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const budget = 2000
	for _, bm := range []struct {
		name string
		q    core.Query
	}{
		{"naive", core.Query{Samples: budget, Seed: 1009}},
		{"ags", core.Query{Strategy: core.AGS, Samples: budget, CoverThreshold: 200, Seed: 1009}},
		{"naive-workers4", core.Query{Samples: budget, Seed: 1009, SampleWorkers: 4}},
	} {
		b.Run(bm.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Count(ctx, bm.q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*budget)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkEngineOpen measures core.Open on the k=6 table: table load +
// validation + master-urn construction — the alias-build tail that engine
// open parallelizes. ms/open feeds the regression gate so OpenTime cannot
// silently creep back up.
func BenchmarkEngineOpen(b *testing.B) {
	g, path := servingTable6(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Open(g, path); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/open")
}

// BenchmarkEngineReopen measures core.OpenMode on the k=6 table per map
// mode — the LRU-eviction reopen cost a multi-tenant server pays every
// time a cold graph is queried. The mapped reopen skips the level read,
// copy and validation entirely, which is what makes eviction cheap enough
// to run with a tight memory budget. ms/open feeds the regression gate.
func BenchmarkEngineReopen(b *testing.B) {
	g, path := servingTable6(b)
	for _, bm := range []struct {
		name string
		mode core.MapMode
	}{
		{"heap", core.MapOff},
		{"mapped", core.MapRequire},
	} {
		b.Run(bm.name, func(b *testing.B) {
			if _, err := core.OpenMode(g, path, bm.mode); err != nil {
				b.Skipf("open mode %v unavailable here: %v", bm.mode, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.OpenMode(g, path, bm.mode); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/open")
		})
	}
}

// BenchmarkEnginePrepareShapes measures ags.PrepareShapes on a k=6 table:
// the per-shape alias construction that used to cost one table pass per
// shape and now runs as a single bulk (and parallel) weighting pass —
// the dominant tail of a long-lived engine's first AGS query. ms/prepare
// feeds the regression gate.
func BenchmarkEnginePrepareShapes(b *testing.B) {
	g := storageGraph()
	col, cat, out := buildFor(b, g, 6, true, 0)
	urn, err := sample.NewUrn(g, col, out.tab, cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ags.PrepareShapes(urn); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/prepare")
}

// --- Billion-edge ingest: streaming loaders & bounded-memory build ------

// plainReader hides Seek so ReadEdgeList takes the legacy buffered path.
type plainReader struct{ io.Reader }

// BenchmarkReadEdgeList compares the two edge-list ingest paths on the
// same serialized graph: the streaming arm reads the input twice but
// allocates only the final CSR plus the id remap, the buffered arm reads
// once into an O(m) edge buffer. MB/s is the headline; allocs/op shows
// the memory trade the streaming reader exists for.
func BenchmarkReadEdgeList(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph().WriteEdgeList(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, bm := range []struct {
		name string
		open func() io.Reader
	}{
		{"streaming", func() io.Reader { return bytes.NewReader(data) }},
		{"buffered", func() io.Reader { return plainReader{bytes.NewReader(data)} }},
	} {
		b.Run(bm.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadEdgeList(bm.open()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildSharded tracks the bounded-memory build against the
// unbounded in-RAM pass on the k=6 acceptance workload: the budget arm
// shards each level through work-stealing and spill files, the unbounded
// arm keeps whole levels in memory. The tables are bit-identical (pinned
// by TestBudgetBuildBitIdentical); what this family watches is the time
// cost of the bounded path's streaming and external merge.
func BenchmarkBuildSharded(b *testing.B) {
	g := storageGraph()
	k := 6
	col := coloring.Uniform(g.NumNodes(), k, 1007)
	cat := treelet.NewCatalog(k)
	dir := b.TempDir()
	for _, bm := range []struct {
		name   string
		budget int64
	}{
		{"unbounded", 0},
		{"budget", 16 << 20},
	} {
		b.Run(bm.name, func(b *testing.B) {
			var spilled int64
			for i := 0; i < b.N; i++ {
				opts := build.DefaultOptions()
				opts.MemBudget = bm.budget
				if bm.budget > 0 {
					// SpillDir alone implies the legacy greedy-spill mode;
					// only the budget arm should touch the disk.
					opts.SpillDir = dir
				}
				_, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
				if err != nil {
					b.Fatal(err)
				}
				spilled = stats.SpillBytes
			}
			b.ReportMetric(float64(spilled)/1024, "spillKB")
		})
	}
}

// --- Ground truth (ESCAPE stand-in) -------------------------------------

func BenchmarkExactESU(b *testing.B) {
	g := gen.ErdosRenyi(800, 2400, 1033)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Count(g, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the succinct primitives ------------------------

func BenchmarkTreeletMergeDecomp(b *testing.B) {
	cat := treelet.NewCatalog(8)
	ts := cat.BySize[8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ts[i%len(ts)]
		tpp, tp := t.Decomp()
		if treelet.Merge(tp, tpp) != t {
			b.Fatal("merge/decomp mismatch")
		}
	}
}

func BenchmarkGraphletCanonical(b *testing.B) {
	rng := rand.New(rand.NewSource(1037))
	codes := make([]graphlet.Code, 256)
	for i := range codes {
		for {
			c := graphlet.Code{Lo: rng.Uint64() & (1<<15 - 1)} // k=6
			if graphlet.IsConnected(6, c) {
				codes[i] = c
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphlet.Canonical(6, codes[i%len(codes)])
	}
}

func BenchmarkSpanningTreeShapes(b *testing.B) {
	cat := treelet.NewCatalog(6)
	c := graphlet.FromGraph(gen.Complete(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphlet.SpanningTreeShapes(6, c, cat)
	}
}

// --- Engine: amortized query sessions vs cold one-shot queries -----------

// servingTable persists the storage workload's table once for the serving
// benchmarks.
func servingTable(b *testing.B) (*graph.Graph, string) {
	b.Helper()
	g := storageGraph()
	path := b.TempDir() + "/serving.tbl"
	if _, _, err := core.BuildTable(g, core.Config{K: 5, Seed: 1007}, path); err != nil {
		b.Fatal(err)
	}
	return g, path
}

// servingQueryBudget is deliberately small: the point of these benchmarks
// is the per-query *setup* cost (table open + urn construction vs an O(1)
// clone), which a huge sampling budget would drown out.
const servingQueryBudget = 200

// BenchmarkColdCount is the pre-engine serving shape: every query re-opens
// the persisted table, re-validates it and rebuilds the urn's alias tables
// before sampling. Compare ns/op and allocs/op against
// BenchmarkEngineQuery — the gap is the per-query setup cost the Engine
// amortizes away.
func BenchmarkColdCount(b *testing.B) {
	g, path := servingTable(b)
	cfg := core.Config{
		K: 5, Colorings: 1, SamplesPerColoring: servingQueryBudget,
		Seed: 1009, TablePath: path,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Count(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/query")
}

// BenchmarkEngineQuery serves the same query from a long-lived engine: the
// table open and urn construction happened once in core.Open, so each
// iteration pays only an O(1) urn clone plus the sampling itself.
func BenchmarkEngineQuery(b *testing.B) {
	g, path := servingTable(b)
	eng, err := core.Open(g, path)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := core.Query{Samples: servingQueryBudget, Seed: 1009}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Count(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/query")
}

// BenchmarkEngineQueryAGS tracks the adaptive arm of the serving path,
// including the amortized per-shape urns (prepared once per engine, cloned
// per query).
func BenchmarkEngineQueryAGS(b *testing.B) {
	g, path := servingTable(b)
	eng, err := core.Open(g, path)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := core.Query{Strategy: core.AGS, Samples: servingQueryBudget, CoverThreshold: 200, Seed: 1009}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Count(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/query")
}

// BenchmarkSignatures tracks the per-node signatures path: the same AGS
// sampling as BenchmarkEngineQueryAGS plus the per-draw vertex-incidence
// streaming and the final vector assembly. Ungated: a new family has no
// committed baseline yet.
func BenchmarkSignatures(b *testing.B) {
	g, path := servingTable(b)
	eng, err := core.Open(g, path)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := core.Query{Strategy: core.AGS, Samples: servingQueryBudget, CoverThreshold: 200, Seed: 1009}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Signatures(ctx, q, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/query")
}

// BenchmarkRunToPrecision tracks run-to-precision AGS: epochs of drawing
// plus the periodic Theorem 3 certification check until the loose target
// certifies (or the cap stops the run). Ungated: new family, no baseline.
func BenchmarkRunToPrecision(b *testing.B) {
	g, path := servingTable(b)
	eng, err := core.Open(g, path)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := core.Query{
		Strategy: core.AGS, CoverThreshold: 200, Seed: 1009,
		Epsilon: 0.5, Delta: 0.1, MaxSamples: servingQueryBudget,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var samples int
	for i := 0; i < b.N; i++ {
		res, err := eng.Count(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		samples = res.Samples
	}
	b.ReportMetric(float64(samples), "samples/run")
}
