// Webscale: the big-graph configuration of the paper scaled to a laptop —
// a heavy-tailed graph with hundreds of thousands of edges, counted at
// k=6 with biased coloring (Section 3.4) and greedy flushing of the table
// through disk (Section 3.1), the two levers motivo uses to reach
// billion-edge graphs on 64 GB machines.
package main

import (
	"fmt"
	"log"

	motivo "repro"
)

func main() {
	g := motivo.BarabasiAlbert(100000, 4, 99)
	fmt.Printf("graph: %d nodes, %d edges, max degree %d\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree())

	const k = 6
	for _, cfg := range []struct {
		name   string
		lambda float64
	}{
		{"uniform coloring", 0},
		{"biased coloring λ=0.08", 0.08},
	} {
		res, err := motivo.Count(g, motivo.Options{
			K:       k,
			Samples: 50000,
			Lambda:  cfg.lambda,
			Spill:   true, // greedy flushing through temp files
			Seed:    17,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%s]\n", cfg.name)
		fmt.Printf("  build %v, sampling %v, table %.1f MiB, %d samples\n",
			res.BuildTime.Round(1e6), res.SampleTime.Round(1e6),
			float64(res.TableBytes)/(1<<20), res.Samples)
		fmt.Printf("  distinct %d-graphlets observed: %d\n", k, len(res.Counts))
		for i, e := range res.Top(5) {
			fmt.Printf("  %d. %-24s %12.4g copies (%6.3f%%)\n",
				i+1, motivo.Describe(k, e.Code), e.Count, 100*e.Frequency)
		}
	}
	fmt.Println("\nBiased coloring shrinks the count table (fewer colorful copies")
	fmt.Println("survive) at a bounded accuracy cost — compare the table sizes above.")
}
