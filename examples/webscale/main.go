// Webscale: the big-graph configuration of the paper scaled to a laptop —
// a heavy-tailed graph with hundreds of thousands of edges, counted at
// k=6 with biased coloring (Section 3.4) and greedy flushing of the table
// through disk (Section 3.1), the two levers motivo uses to reach
// billion-edge graphs on 64 GB machines — combined with the storage
// engine's serving workflow: the packed count table is built and persisted
// ONCE, then every query opens it with one sequential read and goes
// straight to sampling. That is the shape of a production deployment: a
// periodic (expensive) build job feeding many (cheap) query processes.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	motivo "repro"
)

func main() {
	g := motivo.BarabasiAlbert(100000, 4, 99)
	fmt.Printf("graph: %d nodes, %d edges, max degree %d\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree())

	const k = 6
	buildOpts := motivo.Options{
		K:      k,
		Lambda: 0.08, // biased coloring: shrinks the table (Section 3.4)
		Spill:  true, // greedy flushing through temp files (Section 3.1)
		Seed:   17,
	}

	// Build once: the expensive color-coding phase runs a single time and
	// the packed table (arena + offset index + coloring) lands on disk.
	dir, err := os.MkdirTemp("", "motivo-webscale-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.tbl")
	info, err := motivo.BuildTable(g, buildOpts, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[build once]\n")
	fmt.Printf("  build %v, %d pairs packed into %.1f MiB (%.2f bytes/pair)\n",
		info.BuildTime.Round(1e6), info.Pairs,
		float64(info.TableBytes)/(1<<20),
		float64(info.TableBytes)/float64(info.Pairs))
	fmt.Printf("  persisted to %s (%.1f MiB)\n", path, float64(info.FileBytes)/(1<<20))

	// Query many: each request opens the saved table and samples — no
	// rebuild, whatever the strategy or budget.
	queries := []struct {
		name     string
		strategy motivo.Strategy
		samples  int
	}{
		{"naive, 50k samples", motivo.Naive, 50000},
		{"naive, 20k samples", motivo.Naive, 20000},
		{"AGS, 50k samples", motivo.AGS, 50000},
	}
	for _, q := range queries {
		res, err := motivo.Count(g, motivo.Options{
			K:         k,
			Samples:   q.samples,
			Strategy:  q.strategy,
			Seed:      17,
			TablePath: path,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[query: %s]\n", q.name)
		fmt.Printf("  table open %v (vs %v build), sampling %v, %d samples\n",
			res.BuildTime.Round(1e6), info.BuildTime.Round(1e6),
			res.SampleTime.Round(1e6), res.Samples)
		fmt.Printf("  distinct %d-graphlets observed: %d\n", k, len(res.Counts))
		for i, e := range res.Top(3) {
			fmt.Printf("  %d. %-24s %12.4g copies (%6.3f%%)\n",
				i+1, motivo.Describe(k, e.Code), e.Count, 100*e.Frequency)
		}
	}
	fmt.Println("\nThe build ran once; every query paid only a sequential table")
	fmt.Println("open. Biased coloring shrank the table before it was packed —")
	fmt.Println("the two levers compose.")
}
