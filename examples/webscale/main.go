// Webscale: the big-graph configuration of the paper scaled to a laptop —
// a heavy-tailed graph with hundreds of thousands of edges, counted at
// k=6 with biased coloring (Section 3.4) and greedy flushing of the table
// through disk (Section 3.1), the two levers motivo uses to reach
// billion-edge graphs on 64 GB machines — combined with the engine's
// serving workflow: the packed count table is built and persisted ONCE,
// opened into a long-lived motivo.Engine ONCE, and every query then costs
// only an O(1) urn clone plus its own sampling. That is the shape of a
// production deployment: a periodic (expensive) build job feeding one
// resident query engine (`motivo serve`) that answers arbitrarily many
// requests.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"time"

	motivo "repro"
)

func main() {
	g := motivo.BarabasiAlbert(100000, 4, 99)
	fmt.Printf("graph: %d nodes, %d edges, max degree %d\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree())

	const k = 6
	buildOpts := motivo.Options{
		K:      k,
		Lambda: 0.08, // biased coloring: shrinks the table (Section 3.4)
		Spill:  true, // greedy flushing through temp files (Section 3.1)
		Seed:   17,
	}

	// Build once: the expensive color-coding phase runs a single time and
	// the packed table (arena + offset index + coloring) lands on disk.
	dir, err := os.MkdirTemp("", "motivo-webscale-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.tbl")
	info, err := motivo.BuildTable(g, buildOpts, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[build once]\n")
	fmt.Printf("  build %v, %d pairs packed into %.1f MiB (%.2f bytes/pair)\n",
		info.BuildTime.Round(1e6), info.Pairs,
		float64(info.TableBytes)/(1<<20),
		float64(info.TableBytes)/float64(info.Pairs))
	fmt.Printf("  persisted to %s (%.1f MiB)\n", path, float64(info.FileBytes)/(1<<20))

	// Open once: the table is read, validated and turned into the master
	// sampling urn here — and never again, however many queries follow.
	eng, err := motivo.Open(g, path)
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("\n[open once]\n")
	fmt.Printf("  engine ready in %v (vs %v build) — every query below skips both\n",
		st.OpenTime.Round(1e6), info.BuildTime.Round(1e6))

	// Query many: each request is a cheap clone off the resident engine —
	// no table re-open, no urn rebuild, whatever the strategy or budget.
	ctx := context.Background()
	queries := []struct {
		name  string
		query motivo.Query
	}{
		{"naive, 50k samples", motivo.Query{Strategy: motivo.Naive, Samples: 50000, Seed: 17}},
		{"naive, 20k samples", motivo.Query{Strategy: motivo.Naive, Samples: 20000, Seed: 17}},
		{"AGS, 50k samples", motivo.Query{Strategy: motivo.AGS, Samples: 50000, Seed: 17}},
	}
	var amortized time.Duration
	var firstRes *motivo.Result
	for _, q := range queries {
		res, err := eng.Count(ctx, q.query)
		if err != nil {
			log.Fatal(err)
		}
		if firstRes == nil {
			firstRes = res
		}
		amortized += st.OpenTime // what a cold per-query open would have re-paid
		fmt.Printf("\n[query: %s]\n", q.name)
		fmt.Printf("  sampling %v, %d samples — no table open, no urn rebuild\n",
			res.SampleTime.Round(1e6), res.Samples)
		fmt.Printf("  distinct %d-graphlets observed: %d\n", k, len(res.Counts))
		for i, e := range res.Top(3) {
			fmt.Printf("  %d. %-24s %12.4g copies (%6.3f%%)\n",
				i+1, motivo.Describe(k, e.Code), e.Count, 100*e.Frequency)
		}
	}

	fmt.Printf("\nThe build ran once and the engine opened once (%v); the three\n",
		st.OpenTime.Round(1e6))
	fmt.Printf("queries above would have re-paid ~%v of table open + urn\n",
		amortized.Round(1e6))
	fmt.Println("construction as one-shot runs — the engine amortizes all of it,")
	fmt.Println("and `motivo serve` exposes this exact session over HTTP.")

	// Zero-copy reopen: the same file opens memory-mapped — arenas and
	// offset indexes are served straight off the kernel page cache, so the
	// open never reads or copies the level payloads and the table may
	// exceed the Go heap. MapAuto maps MvT4 files and falls back to the
	// heap load for legacy formats (or platforms without mmap).
	mapped, err := motivo.OpenMode(g, path, motivo.MapAuto)
	if err != nil {
		log.Fatal(err)
	}
	mst := mapped.Stats()
	fmt.Printf("\n[zero-copy reopen]\n")
	fmt.Printf("  mapped engine ready in %v (first open: %v)\n",
		mst.OpenTime.Round(1e6), st.OpenTime.Round(1e6))
	fmt.Printf("  residency: %.1f MiB mapped (page cache), %.1f KiB heap\n",
		float64(mst.MappedBytes)/(1<<20), float64(mst.HeapBytes)/(1<<10))
	mres, err := mapped.Count(ctx, queries[0].query)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(mres.Counts, firstRes.Counts) {
		log.Fatal("mapped estimates diverged from the heap-loaded engine")
	}
	fmt.Printf("  re-ran %q: bit-identical estimates off the mapping\n", queries[0].name)

	// Multi-tenant serving: a Registry holds many named engines at once —
	// the shape behind `motivo serve -graph a=...:... -graph b=...:...`.
	// Explicitly-seeded queries are answered from a result cache on
	// repeat, and engines beyond the memory budget are LRU-evicted and
	// transparently reopened on the next query.
	reg := motivo.NewRegistry(motivo.RegistryConfig{CacheSize: 128})
	if err := reg.Open("ba", g, path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[registry: %d graph(s) resident]\n", reg.Stats().Resident)
	seeded := motivo.Query{Strategy: motivo.Naive, Samples: 30000, Seed: 17}
	for i := 0; i < 2; i++ {
		res, cached, err := reg.Count(ctx, "ba", seeded)
		if err != nil {
			log.Fatal(err)
		}
		disposition := "sampled"
		if cached {
			disposition = "served from the seeded-result cache"
		}
		fmt.Printf("  query %d: %d samples in %v — %s\n",
			i+1, res.Samples, res.SampleTime.Round(1e6), disposition)
	}
	rst := reg.Stats()
	fmt.Printf("  cache: %d hit / %d miss — identical (graph, seeded query)\n",
		rst.CacheHits, rst.CacheMisses)
	fmt.Println("  pairs repeat bit-identical results without re-sampling.")
}
