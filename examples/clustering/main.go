// Clustering: estimate the global clustering coefficient from 3-graphlet
// counts — the canonical "approximate counting is enough" application from
// the paper's introduction (the coefficient is the fraction of closed
// wedges, i.e. 3·triangles / (3·triangles + open wedges)).
package main

import (
	"fmt"
	"log"

	motivo "repro"
	"repro/internal/graphlet"
)

func main() {
	graphs := map[string]*motivo.Graph{
		"erdos-renyi (flat)":      motivo.ErdosRenyi(5000, 25000, 11),
		"barabasi-albert (hubby)": motivo.BarabasiAlbert(5000, 5, 11),
	}
	for name, g := range graphs {
		res, err := motivo.Count(g, motivo.Options{
			K: 3, Colorings: 4, Samples: 150000, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		var triangles, wedges float64
		for code, c := range res.Counts {
			if graphlet.IsClique(3, code) {
				triangles = c
			} else {
				wedges = c
			}
		}
		est := 3 * triangles / (3*triangles + wedges)

		exact, err := motivo.ExactCount(g, 3)
		if err != nil {
			log.Fatal(err)
		}
		var exTri, exWedge float64
		for code, c := range exact {
			if graphlet.IsClique(3, code) {
				exTri = c
			} else {
				exWedge = c
			}
		}
		truth := 3 * exTri / (3*exTri + exWedge)

		fmt.Printf("%-26s clustering coefficient: motivo %.5f, exact %.5f (rel err %+.2f%%)\n",
			name, est, truth, 100*(est-truth)/truth)
	}
}
