// Rare motifs: the paper's Yelp story (Section 5.3) in miniature, now
// told through the guaranteed-accuracy API. On a star-dominated graph
// virtually every k-graphlet is the star, so naive sampling sees nothing
// else; AGS covers the star, "deletes" it from the urn by switching
// spanning-tree shape, and surfaces graphlets whose relative frequency is
// orders of magnitude below 1/samples.
//
// The second act runs to precision instead of to a fixed budget: sampling
// continues until Theorem 3 certifies the target motif's estimate within
// ε at confidence 1-δ, and the returned certificate is checked against
// the exact count. The third act streams the same draws into per-node
// graphlet signatures, where the hub is unmistakable.
package main

import (
	"fmt"
	"log"
	"sort"

	motivo "repro"
)

func main() {
	// One hub adjacent to 12000 leaves plus a sprinkle of leaf-leaf edges:
	// >99.9% of 5-graphlets are stars. The hub degree exceeds the
	// neighbor-buffering threshold (10^4), so sampling stays fast.
	g := motivo.StarHeavy(1, 12000, 500, 7)
	fmt.Printf("graph: %d nodes, %d edges (hub degree %d)\n\n",
		g.NumNodes(), g.NumEdges(), g.Degree(0))

	// ---- Act 1: discovery. AGS surfaces what naive sampling cannot. ----
	const k = 5
	const budget = 60000

	naive, err := motivo.Count(g, motivo.Options{
		K: k, Samples: budget, Strategy: motivo.Naive, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ags, err := motivo.Count(g, motivo.Options{
		K: k, Samples: budget, Strategy: motivo.AGS, CoverThreshold: 1000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12s %12s\n", "", "naive", "AGS")
	fmt.Printf("%-28s %12d %12d\n\n", "distinct graphlets found", len(naive.Counts), len(ags.Counts))

	fmt.Println("rarest motifs surfaced by AGS (invisible to naive sampling):")
	all := ags.Top(0)
	sort.Slice(all, func(i, j int) bool { return all[i].Frequency < all[j].Frequency })
	shown := 0
	for _, e := range all {
		if _, seen := naive.Counts[e.Code]; seen {
			continue
		}
		fmt.Printf("  %-22s freq %.3g\n", motivo.Describe(k, e.Code), e.Frequency)
		shown++
		if shown == 5 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (naive sampling saw everything this time — rerun with a larger graph)")
	}

	// ---- Act 2: guaranteed accuracy. Theorem 3's certificate depends on
	// p_k·g_i / ((k-1)!·Δ^(k-2)), so it has teeth where the target motif is
	// abundant relative to the hub degree: at k=3 the star's wedge motif
	// certifies a tight ε on this graph. A naive pre-pass names the target;
	// the precision run then sizes its own budget.
	pre, err := motivo.Count(g, motivo.Options{K: 3, Samples: 20000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	target := pre.Top(1)[0].Code
	fmt.Printf("\nrun-to-precision: certifying %q within ε=0.15 at 90%% confidence\n",
		motivo.Describe(3, target))

	res, err := motivo.Count(g, motivo.Options{
		K: 3, Strategy: motivo.AGS, Seed: 3,
		Epsilon: 0.15, Delta: 0.1, TargetMotif: target, MaxSamples: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	cert := res.Achieved
	fmt.Printf("  certified ε=%.3f after %d samples (met: %v)\n", cert.Eps, cert.Samples, cert.Met)

	exactCounts, err := motivo.ExactCount(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	est, exact := res.Counts[target], exactCounts[target]
	fmt.Printf("  estimate %.4g vs exact %.4g — relative error %.4f (certified ≤ %.3f)\n",
		est, exact, abs(est-exact)/exact, cert.Eps)

	// ---- Act 3: per-node signatures. The same sampling run, streamed
	// into graphlet degree vectors; the hub's vector dwarfs every leaf's.
	sig, err := motivo.Signatures(g, motivo.Options{
		K: 4, Samples: 30000, Strategy: motivo.AGS, Seed: 3,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	nodes := make([]motivo.NodeSignature, len(sig.Nodes))
	copy(nodes, sig.Nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Total > nodes[j].Total })
	fmt.Printf("\nper-node signatures (k=4, %d samples): top nodes by graphlet incidence\n", sig.Samples)
	for i := 0; i < 3 && i < len(nodes); i++ {
		fmt.Printf("  node %-6d total %d\n", nodes[i].Node, nodes[i].Total)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
