// Rare motifs: the paper's Yelp story (Section 5.3) in miniature. On a
// star-dominated graph virtually every k-graphlet is the star, so naive
// sampling sees nothing else; AGS covers the star, "deletes" it from the
// urn by switching spanning-tree shape, and surfaces graphlets whose
// relative frequency is orders of magnitude below 1/samples.
package main

import (
	"fmt"
	"log"
	"sort"

	motivo "repro"
)

func main() {
	// One hub adjacent to 12000 leaves plus a sprinkle of leaf-leaf edges:
	// >99.9% of 5-graphlets are stars. The hub degree exceeds the
	// neighbor-buffering threshold (10^4), so sampling stays fast.
	g := motivo.StarHeavy(1, 12000, 500, 7)
	fmt.Printf("graph: %d nodes, %d edges (hub degree %d)\n\n",
		g.NumNodes(), g.NumEdges(), g.Degree(0))

	const k = 5
	const budget = 60000

	naive, err := motivo.Count(g, motivo.Options{
		K: k, Samples: budget, Strategy: motivo.Naive, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ags, err := motivo.Count(g, motivo.Options{
		K: k, Samples: budget, Strategy: motivo.AGS, CoverThreshold: 1000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "naive", "AGS")
	fmt.Printf("%-28s %12d %12d\n", "distinct graphlets found", len(naive.Counts), len(ags.Counts))

	rarest := func(r *motivo.Result) float64 {
		all := r.Top(0)
		sort.Slice(all, func(i, j int) bool { return all[i].Frequency < all[j].Frequency })
		for _, e := range all {
			if e.Frequency > 0 {
				return e.Frequency
			}
		}
		return 0
	}
	fmt.Printf("%-28s %12.3g %12.3g\n\n", "rarest frequency estimated", rarest(naive), rarest(ags))

	fmt.Println("rarest motifs surfaced by AGS (invisible to naive sampling):")
	all := ags.Top(0)
	sort.Slice(all, func(i, j int) bool { return all[i].Frequency < all[j].Frequency })
	shown := 0
	for _, e := range all {
		if _, seen := naive.Counts[e.Code]; seen {
			continue
		}
		fmt.Printf("  %-22s freq %.3g\n", motivo.Describe(k, e.Code), e.Frequency)
		shown++
		if shown == 8 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (naive sampling saw everything this time — rerun with a larger graph)")
	}
}
