// Quickstart: count 5-node graphlets on a scale-free graph and print the
// most frequent motifs — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	motivo "repro"
)

func main() {
	// A Barabási–Albert graph: 20k nodes, ~60k edges, heavy-tailed
	// degrees like the social networks in the paper's Table 1.
	g := motivo.BarabasiAlbert(20000, 3, 42)
	fmt.Printf("graph: %d nodes, %d edges, max degree %d\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree())

	res, err := motivo.Count(g, motivo.Options{
		K:         5,      // count 5-node graphlets (21 distinct shapes)
		Colorings: 2,      // average over 2 independent colorings
		Samples:   200000, // per-coloring sampling budget
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("build: %v   sampling: %v   table: %d KiB   samples: %d\n",
		res.BuildTime.Round(1e6), res.SampleTime.Round(1e6),
		res.TableBytes/1024, res.Samples)
	fmt.Printf("distinct graphlets observed: %d (of %d possible)\n\n",
		len(res.Counts), motivo.NumGraphlets(5))

	fmt.Println("top 10 motifs by estimated induced occurrences:")
	for i, e := range res.Top(10) {
		fmt.Printf("%2d. %-22s %14.4g copies  (%6.3f%%)\n",
			i+1, motivo.Describe(5, e.Code), e.Count, 100*e.Frequency)
	}
}
