package motivo

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/table"
)

// TestMappedOpenSpeedup is the O(ms) startup acceptance test (ISSUE 8):
// memory-mapping the k=6 ER bench table must open at least 50x faster
// than heap-loading it. The heap path reads, copies and eagerly validates
// every level; the mapped path parses the 48-byte header and the level
// directory and defers validation to first touch, so its cost does not
// scale with the arena.
func TestMappedOpenSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the k=6 bench table")
	}
	g := storageGraph()
	path := t.TempDir() + "/speedup.tbl"
	if _, _, err := core.BuildTable(g, core.Config{K: 6, Seed: 1007, MaterializeStars: true}, path); err != nil {
		t.Fatal(err)
	}
	if tab, _, err := table.OpenMapped(path); err != nil {
		if errors.Is(err, table.ErrNotMappable) {
			t.Skipf("mmap unavailable on this platform: %v", err)
		}
		t.Fatal(err)
	} else {
		tab.Close()
	}

	// Min-of-N wall times: the minimum is robust against scheduler noise
	// in CI, and opening is what we measure — not first-touch serving.
	heapNs := minOpenNs(t, 20, func() error {
		_, _, err := table.LoadFile(path)
		return err
	})
	mappedNs := minOpenNs(t, 100, func() error {
		tab, _, err := table.OpenMapped(path)
		if err != nil {
			return err
		}
		// Close per iteration: each open maps a fresh VMA and finalizers
		// run too late to keep a tight loop under the kernel's map limit.
		tab.Close()
		return nil
	})
	speedup := float64(heapNs) / float64(mappedNs)
	t.Logf("heap open %v, mapped open %v: %.0fx", time.Duration(heapNs), time.Duration(mappedNs), speedup)
	if speedup < 50 {
		t.Errorf("mapped open is only %.1fx faster than heap open, want >= 50x (heap %v, mapped %v)",
			speedup, time.Duration(heapNs), time.Duration(mappedNs))
	}
}

// minOpenNs returns the fastest of n timed runs of f in nanoseconds.
func minOpenNs(t *testing.T, n int, f func() error) int64 {
	t.Helper()
	best := int64(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	return best
}
