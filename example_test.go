package motivo_test

import (
	"fmt"
	"sort"

	motivo "repro"
)

// The smallest possible use: exact counts on a toy graph.
func ExampleExactCount() {
	// K4: four triangles, nothing else at k=3.
	g := motivo.Complete(4)
	counts, err := motivo.ExactCount(g, 3)
	if err != nil {
		panic(err)
	}
	for code, n := range counts {
		fmt.Printf("%s: %.0f\n", motivo.Describe(3, code), n)
	}
	// Output:
	// 3-clique: 4
}

// Converting induced counts to non-induced (subgraph) counts.
func ExampleNonInducedCounts() {
	g := motivo.Complete(5)
	induced, err := motivo.ExactCount(g, 4)
	if err != nil {
		panic(err)
	}
	ni := motivo.NonInducedCounts(induced, 4, motivo.EnumerateGraphlets(4))
	type row struct {
		name string
		n    float64
	}
	var rows []row
	for code, n := range ni {
		rows = append(rows, row{motivo.Describe(4, code), n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Printf("%s: %.0f\n", r.name, r.n)
	}
	// Output:
	// 4-clique: 5
	// 4-cycle: 15
	// 4-path: 60
	// 4-star: 20
	// 4v/4e deg[3,2,2,1] g35: 60
	// 4v/5e deg[3,3,2,2] g3e: 30
}

// Describing graphlet codes in human-readable form.
func ExampleDescribe() {
	cases := []*motivo.Graph{
		motivo.Complete(5), motivo.StarGraph(5), motivo.PathGraph(5), motivo.CycleGraph(5),
	}
	for _, g := range cases {
		counts, err := motivo.ExactCount(g, 5)
		if err != nil {
			panic(err)
		}
		for code := range counts {
			fmt.Println(motivo.Describe(5, code))
		}
	}
	// Output:
	// 5-clique
	// 5-star
	// 5-path
	// 5-cycle
}

// Estimating graphlet counts with the full pipeline. (No Output comment:
// estimates are random variables; see examples/quickstart for a runnable
// program.)
func ExampleCount() {
	g := motivo.BarabasiAlbert(5000, 3, 42)
	res, err := motivo.Count(g, motivo.Options{
		K:        5,
		Samples:  100000,
		Strategy: motivo.AGS,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	for _, e := range res.Top(3) {
		_ = e.Count // estimated induced occurrences
	}
}
