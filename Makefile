# Targets mirror .github/workflows/ci.yml so local runs and CI can't
# drift: `make ci` is CI's `test` job; the workflow's network-dependent
# extras map to `make staticcheck` (needs the module proxy, so it is not
# part of `ci` — sandboxes run offline) and `make bench-json` (the bench
# artifact job).

GO ?= go

.PHONY: all build test bench bench-json fuzz staticcheck fmt fmt-check vet quickstart ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# CI's fuzz smoke: a short coverage-guided run of the packed-codec
# round-trip target.
fuzz:
	$(GO) test -run='^$$' -fuzz=Fuzz -fuzztime=10s ./internal/table

# One iteration of every benchmark: a compile-and-run smoke pass, not a
# measurement (use `go test -bench=. -benchtime=1s` for numbers).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# What CI's bench job runs: measured benchmarks converted to the
# BENCH_ci.json trajectory artifact via cmd/benchjson. Two steps, no pipe,
# so a failing benchmark fails the target instead of being masked.
bench-json:
	$(GO) test -run='^$$' -bench . -benchtime=3x -count=3 ./... > bench.txt
	$(GO) run ./cmd/benchjson -o BENCH_ci.json bench.txt

# Same pinned version as CI's staticcheck job.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

quickstart:
	$(GO) run ./examples/quickstart

ci: fmt-check vet build test fuzz bench quickstart
