# Targets mirror .github/workflows/ci.yml so local runs and CI can't
# drift: `make ci` is CI's `test` job; the workflow's network-dependent
# extras map to `make staticcheck` (needs the module proxy, so it is not
# part of `ci` — sandboxes run offline) and `make bench-json` (the bench
# artifact job).

GO ?= go

# Bench noise floor. The regression-gated family (the engine benches) runs
# time-based with -count=5 under an explicit GOMAXPROCS, and the compare
# gate takes the per-metric best of the five runs — one preempted run on a
# shared runner cannot fail the gate. BENCH_TOLERANCE absorbs what remains
# (runner-to-runner CPU variance); allocation metrics are machine-
# independent, so real regressions still surface well inside it.
BENCH_GOMAXPROCS ?= 1
BENCH_GATED      ?= ^(BenchmarkEngine|BenchmarkTableOpen)
BENCH_GATED_TIME ?= 400ms
BENCH_TOLERANCE  ?= 60

.PHONY: all build test bench bench-json bench-baseline bench-compare fuzz cover staticcheck govulncheck fmt fmt-check vet quickstart serve-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# CI's fuzz smoke: short coverage-guided runs of the packed-codec
# round-trip target and the serve request decoder. One -fuzz pattern per
# package invocation is a `go test` restriction, hence two runs.
fuzz:
	$(GO) test -run='^$$' -fuzz=Fuzz -fuzztime=10s ./internal/table
	$(GO) test -run='^$$' -fuzz=FuzzCountRequest -fuzztime=10s ./internal/serve

# Coverage with the recorded-baseline gate CI enforces: the total
# statement percentage must not drop more than 2 points below
# COVERAGE_BASELINE. Deliberately NOT merged into the -race run: race
# detection plus atomic coverage counters slows the graphlet
# canonicalization brute-force tests ~60x and blows the package timeout,
# so the race gate (`make test`) and the coverage gate stay separate runs.
# Refresh the baseline (after genuinely improving coverage) with:
#   go tool cover -func=cover.out | awk '$$1=="total:"{print substr($$3,1,length($$3)-1)}' > COVERAGE_BASELINE
cover:
	@test -f COVERAGE_BASELINE || { echo "COVERAGE_BASELINE missing" >&2; exit 1; }
	$(GO) test -covermode=atomic -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '$$1=="total:"{print substr($$3,1,length($$3)-1)}'); \
	base=$$(cat COVERAGE_BASELINE); \
	test -n "$$total" && test -n "$$base" || { echo "could not compute coverage total/baseline" >&2; exit 1; }; \
	echo "coverage: $$total% (baseline $$base%, gate $$base-2)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN { if (t+2 < b) { print "coverage dropped more than 2 points below baseline"; exit 1 } }'

# One iteration of every benchmark: a compile-and-run smoke pass, not a
# measurement (use `go test -bench=. -benchtime=1s` for numbers).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# What CI's bench job runs: measured benchmarks converted to the
# BENCH_ci.json trajectory artifact via cmd/benchjson. Two bench passes
# with per-family -benchtime — the gated engine family measured for real
# (time-based, five counts), the rest of the suite as a cheap trajectory —
# then the conversion. No pipes, so a failing benchmark fails the target
# instead of being masked.
bench-json:
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -run='^$$' -bench '$(BENCH_GATED)' -benchtime=$(BENCH_GATED_TIME) -count=5 . > bench.txt
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -run='^$$' -bench . -benchtime=3x -count=3 ./... >> bench.txt
	$(GO) run ./cmd/benchjson -o BENCH_ci.json bench.txt

# Refresh the committed perf floor: measure the gated family exactly the
# way bench-json does and overwrite BENCH_baseline.json. Run after an
# intentional perf change (or a benchmark rename), eyeball the diff, and
# commit the new file — CI's bench-compare enforces it from then on.
bench-baseline:
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -run='^$$' -bench '$(BENCH_GATED)' -benchtime=$(BENCH_GATED_TIME) -count=5 . > bench_baseline.txt
	$(GO) run ./cmd/benchjson -o BENCH_baseline.json bench_baseline.txt
	@rm -f bench_baseline.txt

# The regression gate CI runs after bench-json: every (benchmark, metric)
# of the committed baseline must be present and no worse than
# BENCH_TOLERANCE percent in this run's BENCH_ci.json.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json -tolerance $(BENCH_TOLERANCE) BENCH_ci.json

# Same pinned version as CI's staticcheck job.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2026.1 ./...

# Same pinned version as CI's govulncheck job. Like staticcheck this needs
# the module proxy, so it is not part of `ci` (sandboxes run offline).
govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

quickstart:
	$(GO) run ./examples/quickstart

# The serve smoke CI runs: build two tiny tables, start a two-graph
# `motivo serve`, and drive the v1 API over HTTP — list both graphs
# (asserting both are served off memory mappings, with the mapped-bytes
# gauge visible in /metrics), run a seeded count twice asserting the
# repeat is a byte-identical cache hit (visible in /metrics), post a
# batch, fetch per-node signatures, run a capped run-to-precision count
# asserting its certificate (and both new counters in /metrics), and keep
# the legacy /count + /stats aliases honest (needs curl + jq). One copy of
# the script — the workflow step calls this target.
serve-smoke:
	$(GO) build -o /tmp/motivo-smoke ./cmd/motivo
	/tmp/motivo-smoke gen -type er -n 80 -m 240 -seed 1 -o /tmp/motivo-smoke-er.txt
	/tmp/motivo-smoke build -i /tmp/motivo-smoke-er.txt -k 4 -seed 5 -o /tmp/motivo-smoke-er.tbl
	/tmp/motivo-smoke gen -type ba -n 60 -m 3 -seed 2 -o /tmp/motivo-smoke-ba.txt
	/tmp/motivo-smoke build -i /tmp/motivo-smoke-ba.txt -k 3 -seed 9 -o /tmp/motivo-smoke-ba.tbl
	/tmp/motivo-smoke serve -graph er=/tmp/motivo-smoke-er.txt:/tmp/motivo-smoke-er.tbl \
		-graph ba=/tmp/motivo-smoke-ba.txt:/tmp/motivo-smoke-ba.tbl \
		-cache-size 64 -max-inflight 8 -addr 127.0.0.1:18080 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do curl -fsS http://127.0.0.1:18080/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -fsS http://127.0.0.1:18080/v1/graphs \
		| jq -e '(.graphs | length) == 2 and .graphs[0].name == "ba" and .graphs[1].name == "er" and (.graphs | all(.resident)) and (.graphs | all(.mappedBytes > 0))'; \
	curl -fsS http://127.0.0.1:18080/metrics \
		| awk '$$1 == "motivo_mapped_table_bytes" { found = 1; if ($$2 + 0 <= 0) exit 1 } END { exit found ? 0 : 1 }'; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/graphs/er/count \
		-d '{"strategy":"ags","samples":5000,"seed":7,"top":3}' -o /tmp/motivo-smoke-cold.json; \
	jq -e '.graph == "er" and .k == 4 and (.counts | length) > 0 and .samples == 5000' /tmp/motivo-smoke-cold.json; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/graphs/er/count \
		-d '{"strategy":"ags","samples":5000,"seed":7,"top":3}' -o /tmp/motivo-smoke-warm.json; \
	cmp /tmp/motivo-smoke-cold.json /tmp/motivo-smoke-warm.json; \
	curl -fsS http://127.0.0.1:18080/metrics | grep -q '^motivo_result_cache_hits_total 1$$'; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/batch \
		-d '{"graph":"ba","queries":[{"samples":2000,"seed":1},{"samples":-1},{"samples":2000,"seed":2}]}' \
		| jq -e '.graph == "ba" and (.results | length) == 3 and .results[0].count.k == 3 and .results[1].code == "bad_request" and .results[2].count.k == 3'; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/graphs/er/signatures \
		-d '{"strategy":"ags","samples":4000,"seed":11,"topNodes":5}' -o /tmp/motivo-smoke-sig.json; \
	jq -e '.graph == "er" and .k == 4 and (.motifs | length) > 0 and (.nodes | length) == 5 and (.nodes[0].vector | length) == (.motifs | length)' /tmp/motivo-smoke-sig.json; \
	curl -fsS -X POST http://127.0.0.1:18080/v1/graphs/er/count \
		-d '{"epsilon":0.5,"delta":0.2,"maxSamples":4000,"seed":13}' \
		| jq -e '.strategy == "ags" and .achieved != null and .achieved.samples <= 4000 and .achieved.delta == 0.2'; \
	curl -fsS http://127.0.0.1:18080/metrics | grep -q '^motivo_signature_queries_total 1$$'; \
	curl -fsS http://127.0.0.1:18080/metrics | grep -q '^motivo_precision_queries_total 1$$'; \
	curl -fsS http://127.0.0.1:18080/metrics | grep -q '^motivo_precision_met_total'; \
	curl -fsS -X POST http://127.0.0.1:18080/count -d '{"samples":3000,"seed":3}' \
		| jq -e '.k == 4 and (has("graph") | not)'; \
	curl -fsS http://127.0.0.1:18080/stats | jq -e '.k == 4 and .openMs > 0'

ci: fmt-check vet build test fuzz bench quickstart serve-smoke cover
