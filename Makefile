# Targets mirror .github/workflows/ci.yml so local runs and CI can't
# drift: `make ci` is CI's `test` job; the workflow's network-dependent
# extras map to `make staticcheck` (needs the module proxy, so it is not
# part of `ci` — sandboxes run offline) and `make bench-json` (the bench
# artifact job).

GO ?= go

.PHONY: all build test bench bench-json fuzz staticcheck fmt fmt-check vet quickstart serve-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# CI's fuzz smoke: a short coverage-guided run of the packed-codec
# round-trip target.
fuzz:
	$(GO) test -run='^$$' -fuzz=Fuzz -fuzztime=10s ./internal/table

# One iteration of every benchmark: a compile-and-run smoke pass, not a
# measurement (use `go test -bench=. -benchtime=1s` for numbers).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# What CI's bench job runs: measured benchmarks converted to the
# BENCH_ci.json trajectory artifact via cmd/benchjson. Two steps, no pipe,
# so a failing benchmark fails the target instead of being masked.
bench-json:
	$(GO) test -run='^$$' -bench . -benchtime=3x -count=3 ./... > bench.txt
	$(GO) run ./cmd/benchjson -o BENCH_ci.json bench.txt

# Same pinned version as CI's staticcheck job.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

quickstart:
	$(GO) run ./examples/quickstart

# The serve smoke CI runs: build a tiny table, start `motivo serve`, query
# it over HTTP, assert 200 + valid JSON on /count and /stats (needs
# curl + jq). One copy of the script — the workflow step calls this target.
serve-smoke:
	$(GO) build -o /tmp/motivo-smoke ./cmd/motivo
	/tmp/motivo-smoke gen -type er -n 80 -m 240 -seed 1 -o /tmp/motivo-smoke.txt
	/tmp/motivo-smoke build -i /tmp/motivo-smoke.txt -k 4 -seed 5 -o /tmp/motivo-smoke.tbl
	/tmp/motivo-smoke serve -i /tmp/motivo-smoke.txt -table /tmp/motivo-smoke.tbl -addr 127.0.0.1:18080 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do curl -fsS http://127.0.0.1:18080/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -fsS -X POST http://127.0.0.1:18080/count -d '{"strategy":"ags","samples":5000,"seed":7,"top":3}' \
		| jq -e '.k == 4 and (.counts | length) > 0 and .samples == 5000'; \
	curl -fsS http://127.0.0.1:18080/stats | jq -e '.queries == 1 and .openMs > 0'

ci: fmt-check vet build test fuzz bench quickstart serve-smoke
