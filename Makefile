# Targets mirror .github/workflows/ci.yml exactly so local runs and CI
# can't drift: `make ci` is what the gate runs.

GO ?= go

.PHONY: all build test bench fmt fmt-check vet quickstart ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark: a compile-and-run smoke pass, not a
# measurement (use `go test -bench=. -benchtime=1s` for numbers).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

quickstart:
	$(GO) run ./examples/quickstart

ci: fmt-check vet build test bench quickstart
