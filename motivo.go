// Package motivo is a Go implementation of Motivo (Bressan, Leucci,
// Panconesi — "Motivo: fast motif counting via succinct color coding and
// adaptive sampling", VLDB 2019): approximate counting of the induced
// occurrences of every connected k-node graphlet in a host graph, with
// multiplicative accuracy even for extremely rare graphlets.
//
// The pipeline is the paper's: a color-coding build-up phase fills a
// succinct treelet count table; a sampling phase treats the table as an
// urn of colorful k-treelet copies and converts treelet draws into
// graphlet occurrences; the adaptive strategy (AGS) progressively
// "deletes" already-covered graphlets from the urn by switching the
// spanning-tree shape it samples.
//
// Quick start:
//
//	g := motivo.BarabasiAlbert(10000, 5, 1)
//	res, err := motivo.Count(g, motivo.Options{K: 5, Samples: 100000})
//	if err != nil { ... }
//	for _, e := range res.Top(10) {
//		fmt.Printf("%s  %.3g occurrences (%.2f%%)\n",
//			motivo.Describe(5, e.Code), e.Count, 100*e.Frequency)
//	}
package motivo

import (
	"context"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/treelet"
)

// MaxK is the largest supported graphlet size.
const MaxK = treelet.MaxK

// Graph is an immutable undirected simple host graph in CSR layout.
type Graph = graph.Graph

// Edge is an undirected edge for NewGraph.
type Edge = graph.Edge

// Code is the canonical code of a graphlet (packed adjacency matrix).
type Code = graphlet.Code

// Counts maps canonical graphlet codes to occurrence counts (exact or
// estimated).
type Counts = estimate.Counts

// NewGraph builds a graph on n vertices from an edge list; self-loops and
// duplicates are dropped.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.Build(n, edges) }

// ReadEdgeList parses a whitespace-separated edge list with '#'/'%'
// comments; sparse vertex ids are compacted.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadBinary reads the compact binary graph format written by
// (*Graph).WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// GraphOpenMode selects how OpenGraph loads a graph file: memory-mapped
// MvG1 (zero-copy, O(ms) open, out-of-core adjacency) or heap-loaded.
type GraphOpenMode = graph.OpenMode

const (
	// GraphOpenAuto (the default) maps MvG1 binary files and falls back to
	// the heap readers for text edge lists or platforms without mmap.
	GraphOpenAuto = graph.OpenAuto
	// GraphOpenHeap always loads onto the heap.
	GraphOpenHeap = graph.OpenHeap
	// GraphOpenMapRequire maps or fails — no silent fallback to heap
	// residency (text edge lists are an error in this mode).
	GraphOpenMapRequire = graph.OpenMapRequire
)

// OpenGraph opens a graph file by content sniffing: MvG1 binary CSR files
// (written by (*Graph).WriteBinary, or `motivo convert`) open
// memory-mapped under GraphOpenAuto — O(ms) regardless of size, with the
// adjacency served from the page cache — and text edge lists stream
// through the two-pass reader. The result is identical to ReadEdgeList /
// ReadBinary on the same data.
func OpenGraph(path string, mode GraphOpenMode) (*Graph, error) { return graph.Open(path, mode) }

// Deterministic synthetic generators (see internal/gen for the regimes
// each one reproduces).
var (
	ErdosRenyi     = gen.ErdosRenyi
	BarabasiAlbert = gen.BarabasiAlbert
	StarHeavy      = gen.StarHeavy
	Lollipop       = gen.Lollipop
	Complete       = gen.Complete
	PathGraph      = gen.Path
	CycleGraph     = gen.Cycle
	StarGraph      = gen.Star
)

// Strategy selects the sampling algorithm.
type Strategy = core.Strategy

const (
	// Naive is uniform treelet sampling (the CC estimator on motivo's
	// fast urn).
	Naive = core.Naive
	// AGS is adaptive graphlet sampling: multiplicative guarantees for
	// rare graphlets too.
	AGS = core.AGS
)

// MapMode selects how persisted count tables are opened: memory-mapped
// (zero-copy arenas, O(ms) open independent of table size, page-cache
// residency — tables larger than RAM serve fine) or loaded onto the heap
// with eager validation.
type MapMode = core.MapMode

const (
	// MapAuto (the default) maps MvT4 table files and falls back to heap
	// loading where mapping is unavailable (older formats, non-unix).
	MapAuto = core.MapAuto
	// MapOff always heap-loads, validating the whole file eagerly.
	MapOff = core.MapOff
	// MapRequire maps or fails — no silent fallback to heap residency.
	MapRequire = core.MapRequire
)

// Options configures Count. The zero value is completed with sensible
// defaults: K=4, one coloring, 100k samples, naive strategy.
type Options struct {
	// K is the graphlet size (2..MaxK). Default 4.
	K int
	// Colorings is the number of independent colorings averaged (γ).
	// Default 1.
	Colorings int
	// Samples is the per-coloring sampling budget. Default 100000.
	Samples int
	// Strategy selects Naive or AGS. Default Naive.
	Strategy Strategy
	// CoverThreshold is AGS's covering threshold c̄. Default 1000.
	CoverThreshold int
	// Lambda, when > 0, enables biased coloring with this λ (trades
	// accuracy for table size on large graphs).
	Lambda float64
	// Seed makes runs reproducible. Default 1.
	Seed int64
	// Workers bounds build-phase parallelism; 0 = GOMAXPROCS.
	Workers int
	// SampleWorkers parallelizes the sampling phase across urn clones:
	// naive sampling fans the budget out, AGS samples in epochs (per-worker
	// batches merged at barriers, where cover detection and the adaptive
	// shape switch run). ≤ 1 samples sequentially. Runs are deterministic
	// for a fixed Seed and SampleWorkers value.
	SampleWorkers int
	// Spill streams the count table through temp files (greedy flushing).
	Spill bool
	// MemBudget, when > 0, runs the build-up phase in bounded-memory mode:
	// each level is computed in vertex-range shards pulled from a shared
	// work-stealing queue, completed records stream to per-shard spill
	// files, and the level is externally merged into its final arena — so
	// the transient build footprint is bounded by the budget plus the table
	// itself, instead of scaling with whole in-flight levels. The resulting
	// table is bit-identical to an unbounded build at any worker count.
	MemBudget int64
	// MaterializeStars disables smart-star synthesis (on by default):
	// star-family treelet records are computed by the DP and stored instead
	// of being synthesized on demand from colored-degree summaries.
	// Estimates and sampled draw sequences are bit-identical either way at
	// equal seed; materializing costs build time and table bytes and exists
	// for comparison and debugging.
	MaterializeStars bool
	// TablePath, when set, makes Count skip the build-up phase and open a
	// count table persisted by BuildTable (or `motivo build -o`) instead —
	// the build-once / query-many serving mode. Requires Colorings ≤ 1 and
	// K matching the saved table; Lambda must be unset (the saved coloring
	// is used). A Count at seed s over a table saved by BuildTable at seed
	// s yields bit-identical estimates to a fully in-memory run.
	TablePath string
	// MapTable selects how TablePath is opened (MapAuto, MapOff,
	// MapRequire). Estimates are bit-identical across modes; mapping
	// changes only open time and memory residency.
	MapTable MapMode

	// Epsilon and Delta, when set, switch the run into run-to-precision
	// mode: instead of a fixed budget, sampling continues until every
	// tallied motif's estimate (or TargetMotif's alone) is certified within
	// relative error Epsilon at confidence 1-Delta by the paper's Theorem 3
	// bound. Requires the AGS strategy and a single coloring; mutually
	// exclusive with Samples. The certificate comes back in
	// Result.Achieved.
	Epsilon float64
	Delta   float64
	// TargetMotif, when non-zero, is the single canonical graphlet code the
	// precision certificate must cover (rare-motif workloads certify their
	// motif of interest orders of magnitude sooner than the full
	// distribution). Zero certifies every tallied motif.
	TargetMotif Code
	// MaxSamples caps a run-to-precision run's draws (0 = the engine's
	// default cap). Result.Achieved.Met reports whether Epsilon was reached
	// within the cap.
	MaxSamples int
}

// precisionMode reports whether any run-to-precision field is set.
func (o Options) precisionMode() bool {
	return o.Epsilon != 0 || o.Delta != 0 || o.TargetMotif != (Code{}) || o.MaxSamples != 0
}

// Estimate is one graphlet's estimated occurrence count and relative
// frequency.
type Estimate struct {
	Code      Code
	Count     float64
	Frequency float64
}

// Result is the outcome of a Count run or an Engine query.
type Result struct {
	// K is the graphlet size counted.
	K int
	// Counts estimates induced occurrences per canonical graphlet code.
	Counts Counts
	// Samples is the total number of samples drawn.
	Samples int
	// BuildTime and SampleTime are the aggregate phase durations.
	BuildTime  time.Duration
	SampleTime time.Duration
	// OpenTime is the table open + engine construction cost of a TablePath
	// run — reported separately because opening a persisted table is not a
	// build. Zero for in-memory runs and for Engine queries (an engine
	// pays its open cost once; see Engine.OpenTime).
	OpenTime time.Duration
	// TableBytes is the compact count-table payload size.
	TableBytes int64
	// Covered is the number of AGS-covered graphlets (0 under Naive). In
	// a multi-coloring run it reports the last coloring only, not a sum.
	Covered int
	// Achieved is the precision certificate of a run-to-precision run (nil
	// for fixed-budget runs).
	Achieved *Certificate
}

// Certificate is the precision certificate returned by a run-to-precision
// run: the certified relative error Eps (possibly +Inf when nothing was
// certifiable) at confidence 1-Delta after Samples draws, and whether the
// requested epsilon was Met within the sample cap.
type Certificate = core.Certificate

// Top returns the n graphlets with the largest estimated counts (all of
// them if n ≤ 0 or exceeds the support).
func (r *Result) Top(n int) []Estimate {
	freq := estimate.Frequencies(r.Counts)
	out := make([]Estimate, 0, len(r.Counts))
	for code, c := range r.Counts {
		out = append(out, Estimate{Code: code, Count: c, Frequency: freq[code]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Code.Less(out[j].Code)
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Count estimates the induced occurrences of every connected K-node
// graphlet in g.
func Count(g *Graph, opts Options) (*Result, error) {
	return CountContext(context.Background(), g, opts)
}

// CountContext is Count honoring a context: the build-up phase and the
// sampling loops check ctx periodically, so a deadline or cancellation
// stops the run promptly with ctx.Err().
func CountContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	if opts.K == 0 {
		opts.K = 4
	}
	if opts.Colorings == 0 {
		opts.Colorings = 1
	}
	if opts.Samples == 0 && !opts.precisionMode() {
		opts.Samples = 100000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	res, err := core.CountContext(ctx, g, coreConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Result{
		K:          opts.K,
		Counts:     res.Counts,
		Samples:    res.Samples,
		BuildTime:  res.BuildTime,
		SampleTime: res.SampleTime,
		OpenTime:   res.OpenTime,
		TableBytes: res.TableBytes,
		Covered:    res.Covered,
		Achieved:   res.Achieved,
	}, nil
}

// coreConfig maps completed Options onto the pipeline config — one
// translation shared by Count and BuildTable so both apply identical
// defaulting and a saved table replays exactly.
func coreConfig(opts Options) core.Config {
	return core.Config{
		K:                  opts.K,
		Colorings:          opts.Colorings,
		SamplesPerColoring: opts.Samples,
		Strategy:           opts.Strategy,
		CoverThreshold:     opts.CoverThreshold,
		BiasedLambda:       opts.Lambda,
		Seed:               opts.Seed,
		Workers:            opts.Workers,
		SampleWorkers:      opts.SampleWorkers,
		Spill:              opts.Spill,
		MemBudget:          opts.MemBudget,
		MaterializeStars:   opts.MaterializeStars,
		TablePath:          opts.TablePath,
		MapTable:           opts.MapTable,
		Epsilon:            opts.Epsilon,
		Delta:              opts.Delta,
		TargetMotif:        opts.TargetMotif,
		MaxSamples:         opts.MaxSamples,
	}
}

// TableInfo reports what BuildTable did.
type TableInfo struct {
	// BuildTime is the wall-clock time of the build-up phase.
	BuildTime time.Duration
	// TableBytes is the packed in-memory table footprint; Pairs the number
	// of (treelet, colorset, count) entries it holds.
	TableBytes int64
	Pairs      int64
	// FileBytes is the size of the persisted table file.
	FileBytes int64
}

// BuildTable runs the coloring and build-up phase once and persists the
// count table to path, so repeated Count calls with Options.TablePath can
// skip the build — the build-once / query-many workflow. Options fields
// that only affect sampling (Samples, Strategy, …) are ignored. K and Seed
// must match the later queries; Lambda applies at build time only (queries
// read the saved coloring and must leave Lambda unset).
func BuildTable(g *Graph, opts Options, path string) (*TableInfo, error) {
	return BuildTableContext(context.Background(), g, opts, path)
}

// BuildTableContext is BuildTable honoring a context: a canceled or
// expired ctx stops the build-up phase promptly.
func BuildTableContext(ctx context.Context, g *Graph, opts Options, path string) (*TableInfo, error) {
	if opts.K == 0 {
		opts.K = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	stats, fileBytes, err := core.BuildTableContext(ctx, g, coreConfig(opts), path)
	if err != nil {
		return nil, err
	}
	return &TableInfo{
		BuildTime:  stats.Duration,
		TableBytes: stats.TableBytes,
		Pairs:      stats.Pairs,
		FileBytes:  fileBytes,
	}, nil
}

// Engine is a long-lived query session over one persisted count table: the
// table is opened, validated and turned into the master sampling urn once,
// and every Count query then costs only an O(1) urn clone plus its own
// deterministic RNG stream. An Engine is safe for concurrent use — serving
// N queries from N goroutines is the intended deployment shape — and a
// query at seed s returns bit-identical estimates to a one-shot
// Count(Options{TablePath: ..., Seed: s}).
//
//	eng, err := motivo.Open(g, "graph.tbl")
//	if err != nil { ... }
//	res, err := eng.Count(ctx, motivo.Query{Strategy: motivo.AGS, Samples: 50000, Seed: 7})
type Engine struct {
	eng *core.Engine
}

// Open loads a count table persisted by BuildTable (or `motivo build -o`)
// and prepares a query engine over it. The per-query cost of the one-shot
// TablePath path — file open, validation, urn construction — is paid here
// exactly once. MvT4 files open memory-mapped (MapAuto): O(ms)
// independent of table size, with per-level validation deferred to first
// touch; use OpenMode to pin a path.
func Open(g *Graph, tablePath string) (*Engine, error) {
	return OpenMode(g, tablePath, MapAuto)
}

// OpenMode is Open with the table open path pinned: MapOff heap-loads
// with eager whole-file validation, MapRequire memory-maps or fails,
// MapAuto maps when the file and platform allow it. Estimates are
// bit-identical across modes.
func OpenMode(g *Graph, tablePath string, mode MapMode) (*Engine, error) {
	eng, err := core.OpenMode(g, tablePath, mode)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// Query parameterizes one Engine.Count call. The zero value is completed
// with the same defaults as Options: 100k samples, naive strategy, seed 1.
type Query struct {
	// Strategy selects Naive or AGS.
	Strategy Strategy
	// Samples is the sampling budget. Default 100000.
	Samples int
	// CoverThreshold is AGS's covering threshold c̄. Default 1000.
	CoverThreshold int
	// Seed makes the query reproducible. Default 1. A Query sent through a
	// Registry is answered from the seeded-result cache only when Seed is
	// set explicitly (non-zero); Seed 0 means "default seed, don't cache".
	Seed int64
	// SampleWorkers parallelizes this query across urn clones (≤ 1 =
	// sequential).
	SampleWorkers int
	// Epsilon and Delta switch the query into run-to-precision mode:
	// sampling continues until the estimates (or TargetMotif's alone) are
	// certified within relative error Epsilon at confidence 1-Delta.
	// Requires the AGS strategy; mutually exclusive with Samples. The
	// certificate comes back in Result.Achieved.
	Epsilon float64
	Delta   float64
	// TargetMotif, when non-zero, is the single canonical code the
	// certificate must cover; zero certifies every tallied motif.
	TargetMotif Code
	// MaxSamples caps a run-to-precision query's draws (0 = the engine's
	// default cap).
	MaxSamples int
}

// precisionMode reports whether any run-to-precision field is set.
func (q Query) precisionMode() bool {
	return q.Epsilon != 0 || q.Delta != 0 || q.TargetMotif != (Code{}) || q.MaxSamples != 0
}

// withDefaults completes the zero fields exactly as Engine.Count serves
// them, so Validate judges the query the engine would actually run. A
// precision-mode query keeps Samples at zero — the budget is adaptive.
func (q Query) withDefaults() Query {
	if q.Samples == 0 && !q.precisionMode() {
		q.Samples = 100000
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	return q
}

// coreQuery maps the query onto the engine-layer query — the single
// translation used by Engine.Count, Registry.Count and Validate, so the
// public API cannot drift from what the engine serves.
func (q Query) coreQuery() core.Query {
	return core.Query{
		Strategy:       q.Strategy,
		Samples:        q.Samples,
		CoverThreshold: q.CoverThreshold,
		Seed:           q.Seed,
		SampleWorkers:  q.SampleWorkers,
		Epsilon:        q.Epsilon,
		Delta:          q.Delta,
		TargetMotif:    q.TargetMotif,
		MaxSamples:     q.MaxSamples,
	}
}

// Validate reports whether the query (after defaulting, so the zero value
// is valid) can be served: known strategy, positive budget, bounded worker
// count, positive cover threshold. It is the one validation path shared by
// the CLI, the HTTP layer and the engine itself.
func (q Query) Validate() error { return q.withDefaults().coreQuery().Validate() }

// Count serves one query from the engine's table. It honors ctx — a
// canceled request (an HTTP client disconnect, a deadline) stops the
// sampling loop promptly — and may be called concurrently from any number
// of goroutines.
func (e *Engine) Count(ctx context.Context, q Query) (*Result, error) {
	qres, err := e.eng.Count(ctx, q.withDefaults().coreQuery())
	if err != nil {
		return nil, err
	}
	return &Result{
		K:          e.eng.K(),
		Counts:     qres.Counts,
		Samples:    qres.Samples,
		SampleTime: qres.SampleTime,
		TableBytes: e.eng.TableBytes(),
		Covered:    qres.Covered,
		Achieved:   qres.Achieved,
	}, nil
}

// NodeSignature is one node's graphlet degree vector (GDV): per-motif
// counts of the sampled occurrences touching the node, aligned with
// SignaturesResult.Motifs.
type NodeSignature = core.NodeSignature

// SignaturesResult is the outcome of a per-node signatures query: the
// sorted motif list, the per-node vectors, and the run's raw tallies.
// Summing the vectors of all nodes (a nil node filter) recovers exactly
// K × tally for every motif.
type SignaturesResult = core.SignaturesResult

// Signatures serves one per-node graphlet signature query from the
// engine's table: it samples exactly like Count (same strategies, budgets
// and precision mode) but streams every draw's vertex incidence into
// per-node motif-count vectors. nodes, when non-empty, restricts the
// vectors to those vertices; empty returns every node touched by at least
// one sample.
//
// Unlike Count — whose draw sequence follows SampleWorkers — a signatures
// query decomposes into a fixed number of deterministic streams, so for a
// fixed Seed the vectors are bit-identical at any SampleWorkers count.
func (e *Engine) Signatures(ctx context.Context, q Query, nodes []int32) (*SignaturesResult, error) {
	return e.eng.Signatures(ctx, q.withDefaults().coreQuery(), nodes)
}

// Signatures is the one-shot form of Engine.Signatures, mirroring Count:
// build (or open) the table for opts, then serve one signatures query.
// Requires a single coloring (incidence tallies are per-coloring).
func Signatures(g *Graph, opts Options, nodes []int32) (*SignaturesResult, error) {
	return SignaturesContext(context.Background(), g, opts, nodes)
}

// SignaturesContext is Signatures honoring a context.
func SignaturesContext(ctx context.Context, g *Graph, opts Options, nodes []int32) (*SignaturesResult, error) {
	if opts.K == 0 {
		opts.K = 4
	}
	if opts.Colorings == 0 {
		opts.Colorings = 1
	}
	if opts.Samples == 0 && !opts.precisionMode() {
		opts.Samples = 100000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return core.SignaturesContext(ctx, g, coreConfig(opts), nodes)
}

// EngineStats describes an engine in one struct: graphlet size, host graph
// shape, resident table payload, and the one-time open cost the engine
// amortizes over its queries.
type EngineStats = core.EngineStats

// Stats reports the engine's shape and cost in a single struct, replacing
// the ad-hoc K/OpenTime/TableBytes accessor trio.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// K returns the graphlet size the engine's table was built for.
//
// Deprecated: use Stats().K.
func (e *Engine) K() int { return e.eng.K() }

// OpenTime reports how long Open spent loading the table and building the
// master urn — the cost the engine amortizes over all of its queries.
//
// Deprecated: use Stats().OpenTime.
func (e *Engine) OpenTime() time.Duration { return e.eng.OpenTime() }

// TableBytes is the packed in-memory count-table payload the engine holds.
//
// Deprecated: use Stats().TableBytes.
func (e *Engine) TableBytes() int64 { return e.eng.TableBytes() }

// RegistryConfig bounds a Registry.
type RegistryConfig struct {
	// MemBudget caps the total resident count-table payload in bytes;
	// engines beyond it are evicted least-recently-used and transparently
	// reopened on their next query. 0 means unlimited.
	MemBudget int64
	// CacheSize is the seeded-result cache capacity in entries (identical
	// (graph, Query) with an explicit seed → cached Result). 0 disables
	// the cache.
	CacheSize int
	// MapTable selects how registered tables are opened. With the MapAuto
	// default, MvT4 tables are memory-mapped: their bytes are page-cache
	// residency (reported separately in Stats().MappedBytes), charge
	// almost nothing against MemBudget, and evicting/reopening them is
	// O(ms) — many more graphs fit one host.
	MapTable MapMode
}

// Registry is a named collection of engines — the multi-tenant half of the
// build-once / query-many workflow. One process serves many graphs: each
// is registered once under a name, engines are LRU-evicted under the
// memory budget and reopened on demand (concurrent reopens of the same
// table load it once), and repeated explicitly-seeded queries are answered
// from the result cache without sampling at all. All methods are safe for
// concurrent use.
type Registry struct {
	reg *registry.Registry
}

// GraphInfo describes one registered graph (see Registry.List).
type GraphInfo = registry.Info

// RegistryStats aggregates a registry's traffic and cache counters (see
// Registry.Stats).
type RegistryStats = registry.Stats

// NewRegistry creates an empty registry under cfg's budget.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{reg: registry.New(registry.Config{
		MemBudget: cfg.MemBudget,
		CacheSize: cfg.CacheSize,
		MapTable:  cfg.MapTable,
	})}
}

// Open registers g under name and eagerly opens its engine from the
// persisted table, so a bad table fails here rather than on the first
// query. Names must be unique.
func (r *Registry) Open(name string, g *Graph, tablePath string) error {
	_, err := r.reg.Open(name, g, tablePath)
	return err
}

// Get returns the named engine, transparently reopening it if it was
// evicted under the memory budget. Concurrent Gets of an evicted name
// share one open.
func (r *Registry) Get(ctx context.Context, name string) (*Engine, error) {
	eng, err := r.reg.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// Count resolves the named engine and serves one query through the
// seeded-result cache: a query with an explicit (non-zero) Seed that the
// registry has answered before returns the cached Result without sampling
// (cached reports which). Queries with Seed 0 bypass the cache.
func (r *Registry) Count(ctx context.Context, name string, q Query) (res *Result, cached bool, err error) {
	seeded := q.Seed != 0
	q = q.withDefaults()
	qres, hit, err := r.reg.Count(ctx, name, q.coreQuery(), seeded)
	if err != nil {
		return nil, false, err
	}
	// Render from registry metadata: a cache hit must not pull an evicted
	// engine back into memory.
	k, tableBytes, err := r.reg.Meta(name)
	if err != nil {
		return nil, false, err
	}
	return &Result{
		K:          k,
		Counts:     qres.Counts,
		Samples:    qres.Samples,
		SampleTime: qres.SampleTime,
		TableBytes: tableBytes,
		Covered:    qres.Covered,
		Achieved:   qres.Achieved,
	}, hit, nil
}

// Signatures resolves the named engine and serves one per-node signatures
// query. Results are never cached: bodies are per-node and large, and the
// fixed stream decomposition already makes seeded runs reproducible.
func (r *Registry) Signatures(ctx context.Context, name string, q Query, nodes []int32) (*SignaturesResult, error) {
	return r.reg.Signatures(ctx, name, q.withDefaults().coreQuery(), nodes)
}

// Evict drops the named engine's resident state (the registration stays,
// so a later Get or Count reopens it). It reports whether an engine was
// resident.
func (r *Registry) Evict(name string) bool { return r.reg.Evict(name) }

// List describes every registered graph, sorted by name.
func (r *Registry) List() []GraphInfo { return r.reg.List() }

// Stats aggregates the registry's traffic, cache and eviction counters.
func (r *Registry) Stats() RegistryStats { return r.reg.Stats() }

// ServeConfig parameterizes NewServer.
type ServeConfig struct {
	// DefaultGraph is the registered name the legacy single-graph
	// endpoints (/count, /stats) alias onto. Empty means the first
	// registered name in List order.
	DefaultGraph string
	// MaxInflight caps concurrent sampling requests; beyond it the server
	// answers 429 with a Retry-After header. 0 means unlimited.
	MaxInflight int
}

// NewServer wraps a registry into the versioned HTTP API served by
// `motivo serve`: POST /v1/graphs/{name}/count, POST /v1/batch,
// GET /v1/graphs, GET /metrics (Prometheus text format), plus the legacy
// /count, /stats and /healthz endpoints aliased onto the default graph.
func NewServer(r *Registry, cfg ServeConfig) http.Handler {
	return serve.New(serve.Config{
		Registry:     r.reg,
		DefaultGraph: cfg.DefaultGraph,
		MaxInflight:  cfg.MaxInflight,
	})
}

// ExactCount returns the exact induced counts of every connected k-node
// graphlet via exhaustive ESU enumeration — feasible for small graphs and
// the ground truth used in the experiments.
func ExactCount(g *Graph, k int) (Counts, error) { return exact.Count(g, k) }

// NonInducedCounts converts induced counts into non-induced (subgraph)
// counts: noninduced(H) = Σ_{H'} mult(H, H')·induced(H'). support lists
// the graphlets to evaluate (EnumerateGraphlets(k) for all of them, nil
// for the keys of counts).
func NonInducedCounts(counts Counts, k int, support []Code) Counts {
	return estimate.NonInduced(counts, k, support)
}

// EnumerateGraphlets lists the canonical codes of all connected k-node
// graphlets (k ≤ 7).
func EnumerateGraphlets(k int) []Code { return graphlet.Enumerate(k) }

// NumGraphlets returns the number of distinct connected graphlets on k
// nodes (OEIS A001349).
func NumGraphlets(k int) int64 { return graphlet.NumGraphlets(k) }

// Describe renders a graphlet code as a short human-readable description:
// special names for well-known shapes, otherwise edge count and degree
// sequence.
func Describe(k int, c Code) string { return graphlet.Describe(k, c) }

// ParseCode parses the Code.String form ("g" + hex digits) back into a
// Code — how a motif is named on the CLI (-target) and over the wire.
func ParseCode(s string) (Code, error) { return graphlet.ParseCode(s) }

// L1Error returns the ℓ1 distance between the frequency vectors of an
// estimate and a ground truth.
func L1Error(est, truth Counts) float64 { return estimate.L1(est, truth) }
