package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Table-driven golden tests over the CLI's flag validation and error
// surfaces: every command rejects bad input with a stable, descriptive
// message instead of exiting or silently misbehaving. The flag sets use
// flag.ContinueOnError, so parse failures come back as ordinary errors and
// are testable here.

// writeTestGraph writes a small edge list and returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	var b strings.Builder
	// A 12-node wheel-ish graph: enough structure for k=4 counts.
	for i := 1; i < 12; i++ {
		b.WriteString("0 ")
		b.WriteString(itoa(i))
		b.WriteString("\n")
		b.WriteString(itoa(i))
		b.WriteString(" ")
		b.WriteString(itoa(i%11 + 1))
		b.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestCommandErrorMessages(t *testing.T) {
	graphPath := writeTestGraph(t)
	tblPath := filepath.Join(t.TempDir(), "g.tbl")
	if err := cmdBuild([]string{"-i", graphPath, "-k", "4", "-o", tblPath}); err != nil {
		t.Fatalf("fixture build failed: %v", err)
	}

	cases := []struct {
		name string
		run  func([]string) error
		args []string
		want string // substring of the returned error; "" = must succeed
	}{
		{"gen/unknown-type", cmdGen, []string{"-type", "zipf"}, `unknown generator "zipf"`},
		{"gen/bad-flag", cmdGen, []string{"-nope"}, "flag provided but not defined"},

		{"build/missing-input", cmdBuild, []string{"-k", "4"}, "build: -i is required"},
		{"build/k-too-small", cmdBuild, []string{"-i", graphPath, "-k", "0"}, "out of range"},
		{"build/k-too-large", cmdBuild, []string{"-i", graphPath, "-k", "99"}, "out of range [1,11]"},
		{"build/bad-lambda", cmdBuild, []string{"-i", graphPath, "-k", "4", "-lambda", "9"}, "lambda"},
		{"build/missing-file", cmdBuild, []string{"-i", "/definitely/not/here"}, "no such file"},
		{"build/bad-format", cmdBuild, []string{"-i", graphPath, "-k", "4", "-format", "2"}, "-format 2 unsupported"},

		{"count/missing-input", cmdCount, []string{}, "count: -i is required"},
		{"count/bad-strategy", cmdCount, []string{"-i", graphPath, "-strategy", "magic"}, `unknown strategy "magic"`},
		{"count/bad-cover", cmdCount, []string{"-i", graphPath, "-cover-threshold", "0"}, "cover threshold must be ≥ 1"},
		{"count/negative-workers", cmdCount, []string{"-i", graphPath, "-sample-workers", "-2"}, "sample workers must be in [0, 1024]"},
		{"count/huge-workers", cmdCount, []string{"-i", graphPath, "-sample-workers", "5000"}, "sample workers must be in [0, 1024]"},
		{"count/table-vs-colorings", cmdCount, []string{"-i", graphPath, "-table", tblPath, "-colorings", "3"}, "-colorings 3 is incompatible"},
		{"count/table-vs-lambda", cmdCount, []string{"-i", graphPath, "-table", tblPath, "-lambda", "1.5"}, "-lambda has no effect with -table"},
		{"count/table-vs-spill", cmdCount, []string{"-i", graphPath, "-table", tblPath, "-spill"}, "-spill is a build-phase option"},
		{"count/table-vs-materialize", cmdCount, []string{"-i", graphPath, "-table", tblPath, "-smart-stars=false"}, "-smart-stars is a build-phase option"},
		{"count/bad-flag-value", cmdCount, []string{"-i", graphPath, "-samples", "lots"}, "invalid value"},
		{"count/bad-map-mode", cmdCount, []string{"-i", graphPath, "-table", tblPath, "-map", "sometimes"}, `unknown map mode "sometimes"`},
		{"count/wrong-k-for-table", cmdCount, []string{"-i", graphPath, "-table", tblPath, "-k", "5", "-samples", "10"}, "built for k=4, run wants k=5"},

		{"serve/missing-flags", cmdServe, []string{}, "serve: -i and -table are required"},
		{"serve/missing-table", cmdServe, []string{"-i", graphPath}, "serve: -i and -table are required"},
		{"serve/graph-no-equals", cmdServe, []string{"-graph", "just-a-name"}, "want name=graph.txt:table.tbl"},
		{"serve/graph-no-colon", cmdServe, []string{"-graph", "er=graph.txt"}, "want name=graph.txt:table.tbl"},
		{"serve/graph-empty-name", cmdServe, []string{"-graph", "=g.txt:t.tbl"}, "want name=graph.txt:table.tbl"},
		{"serve/graph-duplicate", cmdServe, []string{"-graph", "er=" + graphPath + ":" + tblPath, "-graph", "er=" + graphPath + ":" + tblPath}, `duplicate graph name "er"`},
		{"serve/negative-cache", cmdServe, []string{"-graph", "er=" + graphPath + ":" + tblPath, "-cache-size", "-1"}, "must be ≥ 0"},
		{"serve/bad-map-mode", cmdServe, []string{"-graph", "er=" + graphPath + ":" + tblPath, "-map", "maybe"}, `unknown map mode "maybe"`},
		{"serve/missing-graph-file", cmdServe, []string{"-graph", "er=/definitely/not/here:" + tblPath}, `graph "er"`},

		{"exact/missing-input", cmdExact, []string{}, "exact: -i is required"},

		{"convert/missing-flags", cmdConvert, []string{}, "convert: -i and -o are required"},
		{"convert/missing-file", cmdConvert, []string{"-i", "/definitely/not/here", "-o", filepath.Join(t.TempDir(), "g.mvg")}, "no such file"},
		{"build/negative-budget", cmdBuild, []string{"-i", graphPath, "-k", "4", "-mem-budget", "-1"}, "-mem-budget must be ≥ 0"},
		{"build/bad-map-graph", cmdBuild, []string{"-i", graphPath, "-k", "4", "-map-graph", "sometimes"}, `unknown open mode "sometimes"`},
		{"build/require-map-on-text", cmdBuild, []string{"-i", graphPath, "-k", "4", "-map-graph", "require"}, "edge lists cannot be mapped"},
		{"count/bad-map-graph", cmdCount, []string{"-i", graphPath, "-map-graph", "never"}, `unknown open mode "never"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := captureStdout(t, func() error { return tc.run(tc.args) })
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestBuildOutputModes(t *testing.T) {
	graphPath := writeTestGraph(t)
	out, err := captureStdout(t, func() error {
		return cmdBuild([]string{"-i", graphPath, "-k", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "smart stars (star records synthesized)") {
		t.Fatalf("default build does not report smart stars:\n%s", out)
	}
	out, err = captureStdout(t, func() error {
		return cmdBuild([]string{"-i", graphPath, "-k", "4", "-smart-stars=false"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "materialized (all records stored)") {
		t.Fatalf("-smart-stars=false build does not report materialization:\n%s", out)
	}
}

// TestBuildFormat3DowngradePath pins the CLI downgrade workflow: -format 3
// writes a legacy MvT3 file that the default auto map mode serves via the
// heap fallback, while -map require refuses it.
func TestBuildFormat3DowngradePath(t *testing.T) {
	graphPath := writeTestGraph(t)
	tblPath := filepath.Join(t.TempDir(), "g3.tbl")
	if _, err := captureStdout(t, func() error {
		return cmdBuild([]string{"-i", graphPath, "-k", "4", "-format", "3", "-o", tblPath})
	}); err != nil {
		t.Fatal(err)
	}
	_, err := captureStdout(t, func() error {
		return cmdCount([]string{"-i", graphPath, "-k", "4", "-table", tblPath, "-map", "require", "-samples", "100"})
	})
	if err == nil || !strings.Contains(err.Error(), "not mappable") {
		t.Fatalf("-map require on a v3 file: want a not-mappable error, got %v", err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdCount([]string{"-i", graphPath, "-k", "4", "-table", tblPath, "-samples", "100"})
	}); err != nil {
		t.Fatalf("-map auto must fall back to the heap loader on a v3 file: %v", err)
	}
}

// TestConvertRoundTrip pins the billion-edge ingest workflow: convert an
// edge list to MvG1 once, then every build/count opens the binary —
// mapped under the default auto mode, and bit-identically under -map-graph
// off. The persisted tables from text and binary inputs must match byte
// for byte.
func TestConvertRoundTrip(t *testing.T) {
	graphPath := writeTestGraph(t)
	dir := t.TempDir()
	mvgPath := filepath.Join(dir, "g.mvg")
	if _, err := captureStdout(t, func() error {
		return cmdConvert([]string{"-i", graphPath, "-o", mvgPath})
	}); err != nil {
		t.Fatal(err)
	}
	tblText := filepath.Join(dir, "text.tbl")
	tblMapped := filepath.Join(dir, "mapped.tbl")
	tblHeap := filepath.Join(dir, "heap.tbl")
	for _, b := range [][]string{
		{"-i", graphPath, "-k", "4", "-o", tblText},
		{"-i", mvgPath, "-k", "4", "-map-graph", "require", "-o", tblMapped},
		{"-i", mvgPath, "-k", "4", "-map-graph", "off", "-o", tblHeap},
	} {
		if _, err := captureStdout(t, func() error { return cmdBuild(b) }); err != nil {
			t.Fatalf("build %v: %v", b, err)
		}
	}
	want, err := os.ReadFile(tblText)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tblMapped, tblHeap} {
		got, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("table built from %s differs from the text-input build", p)
		}
	}
	if _, err := captureStdout(t, func() error {
		return cmdCount([]string{"-i", mvgPath, "-k", "4", "-table", tblMapped, "-samples", "100"})
	}); err != nil {
		t.Fatalf("count over the converted graph: %v", err)
	}
}

// TestBuildMemBudgetParity pins the CLI bounded-memory path: -mem-budget
// persists a table byte-identical to the unbounded build's.
func TestBuildMemBudgetParity(t *testing.T) {
	graphPath := writeTestGraph(t)
	dir := t.TempDir()
	tblFree, tblBudget := filepath.Join(dir, "free.tbl"), filepath.Join(dir, "budget.tbl")
	if _, err := captureStdout(t, func() error {
		return cmdBuild([]string{"-i", graphPath, "-k", "4", "-o", tblFree})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return cmdBuild([]string{"-i", graphPath, "-k", "4", "-mem-budget", "1048576", "-o", tblBudget})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sharded bounded-memory build") {
		t.Fatalf("-mem-budget build does not report the bounded mode:\n%s", out)
	}
	want, err := os.ReadFile(tblFree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tblBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("-mem-budget table differs from the unbounded build's")
	}
}

func TestCountAgainstPersistedTable(t *testing.T) {
	graphPath := writeTestGraph(t)
	tblPath := filepath.Join(t.TempDir(), "g.tbl")
	if _, err := captureStdout(t, func() error {
		return cmdBuild([]string{"-i", graphPath, "-k", "4", "-o", tblPath})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return cmdCount([]string{"-i", graphPath, "-k", "4", "-table", tblPath, "-samples", "500", "-top", "3", "-v"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table open", "500 samples", "open time:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("count -table output missing %q:\n%s", want, out)
		}
	}
}
