// Command motivo is the command-line interface to the library: generate
// synthetic graphs, inspect the build-up phase, count graphlets with naive
// or adaptive sampling, serve a persisted table over HTTP, and compute
// exact counts on small inputs.
//
// Usage:
//
//	motivo gen     -type ba -n 10000 -m 5 -seed 1 -o graph.txt
//	motivo convert -i graph.txt -o graph.mvg
//	motivo build   -i graph.mvg -k 5 -mem-budget 2147483648 -o graph.tbl
//	motivo count   -i graph.txt -k 5 -samples 100000 -strategy ags -cover-threshold 1000 -sample-workers 8
//	motivo count   -i graph.mvg -k 5 -table graph.tbl -samples 100000
//	motivo serve   -i graph.txt -table graph.tbl -addr :8080
//	motivo serve   -graph er=er.txt:er.tbl -graph ba=ba.txt:ba.tbl -mem-budget 268435456 -cache-size 1024 -max-inflight 64
//	motivo exact   -i graph.txt -k 4
//
// Graph inputs are opened by content, not extension: text edge lists
// stream through a two-pass reader that never buffers the edge list in
// RAM, and MvG1 binary CSR files (written by `convert`) are memory-mapped
// — O(ms) open with the adjacency served from the page cache
// (`-map-graph auto|off|require` pins the path). `build -mem-budget`
// bounds the build's transient memory: levels are computed in vertex-range
// shards streamed through spill files and externally merged, producing a
// bit-identical table.
//
// `build -o` persists the count table; `count -table` opens it and skips
// the build — build once, query many. Persisted MvT4 tables are
// memory-mapped by default (`-map auto|off|require` on count and serve;
// `build -format 3` writes the legacy format). `serve` keeps a registry
// of named engines open and answers versioned JSON count queries over HTTP
// (`/v1/graphs/{name}/count`, `/v1/batch`, `/v1/graphs`, `/metrics`; see
// internal/serve for the API). `-graph` is repeatable; the first named
// graph is the default that the legacy `/count` alias serves.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	motivo "repro"
	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/treelet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "count":
		err = cmdCount(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "exact":
		err = cmdExact(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "motivo: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "motivo: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: motivo <command> [flags]

commands:
  gen      generate a synthetic graph (-type ba|er|star|lollipop)
  convert  convert a graph to the mappable MvG1 binary format
  build    run only the build-up phase and report statistics
  count    estimate graphlet counts (naive or AGS sampling)
  serve    serve JSON count queries over HTTP from a persisted table
  exact    exact counts by exhaustive enumeration (small graphs)`)
}

// mapGraphFlag registers the shared -map-graph flag; loadGraph parses it.
func mapGraphFlag(fs *flag.FlagSet) *string {
	return fs.String("map-graph", "auto",
		"how the input graph is opened: auto (mmap MvG1, heap otherwise), off (heap), require (mmap or fail)")
}

// loadGraph opens a graph input by content: MvG1 binary files map (or
// heap-load under -map-graph off), text edge lists stream through the
// two-pass reader.
func loadGraph(path, mapMode string) (*motivo.Graph, error) {
	mode, err := graph.ParseOpenMode(mapMode)
	if err != nil {
		return nil, err
	}
	return motivo.OpenGraph(path, mode)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("i", "", "input graph file, text edge list or MvG1 (required)")
	out := fs.String("o", "", "output MvG1 binary graph file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -i and -o are required")
	}
	// Heap-open the input: a conversion reads every byte once, so mapping
	// buys nothing, and off also lets MvG1 inputs round-trip (re-validate
	// and rewrite a file in place of a copy).
	g, err := loadGraph(*in, "off")
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := g.WriteBinary(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %s: %d nodes, %d edges, %.1f MiB — builds can now map it (`motivo build -i %s ...`)\n",
		*out, g.NumNodes(), g.NumEdges(), float64(st.Size())/(1<<20), *out)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	typ := fs.String("type", "ba", "generator: ba, er, star, lollipop")
	n := fs.Int("n", 10000, "number of nodes (er/ba) or leaves (star) or clique size (lollipop)")
	m := fs.Int("m", 5, "edges per node (ba), total edges (er), extra edges (star), tail length (lollipop)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output edge-list file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *motivo.Graph
	switch *typ {
	case "ba":
		g = motivo.BarabasiAlbert(*n, *m, *seed)
	case "er":
		g = motivo.ErdosRenyi(*n, *m, *seed)
	case "star":
		g = motivo.StarHeavy(1, *n, *m, *seed)
	case "lollipop":
		g = motivo.Lollipop(*n, *m)
	default:
		return fmt.Errorf("unknown generator %q", *typ)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteEdgeList(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s graph: %d nodes, %d edges\n", *typ, g.NumNodes(), g.NumEdges())
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	in := fs.String("i", "", "input edge-list file (required)")
	k := fs.Int("k", 5, "treelet size")
	seed := fs.Int64("seed", 1, "coloring seed")
	lambda := fs.Float64("lambda", 0, "biased-coloring λ (0 = uniform)")
	spill := fs.Bool("spill", false, "greedy flushing through temp files")
	memBudget := fs.Int64("mem-budget", 0, "bounded-memory build: target transient bytes; levels shard, spill and externally merge (0 = unbounded)")
	smartStars := fs.Bool("smart-stars", true, "synthesize star-family records from colored degrees instead of storing them")
	out := fs.String("o", "", "persist the count table (arena + index + coloring) to this file")
	format := fs.Int("format", 4, "table file format version for -o: 4 (checksummed, mmap-servable) or 3 (legacy)")
	mapGraph := mapGraphFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("build: -i is required")
	}
	if *memBudget < 0 {
		return fmt.Errorf("build: -mem-budget must be ≥ 0, got %d", *memBudget)
	}
	if *k < 1 || *k > treelet.MaxK {
		return fmt.Errorf("build: -k %d out of range [1,%d]", *k, treelet.MaxK)
	}
	if *format != 3 && *format != 4 {
		return fmt.Errorf("build: -format %d unsupported (want 4 or 3)", *format)
	}
	if *lambda > 0 {
		if err := coloring.ValidateLambda(*k, *lambda); err != nil {
			return fmt.Errorf("build: %w", err)
		}
	}
	g, err := loadGraph(*in, *mapGraph)
	if err != nil {
		return err
	}
	var col *coloring.Coloring
	if *lambda > 0 {
		col = coloring.Biased(g.NumNodes(), *k, *lambda, *seed)
	} else {
		col = coloring.Uniform(g.NumNodes(), *k, *seed)
	}
	cat := treelet.NewCatalog(*k)
	opts := build.DefaultOptions()
	opts.Spill = *spill
	opts.MemBudget = *memBudget
	opts.SmartStars = *smartStars
	tab, stats, err := build.Run(context.Background(), g, col, *k, cat, opts)
	if err != nil {
		return err
	}
	fmt.Printf("graph:            %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("build time:       %v\n", stats.Duration.Round(1e6))
	fmt.Printf("check-and-merge:  %d ops\n", stats.CheckMergeOps)
	if *memBudget > 0 {
		fmt.Printf("mem budget:       %.1f MiB (sharded bounded-memory build, %.1f MiB streamed through spill)\n",
			float64(*memBudget)/(1<<20), float64(stats.SpillBytes)/(1<<20))
	}
	mode := "smart stars (star records synthesized)"
	if !*smartStars {
		mode = "materialized (all records stored)"
	}
	fmt.Printf("table:            %d stored pairs, %.1f MiB (%.2f bytes/pair), %s\n",
		stats.Pairs, float64(stats.TableBytes)/(1<<20),
		float64(stats.TableBytes)/float64(max(stats.Pairs, 1)), mode)
	fmt.Printf("colorful k-trees: %v\n", tab.TotalK())
	for h := 2; h <= *k; h++ {
		fmt.Printf("  level %d: %v\n", h, stats.LevelTime[h].Round(1e6))
	}
	if *out != "" {
		save := table.SaveFile
		if *format == 3 {
			save = table.SaveFileV3
		}
		n, err := save(*out, tab, col)
		if err != nil {
			return err
		}
		fmt.Printf("saved:            %s (%.1f MiB) — query it with `motivo count -i %s -table %s -k %d -seed %d`\n",
			*out, float64(n)/(1<<20), *in, *out, *k, *seed)
	}
	return nil
}

func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ContinueOnError)
	in := fs.String("i", "", "input edge-list file (required)")
	k := fs.Int("k", 5, "graphlet size")
	samples := fs.Int("samples", 100000, "per-coloring sampling budget")
	colorings := fs.Int("colorings", 1, "independent colorings to average")
	strategy := fs.String("strategy", "naive", "sampling strategy: naive or ags")
	cover := fs.Int("cover-threshold", 1000, "AGS covering threshold c̄")
	sampleWorkers := fs.Int("sample-workers", 0, "sampling-phase goroutines (0/1 = sequential)")
	lambda := fs.Float64("lambda", 0, "biased-coloring λ (0 = uniform)")
	spill := fs.Bool("spill", false, "greedy flushing through temp files")
	smartStars := fs.Bool("smart-stars", true, "synthesize star-family records from colored degrees instead of storing them")
	tablePath := fs.String("table", "", "open a persisted count table (`motivo build -o`) instead of building")
	mapMode := fs.String("map", "auto", "how -table is opened: auto (mmap, heap fallback), off (heap), require (mmap or fail)")
	mapGraph := mapGraphFlag(fs)
	seed := fs.Int64("seed", 1, "run seed")
	top := fs.Int("top", 20, "how many graphlets to print")
	eps := fs.Float64("eps", 0, "run-to-precision: sample until estimates are certified within this relative error (AGS; mutually exclusive with -samples)")
	delta := fs.Float64("delta", 0.05, "run-to-precision confidence parameter δ (the certificate holds with probability 1-δ)")
	target := fs.String("target", "", "run-to-precision: certify only this canonical motif code (e.g. g3b); empty certifies every tallied motif")
	maxSamples := fs.Int("max-samples", 0, "run-to-precision sample cap (0 = engine default)")
	signatures := fs.Int("signatures", 0, "compute per-node graphlet signatures instead of global counts and print the N highest-incidence nodes")
	verbose := fs.Bool("v", false, "print phase timing detail (open vs build vs sampling, AGS coverage)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("count: -i is required")
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *eps == 0 {
		for _, name := range []string{"delta", "target", "max-samples"} {
			if set[name] {
				return fmt.Errorf("count: -%s is a run-to-precision flag; it needs -eps", name)
			}
		}
	} else {
		if set["samples"] {
			return fmt.Errorf("count: -samples and -eps are mutually exclusive (a precision run sizes its own budget; cap it with -max-samples)")
		}
		if !set["strategy"] {
			// Run-to-precision is an AGS guarantee; default the strategy.
			*strategy = "ags"
		}
	}
	strat, err := core.ParseStrategy(*strategy)
	if err != nil {
		return fmt.Errorf("count: %w", err)
	}
	if err := core.ValidateCoverThreshold(*cover); err != nil {
		return fmt.Errorf("count: %w", err)
	}
	if err := core.ValidateSampleWorkers(*sampleWorkers); err != nil {
		return fmt.Errorf("count: %w", err)
	}
	mmode, err := core.ParseMapMode(*mapMode)
	if err != nil {
		return fmt.Errorf("count: %w", err)
	}
	if *tablePath != "" {
		if *colorings > 1 {
			return fmt.Errorf("count: -table serves one saved coloring; -colorings %d is incompatible", *colorings)
		}
		if *lambda > 0 {
			return fmt.Errorf("count: -lambda has no effect with -table (the saved coloring is used)")
		}
		if *spill {
			return fmt.Errorf("count: -spill is a build-phase option; it has no effect with -table")
		}
		if !*smartStars {
			return fmt.Errorf("count: -smart-stars is a build-phase option; whether a persisted table is smart was decided by `motivo build`")
		}
	}
	g, err := loadGraph(*in, *mapGraph)
	if err != nil {
		return err
	}
	opts := motivo.Options{
		K: *k, Samples: *samples, Colorings: *colorings,
		Strategy: strat, CoverThreshold: *cover,
		SampleWorkers: *sampleWorkers,
		Lambda:        *lambda, Spill: *spill, Seed: *seed,
		MaterializeStars: !*smartStars,
		TablePath:        *tablePath,
		MapTable:         mmode,
	}
	if *eps > 0 {
		opts.Samples = 0
		opts.Epsilon = *eps
		opts.Delta = *delta
		opts.MaxSamples = *maxSamples
		if *target != "" {
			code, err := motivo.ParseCode(*target)
			if err != nil {
				return fmt.Errorf("count: %w", err)
			}
			opts.TargetMotif = code
		}
	}
	if *signatures > 0 {
		return runSignatures(g, opts, *signatures, *tablePath)
	}
	res, err := motivo.Count(g, opts)
	if err != nil {
		return err
	}
	phase, phaseTime := "build", res.BuildTime
	if *tablePath != "" {
		// A persisted table is opened, not built: OpenTime is the honest
		// cost of this phase (BuildTime stays zero).
		phase, phaseTime = "table open", res.OpenTime
	}
	fmt.Printf("%s %v, sampling %v, %d samples, table %.1f MiB, %d distinct graphlets\n",
		phase, phaseTime.Round(1e6), res.SampleTime.Round(1e6), res.Samples,
		float64(res.TableBytes)/(1<<20), len(res.Counts))
	printCertificate(res.Achieved)
	if *verbose {
		fmt.Printf("  open time:   %v\n", res.OpenTime.Round(1e3))
		fmt.Printf("  build time:  %v\n", res.BuildTime.Round(1e3))
		fmt.Printf("  sample time: %v\n", res.SampleTime.Round(1e3))
		if strat == core.AGS {
			fmt.Printf("  covered:     %d graphlets reached c̄=%d\n", res.Covered, *cover)
		}
	}
	for i, e := range res.Top(*top) {
		fmt.Printf("%3d. %-30s %14.4g  (%8.5f%%)\n",
			i+1, motivo.Describe(*k, e.Code), e.Count, 100*e.Frequency)
	}
	return nil
}

// printCertificate renders a run-to-precision certificate (no-op for
// fixed-budget runs).
func printCertificate(a *motivo.Certificate) {
	if a == nil {
		return
	}
	status := "target met"
	if !a.Met {
		status = "target NOT met within the sample cap"
	}
	if math.IsInf(a.Eps, 1) {
		fmt.Printf("precision:  nothing certifiable after %d samples (%s)\n", a.Samples, status)
		return
	}
	fmt.Printf("precision:  certified ε=%.4g at confidence %.4g after %d samples (%s)\n",
		a.Eps, 1-a.Delta, a.Samples, status)
}

// runSignatures serves `count -signatures N`: the same sampling run, but
// streaming per-draw vertex incidence into per-node graphlet degree
// vectors, printed for the N highest-incidence nodes.
func runSignatures(g *motivo.Graph, opts motivo.Options, topNodes int, tablePath string) error {
	res, err := motivo.Signatures(g, opts, nil)
	if err != nil {
		return err
	}
	phase, phaseTime := "build", res.BuildTime
	if tablePath != "" {
		phase, phaseTime = "table open", res.OpenTime
	}
	fmt.Printf("%s %v, sampling %v, %d samples, %d motifs, %d nodes touched\n",
		phase, phaseTime.Round(1e6), res.SampleTime.Round(1e6), res.Samples,
		len(res.Motifs), len(res.Nodes))
	printCertificate(res.Achieved)
	nodes := make([]motivo.NodeSignature, len(res.Nodes))
	copy(nodes, res.Nodes)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Total != nodes[j].Total {
			return nodes[i].Total > nodes[j].Total
		}
		return nodes[i].Node < nodes[j].Node
	})
	if topNodes < len(nodes) {
		nodes = nodes[:topNodes]
	}
	for i, n := range nodes {
		// Per node, show the three motifs it participates in most — the
		// full vector is the API's job, not a terminal's.
		type ent struct {
			code  motivo.Code
			count int64
		}
		ents := make([]ent, 0, len(res.Motifs))
		for j, c := range res.Motifs {
			if n.Counts[j] > 0 {
				ents = append(ents, ent{c, n.Counts[j]})
			}
		}
		sort.Slice(ents, func(a, b int) bool {
			if ents[a].count != ents[b].count {
				return ents[a].count > ents[b].count
			}
			return ents[a].code.Less(ents[b].code)
		})
		if len(ents) > 3 {
			ents = ents[:3]
		}
		parts := make([]string, len(ents))
		for j, e := range ents {
			parts[j] = fmt.Sprintf("%s ×%d", motivo.Describe(opts.K, e.code), e.count)
		}
		fmt.Printf("%3d. node %-10d total %-10d %s\n", i+1, n.Node, n.Total, strings.Join(parts, ", "))
	}
	return nil
}

// graphSpec is one `-graph name=graph.txt:table.tbl` serving assignment.
type graphSpec struct {
	name, graphPath, tablePath string
}

// graphFlags collects repeated -graph flags.
type graphFlags []graphSpec

func (f *graphFlags) String() string {
	parts := make([]string, len(*f))
	for i, s := range *f {
		parts[i] = fmt.Sprintf("%s=%s:%s", s.name, s.graphPath, s.tablePath)
	}
	return strings.Join(parts, ",")
}

func (f *graphFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=graph.txt:table.tbl, got %q", v)
	}
	// Split on the LAST colon so graph paths containing colons still parse.
	i := strings.LastIndex(rest, ":")
	if i <= 0 || i == len(rest)-1 {
		return fmt.Errorf("want name=graph.txt:table.tbl, got %q", v)
	}
	for _, s := range *f {
		if s.name == name {
			return fmt.Errorf("duplicate graph name %q", name)
		}
	}
	*f = append(*f, graphSpec{name: name, graphPath: rest[:i], tablePath: rest[i+1:]})
	return nil
}

// cmdServe opens a registry of long-lived engines over persisted tables
// and serves JSON count queries until SIGINT/SIGTERM — the build-once /
// query-many workflow as a multi-tenant network service. Each table is
// opened once at startup; engines beyond -mem-budget are LRU-evicted and
// transparently reopened, repeated explicitly-seeded queries come from
// the result cache, and -max-inflight bounds concurrent sampling work.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var graphs graphFlags
	fs.Var(&graphs, "graph", "serve a named graph: name=graph.txt:table.tbl (repeatable; first is the default)")
	in := fs.String("i", "", "input edge-list file (single-graph shorthand for -graph default=...)")
	tablePath := fs.String("table", "", "persisted count table (single-graph shorthand, from `motivo build -o`)")
	addr := fs.String("addr", ":8080", "listen address")
	memBudget := fs.Int64("mem-budget", 0, "resident table-bytes budget; engines beyond it are LRU-evicted (0 = unlimited)")
	cacheSize := fs.Int("cache-size", 1024, "seeded-result cache capacity in entries (0 disables)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrent sampling requests; beyond it answer 429 (0 = unlimited)")
	mapMode := fs.String("map", "auto", "how tables are opened: auto (mmap, heap fallback), off (heap), require (mmap or fail)")
	mapGraph := mapGraphFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mmode, err := core.ParseMapMode(*mapMode)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if (*in == "") != (*tablePath == "") {
		return fmt.Errorf("serve: -i and -table are required together")
	}
	if *in != "" {
		legacy := graphFlags{{name: "default", graphPath: *in, tablePath: *tablePath}}
		graphs = append(legacy, graphs...)
	}
	if len(graphs) == 0 {
		return fmt.Errorf("serve: -i and -table are required, or pass -graph name=graph.txt:table.tbl (repeatable)")
	}
	if *cacheSize < 0 || *memBudget < 0 || *maxInflight < 0 {
		return fmt.Errorf("serve: -cache-size, -mem-budget and -max-inflight must be ≥ 0")
	}
	reg := registry.New(registry.Config{MemBudget: *memBudget, CacheSize: *cacheSize, MapTable: mmode})
	for _, spec := range graphs {
		g, err := loadGraph(spec.graphPath, *mapGraph)
		if err != nil {
			return fmt.Errorf("serve: graph %q: %w", spec.name, err)
		}
		eng, err := reg.Open(spec.name, g, spec.tablePath)
		if err != nil {
			return fmt.Errorf("serve: graph %q: %w", spec.name, err)
		}
		st := eng.Stats()
		residency := "heap"
		if st.MappedBytes > 0 {
			residency = fmt.Sprintf("mapped %.1f MiB", float64(st.MappedBytes)/(1<<20))
		}
		fmt.Fprintf(os.Stderr, "motivo: graph %q: opened %s in %v (k=%d, %.1f MiB, %s)\n",
			spec.name, spec.tablePath, st.OpenTime.Round(1e6), st.K,
			float64(st.TableBytes)/(1<<20), residency)
	}
	fmt.Fprintf(os.Stderr, "motivo: serving %d graph(s) on %s (default %q, mem-budget %d, cache %d, max-inflight %d)\n",
		len(graphs), *addr, graphs[0].name, *memBudget, *cacheSize, *maxInflight)

	srv := &http.Server{
		Addr: *addr,
		Handler: serve.New(serve.Config{
			Registry:     reg,
			DefaultGraph: graphs[0].name,
			MaxInflight:  *maxInflight,
		}),
		// Bound how long a connection may dribble its headers/body in, so
		// slow or hostile clients can't pin goroutines and descriptors
		// forever. No WriteTimeout: big sampling queries legitimately take
		// a while to answer, and their lifetime is the request context's.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Restore default signal handling first: a second SIGINT/SIGTERM
		// force-kills instead of being swallowed while we drain.
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck // exiting either way
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained // let in-flight queries finish (bounded by the timeout above)
	fmt.Fprintln(os.Stderr, "motivo: serve shut down")
	return nil
}

func cmdExact(args []string) error {
	fs := flag.NewFlagSet("exact", flag.ContinueOnError)
	in := fs.String("i", "", "input edge-list file (required)")
	k := fs.Int("k", 4, "graphlet size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("exact: -i is required")
	}
	g, err := loadGraph(*in, "auto")
	if err != nil {
		return err
	}
	counts, err := motivo.ExactCount(g, *k)
	if err != nil {
		return err
	}
	type row struct {
		code  motivo.Code
		count float64
	}
	var rows []row
	var total float64
	for c, n := range counts {
		rows = append(rows, row{c, n})
		total += n
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fmt.Printf("%d distinct %d-graphlets, %.0f occurrences total\n", len(rows), *k, total)
	for i, r := range rows {
		fmt.Printf("%3d. %-30s %14.0f  (%8.5f%%)\n",
			i+1, motivo.Describe(*k, r.code), r.count, 100*r.count/total)
	}
	return nil
}
