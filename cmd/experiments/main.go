// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 5). Run with no flags for the full suite, or select
// one experiment:
//
//	experiments -exp fig8
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(experiments.Registry))
		for id := range experiments.Registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "all" {
		experiments.All(os.Stdout)
		return
	}
	run, ok := experiments.Registry[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(os.Stdout)
}
