// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 5). Run with no flags for the full suite, or select
// one experiment; -sample-workers fans the AGS sampling of the figure
// reproductions out across goroutines:
//
//	experiments -exp fig8 -sample-workers 8
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	sampleWorkers := flag.Int("sample-workers", 0, "AGS sampling goroutines (0/1 = sequential)")
	flag.Parse()
	if err := core.ValidateSampleWorkers(*sampleWorkers); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	experiments.SampleWorkers = *sampleWorkers

	if *list {
		ids := make([]string, 0, len(experiments.Registry))
		for id := range experiments.Registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *exp == "all" {
		experiments.All(os.Stdout)
		return
	}
	run, ok := experiments.Registry[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(os.Stdout)
}
