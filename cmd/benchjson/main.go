// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive the perf trajectory as BENCH_*.json
// artifacts and regression tooling never has to re-parse the bench text
// format. It reads the file arguments (stdin when none) and writes to -o
// (stdout when empty):
//
//	go test -run='^$' -bench . -benchtime=3x -count=3 ./... | benchjson -o BENCH_ci.json
//
// With -count > 1 every benchmark appears once per run; entries are kept
// in input order so downstream tooling can aggregate (or inspect variance)
// as it sees fit.
//
// With -compare, benchjson becomes the regression gate instead of the
// converter: it diffs the one JSON file argument against the baseline per
// (benchmark, metric) — best-of-count on each side — prints a table, and
// exits non-zero when anything regressed beyond -tolerance percent or went
// missing:
//
//	benchjson -compare BENCH_baseline.json -tolerance 20 BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	// Pkg is the Go package the benchmark ran in (from the preceding
	// "pkg:" header line).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name including sub-benchmark path, without
	// the trailing -GOMAXPROCS suffix (which lands in Procs).
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Iterations is b.N for this run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: always "ns/op", plus any b.ReportMetric
	// extras such as "samples/s".
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted bench report.
type Doc struct {
	Created    string      `json:"created"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output. Header lines (goos/goarch/cpu)
// keep the last value seen; pkg headers scope the benchmark lines that
// follow them.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName/sub-8   	     300	   4857372 ns/op	    411759 samples/s
//
// i.e. name-procs, b.N, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	name, procs := f[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			procs = p
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	metrics := make(map[string]float64, (len(f)-2)/2)
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		metrics[f[i+1]] = v
	}
	return Benchmark{Name: name, Procs: procs, Iterations: n, Metrics: metrics}, true
}

func run(out string, paths []string) error {
	var r io.Reader = os.Stdin
	if len(paths) > 0 {
		readers := make([]io.Reader, 0, len(paths))
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			readers = append(readers, f)
		}
		r = io.MultiReader(readers...)
	}
	doc, err := parse(r)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}
	doc.Created = time.Now().UTC().Format(time.RFC3339)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	out := flag.String("o", "", "output JSON file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON file: compare the one JSON file argument against it and exit non-zero on regressions")
	tolerance := flag.Float64("tolerance", 20, "with -compare, allowed regression per (benchmark, metric) in percent")
	flag.Parse()
	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintf(os.Stderr, "benchjson: -compare takes exactly one JSON file argument, got %d\n", flag.NArg())
			os.Exit(2)
		}
		if err := runCompare(os.Stdout, *compare, flag.Arg(0), *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
