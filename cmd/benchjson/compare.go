package main

// The -compare mode: diff two bench JSON documents per (benchmark, metric)
// and fail on regressions beyond a tolerance. This is the CI gate that
// keeps BENCH_baseline.json an enforced floor instead of an artifact.
//
// With -count > 1 each benchmark appears once per run in a document;
// compare first aggregates to the per-metric best value (minimum for
// time-like metrics, maximum for rates) — the best run is the least noisy
// estimate of what the code can do, so one slow outlier among five runs
// never fails the gate.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// higherBetter reports the improvement direction of a metric unit: rates
// ("samples/s", "MB/s") improve upward, everything else ("ns/op", "B/op",
// "allocs/op", "ms/open", ...) improves downward.
func higherBetter(unit string) bool { return strings.HasSuffix(unit, "/s") }

// benchKey identifies one logical benchmark across documents.
type benchKey struct {
	Pkg  string
	Name string
}

func (k benchKey) String() string {
	if k.Pkg == "" {
		return k.Name
	}
	return k.Pkg + "." + k.Name
}

// aggregate folds a document's runs into per-(benchmark, metric) best
// values: min for lower-is-better units, max for rates.
func aggregate(doc *Doc) map[benchKey]map[string]float64 {
	out := make(map[benchKey]map[string]float64)
	for _, b := range doc.Benchmarks {
		key := benchKey{b.Pkg, b.Name}
		m := out[key]
		if m == nil {
			m = make(map[string]float64)
			out[key] = m
		}
		for unit, v := range b.Metrics {
			prev, ok := m[unit]
			if !ok || (higherBetter(unit) && v > prev) || (!higherBetter(unit) && v < prev) {
				m[unit] = v
			}
		}
	}
	return out
}

// Comparison statuses, from worst to best.
const (
	statusRegression = "REGRESSION"
	statusMissing    = "MISSING"
	statusOK         = "ok"
	statusImproved   = "improved"
	statusNew        = "new"
)

// diff is one (benchmark, metric) comparison row.
type diff struct {
	Bench  benchKey
	Unit   string
	Old    float64
	New    float64
	Delta  float64 // percent change relative to Old; NaN-free (0 when absent)
	Status string
}

// failed reports whether this row should fail the gate.
func (d diff) failed() bool { return d.Status == statusRegression || d.Status == statusMissing }

// compareDocs diffs new against old with a regression tolerance in percent.
// Every (benchmark, metric) of old must be present in new and no worse than
// tolerance; entries only in new are reported as informational.
func compareDocs(oldDoc, newDoc *Doc, tolerance float64) []diff {
	oldAgg, newAgg := aggregate(oldDoc), aggregate(newDoc)
	var out []diff
	for key, oldMetrics := range oldAgg {
		newMetrics := newAgg[key]
		for unit, ov := range oldMetrics {
			d := diff{Bench: key, Unit: unit, Old: ov}
			nv, ok := newMetrics[unit]
			if !ok {
				d.Status = statusMissing
				out = append(out, d)
				continue
			}
			d.New = nv
			if ov != 0 {
				d.Delta = (nv - ov) / ov * 100
			}
			worse := d.Delta // how far new drifted in the bad direction
			if higherBetter(unit) {
				worse = -d.Delta
			}
			switch {
			case worse > tolerance:
				d.Status = statusRegression
			case worse < -tolerance:
				d.Status = statusImproved
			default:
				d.Status = statusOK
			}
			out = append(out, d)
		}
	}
	for key, newMetrics := range newAgg {
		oldMetrics := oldAgg[key]
		for unit, nv := range newMetrics {
			if _, ok := oldMetrics[unit]; !ok {
				out = append(out, diff{Bench: key, Unit: unit, New: nv, Status: statusNew})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench.String() < out[j].Bench.String()
		}
		return out[i].Unit < out[j].Unit
	})
	return out
}

// loadDoc reads one bench JSON document written by this tool.
func loadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in document", path)
	}
	return &doc, nil
}

// writeDiffs renders the comparison table.
func writeDiffs(w io.Writer, diffs []diff, tolerance float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tmetric\told\tnew\tdelta\tstatus\n")
	for _, d := range diffs {
		oldS, newS, deltaS := fmtVal(d.Old), fmtVal(d.New), fmt.Sprintf("%+.1f%%", d.Delta)
		switch d.Status {
		case statusMissing:
			newS, deltaS = "-", "-"
		case statusNew:
			oldS, deltaS = "-", "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", d.Bench, d.Unit, oldS, newS, deltaS, d.Status)
	}
	tw.Flush()
	fmt.Fprintf(w, "\ntolerance: %.0f%% (best-of-count per metric; rates improve upward, everything else downward)\n", tolerance)
}

func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// runCompare is the -compare entry point: load both documents, diff, print
// the table, and fail when any row regressed or went missing.
func runCompare(w io.Writer, oldPath, newPath string, tolerance float64) error {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	diffs := compareDocs(oldDoc, newDoc, tolerance)
	writeDiffs(w, diffs, tolerance)
	failed := 0
	for _, d := range diffs {
		if d.failed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d (benchmark, metric) pair(s) regressed beyond %.0f%% or went missing vs %s — if a benchmark was renamed or intentionally changed, refresh the baseline (make bench-baseline)", failed, tolerance, oldPath)
	}
	return nil
}
