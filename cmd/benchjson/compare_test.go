package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Pkg: "repro", Name: name, Procs: 1, Iterations: 1, Metrics: metrics}
}

func doc(benches ...Benchmark) *Doc {
	return &Doc{Created: "2026-01-01T00:00:00Z", Benchmarks: benches}
}

func statusOf(t *testing.T, diffs []diff, name, unit string) diff {
	t.Helper()
	for _, d := range diffs {
		if d.Bench.Name == name && d.Unit == unit {
			return d
		}
	}
	t.Fatalf("no diff row for (%s, %s) in %+v", name, unit, diffs)
	return diff{}
}

func TestCompareStatuses(t *testing.T) {
	old := doc(
		bench("BenchmarkA", map[string]float64{"ns/op": 1000, "samples/s": 500}),
		bench("BenchmarkGone", map[string]float64{"ns/op": 50}),
	)
	new_ := doc(
		// ns/op +50% (regression beyond 20%), samples/s +50% (improvement).
		bench("BenchmarkA", map[string]float64{"ns/op": 1500, "samples/s": 750}),
		bench("BenchmarkFresh", map[string]float64{"ns/op": 10}),
	)
	diffs := compareDocs(old, new_, 20)

	if d := statusOf(t, diffs, "BenchmarkA", "ns/op"); d.Status != statusRegression {
		t.Errorf("ns/op +50%% should be a regression, got %q", d.Status)
	}
	if d := statusOf(t, diffs, "BenchmarkA", "samples/s"); d.Status != statusImproved {
		t.Errorf("samples/s +50%% should be an improvement, got %q", d.Status)
	}
	if d := statusOf(t, diffs, "BenchmarkGone", "ns/op"); d.Status != statusMissing || !d.failed() {
		t.Errorf("benchmark dropped from new doc should be MISSING and fail, got %q", d.Status)
	}
	if d := statusOf(t, diffs, "BenchmarkFresh", "ns/op"); d.Status != statusNew || d.failed() {
		t.Errorf("benchmark only in new doc should be informational, got %q", d.Status)
	}
}

func TestCompareDirections(t *testing.T) {
	old := doc(bench("BenchmarkB", map[string]float64{"ns/op": 1000, "samples/s": 1000}))
	for _, tc := range []struct {
		unit   string
		newVal float64
		want   string
	}{
		{"ns/op", 1100, statusOK},            // +10% slower, within 20%
		{"ns/op", 1300, statusRegression},    // +30% slower
		{"ns/op", 600, statusImproved},       // -40% faster
		{"samples/s", 900, statusOK},         // -10% rate, within 20%
		{"samples/s", 700, statusRegression}, // -30% rate
		{"samples/s", 1500, statusImproved},  // +50% rate
	} {
		new_ := doc(bench("BenchmarkB", map[string]float64{tc.unit: tc.newVal}))
		// Only compare the single unit under test: build a matching old doc.
		oldOne := doc(bench("BenchmarkB", map[string]float64{tc.unit: old.Benchmarks[0].Metrics[tc.unit]}))
		d := statusOf(t, compareDocs(oldOne, new_, 20), "BenchmarkB", tc.unit)
		if d.Status != tc.want {
			t.Errorf("%s %g -> %g: got %q, want %q", tc.unit, d.Old, tc.newVal, d.Status, tc.want)
		}
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	old := doc(bench("BenchmarkC", map[string]float64{"ns/op": 100, "ms/open": 2}))
	new_ := doc(bench("BenchmarkC", map[string]float64{"ns/op": 100}))
	d := statusOf(t, compareDocs(old, new_, 20), "BenchmarkC", "ms/open")
	if d.Status != statusMissing || !d.failed() {
		t.Errorf("metric dropped from new doc should be MISSING and fail, got %q", d.Status)
	}
}

func TestAggregateBestOfCount(t *testing.T) {
	// Three -count runs: the gate must take min of time-like metrics and
	// max of rates, so one noisy run can't fail the comparison.
	d := doc(
		bench("BenchmarkD", map[string]float64{"ns/op": 120, "samples/s": 480}),
		bench("BenchmarkD", map[string]float64{"ns/op": 100, "samples/s": 500}),
		bench("BenchmarkD", map[string]float64{"ns/op": 300, "samples/s": 200}),
	)
	agg := aggregate(d)
	m := agg[benchKey{"repro", "BenchmarkD"}]
	if m["ns/op"] != 100 {
		t.Errorf("ns/op best-of-count = %g, want 100 (min)", m["ns/op"])
	}
	if m["samples/s"] != 500 {
		t.Errorf("samples/s best-of-count = %g, want 500 (max)", m["samples/s"])
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, d *Doc) string {
		t.Helper()
		path := filepath.Join(dir, name)
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", doc(bench("BenchmarkE", map[string]float64{"ns/op": 1000})))

	var out strings.Builder
	good := write("good.json", doc(bench("BenchmarkE", map[string]float64{"ns/op": 1100})))
	if err := runCompare(&out, old, good, 20); err != nil {
		t.Fatalf("within-tolerance compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("table should contain an ok row:\n%s", out.String())
	}

	out.Reset()
	bad := write("bad.json", doc(bench("BenchmarkE", map[string]float64{"ns/op": 2000})))
	err := runCompare(&out, old, bad, 20)
	if err == nil {
		t.Fatalf("2x regression must fail the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed") || !strings.Contains(out.String(), statusRegression) {
		t.Errorf("failure should name the regression:\nerr: %v\ntable:\n%s", err, out.String())
	}
}
