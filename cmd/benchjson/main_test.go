package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig2CheckMergeSuccinct-8   	       3	 123456789 ns/op	        12.3 ns/checkmerge
BenchmarkAGSParallel/workers=8-8    	       9	   4857372 ns/op	    411759 samples/s
BenchmarkAGSParallel/workers=8-8    	       9	   4901222 ns/op	    408090 samples/s
PASS
ok  	repro	12.345s
?   	repro/examples/quickstart	[no test files]
testing: warning: no tests to run
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("platform headers wrong: %q/%q", doc.Goos, doc.Goarch)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu header wrong: %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Pkg != "repro" || b.Name != "BenchmarkFig2CheckMergeSuccinct" || b.Procs != 8 || b.Iterations != 3 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 || b.Metrics["ns/checkmerge"] != 12.3 {
		t.Errorf("metrics parsed wrong: %v", b.Metrics)
	}
	// -count>1 repeats and sub-benchmark names survive verbatim.
	p := doc.Benchmarks[1]
	if p.Name != "BenchmarkAGSParallel/workers=8" || p.Procs != 8 {
		t.Errorf("sub-benchmark parsed wrong: %+v", p)
	}
	if doc.Benchmarks[1].Metrics["samples/s"] == doc.Benchmarks[2].Metrics["samples/s"] {
		t.Error("repeated runs collapsed")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",
		"BenchmarkX-8 notanumber 12 ns/op",
		"BenchmarkX-8 3 nan-ish",
		"BenchmarkX-8 3 x ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkPlain 100 42.5 ns/op")
	if !ok || b.Name != "BenchmarkPlain" || b.Procs != 1 || b.Metrics["ns/op"] != 42.5 {
		t.Errorf("plain line parsed wrong: %+v ok=%v", b, ok)
	}
}
