package ccbaseline

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graphlet"
	"repro/internal/treelet"
)

// CodeOf converts a representative instance to its succinct code — used
// only by tests and experiments to cross-validate the two implementations,
// never by CC's own hot paths.
func CodeOf(in *Inst) treelet.Treelet {
	t := treelet.Leaf
	for i := len(in.Children) - 1; i >= 0; i-- {
		t = treelet.Merge(t, CodeOf(in.Children[i]))
	}
	return t
}

// Sampler implements CC's sampling phase: root selection by binary search
// on a cumulative array (no alias method), treelet selection by scanning
// the root's hash table, child selection by sweeping neighbor hash tables
// (no shape-sorted records, no buffering), and canonicalization without
// memoization. Motivo's speedups over this are the §5.1 sampling-speed
// table.
type Sampler struct {
	g     *graphWrap
	tab   *Table
	cum   []float64
	roots []int32
	total float64
}

// graphWrap avoids an import cycle hiccup: the sampler only needs
// neighbor lists and edge queries.
type graphWrap struct {
	neighbors func(int32) []int32
	hasEdge   func(int32, int32) bool
	degree    func(int32) int
}

// NewSampler prepares CC's sampling phase over a built table.
func NewSampler(neighbors func(int32) []int32, hasEdge func(int32, int32) bool, degree func(int32) int, tab *Table) (*Sampler, error) {
	s := &Sampler{
		g:   &graphWrap{neighbors: neighbors, hasEdge: hasEdge, degree: degree},
		tab: tab,
	}
	for v := 0; v < tab.N; v++ {
		var eta float64
		for _, c := range tab.Recs[tab.K][v] {
			eta += float64(c)
		}
		if eta > 0 {
			s.total += eta
			s.roots = append(s.roots, int32(v))
			s.cum = append(s.cum, s.total)
		}
	}
	if s.total == 0 {
		return nil, fmt.Errorf("ccbaseline: empty urn")
	}
	return s, nil
}

// Total returns the number of rooted colorful k-treelet entries (CC counts
// each copy at all k rootings; divide by k for distinct copies).
func (s *Sampler) Total() float64 { return s.total }

// Sample draws one uniform colorful k-treelet copy and returns the
// canonical induced graphlet code and the nodes.
func (s *Sampler) Sample(rng *rand.Rand) (graphlet.Code, []int32) {
	r := rng.Float64() * s.total
	i := sort.SearchFloat64s(s.cum, r)
	if i == len(s.cum) {
		i--
	}
	v := s.roots[i]
	// Treelet selection: scan the hash table accumulating counts (CC has
	// no sorted cumulative record).
	rec := s.tab.Recs[s.tab.K][v]
	var eta float64
	for _, c := range rec {
		eta += float64(c)
	}
	target := rng.Float64() * eta
	var chosen key
	var acc float64
	for kk, c := range rec {
		acc += float64(c)
		chosen = kk
		if acc > target {
			break
		}
	}
	nodes := make([]int32, 0, s.tab.K)
	s.sampleCopy(v, chosen, rng, &nodes)
	return s.induced(nodes), nodes
}

func (s *Sampler) sampleCopy(v int32, kk key, rng *rand.Rand, out *[]int32) {
	if kk.T.Size == 1 {
		*out = append(*out, v)
		return
	}
	tpp := kk.T.Children[0]
	tp := s.tab.Reg.rest(kk.T)
	hpp := tpp.Size
	hp := kk.T.Size - hpp
	rv := s.tab.Recs[hp][v]

	type cand struct {
		u   int32
		cpp key
	}
	var cands []cand
	var cum []float64
	total := 0.0
	for _, w := range s.g.neighbors(v) {
		for kpp, cu := range s.tab.Recs[hpp][w] {
			if kpp.T != tpp {
				continue
			}
			if kpp.Colors&kk.Colors != kpp.Colors {
				continue
			}
			cv, ok := rv[key{tp, kk.Colors &^ kpp.Colors}]
			if !ok {
				continue
			}
			total += float64(cv) * float64(cu)
			cands = append(cands, cand{w, kpp})
			cum = append(cum, total)
		}
	}
	if len(cands) == 0 {
		panic("ccbaseline: no child choice (corrupt table?)")
	}
	r := rng.Float64() * total
	i := sort.SearchFloat64s(cum, r)
	if i == len(cum) {
		i--
	}
	ch := cands[i]
	s.sampleCopy(v, key{tp, kk.Colors &^ ch.cpp.Colors}, rng, out)
	s.sampleCopy(ch.u, ch.cpp, rng, out)
}

// induced canonicalizes without memoization (CC calls Nauty every time).
func (s *Sampler) induced(nodes []int32) graphlet.Code {
	k := len(nodes)
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if s.g.hasEdge(nodes[i], nodes[j]) {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graphlet.Canonical(k, graphlet.FromEdges(k, edges))
}

// rest interns the treelet left over when the first child is detached.
func (r *Registry) rest(t *Inst) *Inst {
	if len(t.Children) == 1 {
		return r.leaf
	}
	children := t.Children[1:]
	ck := childKey(children)
	if in, ok := r.m[ck]; ok {
		return in
	}
	in := &Inst{Children: children, Size: t.Size - t.Children[0].Size}
	r.m[ck] = in
	return in
}
