// Package ccbaseline is a faithful port of CC, the color-coding algorithm
// of Bressan et al. (WSDM'17 / TKDD'18) that motivo improves upon. The
// paper (Section 3) ports CC to C++ and then swaps its components one by
// one to quantify each optimization; this package plays the "original"
// side of those comparisons (Figures 2 and 3, and the §5.1 tables):
//
//   - every rooted treelet has a unique *representative instance*, a
//     pointer-based tree structure; the pointer is its identity;
//   - the treelet count table is one hash table per node mapping
//     (instance pointer, color set) to a 64-bit count (CC's counters
//     overflow on large inputs — one reason motivo uses 128 bits);
//   - the check-and-merge operation walks the pointer structures
//     recursively (no succinct encoding);
//   - the sampling phase has no sorted records, no alias table and no
//     neighbor buffering: treelet draws scan the node's hash table and
//     child choices sweep neighbor hash tables.
package ccbaseline

import (
	"fmt"
	"time"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/treelet"
)

// Inst is the representative instance of a rooted (uncolored) treelet:
// a classic pointer-based tree. Children are kept in canonical
// (non-decreasing) order so decomposition takes the first child, exactly
// mirroring the succinct encoding's semantics.
type Inst struct {
	Children []*Inst
	Size     int
}

// Registry interns instances so that each treelet shape has exactly one
// representative and pointer equality is shape equality.
type Registry struct {
	leaf *Inst
	m    map[string]*Inst
}

// NewRegistry creates an empty interning registry.
func NewRegistry() *Registry {
	return &Registry{leaf: &Inst{Size: 1}, m: make(map[string]*Inst)}
}

// Leaf returns the single-node treelet instance.
func (r *Registry) Leaf() *Inst { return r.leaf }

// Merge interns the treelet obtained by prepending tpp as the first child
// of tp's root.
func (r *Registry) Merge(tp, tpp *Inst) *Inst {
	children := make([]*Inst, 0, len(tp.Children)+1)
	children = append(children, tpp)
	children = append(children, tp.Children...)
	key := childKey(children)
	if in, ok := r.m[key]; ok {
		return in
	}
	in := &Inst{Children: children, Size: tp.Size + tpp.Size}
	r.m[key] = in
	return in
}

// childKey derives an interning key from the (already interned) children.
func childKey(children []*Inst) string {
	b := make([]byte, 0, len(children)*8)
	for _, c := range children {
		b = append(b, []byte(fmt.Sprintf("%p,", c))...)
	}
	return string(b)
}

// Compare orders two instances structurally, recursively — the expensive
// pointer-chasing comparison CC performs inside every check-and-merge
// (succinct treelets replace this with one integer compare).
func Compare(a, b *Inst) int {
	if a == b {
		return 0
	}
	// Mirror the succinct order: the DFS parenthesis string compared
	// lexicographically. A leaf's string is empty, so a leaf precedes
	// everything else.
	la, lb := len(a.Children), len(b.Children)
	for i := 0; i < la && i < lb; i++ {
		if c := Compare(a.Children[i], b.Children[i]); c != 0 {
			return c
		}
	}
	switch {
	case la < lb:
		return -1
	case la > lb:
		return +1
	}
	return 0
}

// CheckMerge reports whether tpp may be attached as a new first child of
// tp while keeping the canonical child order (the "T” comes before the
// smallest subtree of T'" test).
func CheckMerge(tp, tpp *Inst) bool {
	if len(tp.Children) == 0 {
		return true
	}
	return Compare(tpp, tp.Children[0]) <= 0
}

// Beta returns βT: the multiplicity of the first child among the root's
// children (pointer equality thanks to interning).
func Beta(t *Inst) int {
	b := 1
	for i := 1; i < len(t.Children) && t.Children[i] == t.Children[0]; i++ {
		b++
	}
	return b
}

// key is a colored treelet entry in a node's hash table.
type key struct {
	T      *Inst
	Colors treelet.ColorSet
}

// Table is CC's count table: one hash table per node per size.
type Table struct {
	K    int
	N    int
	Recs [][]map[key]uint64 // Recs[h][v]
	Reg  *Registry
}

// Stats mirrors build.Stats for the baseline.
type Stats struct {
	Duration      time.Duration
	CheckMergeOps int64
	Pairs         int64
	// BytesEstimate approximates CC's memory: ≥ 128 bits per pair (64-bit
	// pointer key + 64-bit count) plus hash-table overhead (we charge the
	// conventional 2x found in sparse hash maps).
	BytesEstimate int64
}

// Build runs CC's build-up phase (single-threaded, no 0-rooting — CC
// counts every rooting of every copy).
func Build(g *graph.Graph, col *coloring.Coloring, k int) (*Table, *Stats, error) {
	if col.K != k {
		return nil, nil, fmt.Errorf("ccbaseline: coloring has %d colors, want %d", col.K, k)
	}
	n := g.NumNodes()
	if len(col.Colors) != n {
		return nil, nil, fmt.Errorf("ccbaseline: coloring covers %d nodes, graph has %d", len(col.Colors), n)
	}
	start := time.Now()
	reg := NewRegistry()
	tab := &Table{K: k, N: n, Recs: make([][]map[key]uint64, k+1), Reg: reg}
	for h := 1; h <= k; h++ {
		tab.Recs[h] = make([]map[key]uint64, n)
	}
	for v := 0; v < n; v++ {
		tab.Recs[1][v] = map[key]uint64{{reg.Leaf(), treelet.Singleton(col.Colors[v])}: 1}
	}
	var ops int64
	for h := 2; h <= k; h++ {
		for v := int32(0); int(v) < n; v++ {
			acc := make(map[key]uint64)
			for hpp := 1; hpp < h; hpp++ {
				rv := tab.Recs[h-hpp][v]
				if len(rv) == 0 {
					continue
				}
				for _, u := range g.Neighbors(v) {
					ru := tab.Recs[hpp][u]
					for kpp, cu := range ru {
						for kp, cv := range rv {
							ops++
							if !kp.Colors.Disjoint(kpp.Colors) {
								continue
							}
							if !CheckMerge(kp.T, kpp.T) {
								continue
							}
							merged := key{reg.Merge(kp.T, kpp.T), kp.Colors | kpp.Colors}
							acc[merged] += cv * cu // 64-bit: may overflow, as in CC
						}
					}
				}
			}
			for kk, c := range acc {
				if b := uint64(Beta(kk.T)); b > 1 {
					acc[kk] = c / b
				}
			}
			tab.Recs[h][v] = acc
		}
	}
	st := &Stats{Duration: time.Since(start), CheckMergeOps: ops}
	for h := 1; h <= k; h++ {
		for v := 0; v < n; v++ {
			st.Pairs += int64(len(tab.Recs[h][v]))
		}
	}
	st.BytesEstimate = st.Pairs * 16 * 2
	return tab, st, nil
}
