package ccbaseline

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/treelet"
	"repro/internal/u128"
)

func TestCompareMatchesSuccinctOrder(t *testing.T) {
	// Build every treelet up to size 6 in both representations and check
	// the recursive pointer comparison agrees with the integer order of
	// the succinct codes.
	cat := treelet.NewCatalog(6)
	reg := NewRegistry()
	insts := make(map[treelet.Treelet]*Inst)
	insts[treelet.Leaf] = reg.Leaf()
	for s := 2; s <= 6; s++ {
		for _, tr := range cat.BySize[s] {
			tpp, tp := tr.Decomp()
			insts[tr] = reg.Merge(insts[tp], insts[tpp])
		}
	}
	var all []treelet.Treelet
	for s := 1; s <= 6; s++ {
		all = append(all, cat.BySize[s]...)
	}
	for _, a := range all {
		for _, b := range all {
			want := 0
			if a < b {
				want = -1
			} else if a > b {
				want = 1
			}
			if got := Compare(insts[a], insts[b]); got != want {
				t.Fatalf("Compare(%v,%v) = %d, want %d", a, b, got, want)
			}
		}
	}
	// Interning: codes must round-trip.
	for tr, in := range insts {
		if CodeOf(in) != tr {
			t.Fatalf("CodeOf mismatch for %v", tr)
		}
	}
}

func TestCCTableMatchesMotivoTable(t *testing.T) {
	// CC (no 0-rooting) and motivo's build with ZeroRooted=false must
	// produce identical counts for every (node, colored treelet).
	g := gen.ErdosRenyi(25, 70, 3)
	k := 4
	col := coloring.Uniform(g.NumNodes(), k, 5)
	cat := treelet.NewCatalog(k)

	ccTab, ccStats, err := Build(g, col, k)
	if err != nil {
		t.Fatal(err)
	}
	opts := build.DefaultOptions()
	opts.ZeroRooted = false
	opts.SmartStars = false // CC materializes everything; compare like for like
	moTab, moStats, err := build.Run(context.Background(), g, col, k, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ccStats.Pairs != moStats.Pairs {
		t.Fatalf("pair counts differ: CC %d, motivo %d", ccStats.Pairs, moStats.Pairs)
	}
	for h := 1; h <= k; h++ {
		for v := 0; v < g.NumNodes(); v++ {
			rec := moTab.Rec(h, int32(v))
			ccRec := ccTab.Recs[h][v]
			if rec.Len() != len(ccRec) {
				t.Fatalf("h=%d v=%d: motivo %d keys, CC %d", h, v, rec.Len(), len(ccRec))
			}
			for kk, c := range ccRec {
				code := CodeOf(kk.T)
				want := rec.Count(treelet.MakeColored(code, kk.Colors))
				if want != u128.From64(c) {
					t.Fatalf("h=%d v=%d treelet %v colors %04b: CC %d, motivo %v", h, v, code, kk.Colors, c, want)
				}
			}
		}
	}
}

func TestCCSamplerEstimates(t *testing.T) {
	g := gen.ErdosRenyi(25, 70, 7)
	k := 4
	truth, err := exact.Count(g, k)
	if err != nil {
		t.Fatal(err)
	}
	sig := estimate.NewSigma(k)
	sum := make(estimate.Counts)
	const runs = 8
	const S = 20000
	for r := 0; r < runs; r++ {
		col := coloring.Uniform(g.NumNodes(), k, int64(100+r))
		tab, _, err := Build(g, col, k)
		if err != nil {
			t.Fatal(err)
		}
		smp, err := NewSampler(g.Neighbors, g.HasEdge, g.Degree, tab)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(200 + r)))
		tallies := make(map[graphlet.Code]int64)
		for i := 0; i < S; i++ {
			code, nodes := smp.Sample(rng)
			if len(nodes) != k {
				t.Fatal("wrong sample size")
			}
			tallies[code]++
		}
		est, err := estimate.Naive(tallies, S, smp.Total()/float64(k), sig, col.PColorful)
		if err != nil {
			t.Fatal(err)
		}
		for c, v := range est {
			sum[c] += v / runs
		}
	}
	pk := coloring.PUniform(k)
	for code, want := range truth {
		if pk*want < 30 {
			continue
		}
		if math.Abs(sum[code]-want)/want > 0.2 {
			t.Errorf("graphlet %v: CC estimate %.1f, exact %.0f", code, sum[code], want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g := gen.Path(4)
	if _, _, err := Build(g, coloring.Uniform(4, 3, 1), 4); err == nil {
		t.Error("k mismatch must fail")
	}
	if _, _, err := Build(g, coloring.Uniform(3, 3, 1), 3); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestEmptySamplerErrors(t *testing.T) {
	g, err := graph.Build(2, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	col := coloring.Uniform(2, 3, 1)
	tab, _, err := Build(g, col, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampler(g.Neighbors, g.HasEdge, g.Degree, tab); err == nil {
		t.Error("expected empty-urn error")
	}
}

func TestBetaPointer(t *testing.T) {
	reg := NewRegistry()
	leaf := reg.Leaf()
	star3 := reg.Merge(reg.Merge(leaf, leaf), leaf)
	if Beta(star3) != 2 {
		t.Errorf("star3 beta = %d", Beta(star3))
	}
}
