package experiments

import (
	"io"
	"strings"
	"testing"
)

func TestCatalogWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range Catalog() {
		if d.Name == "" || d.Regime == "" || d.MaxK < 4 || d.Gen == nil {
			t.Errorf("dataset %+v malformed", d.Name)
		}
		if seen[d.Name] {
			t.Errorf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		g := d.Gen()
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Errorf("dataset %q is empty", d.Name)
		}
	}
	if _, ok := ByName("facebook-s"); !ok {
		t.Error("ByName failed for a known dataset")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName matched a bogus name")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"datasets", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "speedup", "tablesize", "samplerate", "l1", "lollipop"}
	for _, id := range want {
		if Registry[id] == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
}

func TestDatasetsTableOutput(t *testing.T) {
	var sb strings.Builder
	DatasetsTable(&sb)
	out := sb.String()
	for _, d := range Catalog() {
		if !strings.Contains(out, d.Name) {
			t.Errorf("datasets table missing %q", d.Name)
		}
	}
}

func TestLollipopExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of ESU enumeration")
	}
	var sb strings.Builder
	LollipopLowerBound(&sb)
	out := sb.String()
	if !strings.Contains(out, "p_H") || !strings.Contains(out, "sample(path-shape)") {
		t.Errorf("unexpected lollipop output:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := histogram([]float64{-1, -0.9, 0, 0.3, 2})
	for _, frag := range []string{"[≤-1]:1", "(-0.05,0.05]:1", "[>1]:1"} {
		if !strings.Contains(h, frag) {
			t.Errorf("histogram %q missing %q", h, frag)
		}
	}
}

var _ = io.Discard // keep io imported if assertions change
