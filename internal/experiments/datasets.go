// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on synthetic stand-ins for the nine public
// datasets of Table 1. Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured shape
// comparisons.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Dataset is a named synthetic stand-in for one of the paper's graphs.
type Dataset struct {
	Name string
	// Regime documents which Table 1 dataset(s) this workload stands for
	// and why.
	Regime string
	// MaxK is the largest k exercised on this dataset (mirrors Table 1's
	// "k" column, scaled to laptop budgets).
	MaxK int
	Gen  func() *graph.Graph
}

// Catalog returns the dataset catalog — our Table 1.
func Catalog() []Dataset {
	return []Dataset{
		{
			Name:   "facebook-s",
			Regime: "Facebook: small social graph, heavy tail",
			MaxK:   7,
			Gen:    func() *graph.Graph { return gen.BarabasiAlbert(8000, 6, 101) },
		},
		{
			Name:   "dblp-s",
			Regime: "Dblp/Amazon: sparse, flat degree and graphlet distributions",
			MaxK:   7,
			Gen:    func() *graph.Graph { return gen.ErdosRenyi(15000, 45000, 103) },
		},
		{
			Name:   "amazon-s",
			Regime: "Amazon: larger sparse flat graph",
			MaxK:   6,
			Gen:    func() *graph.Graph { return gen.ErdosRenyi(20000, 50000, 105) },
		},
		{
			Name:   "orkut-s",
			Regime: "Orkut: dense, strong hubs",
			MaxK:   6,
			Gen:    func() *graph.Graph { return gen.BarabasiAlbert(4000, 25, 107) },
		},
		{
			Name:   "berkstan-s",
			Regime: "BerkStan: few giant-degree nodes (buffering showcase)",
			MaxK:   6,
			Gen:    func() *graph.Graph { return gen.StarHeavy(3, 15000, 8000, 109) },
		},
		{
			Name:   "yelp-s",
			Regime: "Yelp: star-dominated, extreme graphlet skew (AGS showcase)",
			MaxK:   6,
			Gen:    func() *graph.Graph { return gen.StarHeavy(1, 20000, 400, 111) },
		},
		{
			Name:   "livejournal-s",
			Regime: "LiveJournal: mid-size heavy tail",
			MaxK:   6,
			Gen:    func() *graph.Graph { return gen.BarabasiAlbert(30000, 5, 113) },
		},
		{
			Name:   "friendster-s",
			Regime: "Twitter/Friendster: the large instance (biased coloring target)",
			MaxK:   5,
			Gen:    func() *graph.Graph { return gen.BarabasiAlbert(60000, 7, 115) },
		},
	}
}

// ByName returns the catalog dataset with the given name.
func ByName(name string) (Dataset, bool) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Small accuracy datasets where exact ESU ground truth is affordable.
func accuracySets() []Dataset {
	return []Dataset{
		{
			Name:   "er-xs",
			Regime: "flat regime with exact ground truth",
			MaxK:   5,
			Gen:    func() *graph.Graph { return gen.ErdosRenyi(1500, 4000, 201) },
		},
		{
			Name:   "ba-xs",
			Regime: "heavy-tail regime with exact ground truth",
			MaxK:   5,
			Gen:    func() *graph.Graph { return gen.BarabasiAlbert(1200, 3, 203) },
		},
		{
			Name:   "star-xs",
			Regime: "star-dominated (Yelp-like) regime with exact ground truth",
			MaxK:   5,
			Gen:    func() *graph.Graph { return gen.StarHeavy(1, 80, 60, 205) },
		},
	}
}

// DatasetsTable prints the catalog — the Table 1 analogue.
func DatasetsTable(w io.Writer) {
	fmt.Fprintf(w, "== datasets (Table 1 stand-ins) ==\n")
	fmt.Fprintf(w, "%-15s %9s %10s %8s %5s  %s\n", "graph", "nodes", "edges", "maxdeg", "k", "regime")
	for _, d := range Catalog() {
		g := d.Gen()
		fmt.Fprintf(w, "%-15s %9d %10d %8d %5d  %s\n",
			d.Name, g.NumNodes(), g.NumEdges(), g.MaxDegree(), d.MaxK, d.Regime)
	}
}
