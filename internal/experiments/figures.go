package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/ags"
	"repro/internal/build"
	"repro/internal/ccbaseline"
	"repro/internal/coloring"
	"repro/internal/estimate"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/sample"
	"repro/internal/table"
	"repro/internal/treelet"
)

// buildOnce is a helper running motivo's build with the given options.
func buildOnce(g *graph.Graph, k int, seed int64, mutate func(*build.Options)) (*coloring.Coloring, *treelet.Catalog, *buildResult) {
	col := coloring.Uniform(g.NumNodes(), k, seed)
	cat := treelet.NewCatalog(k)
	opts := build.DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	tab, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
	if err != nil {
		panic(err)
	}
	return col, cat, &buildResult{tab: tab, stats: stats}
}

type buildResult struct {
	tab   *table.Table
	stats *build.Stats
}

// Fig2CheckMerge reproduces Figure 2: time spent in check-and-merge
// operations, CC's pointer treelets vs motivo's succinct treelets
// (single-threaded). The paper reports close to a 2x average speedup.
func Fig2CheckMerge(w io.Writer) {
	fmt.Fprintf(w, "== Figure 2: check-and-merge cost, pointer (CC) vs succinct (motivo), single-threaded ==\n")
	fmt.Fprintf(w, "%-15s %3s %14s %12s %12s %12s %9s\n",
		"graph", "k", "ops", "CC total", "motivo total", "ns/op CC", "ns/op mo")
	runs := []struct {
		ds string
		k  int
	}{
		{"facebook-s", 4}, {"facebook-s", 5},
		{"dblp-s", 4}, {"dblp-s", 5},
		{"orkut-s", 4},
	}
	for _, r := range runs {
		d, _ := ByName(r.ds)
		g := d.Gen()
		col := coloring.Uniform(g.NumNodes(), r.k, 301)
		cat := treelet.NewCatalog(r.k)

		_, ccStats, err := ccbaseline.Build(g, col, r.k)
		if err != nil {
			panic(err)
		}
		opts := build.DefaultOptions()
		opts.ZeroRooted = false // match CC's work exactly
		opts.Workers = 1
		_, moStats, err := build.Run(context.Background(), g, col, r.k, cat, opts)
		if err != nil {
			panic(err)
		}
		ccNs := float64(ccStats.Duration.Nanoseconds()) / float64(ccStats.CheckMergeOps)
		moNs := float64(moStats.Duration.Nanoseconds()) / float64(moStats.CheckMergeOps)
		fmt.Fprintf(w, "%-15s %3d %14d %12v %12v %12.1f %9.1f   (%.1fx)\n",
			r.ds, r.k, moStats.CheckMergeOps,
			ccStats.Duration.Round(time.Millisecond), moStats.Duration.Round(time.Millisecond),
			ccNs, moNs, ccNs/moNs)
	}
}

// Fig3BuildMemory reproduces Figure 3: build time and table footprint of
// the CC port vs motivo with succinct treelets + compact count table +
// greedy flushing (0-rooting disabled on both sides, as in the figure).
func Fig3BuildMemory(w io.Writer) {
	fmt.Fprintf(w, "== Figure 3: build time and memory, original (CC) vs succinct+compact+flush ==\n")
	fmt.Fprintf(w, "%-15s %3s %12s %12s %8s %12s %12s %8s\n",
		"graph", "k", "CC time", "motivo time", "speedup", "CC bytes", "motivo bytes", "ratio")
	runs := []struct {
		ds string
		k  int
	}{
		{"facebook-s", 4}, {"facebook-s", 5},
		{"dblp-s", 4}, {"dblp-s", 5},
		{"orkut-s", 4},
	}
	for _, r := range runs {
		d, _ := ByName(r.ds)
		g := d.Gen()
		col := coloring.Uniform(g.NumNodes(), r.k, 307)
		cat := treelet.NewCatalog(r.k)
		_, ccStats, err := ccbaseline.Build(g, col, r.k)
		if err != nil {
			panic(err)
		}
		opts := build.DefaultOptions()
		opts.ZeroRooted = false
		opts.Spill = true
		_, moStats, err := build.Run(context.Background(), g, col, r.k, cat, opts)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%-15s %3d %12v %12v %7.1fx %12d %12d %7.1fx\n",
			r.ds, r.k,
			ccStats.Duration.Round(time.Millisecond), moStats.Duration.Round(time.Millisecond),
			float64(ccStats.Duration)/float64(moStats.Duration),
			ccStats.BytesEstimate, moStats.TableBytes,
			float64(ccStats.BytesEstimate)/float64(moStats.TableBytes))
	}
}

// Fig4ZeroRooting reproduces Figure 4: the build-time cut from 0-rooting
// (paper: 30–40% time, ~10% space).
func Fig4ZeroRooting(w io.Writer) {
	fmt.Fprintf(w, "== Figure 4: impact of 0-rooting ==\n")
	fmt.Fprintf(w, "%-15s %3s %12s %12s %9s %10s\n", "graph", "k", "without", "with", "time cut", "space cut")
	runs := []struct {
		ds string
		k  int
	}{
		{"facebook-s", 5}, {"facebook-s", 6},
		{"dblp-s", 5}, {"amazon-s", 5},
		{"orkut-s", 4},
	}
	for _, r := range runs {
		d, _ := ByName(r.ds)
		g := d.Gen()
		col := coloring.Uniform(g.NumNodes(), r.k, 311)
		cat := treelet.NewCatalog(r.k)
		optsOff := build.DefaultOptions()
		optsOff.ZeroRooted = false
		_, off, err := build.Run(context.Background(), g, col, r.k, cat, optsOff)
		if err != nil {
			panic(err)
		}
		_, on, err := build.Run(context.Background(), g, col, r.k, cat, build.DefaultOptions())
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%-15s %3d %12v %12v %8.0f%% %9.0f%%\n",
			r.ds, r.k,
			off.Duration.Round(time.Millisecond), on.Duration.Round(time.Millisecond),
			100*(1-float64(on.Duration)/float64(off.Duration)),
			100*(1-float64(on.TableBytes)/float64(off.TableBytes)))
	}
}

// Fig5NeighborBuffering reproduces Figure 5: sampling rates with and
// without neighbor buffering on hub-dominated graphs (paper: ~20–40x on
// Orkut/BerkStan).
func Fig5NeighborBuffering(w io.Writer) {
	fmt.Fprintf(w, "== Figure 5: impact of neighbor buffering (samples/s) ==\n")
	fmt.Fprintf(w, "%-15s %3s %12s %12s %9s\n", "graph", "k", "original", "buffered", "speedup")
	runs := []struct {
		ds string
		k  int
	}{
		{"berkstan-s", 5},
		{"orkut-s", 5},
		{"yelp-s", 5},
		{"facebook-s", 5},
	}
	const S = 30000
	for _, r := range runs {
		d, _ := ByName(r.ds)
		g := d.Gen()
		col := coloring.Uniform(g.NumNodes(), r.k, 313)
		cat := treelet.NewCatalog(r.k)
		tab, _, err := build.Run(context.Background(), g, col, r.k, cat, build.DefaultOptions())
		if err != nil {
			panic(err)
		}
		rate := func(threshold int) float64 {
			urn, err := sample.NewUrn(g, col, tab, cat)
			if err != nil {
				panic(err)
			}
			urn.BufferThreshold = threshold
			rng := rand.New(rand.NewSource(317))
			start := time.Now()
			// Time-bounded: slow configurations stop after a few seconds
			// (the rate estimate is already stable by then).
			const maxWall = 5 * time.Second
			n := 0
			for ; n < S; n++ {
				if n%256 == 0 && time.Since(start) > maxWall {
					break
				}
				urn.Sample(rng)
			}
			return float64(n) / time.Since(start).Seconds()
		}
		off := rate(1 << 30)
		on := rate(1000)
		fmt.Fprintf(w, "%-15s %3d %12.0f %12.0f %8.1fx\n", r.ds, r.k, off, on, on/off)
	}
}

// Fig6BiasedColoring reproduces Figure 6: the graphlet count error
// distribution under uniform vs biased coloring (k=5 and a second k), plus
// the table-size saving biased coloring buys.
func Fig6BiasedColoring(w io.Writer) {
	fmt.Fprintf(w, "== Figure 6: error distribution, uniform vs biased coloring ==\n")
	for _, k := range []int{4, 5} {
		d := accuracySets()[0] // er-xs: exact ground truth available
		g := d.Gen()
		truth, err := exactCount(g, k)
		if err != nil {
			panic(err)
		}
		lambda := 0.6 / float64(k)
		for _, mode := range []struct {
			name   string
			lambda float64
		}{{"uniform", 0}, {fmt.Sprintf("biased λ=%.2f", lambda), lambda}} {
			errs, pairs := biasedRunErrors(g, k, mode.lambda, truth)
			fmt.Fprintf(w, "k=%d %-16s table pairs %8d | err histogram: %s\n",
				k, mode.name, pairs, histogram(errs))
		}
	}
}

// biasedRunErrors runs naive sampling under the given λ (0 = uniform) and
// returns the per-graphlet errors vs truth plus the table pair count.
func biasedRunErrors(g *graph.Graph, k int, lambda float64, truth estimate.Counts) ([]float64, int64) {
	const runs = 4
	const S = 40000
	sig := estimate.NewSigma(k)
	cat := treelet.NewCatalog(k)
	sum := make(estimate.Counts)
	var pairs int64
	for r := 0; r < runs; r++ {
		var col *coloring.Coloring
		if lambda > 0 {
			col = coloring.Biased(g.NumNodes(), k, lambda, int64(331+r))
		} else {
			col = coloring.Uniform(g.NumNodes(), k, int64(331+r))
		}
		tab, stats, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
		if err != nil {
			panic(err)
		}
		pairs = stats.Pairs
		urn, err := sample.NewUrn(g, col, tab, cat)
		if err != nil {
			panic(err)
		}
		if urn.Empty() {
			continue
		}
		rng := rand.New(rand.NewSource(int64(337 + r)))
		tallies := make(map[graphlet.Code]int64)
		for i := 0; i < S; i++ {
			code, _ := urn.Sample(rng)
			tallies[code]++
		}
		est, err := estimate.Naive(tallies, S, urn.Total().Float64(), sig, col.PColorful)
		if err != nil {
			panic(err)
		}
		for c, v := range est {
			sum[c] += v / runs
		}
	}
	var errs []float64
	for _, e := range estimate.ErrH(sum, truth) {
		errs = append(errs, e)
	}
	return errs, pairs
}

// histogram renders errors in the Figure 6/8 style: buckets over [-1, +1].
func histogram(errs []float64) string {
	edges := []float64{-1, -0.75, -0.5, -0.25, -0.05, 0.05, 0.25, 0.5, 0.75, 1}
	counts := make([]int, len(edges)+1)
	for _, e := range errs {
		i := 0
		for i < len(edges) && e > edges[i] {
			i++
		}
		counts[i]++
	}
	s := ""
	for i, c := range counts {
		switch {
		case i == 0:
			s += fmt.Sprintf("[≤-1]:%d ", c)
		case i == len(edges):
			s += fmt.Sprintf("[>1]:%d", c)
		default:
			s += fmt.Sprintf("(%.2g,%.2g]:%d ", edges[i-1], edges[i], c)
		}
	}
	return s
}

// Fig7Scaling reproduces Figure 7: build time per million edges and table
// bits per node as k grows — motivo's predictability claim.
func Fig7Scaling(w io.Writer) {
	fmt.Fprintf(w, "== Figure 7: build seconds per 1M edges and table bits per node, k=4..7 ==\n")
	fmt.Fprintf(w, "%-15s %3s %14s %14s\n", "graph", "k", "s per Medge", "bits per node")
	for _, name := range []string{"facebook-s", "dblp-s", "livejournal-s"} {
		d, _ := ByName(name)
		g := d.Gen()
		for k := 4; k <= 7; k++ {
			if k > d.MaxK {
				continue
			}
			_, _, res := buildOnce(g, k, 401, nil)
			perMedge := res.stats.Duration.Seconds() / (float64(g.NumEdges()) / 1e6)
			bitsPerNode := float64(res.stats.TableBytes) * 8 / float64(g.NumNodes())
			fmt.Fprintf(w, "%-15s %3d %14.2f %14.0f\n", name, k, perMedge, bitsPerNode)
		}
	}
}

// SampleWorkers fans the AGS sampling of the figure reproductions out
// across this many goroutines (epoch-based; see package ags). 0 keeps the
// sequential reference behavior. The single injection point for
// cmd/experiments's -sample-workers flag, set once before any experiment
// runs (the Registry signature func(io.Writer) leaves no room to pass it
// per call); helpers take it as an explicit parameter from here on.
var SampleWorkers int

// AGSRun bundles an AGS invocation for figures 8-10.
func agsRun(g *graph.Graph, k int, seed int64, budget, cover, workers int) (*ags.Result, *coloring.Coloring) {
	col := coloring.Uniform(g.NumNodes(), k, seed)
	cat := treelet.NewCatalog(k)
	tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		panic(err)
	}
	urn, err := sample.NewUrn(g, col, tab, cat)
	if err != nil {
		panic(err)
	}
	out, err := ags.Run(context.Background(), urn, ags.Options{
		CoverThreshold: cover, Budget: budget,
		Rng:     rand.New(rand.NewSource(seed ^ 0xABCD)),
		Workers: workers,
	})
	if err != nil {
		panic(err)
	}
	return out, col
}

func naiveRun(g *graph.Graph, k int, seed int64, budget int) (estimate.Counts, map[graphlet.Code]int64) {
	col := coloring.Uniform(g.NumNodes(), k, seed)
	cat := treelet.NewCatalog(k)
	tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		panic(err)
	}
	urn, err := sample.NewUrn(g, col, tab, cat)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0xBEEF))
	tallies := make(map[graphlet.Code]int64)
	for i := 0; i < budget; i++ {
		code, _ := urn.Sample(rng)
		tallies[code]++
	}
	sig := estimate.NewSigma(k)
	est, err := estimate.Naive(tallies, int64(budget), urn.Total().Float64(), sig, col.PColorful)
	if err != nil {
		panic(err)
	}
	return est, tallies
}

// Fig8ErrorDistributions reproduces Figure 8: the distribution of the
// per-graphlet count error for naive sampling (top) vs AGS (bottom).
func Fig8ErrorDistributions(w io.Writer) {
	fmt.Fprintf(w, "== Figure 8: graphlet count error distribution, naive vs AGS ==\n")
	for _, dcase := range []struct {
		ds Dataset
		k  int
	}{
		{accuracySets()[0], 4},
		{accuracySets()[0], 5},
		{accuracySets()[1], 5},
		{accuracySets()[2], 5},
	} {
		g := dcase.ds.Gen()
		truth, err := exactCount(g, dcase.k)
		if err != nil {
			panic(err)
		}
		const budget = 60000
		naiveEst := averageNaive(g, dcase.k, budget, 4)
		agsEst := averageAGS(g, dcase.k, budget, 4)
		var nerrs, aerrs []float64
		for _, e := range estimate.ErrH(naiveEst, truth) {
			nerrs = append(nerrs, e)
		}
		for _, e := range estimate.ErrH(agsEst, truth) {
			aerrs = append(aerrs, e)
		}
		fmt.Fprintf(w, "%s k=%d (%d graphlets in truth)\n", dcase.ds.Name, dcase.k, len(truth))
		fmt.Fprintf(w, "  naive: %s\n", histogram(nerrs))
		fmt.Fprintf(w, "  AGS:   %s\n", histogram(aerrs))
	}
}

func averageNaive(g *graph.Graph, k, budget, runs int) estimate.Counts {
	sum := make(estimate.Counts)
	for r := 0; r < runs; r++ {
		est, _ := naiveRun(g, k, int64(500+r), budget)
		for c, v := range est {
			sum[c] += v / float64(runs)
		}
	}
	return sum
}

func averageAGS(g *graph.Graph, k, budget, runs int) estimate.Counts {
	sum := make(estimate.Counts)
	for r := 0; r < runs; r++ {
		out, col := agsRun(g, k, int64(500+r), budget, 500, SampleWorkers)
		for c, v := range out.ColorfulEstimates {
			sum[c] += v / col.PColorful / float64(runs)
		}
	}
	return sum
}

// Fig9AccurateGraphlets reproduces Figure 9: how many graphlets are
// estimated within ±50%, absolute and as a fraction of the ground-truth
// support, for naive sampling vs AGS.
func Fig9AccurateGraphlets(w io.Writer) {
	fmt.Fprintf(w, "== Figure 9: graphlets within ±50%% of ground truth ==\n")
	fmt.Fprintf(w, "%-10s %3s %8s | %14s %14s\n", "graph", "k", "truth", "naive", "AGS")
	for _, dcase := range []struct {
		ds Dataset
		k  int
	}{
		{accuracySets()[0], 4},
		{accuracySets()[0], 5},
		{accuracySets()[1], 4},
		{accuracySets()[1], 5},
		{accuracySets()[2], 5},
	} {
		g := dcase.ds.Gen()
		truth, err := exactCount(g, dcase.k)
		if err != nil {
			panic(err)
		}
		const budget = 60000
		nv := averageNaive(g, dcase.k, budget, 4)
		av := averageAGS(g, dcase.k, budget, 4)
		nw, total := estimate.AccurateWithin(nv, truth, 0.5)
		aw, _ := estimate.AccurateWithin(av, truth, 0.5)
		fmt.Fprintf(w, "%-10s %3d %8d | %6d (%4.0f%%) %6d (%4.0f%%)\n",
			dcase.ds.Name, dcase.k, total,
			nw, 100*float64(nw)/float64(total),
			aw, 100*float64(aw)/float64(total))
	}
}

// Fig10RarestGraphlet reproduces Figure 10: the frequency of the rarest
// graphlet appearing in ≥10 samples, naive vs AGS, on the star-dominated
// graph (the paper's Yelp: naive only ever sees the star at frequency
// ~0.999996 while AGS reaches below 1e-21).
func Fig10RarestGraphlet(w io.Writer) {
	fmt.Fprintf(w, "== Figure 10: frequency of the rarest graphlet seen in ≥10 samples ==\n")
	fmt.Fprintf(w, "%-10s %3s %14s %14s\n", "graph", "k", "naive", "AGS")
	for _, k := range []int{5, 6} {
		d, _ := ByName("yelp-s")
		g := d.Gen()
		const budget = 60000
		// Reference frequencies: AGS's own estimates (the paper likewise
		// reads frequencies off its estimates for graphs without ground
		// truth).
		out, col := agsRun(g, k, 601, budget, 1000, SampleWorkers)
		ref := make(estimate.Counts)
		for c, v := range out.ColorfulEstimates {
			ref[c] = v / col.PColorful
		}
		_, naiveTallies := naiveRun(g, k, 601, budget)
		nfreq, nok := estimate.RarestFound(naiveTallies, ref, 10)
		afreq, aok := estimate.RarestFound(out.Tallies, ref, 10)
		ns, as := "-", "-"
		if nok {
			ns = fmt.Sprintf("%.3g", nfreq)
		}
		if aok {
			as = fmt.Sprintf("%.3g", afreq)
		}
		fmt.Fprintf(w, "%-10s %3d %14s %14s   (AGS switched %d times, covered %d)\n",
			"yelp-s", k, ns, as, out.Switches, out.Covered)
	}
}
