package experiments

import (
	"io"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/treelet"
)

func genLollipop(cliqueN, tailLen int) *graph.Graph { return gen.Lollipop(cliqueN, tailLen) }

// isPathCode reports whether the graphlet is the k-path (two degree-1
// endpoints, the rest degree 2, k-1 edges).
func isPathCode(k int, c graphlet.Code) bool {
	if c.EdgeCount() != k-1 {
		return false
	}
	ones, twos := 0, 0
	for _, d := range graphlet.Degrees(k, c) {
		switch d {
		case 1:
			ones++
		case 2:
			twos++
		}
	}
	return ones == 2 && twos == k-2
}

// pathShapeOf returns the unrooted canonical treelet shape of the k-path.
func pathShapeOf(k int) treelet.Treelet {
	parents := make([]int, k)
	for i := 1; i < k; i++ {
		parents[i] = i - 1
	}
	return treelet.UnrootedCanonical(treelet.FromParents(parents))
}

// All runs every experiment in paper order.
func All(w io.Writer) {
	for _, f := range []func(io.Writer){
		DatasetsTable,
		Fig2CheckMerge,
		Fig3BuildMemory,
		Fig4ZeroRooting,
		Fig5NeighborBuffering,
		Fig6BiasedColoring,
		Fig7Scaling,
		Fig8ErrorDistributions,
		Fig9AccurateGraphlets,
		Fig10RarestGraphlet,
		TableBuildSpeedup,
		TableSize,
		TableSamplingSpeed,
		L1Accuracy,
		LollipopLowerBound,
	} {
		f(w)
		io.WriteString(w, "\n")
	}
}

// Registry maps experiment ids to runners for the CLI.
var Registry = map[string]func(io.Writer){
	"datasets":   DatasetsTable,
	"fig2":       Fig2CheckMerge,
	"fig3":       Fig3BuildMemory,
	"fig4":       Fig4ZeroRooting,
	"fig5":       Fig5NeighborBuffering,
	"fig6":       Fig6BiasedColoring,
	"fig7":       Fig7Scaling,
	"fig8":       Fig8ErrorDistributions,
	"fig9":       Fig9AccurateGraphlets,
	"fig10":      Fig10RarestGraphlet,
	"speedup":    TableBuildSpeedup,
	"tablesize":  TableSize,
	"samplerate": TableSamplingSpeed,
	"l1":         L1Accuracy,
	"lollipop":   LollipopLowerBound,
}
