package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/build"
	"repro/internal/ccbaseline"
	"repro/internal/coloring"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/treelet"
)

// exactCount is a thin indirection so figures.go can use it too.
func exactCount(g *graph.Graph, k int) (estimate.Counts, error) { return exact.Count(g, k) }

// ccBudget caps how long a single CC baseline build may take; beyond it we
// print a dash, mirroring the paper's dashes where CC failed by memory
// exhaustion or overflow.
const ccBudget = 90 * time.Second

// speedupGrid is the (graph, k) grid of the §5.1 tables.
var speedupGrid = []struct {
	ds string
	ks []int
}{
	{"facebook-s", []int{4, 5, 6}},
	{"dblp-s", []int{4, 5}},
	{"amazon-s", []int{4, 5}},
	{"orkut-s", []int{4}},
	{"berkstan-s", []int{4}},
	{"yelp-s", []int{4, 5}},
}

// TableBuildSpeedup reproduces the §5.1 "build-up speedup" table: motivo's
// build time vs CC's on the same coloring (paper: 2–5x, never slower).
func TableBuildSpeedup(w io.Writer) {
	fmt.Fprintf(w, "== Table (§5.1): build-up speedup of motivo over CC ==\n")
	fmt.Fprintf(w, "%-15s %3s %12s %12s %9s\n", "graph", "k", "CC", "motivo", "speedup")
	for _, row := range speedupGrid {
		d, _ := ByName(row.ds)
		g := d.Gen()
		for _, k := range row.ks {
			col := coloring.Uniform(g.NumNodes(), k, 701)
			cat := treelet.NewCatalog(k)
			ccTime, ok := timedCC(g, col, k)
			_, moStats, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
			if err != nil {
				panic(err)
			}
			if !ok {
				fmt.Fprintf(w, "%-15s %3d %12s %12v %9s\n", row.ds, k, "-",
					moStats.Duration.Round(time.Millisecond), "-")
				continue
			}
			fmt.Fprintf(w, "%-15s %3d %12v %12v %8.1fx\n", row.ds, k,
				ccTime.Round(time.Millisecond), moStats.Duration.Round(time.Millisecond),
				float64(ccTime)/float64(moStats.Duration))
		}
	}
}

// timedCC runs the CC build under the time cap.
func timedCC(g *graph.Graph, col *coloring.Coloring, k int) (time.Duration, bool) {
	done := make(chan time.Duration, 1)
	go func() {
		_, st, err := ccbaseline.Build(g, col, k)
		if err != nil {
			done <- -1
			return
		}
		done <- st.Duration
	}()
	select {
	case d := <-done:
		if d < 0 {
			return 0, false
		}
		return d, true
	case <-time.After(ccBudget):
		// The goroutine keeps running; acceptable for a one-shot
		// experiment binary.
		return 0, false
	}
}

// TableSize reproduces the §5.1 "count table size" table: CC's in-memory
// footprint vs motivo's compact table (paper: 2–8x smaller).
func TableSize(w io.Writer) {
	fmt.Fprintf(w, "== Table (§5.1): count table size, CC vs motivo ==\n")
	fmt.Fprintf(w, "%-15s %3s %14s %14s %9s\n", "graph", "k", "CC bytes", "motivo bytes", "ratio")
	for _, row := range speedupGrid {
		d, _ := ByName(row.ds)
		g := d.Gen()
		for _, k := range row.ks {
			col := coloring.Uniform(g.NumNodes(), k, 709)
			cat := treelet.NewCatalog(k)
			_, ccStats, err := ccbaseline.Build(g, col, k)
			if err != nil {
				panic(err)
			}
			_, moStats, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(w, "%-15s %3d %14d %14d %8.1fx\n", row.ds, k,
				ccStats.BytesEstimate, moStats.TableBytes,
				float64(ccStats.BytesEstimate)/float64(moStats.TableBytes))
		}
	}
}

// TableSamplingSpeed reproduces the §5.1 "sampling speed" table: motivo's
// samples/s vs CC's (paper: always ≥10x, up to ~100x).
func TableSamplingSpeed(w io.Writer) {
	fmt.Fprintf(w, "== Table (§5.1): sampling speed, motivo vs CC (samples/s) ==\n")
	fmt.Fprintf(w, "%-15s %3s %12s %12s %9s\n", "graph", "k", "CC", "motivo", "speedup")
	const S = 8000
	runs := []struct {
		ds string
		k  int
	}{
		{"facebook-s", 4}, {"facebook-s", 5},
		{"dblp-s", 4}, {"dblp-s", 5},
		{"yelp-s", 4}, {"berkstan-s", 4},
	}
	for _, r := range runs {
		d, _ := ByName(r.ds)
		g := d.Gen()
		col := coloring.Uniform(g.NumNodes(), r.k, 719)
		cat := treelet.NewCatalog(r.k)

		ccTab, _, err := ccbaseline.Build(g, col, r.k)
		if err != nil {
			panic(err)
		}
		ccSampler, err := ccbaseline.NewSampler(g.Neighbors, g.HasEdge, g.Degree, ccTab)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(727))
		start := time.Now()
		for i := 0; i < S; i++ {
			ccSampler.Sample(rng)
		}
		ccRate := S / time.Since(start).Seconds()

		moTab, _, err := build.Run(context.Background(), g, col, r.k, cat, build.DefaultOptions())
		if err != nil {
			panic(err)
		}
		urn, err := sample.NewUrn(g, col, moTab, cat)
		if err != nil {
			panic(err)
		}
		urn.BufferThreshold = 1000
		rng2 := rand.New(rand.NewSource(727))
		start = time.Now()
		for i := 0; i < S; i++ {
			urn.Sample(rng2)
		}
		moRate := S / time.Since(start).Seconds()
		fmt.Fprintf(w, "%-15s %3d %12.0f %12.0f %8.1fx\n", r.ds, r.k, ccRate, moRate, moRate/ccRate)
	}
}

// L1Accuracy reproduces the §5.2 ℓ1-error claim (below 5% everywhere,
// below 2.5% for k ≤ 7 — here measured against exact ESU counts).
func L1Accuracy(w io.Writer) {
	fmt.Fprintf(w, "== §5.2: ℓ1 error of the reconstructed graphlet distribution ==\n")
	fmt.Fprintf(w, "%-10s %3s %10s %10s\n", "graph", "k", "naive", "AGS")
	for _, ds := range accuracySets() {
		g := ds.Gen()
		for k := 4; k <= ds.MaxK; k++ {
			truth, err := exactCount(g, k)
			if err != nil {
				panic(err)
			}
			const budget = 60000
			nv := averageNaive(g, k, budget, 4)
			av := averageAGS(g, k, budget, 4)
			fmt.Fprintf(w, "%-10s %3d %9.2f%% %9.2f%%\n", ds.Name, k,
				100*estimate.L1(nv, truth), 100*estimate.L1(av, truth))
		}
	}
}

// LollipopLowerBound demonstrates Theorem 5: on the lollipop graph the
// k-path graphlet H has polynomially small frequency among the copies of
// its (only) spanning tree, so ANY sample(T)-based algorithm needs
// Ω(1/p_H) draws to see it once.
func LollipopLowerBound(w io.Writer) {
	fmt.Fprintf(w, "== Theorem 5: lollipop lower bound for sample(T) algorithms ==\n")
	cliqueN, tailLen, k := 30, 4, 6
	g := genLollipop(cliqueN, tailLen)
	truth, err := exactCount(g, k)
	if err != nil {
		panic(err)
	}
	// The k-path graphlet.
	var pathCount, total float64
	for code, c := range truth {
		total += c
		if isPathCode(k, code) {
			pathCount += c
		}
	}
	pH := pathCount / total
	fmt.Fprintf(w, "lollipop(%d,%d), k=%d: %0.f induced k-path copies of %.3g total graphlets (p_H = %.3g)\n",
		cliqueN, tailLen, k, pathCount, total, pH)
	fmt.Fprintf(w, "expected samples to see the path once: ~%.3g\n", 1/pH)

	// Sample the path *shape* and count how often the induced graphlet is
	// the path. On a graph this small an unlucky coloring can miss color 0
	// entirely (leaving the 0-rooted urn empty), so retry seeds.
	var urn *sample.Urn
	cat := treelet.NewCatalog(k)
	for seed := int64(733); ; seed++ {
		col := coloring.Uniform(g.NumNodes(), k, seed)
		tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
		if err != nil {
			panic(err)
		}
		urn, err = sample.NewUrn(g, col, tab, cat)
		if err != nil {
			panic(err)
		}
		if !urn.Empty() {
			break
		}
	}
	pathShape := pathShapeOf(k)
	su, err := urn.NewShapeUrn(pathShape)
	if err != nil {
		panic(err)
	}
	// A sample(T) call returns the induced path only when the drawn
	// colorful path-treelet copy spans an induced path occurrence, i.e.
	// with probability ≈ (#induced paths)/r_T — far below even p_H,
	// exactly Theorem 5's Θ(n^{1-k}) bound.
	rT := su.Total().Float64()
	fmt.Fprintf(w, "r_T (colorful path-treelet copies) = %.3g → per-draw hit probability ≈ %.3g\n",
		rT, pathCount*coloring.PUniform(k)/rT)
	rng := rand.New(rand.NewSource(739))
	const S = 50000
	hits := 0
	for i := 0; i < S; i++ {
		code, _ := su.Sample(rng)
		if isPathCode(k, code) {
			hits++
		}
	}
	fmt.Fprintf(w, "sample(path-shape) over %d draws: %d induced-path hits (rate %.3g)\n", S, hits, float64(hits)/S)
	fmt.Fprintf(w, "→ even shape-restricted sampling cannot beat Ω(1/p_H) here, as Theorem 5 states\n")
}
