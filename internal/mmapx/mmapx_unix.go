//go:build unix

package mmapx

import (
	"fmt"
	"os"
	"syscall"
)

// Map maps path read-only in its entirety (PROT_READ, MAP_SHARED). The
// descriptor is closed before returning — the mapping keeps the file alive
// on its own. Empty files cannot be mapped; callers reject them with their
// own size checks before calling (mmap of zero bytes is EINVAL).
func Map(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapx: file too large to map on this platform: %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapx: mmap %s: %w", path, err)
	}
	return data, nil
}

// Unmap releases a mapping returned by Map.
func Unmap(data []byte) error {
	return syscall.Munmap(data)
}
