// Package mmapx is the one place read-only file mappings are made: a thin
// portable shim over the platform mmap used by both the count-table loader
// (table.OpenMapped) and the host-graph loader (graph.OpenMapped). Callers
// own the returned byte slice's lifetime and must Unmap it exactly once;
// both users wrap that in an explicit Close plus a finalizer fallback.
package mmapx

import "errors"

// ErrUnsupported reports that this platform cannot memory-map files at
// all. Callers translate it into their own fallback signal (the table and
// graph packages both wrap it into their ErrNotMappable).
var ErrUnsupported = errors.New("mmapx: no mmap on this platform")
