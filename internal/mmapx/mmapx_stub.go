//go:build !unix

package mmapx

// Map on platforms without memory mapping always reports ErrUnsupported so
// callers fall back to their heap loaders.
func Map(path string) ([]byte, error) { return nil, ErrUnsupported }

// Unmap is a no-op on platforms without memory mapping.
func Unmap(data []byte) error { return nil }
