package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/registry"
)

func testServer(t *testing.T) (*Server, *graph.Graph, string) {
	t.Helper()
	g := gen.ErdosRenyi(70, 210, 11)
	path := t.TempDir() + "/serve.tbl"
	if _, _, err := core.BuildTable(g, core.Config{K: 4, Seed: 13}, path); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(registry.Config{CacheSize: 64})
	if _, err := reg.Open("default", g, path); err != nil {
		t.Fatal(err)
	}
	return New(Config{Registry: reg}), g, path
}

func doJSON(t *testing.T, srv *Server, method, target, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON response: %v\n%s", method, target, err, w.Body.String())
		}
	}
	return w
}

// TestCountEndpoint serves naive and AGS queries through the handler and
// asserts the JSON estimates equal a one-shot Count at the same seed — the
// HTTP layer must not perturb the engine's bit-identical results.
func TestCountEndpoint(t *testing.T) {
	srv, g, path := testServer(t)
	for _, tc := range []struct {
		body  string
		strat core.Strategy
	}{
		{`{"strategy":"naive","samples":4000,"seed":17}`, core.Naive},
		{`{"strategy":"ags","samples":4000,"seed":17,"coverThreshold":200,"sampleWorkers":2}`, core.AGS},
	} {
		var resp CountResponse
		w := doJSON(t, srv, http.MethodPost, "/count", tc.body, &resp)
		if w.Code != http.StatusOK {
			t.Fatalf("POST /count = %d: %s", w.Code, w.Body.String())
		}
		cfg := core.Config{
			K: 4, Colorings: 1, SamplesPerColoring: 4000,
			Strategy: tc.strat, CoverThreshold: 200, Seed: 17,
			TablePath: path,
		}
		if tc.strat == core.AGS {
			cfg.SampleWorkers = 2
		}
		want, err := core.Count(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if resp.K != 4 || resp.Strategy != tc.strat.String() {
			t.Errorf("resp header: k=%d strategy=%q", resp.K, resp.Strategy)
		}
		if len(resp.Counts) != len(want.Counts) {
			t.Fatalf("%v: %d estimates served, one-shot has %d", tc.strat, len(resp.Counts), len(want.Counts))
		}
		got := make(map[string]float64, len(resp.Counts))
		for _, e := range resp.Counts {
			got[e.Code] = e.Count
		}
		for code, v := range want.Counts {
			if got[code.String()] != v {
				t.Errorf("%v: estimate for %v differs: served %v, one-shot %v",
					tc.strat, code, got[code.String()], v)
			}
		}
	}
}

// TestCountEndpointTop asserts the top-N truncation keeps the largest
// estimates in order.
func TestCountEndpointTop(t *testing.T) {
	srv, _, _ := testServer(t)
	var resp CountResponse
	w := doJSON(t, srv, http.MethodPost, "/count", `{"samples":3000,"seed":5,"top":2}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /count = %d", w.Code)
	}
	if len(resp.Counts) != 2 {
		t.Fatalf("top=2 served %d estimates", len(resp.Counts))
	}
	if resp.Counts[0].Count < resp.Counts[1].Count {
		t.Error("estimates not sorted largest-first")
	}
	if resp.Counts[0].Description == "" {
		t.Error("estimate description empty")
	}
}

// TestCountEndpointEmptyBody: every request field is optional, so an empty
// body runs the all-defaults query instead of failing on io.EOF.
func TestCountEndpointEmptyBody(t *testing.T) {
	srv, _, _ := testServer(t)
	var resp CountResponse
	w := doJSON(t, srv, http.MethodPost, "/count", "", &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("empty-body POST /count = %d: %s", w.Code, w.Body.String())
	}
	if resp.Samples != 100000 || resp.Strategy != "naive" {
		t.Errorf("defaults not applied: samples=%d strategy=%q", resp.Samples, resp.Strategy)
	}
}

// TestCountEndpointErrors exercises the HTTP error mapping.
func TestCountEndpointErrors(t *testing.T) {
	srv, _, _ := testServer(t)
	cases := []struct {
		method, body string
		want         int
	}{
		{http.MethodGet, "", http.StatusMethodNotAllowed},
		{http.MethodPost, "{not json", http.StatusBadRequest},
		{http.MethodPost, `{"strategy":"exhaustive"}`, http.StatusBadRequest},
		{http.MethodPost, `{"samples":-5}`, http.StatusBadRequest},
		{http.MethodPost, `{"sampleWorkers":-1}`, http.StatusBadRequest},
		{http.MethodPost, `{"unknownField":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := doJSON(t, srv, tc.method, "/count", tc.body, nil)
		if w.Code != tc.want {
			t.Errorf("%s /count %q = %d, want %d", tc.method, tc.body, w.Code, tc.want)
		}
		var e errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s /count %q: error body not JSON: %s", tc.method, tc.body, w.Body.String())
		}
	}
}

// TestStatsAndHealth asserts the stats endpoint tracks traffic and reports
// the engine's amortized open cost.
func TestStatsAndHealth(t *testing.T) {
	srv, g, _ := testServer(t)
	w := doJSON(t, srv, http.MethodGet, "/healthz", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", w.Code)
	}

	if w := doJSON(t, srv, http.MethodPost, "/count", `{"samples":2000,"seed":3}`, nil); w.Code != http.StatusOK {
		t.Fatalf("POST /count = %d", w.Code)
	}
	var st Stats
	if w := doJSON(t, srv, http.MethodGet, "/stats", "", &st); w.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d", w.Code)
	}
	if st.K != 4 || st.Nodes != g.NumNodes() || st.Edges != g.NumEdges() {
		t.Errorf("stats shape: %+v", st)
	}
	if st.Queries != 1 || st.TotalSamples != 2000 {
		t.Errorf("traffic counters: queries=%d samples=%d", st.Queries, st.TotalSamples)
	}
	if st.OpenMs <= 0 || st.TableBytes <= 0 {
		t.Errorf("engine stats: openMs=%v tableBytes=%d", st.OpenMs, st.TableBytes)
	}
	if w := doJSON(t, srv, http.MethodPost, "/stats", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats = %d, want 405", w.Code)
	}
}

// TestCountRequestRejections is the table-driven hardening pass over the
// /count decoder: malformed JSON, type confusion, unknown fields, and
// out-of-range values must every one answer 400 with a descriptive error,
// and an oversize body must be cut off by the MaxBytesReader bound.
func TestCountRequestRejections(t *testing.T) {
	srv, _, _ := testServer(t)
	cases := []struct {
		name string
		body string
		want string // substring of the error field
	}{
		{"truncated-json", `{"samples":`, "bad request body"},
		{"not-json", `hello there`, "bad request body"},
		{"wrong-type", `{"samples":"many"}`, "bad request body"},
		{"unknown-field", `{"budget":5}`, "unknown field"},
		{"bad-strategy", `{"strategy":"quantum"}`, `unknown strategy "quantum"`},
		{"negative-samples", `{"samples":-3}`, "samples must be ≥ 1"},
		{"negative-top", `{"top":-1}`, "top must be ≥ 0"},
		{"bad-workers", `{"sampleWorkers":-1}`, "sample workers"},
		{"huge-workers", `{"sampleWorkers":100000}`, "sample workers"},
		{"bad-cover", `{"coverThreshold":-7}`, "cover threshold"},
		{"trailing-garbage", `{} {"samples":1}`, "bad request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doJSON(t, srv, http.MethodPost, "/count", tc.body, nil)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", w.Code, w.Body.String())
			}
			var resp struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("error response is not JSON: %s", w.Body.String())
			}
			if !strings.Contains(resp.Error, tc.want) {
				t.Fatalf("error %q does not contain %q", resp.Error, tc.want)
			}
		})
	}
}

// TestCountOversizeBody: a body beyond the 1 MiB bound must be rejected
// without buffering it into memory or panicking.
func TestCountOversizeBody(t *testing.T) {
	srv, _, _ := testServer(t)
	pad := strings.Repeat(" ", maxCountBody+512)
	w := doJSON(t, srv, http.MethodPost, "/count", pad+`{"samples":10}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversize body answered %d, want 400", w.Code)
	}
}

// TestCountEmptyBodyDefaults: an empty body is the all-defaults query
// (naive, 100k samples, seed 1) and must succeed.
func TestCountEmptyBodyDefaults(t *testing.T) {
	srv, _, _ := testServer(t)
	var resp CountResponse
	w := doJSON(t, srv, http.MethodPost, "/count", "", &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("empty body status = %d: %s", w.Code, w.Body.String())
	}
	if resp.Strategy != "naive" || resp.Samples != 100000 {
		t.Fatalf("defaults not applied on empty body: %+v", resp)
	}
	// Partial bodies default the missing fields only.
	w = doJSON(t, srv, http.MethodPost, "/count", `{"samples":200}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if resp.Strategy != "naive" || resp.Samples != 200 {
		t.Fatalf("defaults not applied: %+v", resp)
	}
}
