package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/registry"
)

// testV1Server builds a two-graph registry server: "alpha" (k=4) and
// "beta" (k=3), with a result cache.
func testV1Server(t *testing.T, cfg Config) (*Server, *registry.Registry) {
	t.Helper()
	reg := registry.New(registry.Config{CacheSize: 16})
	gA := gen.ErdosRenyi(60, 150, 3)
	pA := t.TempDir() + "/alpha.tbl"
	if _, _, err := core.BuildTable(gA, core.Config{K: 4, Seed: 5}, pA); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("alpha", gA, pA); err != nil {
		t.Fatal(err)
	}
	gB := gen.ErdosRenyi(50, 120, 9)
	pB := t.TempDir() + "/beta.tbl"
	if _, _, err := core.BuildTable(gB, core.Config{K: 3, Seed: 7}, pB); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("beta", gB, pB); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	return New(cfg), reg
}

// TestV1CountPerGraph: each named graph answers with its own table, the
// response names the graph, and /v1 responses carry Cache-Control:
// no-store so intermediaries never cache seeded results.
func TestV1CountPerGraph(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	for _, tc := range []struct {
		graph string
		k     int
	}{{"alpha", 4}, {"beta", 3}} {
		var resp CountResponse
		w := doJSON(t, srv, http.MethodPost, "/v1/graphs/"+tc.graph+"/count", `{"samples":2000,"seed":17}`, &resp)
		if w.Code != http.StatusOK {
			t.Fatalf("POST %s count = %d: %s", tc.graph, w.Code, w.Body.String())
		}
		if resp.Graph != tc.graph || resp.K != tc.k || len(resp.Counts) == 0 {
			t.Fatalf("%s response: graph=%q k=%d counts=%d", tc.graph, resp.Graph, resp.K, len(resp.Counts))
		}
		if cc := w.Header().Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("Cache-Control = %q, want no-store", cc)
		}
	}
}

// TestV1ErrorCodes: every v1 error carries a stable machine-readable
// code alongside the human-readable message.
func TestV1ErrorCodes(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	cases := []struct {
		method, target, body string
		status               int
		code                 string
	}{
		{http.MethodPost, "/v1/graphs/nope/count", `{"samples":100}`, http.StatusNotFound, "unknown_graph"},
		{http.MethodPost, "/v1/graphs/alpha/count", `{not json`, http.StatusBadRequest, "bad_request"},
		{http.MethodPost, "/v1/graphs/alpha/count", `{"samples":-4}`, http.StatusBadRequest, "bad_request"},
		{http.MethodGet, "/v1/graphs/alpha/count", "", http.StatusMethodNotAllowed, "bad_request"},
		{http.MethodPost, "/v1/batch", `{"graph":"nope","queries":[{}]}`, http.StatusNotFound, "unknown_graph"},
		{http.MethodPost, "/v1/batch", `{"graph":"alpha","queries":[]}`, http.StatusBadRequest, "bad_request"},
		{http.MethodGet, "/v1/batch", "", http.StatusMethodNotAllowed, "bad_request"},
		{http.MethodPost, "/v1/graphs", "", http.StatusMethodNotAllowed, "bad_request"},
	}
	for _, tc := range cases {
		w := doJSON(t, srv, tc.method, tc.target, tc.body, nil)
		if w.Code != tc.status {
			t.Errorf("%s %s = %d, want %d (%s)", tc.method, tc.target, w.Code, tc.status, w.Body.String())
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" || e.Code != tc.code {
			t.Errorf("%s %s error body: %s (want code %q)", tc.method, tc.target, w.Body.String(), tc.code)
		}
		if cc := w.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s %s: error responses must be no-store too, got %q", tc.method, tc.target, cc)
		}
	}
}

// TestV1CacheHitByteIdentical is the acceptance property of the result
// cache: a repeated explicitly-seeded query is served from the cache (the
// hit visible in /metrics) and its response is byte-identical to the cold
// one.
func TestV1CacheHitByteIdentical(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	body := `{"strategy":"ags","samples":3000,"seed":23,"coverThreshold":200}`
	w1 := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/count", body, nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("cold query = %d: %s", w1.Code, w1.Body.String())
	}
	if xc := w1.Header().Get("X-Cache"); xc != "miss" {
		t.Fatalf("cold query X-Cache = %q", xc)
	}
	w2 := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/count", body, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("warm query = %d", w2.Code)
	}
	if xc := w2.Header().Get("X-Cache"); xc != "hit" {
		t.Fatalf("warm query X-Cache = %q", xc)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cache hit response differs byte-for-byte from the cold response")
	}
	metrics := doJSON(t, srv, http.MethodGet, "/metrics", "", nil)
	if metrics.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", metrics.Code)
	}
	text := metrics.Body.String()
	for _, want := range []string{
		"motivo_result_cache_hits_total 1",
		"motivo_result_cache_misses_total 1",
		"motivo_queries_total 2",
		"motivo_samples_total 3000", // the hit drew nothing
		`motivo_graph_queries_total{graph="alpha"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestV1UnseededBypassesCache: a query without an explicit seed never
// touches the result cache.
func TestV1UnseededBypassesCache(t *testing.T) {
	srv, reg := testV1Server(t, Config{})
	body := `{"samples":1000}`
	for i := 0; i < 2; i++ {
		if w := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/count", body, nil); w.Code != http.StatusOK {
			t.Fatalf("query %d = %d", i, w.Code)
		}
	}
	st := reg.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Fatalf("unseeded queries touched the cache: %+v", st)
	}
	if st.Samples != 2000 {
		t.Fatalf("both unseeded runs must sample afresh: %+v", st)
	}
}

// TestV1Batch: a mixed batch answers per entry — bad entries carry their
// own error + code without failing the batch, and a valid entry's counts
// are identical to the same query on the single-count endpoint.
func TestV1Batch(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	batch := `{"graph":"alpha","queries":[
		{"samples":2000,"seed":31},
		{"samples":-5},
		{"strategy":"quantum"},
		{"strategy":"ags","samples":1500,"seed":7,"coverThreshold":100}
	]}`
	var resp BatchResponse
	w := doJSON(t, srv, http.MethodPost, "/v1/batch", batch, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d: %s", w.Code, w.Body.String())
	}
	if resp.Graph != "alpha" || len(resp.Results) != 4 {
		t.Fatalf("batch response shape: graph=%q results=%d", resp.Graph, len(resp.Results))
	}
	if r := resp.Results[0]; r.Count == nil || r.Error != "" || r.Count.K != 4 {
		t.Fatalf("entry 0 (valid): %+v", r)
	}
	if r := resp.Results[1]; r.Count != nil || !strings.Contains(r.Error, "samples must be ≥ 1") || r.Code != "bad_request" {
		t.Fatalf("entry 1 (bad samples): %+v", r)
	}
	if r := resp.Results[2]; r.Count != nil || !strings.Contains(r.Error, "unknown strategy") || r.Code != "bad_request" {
		t.Fatalf("entry 2 (bad strategy): %+v", r)
	}
	if r := resp.Results[3]; r.Count == nil || r.Count.Strategy != "ags" {
		t.Fatalf("entry 3 (ags): %+v", r)
	}
	// Entry 0 must agree exactly with the single-count endpoint at the
	// same seed (modulo the graph label and timing field).
	var single CountResponse
	if w := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/count", `{"samples":2000,"seed":31}`, &single); w.Code != http.StatusOK {
		t.Fatalf("single count = %d", w.Code)
	}
	got, want := resp.Results[0].Count.Counts, single.Counts
	if len(got) != len(want) {
		t.Fatalf("batch entry served %d estimates, single endpoint %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("estimate %d differs between batch and single endpoint: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestV1BatchDefaultGraph: an empty graph field falls back to the
// server's default graph.
func TestV1BatchDefaultGraph(t *testing.T) {
	srv, _ := testV1Server(t, Config{DefaultGraph: "beta"})
	var resp BatchResponse
	w := doJSON(t, srv, http.MethodPost, "/v1/batch", `{"queries":[{"samples":500,"seed":3}]}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d: %s", w.Code, w.Body.String())
	}
	if resp.Graph != "beta" || resp.Results[0].Count == nil || resp.Results[0].Count.K != 3 {
		t.Fatalf("default-graph batch: %+v", resp)
	}
}

// TestV1Graphs lists both graphs with residency and shape metadata.
func TestV1Graphs(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	var resp GraphsResponse
	w := doJSON(t, srv, http.MethodGet, "/v1/graphs", "", &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/graphs = %d", w.Code)
	}
	if len(resp.Graphs) != 2 || resp.Graphs[0].Name != "alpha" || resp.Graphs[1].Name != "beta" {
		t.Fatalf("graph list: %+v", resp.Graphs)
	}
	if g := resp.Graphs[0]; !g.Resident || g.K != 4 || g.Nodes != 60 || g.TableBytes <= 0 || g.OpenMs <= 0 {
		t.Fatalf("alpha info: %+v", g)
	}
	if g := resp.Graphs[1]; g.K != 3 || g.Opens != 1 {
		t.Fatalf("beta info: %+v", g)
	}
}

// TestMaxInflight429: beyond the in-flight limit the server answers 429
// with a Retry-After header and code "overloaded" (on v1, batch and the
// legacy alias alike), and recovers once a slot frees up.
func TestMaxInflight429(t *testing.T) {
	srv, _ := testV1Server(t, Config{MaxInflight: 1})
	// Occupy the only admission slot deterministically.
	srv.inflight <- struct{}{}
	for _, target := range []string{"/v1/graphs/alpha/count", "/v1/batch", "/count"} {
		body := `{"samples":100}`
		if target == "/v1/batch" {
			body = `{"graph":"alpha","queries":[{"samples":100}]}`
		}
		w := doJSON(t, srv, http.MethodPost, target, body, nil)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("POST %s at capacity = %d, want 429", target, w.Code)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("%s: 429 without Retry-After", target)
		}
		var e errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Code != "overloaded" {
			t.Fatalf("%s: 429 body %s", target, w.Body.String())
		}
	}
	if got := srv.rejected.Load(); got != 3 {
		t.Fatalf("rejected counter = %d, want 3", got)
	}
	metrics := doJSON(t, srv, http.MethodGet, "/metrics", "", nil)
	if !strings.Contains(metrics.Body.String(), "motivo_rejected_total 3") {
		t.Fatal("/metrics missing the rejection counter")
	}
	// Release the slot: requests flow again.
	<-srv.inflight
	if w := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/count", `{"samples":100}`, nil); w.Code != http.StatusOK {
		t.Fatalf("after release = %d", w.Code)
	}
}

// TestV1EvictionAndReopen: with a tiny memory budget only one engine
// stays resident; querying the evicted graph transparently reopens it
// through the HTTP path.
func TestV1EvictionAndReopen(t *testing.T) {
	reg := registry.New(registry.Config{MemBudget: 1})
	gA := gen.ErdosRenyi(40, 90, 3)
	pA := t.TempDir() + "/a.tbl"
	if _, _, err := core.BuildTable(gA, core.Config{K: 4, Seed: 5}, pA); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("a", gA, pA); err != nil {
		t.Fatal(err)
	}
	gB := gen.ErdosRenyi(40, 90, 7)
	pB := t.TempDir() + "/b.tbl"
	if _, _, err := core.BuildTable(gB, core.Config{K: 4, Seed: 9}, pB); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("b", gB, pB); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg})
	var graphs GraphsResponse
	doJSON(t, srv, http.MethodGet, "/v1/graphs", "", &graphs)
	residentCount := 0
	for _, g := range graphs.Graphs {
		if g.Resident {
			residentCount++
		}
	}
	if residentCount != 1 {
		t.Fatalf("budget of 1 byte should keep exactly one engine resident, got %d", residentCount)
	}
	// Query the evicted graph ("a" lost to "b"'s later open): it reopens.
	var resp CountResponse
	w := doJSON(t, srv, http.MethodPost, "/v1/graphs/a/count", `{"samples":500,"seed":3}`, &resp)
	if w.Code != http.StatusOK || resp.K != 4 {
		t.Fatalf("evicted graph query = %d (%s)", w.Code, w.Body.String())
	}
	metrics := doJSON(t, srv, http.MethodGet, "/metrics", "", nil)
	if !strings.Contains(metrics.Body.String(), `motivo_graph_opens_total{graph="a"} 2`) {
		t.Fatalf("expected a reload of graph a in /metrics:\n%s", metrics.Body.String())
	}
}
