// Package serve exposes an engine registry over HTTP — the multi-tenant
// serving layer of the build-once / query-many workflow. One process
// holds many named graphs; engines are opened once, LRU-evicted under a
// memory budget and transparently reopened; repeated explicitly-seeded
// queries are answered from the registry's result cache without sampling.
// Concurrent requests are race-safe because each query samples from its
// own urn clone, and a client disconnect cancels the request's sampling
// loop through the request context.
//
// Versioned API:
//
//	POST /v1/graphs/{name}/count   one query against a named graph
//	POST /v1/batch                 a query list off one engine resolution
//	GET  /v1/graphs                every registered graph + residency
//	GET  /metrics                  Prometheus text format
//
// Legacy single-graph API, aliased onto the default graph so pre-v1
// clients keep working:
//
//	POST /count   {"strategy":"ags","samples":50000,"seed":7,"top":10}
//	GET  /stats   engine + traffic statistics (open time, queries, …)
//	GET  /healthz liveness probe
//
// Admission control: Config.MaxInflight bounds concurrent sampling
// requests; beyond it the server answers 429 with a Retry-After header
// instead of queueing unbounded sampling work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graphlet"
	"repro/internal/registry"
)

// Config parameterizes New.
type Config struct {
	// Registry is the engine registry to serve (required).
	Registry *registry.Registry
	// DefaultGraph is the registered name the legacy /count and /stats
	// endpoints alias onto. Empty means the first registered name in List
	// order.
	DefaultGraph string
	// MaxInflight caps concurrent sampling requests (a batch counts as
	// one); beyond it requests answer 429 + Retry-After. 0 = unlimited.
	MaxInflight int
	// ErrorLog receives response-encoding failures and other server-side
	// faults; nil means log.Default().
	ErrorLog *log.Logger
}

// batchConcurrency bounds how many of a batch's entries sample at once;
// each concurrent entry gets its own urn clone off the shared engine.
const batchConcurrency = 4

// maxBatchEntries bounds a batch's query list; beyond it the request is a
// 400, not a way to queue unbounded work behind one admission slot.
const maxBatchEntries = 256

// Server is an http.Handler serving count queries from a registry.
type Server struct {
	reg          *registry.Registry
	defaultGraph string
	mux          *http.ServeMux
	started      time.Time
	log          *log.Logger

	// inflight is the admission semaphore (nil = unlimited); rejected
	// counts the requests turned away at the limit.
	inflight chan struct{}
	rejected atomic.Int64
}

// New wraps a registry into the HTTP API.
func New(cfg Config) *Server {
	s := &Server{
		reg:          cfg.Registry,
		defaultGraph: cfg.DefaultGraph,
		mux:          http.NewServeMux(),
		started:      time.Now(),
		log:          cfg.ErrorLog,
	}
	if s.log == nil {
		s.log = log.Default()
	}
	if s.defaultGraph == "" {
		if names := s.reg.List(); len(names) > 0 {
			s.defaultGraph = names[0].Name
		}
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	// v1 routes are registered without method patterns on purpose: the
	// mux's automatic 405 writes a plain-text body, and every v1 error —
	// including wrong methods — must be a JSON errorResponse with a code.
	s.mux.HandleFunc("/v1/graphs/{name}/count", s.handleV1Count)
	s.mux.HandleFunc("/v1/graphs/{name}/signatures", s.handleV1Signatures)
	s.mux.HandleFunc("/v1/graphs", s.handleV1Graphs)
	s.mux.HandleFunc("/v1/batch", s.handleV1Batch)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/count", s.handleCount)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v as an indented JSON response. Encode errors past the
// committed header can't change the status anymore, but they are logged —
// a response dying halfway is an operational signal, not noise to drop.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("serve: encoding %d response: %v", status, err)
	}
}

// writeV1JSON is writeJSON for the versioned API: seeded responses are
// reproducible but cache semantics belong to the server's own result
// cache, so intermediaries are told never to store them.
func (s *Server) writeV1JSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Cache-Control", "no-store")
	s.writeJSON(w, status, v)
}

func (s *Server) v1Error(w http.ResponseWriter, status int, code, msg string) {
	s.writeV1JSON(w, status, errorResponse{Error: msg, Code: code})
}

// admit acquires an admission slot (always succeeds when unlimited).
func (s *Server) admit() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		s.rejected.Add(1)
		return false
	}
}

func (s *Server) release() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// overloaded answers a request turned away by admission control.
func (s *Server) overloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	s.v1Error(w, http.StatusTooManyRequests, codeOverloaded,
		"server is at its in-flight sampling limit; retry shortly")
}

// maxCountBody bounds the /count request body: queries are a handful of
// scalar fields; a megabyte bounds any honest request and stops hostile
// bodies from buffering into server memory. Batch bodies scale it by the
// entry limit's order of magnitude.
const maxCountBody = 1 << 20
const maxBatchBody = 4 << 20

// queryFromRequest validates and defaults one wire-level query into an
// engine query — the single translation used by /count, /v1 count and
// every batch entry. The request's own fields are left as sent, so the
// caller can still see whether the seed was explicit (req.Seed != 0).
func queryFromRequest(req *CountRequest) (core.Query, error) {
	precision := req.Epsilon != 0 || req.Delta != 0 || req.TargetMotif != "" || req.MaxSamples != 0
	strategy := core.Naive
	if precision {
		// Run-to-precision is an AGS guarantee; default the strategy rather
		// than making every precision client spell it out.
		strategy = core.AGS
	}
	if req.Strategy != "" {
		var err error
		if strategy, err = core.ParseStrategy(req.Strategy); err != nil {
			return core.Query{}, err
		}
	}
	if req.Top < 0 {
		return core.Query{}, fmt.Errorf("top must be ≥ 0, got %d", req.Top)
	}
	q := core.Query{
		Strategy:       strategy,
		Samples:        req.Samples,
		CoverThreshold: req.CoverThreshold,
		Seed:           req.Seed,
		SampleWorkers:  req.SampleWorkers,
		Epsilon:        req.Epsilon,
		Delta:          req.Delta,
		MaxSamples:     req.MaxSamples,
	}
	if req.TargetMotif != "" {
		target, err := graphlet.ParseCode(req.TargetMotif)
		if err != nil {
			return core.Query{}, err
		}
		q.TargetMotif = target
	}
	if precision {
		if q.Delta == 0 {
			q.Delta = 0.05
		}
	} else if q.Samples == 0 {
		q.Samples = 100000
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	// One validation path for every entry point (satellite of the paper's
	// serving story): the engine's own Query.Validate.
	if err := q.Validate(); err != nil {
		return core.Query{}, err
	}
	return q, nil
}

// decodeCountRequest parses and validates a count body into an engine
// query. It is total: any input bytes produce either a valid query or a
// descriptive error, never a panic — the property FuzzCountRequest checks.
// An empty body is the all-defaults query (every field is optional).
func decodeCountRequest(body io.Reader) (core.Query, *CountRequest, error) {
	var req CountRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if !errors.Is(err, io.EOF) {
			return core.Query{}, nil, fmt.Errorf("bad request body: %w", err)
		}
	} else if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		// One JSON value is the whole request; trailing data is a malformed
		// request, not something to silently ignore.
		return core.Query{}, nil, fmt.Errorf("bad request body: trailing data after the query object")
	}
	q, err := queryFromRequest(&req)
	if err != nil {
		return core.Query{}, nil, err
	}
	return q, &req, nil
}

// countOn resolves one decoded query against a named graph and renders the
// response; the error triple is (status, code, message) for the caller's
// error envelope.
func (s *Server) countOn(ctx context.Context, name string, q core.Query, req *CountRequest) (*CountResponse, bool, int, string, error) {
	// An explicit seed makes the run deterministic and therefore cacheable;
	// seed 0/unset means "default seed" and always samples afresh.
	seeded := req.Seed != 0
	qres, hit, err := s.reg.Count(ctx, name, q, seeded)
	if err != nil {
		var unknown *registry.UnknownGraphError
		switch {
		case errors.As(err, &unknown):
			return nil, false, http.StatusNotFound, codeUnknownGraph, err
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return nil, false, http.StatusServiceUnavailable, codeCanceled, err
		default:
			return nil, false, http.StatusInternalServerError, codeInternal, err
		}
	}
	// K comes from the registry's metadata, not the engine: a cache hit
	// must not force an evicted engine back into memory just to render.
	k, _, err := s.reg.Meta(name)
	if err != nil {
		return nil, false, http.StatusInternalServerError, codeInternal, err
	}
	return renderCountResponse(k, q.Strategy, req.Top, qres), hit, 0, "", nil
}

// renderCountResponse renders a query result with estimates in
// deterministic largest-first order, so a cached result re-renders to the
// exact bytes its cold run produced. Sorting and truncation run on the raw
// codes first; the Describe/format work happens only for the entries
// actually served.
func renderCountResponse(k int, strategy core.Strategy, top int, qres *core.QueryResult) *CountResponse {
	type rawEstimate struct {
		code  graphlet.Code
		count float64
	}
	raw := make([]rawEstimate, 0, len(qres.Counts))
	for code, c := range qres.Counts {
		raw = append(raw, rawEstimate{code, c})
	}
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].count != raw[j].count {
			return raw[i].count > raw[j].count
		}
		return raw[i].code.Less(raw[j].code)
	})
	if top > 0 && top < len(raw) {
		raw = raw[:top]
	}
	resp := &CountResponse{
		K:            k,
		Strategy:     strategy.String(),
		Samples:      qres.Samples,
		Covered:      qres.Covered,
		SampleTimeMs: float64(qres.SampleTime.Microseconds()) / 1000,
		Achieved:     renderAchieved(qres.Achieved),
		Counts:       make([]CountEstimate, 0, len(raw)),
	}
	for _, e := range raw {
		resp.Counts = append(resp.Counts, CountEstimate{
			Code:        e.code.String(),
			Description: graphlet.Describe(k, e.code),
			Count:       e.count,
			Frequency:   qres.Frequencies[e.code],
		})
	}
	return resp
}

// renderAchieved maps an engine certificate onto the wire. A +Inf achieved
// eps (nothing certifiable) has no JSON encoding, so it renders as an
// absent eps field rather than a sentinel number.
func renderAchieved(c *core.Certificate) *AchievedInfo {
	if c == nil {
		return nil
	}
	info := &AchievedInfo{Delta: c.Delta, Samples: c.Samples, Met: c.Met}
	if !math.IsInf(c.Eps, 1) {
		eps := c.Eps
		info.Eps = &eps
	}
	return info
}

// handleV1Count serves POST /v1/graphs/{name}/count.
func (s *Server) handleV1Count(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.v1Error(w, http.StatusMethodNotAllowed, codeBadRequest, "POST a JSON query to this endpoint")
		return
	}
	name := r.PathValue("name")
	query, req, err := decodeCountRequest(http.MaxBytesReader(w, r.Body, maxCountBody))
	if err != nil {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if !s.admit() {
		s.overloaded(w)
		return
	}
	defer s.release()
	resp, hit, status, code, err := s.countOn(r.Context(), name, query, req)
	if err != nil {
		if r.Context().Err() != nil {
			return // the client is gone; there is nobody to answer
		}
		s.v1Error(w, status, code, err.Error())
		return
	}
	resp.Graph = name
	// The cache disposition rides in a header so hit and miss bodies stay
	// byte-identical (the acceptance property of the result cache).
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.writeV1JSON(w, http.StatusOK, resp)
}

// defaultTopNodes bounds a whole-graph signatures response when the client
// didn't say how many nodes it wants: every touched node would scale the
// body with the graph, not the query.
const defaultTopNodes = 50

// handleV1Signatures serves POST /v1/graphs/{name}/signatures: one
// sampling run whose per-draw vertex incidence is folded into per-node
// graphlet degree vectors. The sampling fields behave exactly like a count
// query's; results are never cached (bodies are per-node and large, and
// the engine's fixed stream decomposition already makes seeded runs
// reproducible at any worker count).
func (s *Server) handleV1Signatures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.v1Error(w, http.StatusMethodNotAllowed, codeBadRequest, "POST a JSON query to this endpoint")
		return
	}
	name := r.PathValue("name")
	var req SignaturesRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCountBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if !errors.Is(err, io.EOF) {
			s.v1Error(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
	} else if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest, "bad request body: trailing data after the query object")
		return
	}
	if req.TopNodes < 0 {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("topNodes must be ≥ 0, got %d", req.TopNodes))
		return
	}
	// The sampling fields translate through the same single path as every
	// count entry point, so defaults and validation cannot drift.
	creq := CountRequest{
		Strategy:       req.Strategy,
		Samples:        req.Samples,
		Seed:           req.Seed,
		CoverThreshold: req.CoverThreshold,
		SampleWorkers:  req.SampleWorkers,
		Epsilon:        req.Epsilon,
		Delta:          req.Delta,
		TargetMotif:    req.TargetMotif,
		MaxSamples:     req.MaxSamples,
	}
	q, err := queryFromRequest(&creq)
	if err != nil {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	if !s.admit() {
		s.overloaded(w)
		return
	}
	defer s.release()
	sres, err := s.reg.Signatures(r.Context(), name, q, req.Nodes)
	if err != nil {
		if r.Context().Err() != nil {
			return // the client is gone; there is nobody to answer
		}
		var unknown *registry.UnknownGraphError
		switch {
		case errors.As(err, &unknown):
			s.v1Error(w, http.StatusNotFound, codeUnknownGraph, err.Error())
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.v1Error(w, http.StatusServiceUnavailable, codeCanceled, err.Error())
		default:
			// Node-range and target-motif checks live in the engine (they
			// need the host graph), so what surfaces here from a resident
			// engine is a malformed query, not a server fault.
			s.v1Error(w, http.StatusBadRequest, codeBadRequest, err.Error())
		}
		return
	}
	k, _, err := s.reg.Meta(name)
	if err != nil {
		s.v1Error(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	s.writeV1JSON(w, http.StatusOK, renderSignaturesResponse(name, k, q.Strategy, &req, sres))
}

// renderSignaturesResponse orders nodes by descending incidence total (ties
// by ascending id) and truncates to the requested top-m before the
// Describe/format work runs.
func renderSignaturesResponse(name string, k int, strategy core.Strategy, req *SignaturesRequest, sres *core.SignaturesResult) *SignaturesResponse {
	nodes := make([]core.NodeSignature, len(sres.Nodes))
	copy(nodes, sres.Nodes)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Total != nodes[j].Total {
			return nodes[i].Total > nodes[j].Total
		}
		return nodes[i].Node < nodes[j].Node
	})
	top := req.TopNodes
	if top == 0 && len(req.Nodes) == 0 {
		top = defaultTopNodes
	}
	if top > 0 && top < len(nodes) {
		nodes = nodes[:top]
	}
	resp := &SignaturesResponse{
		Graph:        name,
		K:            k,
		Strategy:     strategy.String(),
		Samples:      sres.Samples,
		Covered:      sres.Covered,
		SampleTimeMs: float64(sres.SampleTime.Microseconds()) / 1000,
		Achieved:     renderAchieved(sres.Achieved),
		Motifs:       make([]SignatureMotif, 0, len(sres.Motifs)),
		Nodes:        make([]SignatureNode, 0, len(nodes)),
	}
	for _, c := range sres.Motifs {
		resp.Motifs = append(resp.Motifs, SignatureMotif{Code: c.String(), Description: graphlet.Describe(k, c)})
	}
	for _, n := range nodes {
		resp.Nodes = append(resp.Nodes, SignatureNode{Node: n.Node, Total: n.Total, Vector: n.Counts})
	}
	return resp
}

// handleV1Graphs serves GET /v1/graphs.
func (s *Server) handleV1Graphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.v1Error(w, http.StatusMethodNotAllowed, codeBadRequest, "GET /v1/graphs")
		return
	}
	infos := s.reg.List()
	resp := GraphsResponse{Graphs: make([]GraphInfo, 0, len(infos))}
	for _, in := range infos {
		resp.Graphs = append(resp.Graphs, GraphInfo{
			Name:        in.Name,
			Resident:    in.Resident,
			K:           in.K,
			Nodes:       in.Nodes,
			Edges:       in.Edges,
			TableBytes:  in.TableBytes,
			MappedBytes: in.MappedBytes,
			OpenMs:      float64(in.OpenTime.Microseconds()) / 1000,
			Opens:       in.Opens,
			Queries:     in.Queries,
		})
	}
	s.writeV1JSON(w, http.StatusOK, resp)
}

// handleV1Batch serves POST /v1/batch: the whole list runs against one
// named graph, resolved (and, if evicted, reopened) exactly once; entries
// sample concurrently up to batchConcurrency, each on its own urn clone.
// A bad entry answers inside its own slot; it does not fail the batch.
func (s *Server) handleV1Batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.v1Error(w, http.StatusMethodNotAllowed, codeBadRequest, "POST a JSON batch to /v1/batch")
		return
	}
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest, "bad request body: trailing data after the batch object")
		return
	}
	if len(breq.Queries) == 0 {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest, "batch needs a non-empty queries list")
		return
	}
	if len(breq.Queries) > maxBatchEntries {
		s.v1Error(w, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("batch is limited to %d queries, got %d", maxBatchEntries, len(breq.Queries)))
		return
	}
	name := breq.Graph
	if name == "" {
		name = s.defaultGraph
	}
	if !s.admit() {
		s.overloaded(w)
		return
	}
	defer s.release()
	// One engine resolution for the whole batch: the expensive part of
	// serving an evicted graph (table open + urn build) happens here once;
	// per-entry Counts then find the engine resident.
	if _, err := s.reg.Get(r.Context(), name); err != nil {
		var unknown *registry.UnknownGraphError
		if errors.As(err, &unknown) {
			s.v1Error(w, http.StatusNotFound, codeUnknownGraph, err.Error())
		} else if r.Context().Err() == nil {
			s.v1Error(w, http.StatusInternalServerError, codeInternal, err.Error())
		}
		return
	}
	results := make([]BatchResult, len(breq.Queries))
	sem := make(chan struct{}, batchConcurrency)
	done := make(chan int)
	for i := range breq.Queries {
		go func(i int) {
			defer func() { done <- i }()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := &breq.Queries[i]
			q, err := queryFromRequest(req)
			if err != nil {
				results[i] = BatchResult{Error: err.Error(), Code: codeBadRequest}
				return
			}
			resp, _, _, code, err := s.countOn(r.Context(), name, q, req)
			if err != nil {
				results[i] = BatchResult{Error: err.Error(), Code: code}
				return
			}
			results[i] = BatchResult{Count: resp}
		}(i)
	}
	for range breq.Queries {
		<-done
	}
	if r.Context().Err() != nil {
		return // client gone mid-batch; drop the partial answer
	}
	s.writeV1JSON(w, http.StatusOK, BatchResponse{Graph: name, Results: results})
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format — counters for queries, samples, the result cache, evictions and
// admission control, plus per-graph open cost and traffic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET /metrics", http.StatusMethodNotAllowed)
		return
	}
	st := s.reg.Stats()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("motivo_queries_total", "Count queries served (fresh and cached).", st.Queries)
	counter("motivo_samples_total", "Samples drawn across all queries (cache hits draw none).", st.Samples)
	counter("motivo_signature_queries_total", "Per-node signature queries served.", st.SignatureQueries)
	counter("motivo_precision_queries_total", "Run-to-precision queries served.", st.PrecisionQueries)
	counter("motivo_precision_met_total", "Run-to-precision queries whose certificate met the requested epsilon.", st.PrecisionMet)
	counter("motivo_result_cache_hits_total", "Seeded-result cache hits.", st.CacheHits)
	counter("motivo_result_cache_misses_total", "Seeded-result cache misses.", st.CacheMisses)
	gauge("motivo_result_cache_entries", "Seeded-result cache entries resident.", float64(st.CacheEntries))
	counter("motivo_engine_evictions_total", "Engines evicted under the memory budget or by request.", st.Evictions)
	counter("motivo_rejected_total", "Requests rejected by admission control (429).", s.rejected.Load())
	gauge("motivo_graphs_registered", "Graphs registered.", float64(st.Graphs))
	gauge("motivo_graphs_resident", "Graphs with a loaded engine.", float64(st.Resident))
	gauge("motivo_resident_table_bytes", "Summed heap table payload of resident engines (what the memory budget caps).", float64(st.ResidentBytes))
	gauge("motivo_mapped_table_bytes", "Summed memory-mapped table bytes of resident engines (page-cache residency, not budgeted).", float64(st.MappedBytes))
	gauge("motivo_mem_budget_bytes", "Configured resident-table budget (0 = unlimited).", float64(st.MemBudget))
	gauge("motivo_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())

	infos := s.reg.List()
	fmt.Fprintf(&b, "# HELP motivo_graph_open_seconds Duration of the graph's most recent table open.\n# TYPE motivo_graph_open_seconds gauge\n")
	for _, in := range infos {
		fmt.Fprintf(&b, "motivo_graph_open_seconds{graph=%q} %g\n", in.Name, in.OpenTime.Seconds())
	}
	fmt.Fprintf(&b, "# HELP motivo_graph_opens_total Table loads (first open plus reloads after eviction).\n# TYPE motivo_graph_opens_total counter\n")
	for _, in := range infos {
		fmt.Fprintf(&b, "motivo_graph_opens_total{graph=%q} %d\n", in.Name, in.Opens)
	}
	fmt.Fprintf(&b, "# HELP motivo_graph_queries_total Queries served per graph.\n# TYPE motivo_graph_queries_total counter\n")
	for _, in := range infos {
		fmt.Fprintf(&b, "motivo_graph_queries_total{graph=%q} %d\n", in.Name, in.Queries)
	}
	fmt.Fprintf(&b, "# HELP motivo_graph_table_bytes Packed table payload per graph (last known when evicted).\n# TYPE motivo_graph_table_bytes gauge\n")
	for _, in := range infos {
		fmt.Fprintf(&b, "motivo_graph_table_bytes{graph=%q} %d\n", in.Name, in.TableBytes)
	}
	fmt.Fprintf(&b, "# HELP motivo_graph_resident Whether the graph's engine is loaded.\n# TYPE motivo_graph_resident gauge\n")
	for _, in := range infos {
		resident := 0
		if in.Resident {
			resident = 1
		}
		fmt.Fprintf(&b, "motivo_graph_resident{graph=%q} %d\n", in.Name, resident)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := io.WriteString(w, b.String()); err != nil {
		s.log.Printf("serve: writing /metrics: %v", err)
	}
}

// handleCount serves the legacy POST /count as a thin alias onto the
// default graph: same decoding, same registry path (including the result
// cache and admission control), historical response shape.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a JSON query to /count", Code: codeBadRequest})
		return
	}
	query, req, err := decodeCountRequest(http.MaxBytesReader(w, r.Body, maxCountBody))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Code: codeBadRequest})
		return
	}
	if !s.admit() {
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: "server is at its in-flight sampling limit; retry shortly", Code: codeOverloaded})
		return
	}
	defer s.release()
	resp, _, status, code, err := s.countOn(r.Context(), s.defaultGraph, query, req)
	if err != nil {
		if r.Context().Err() != nil {
			return // the client is gone; there is nobody to answer
		}
		s.writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleStats serves the legacy GET /stats: the default graph's engine
// statistics plus server-wide traffic counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET /stats", Code: codeBadRequest})
		return
	}
	eng, err := s.reg.Get(r.Context(), s.defaultGraph)
	if err != nil {
		var unknown *registry.UnknownGraphError
		code := codeInternal
		status := http.StatusInternalServerError
		if errors.As(err, &unknown) {
			code, status = codeUnknownGraph, http.StatusNotFound
		}
		s.writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
		return
	}
	est := eng.Stats()
	rst := s.reg.Stats()
	s.writeJSON(w, http.StatusOK, Stats{
		K:            est.K,
		Nodes:        est.Nodes,
		Edges:        est.Edges,
		TableBytes:   est.TableBytes,
		OpenMs:       float64(est.OpenTime.Microseconds()) / 1000,
		UptimeSec:    time.Since(s.started).Seconds(),
		Queries:      rst.Queries,
		TotalSamples: rst.Samples,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
