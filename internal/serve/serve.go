// Package serve exposes a core.Engine over HTTP — the serving layer of the
// build-once / query-many workflow. One long-lived engine (table opened and
// master urn built once, at startup) answers JSON count queries with
// per-request strategy, budget and seed; concurrent requests are race-safe
// because each one samples from its own urn clone, and a client disconnect
// cancels the request's sampling loop through the request context.
//
// Endpoints:
//
//	POST /count   {"strategy":"ags","samples":50000,"seed":7,"top":10}
//	GET  /stats   engine + traffic statistics (open time, queries served, …)
//	GET  /healthz liveness probe
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	motivo "repro"
	"repro/internal/core"
	"repro/internal/graphlet"
)

// Server is an http.Handler serving count queries from one Engine.
type Server struct {
	eng     *core.Engine
	mux     *http.ServeMux
	started time.Time

	queries atomic.Int64 // successfully served /count requests
	samples atomic.Int64 // total samples drawn across them
}

// New wraps an engine into an HTTP handler.
func New(eng *core.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/count", s.handleCount)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CountRequest is the JSON body of POST /count. Every field is optional:
// the zero value runs 100k naive samples at seed 1, the defaults of the
// library's Query.
type CountRequest struct {
	// Strategy is "naive" (default) or "ags".
	Strategy string `json:"strategy"`
	// Samples is the sampling budget. Default 100000.
	Samples int `json:"samples"`
	// Seed makes the query reproducible. Default 1.
	Seed int64 `json:"seed"`
	// CoverThreshold is AGS's c̄. Default 1000.
	CoverThreshold int `json:"coverThreshold"`
	// SampleWorkers parallelizes the query across urn clones.
	SampleWorkers int `json:"sampleWorkers"`
	// Top truncates the response to the N largest estimates (0 = all).
	Top int `json:"top"`
}

// CountEstimate is one graphlet's estimate in a CountResponse.
type CountEstimate struct {
	// Code is the canonical graphlet code; Description a human-readable
	// rendering ("5-clique", "4-star", …).
	Code        string  `json:"code"`
	Description string  `json:"description"`
	Count       float64 `json:"count"`
	Frequency   float64 `json:"frequency"`
}

// CountResponse is the JSON body answering POST /count.
type CountResponse struct {
	K            int             `json:"k"`
	Strategy     string          `json:"strategy"`
	Samples      int             `json:"samples"`
	Covered      int             `json:"covered"`
	SampleTimeMs float64         `json:"sampleTimeMs"`
	Counts       []CountEstimate `json:"counts"`
}

// Stats is the JSON body answering GET /stats.
type Stats struct {
	K          int   `json:"k"`
	Nodes      int   `json:"nodes"`
	Edges      int64 `json:"edges"`
	TableBytes int64 `json:"tableBytes"`
	// OpenMs is the one-time table open + urn construction cost the engine
	// amortizes over every query it serves.
	OpenMs       float64 `json:"openMs"`
	UptimeSec    float64 `json:"uptimeSec"`
	Queries      int64   `json:"queries"`
	TotalSamples int64   `json:"totalSamples"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// maxCountBody bounds the /count request body: queries are a handful of
// scalar fields; a megabyte bounds any honest request and stops hostile
// bodies from buffering into server memory.
const maxCountBody = 1 << 20

// decodeCountRequest parses and validates a /count body into an engine
// query. It is total: any input bytes produce either a valid query or a
// descriptive error, never a panic — the property FuzzCountRequest checks.
// An empty body is the all-defaults query (every field is optional).
func decodeCountRequest(body io.Reader) (core.Query, *CountRequest, error) {
	var req CountRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if !errors.Is(err, io.EOF) {
			return core.Query{}, nil, fmt.Errorf("bad request body: %w", err)
		}
	} else if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		// One JSON value is the whole request; trailing data is a malformed
		// request, not something to silently ignore.
		return core.Query{}, nil, fmt.Errorf("bad request body: trailing data after the query object")
	}
	strategy := core.Naive
	if req.Strategy != "" {
		var err error
		if strategy, err = core.ParseStrategy(req.Strategy); err != nil {
			return core.Query{}, nil, err
		}
	}
	if req.Samples == 0 {
		req.Samples = 100000
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	// Validate the query shape here so client mistakes answer 400; any
	// error the engine itself returns past this point is a server fault.
	if req.Samples < 1 {
		return core.Query{}, nil, fmt.Errorf("samples must be ≥ 1, got %d", req.Samples)
	}
	if req.Top < 0 {
		return core.Query{}, nil, fmt.Errorf("top must be ≥ 0, got %d", req.Top)
	}
	if err := core.ValidateSampleWorkers(req.SampleWorkers); err != nil {
		return core.Query{}, nil, err
	}
	if req.CoverThreshold != 0 {
		if err := core.ValidateCoverThreshold(req.CoverThreshold); err != nil {
			return core.Query{}, nil, err
		}
	}
	return core.Query{
		Strategy:       strategy,
		Samples:        req.Samples,
		CoverThreshold: req.CoverThreshold,
		Seed:           req.Seed,
		SampleWorkers:  req.SampleWorkers,
	}, &req, nil
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST a JSON query to /count"})
		return
	}
	query, req, err := decodeCountRequest(http.MaxBytesReader(w, r.Body, maxCountBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	qres, err := s.eng.Count(r.Context(), query)
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			// The client is gone; there is nobody to answer.
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	s.queries.Add(1)
	s.samples.Add(int64(qres.Samples))
	writeJSON(w, http.StatusOK, s.countResponse(query.Strategy, req.Top, qres))
}

// countResponse renders a query result with estimates in deterministic
// largest-first order. Sorting and truncation run on the raw codes first;
// the Describe/format work happens only for the entries actually served.
func (s *Server) countResponse(strategy core.Strategy, top int, qres *core.QueryResult) *CountResponse {
	k := s.eng.K()
	type rawEstimate struct {
		code  graphlet.Code
		count float64
	}
	raw := make([]rawEstimate, 0, len(qres.Counts))
	for code, c := range qres.Counts {
		raw = append(raw, rawEstimate{code, c})
	}
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].count != raw[j].count {
			return raw[i].count > raw[j].count
		}
		return raw[i].code.Less(raw[j].code)
	})
	if top > 0 && top < len(raw) {
		raw = raw[:top]
	}
	resp := &CountResponse{
		K:            k,
		Strategy:     strategy.String(),
		Samples:      qres.Samples,
		Covered:      qres.Covered,
		SampleTimeMs: float64(qres.SampleTime.Microseconds()) / 1000,
		Counts:       make([]CountEstimate, 0, len(raw)),
	}
	for _, e := range raw {
		resp.Counts = append(resp.Counts, CountEstimate{
			Code:        e.code.String(),
			Description: motivo.Describe(k, e.code),
			Count:       e.count,
			Frequency:   qres.Frequencies[e.code],
		})
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET /stats"})
		return
	}
	g := s.eng.Graph()
	writeJSON(w, http.StatusOK, Stats{
		K:            s.eng.K(),
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		TableBytes:   s.eng.TableBytes(),
		OpenMs:       float64(s.eng.OpenTime().Microseconds()) / 1000,
		UptimeSec:    time.Since(s.started).Seconds(),
		Queries:      s.queries.Load(),
		TotalSamples: s.samples.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
