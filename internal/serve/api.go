package serve

// Wire types of the HTTP API, shared by the /v1 handlers and the legacy
// single-graph aliases. Everything in this file is a JSON contract:
// field additions must be backward compatible (omitempty on anything the
// legacy endpoints don't set) and nothing here may depend on handler
// internals.

// CountRequest is the JSON body of POST /count and
// POST /v1/graphs/{name}/count, and the element type of a batch's query
// list. Every field is optional: the zero value runs 100k naive samples
// at seed 1, the defaults of the library's Query.
type CountRequest struct {
	// Strategy is "naive" (default) or "ags".
	Strategy string `json:"strategy"`
	// Samples is the sampling budget. Default 100000.
	Samples int `json:"samples"`
	// Seed makes the query reproducible. Default 1. A query whose seed is
	// set explicitly (non-zero) is eligible for the server's seeded-result
	// cache; omitting it (or sending 0) bypasses the cache.
	Seed int64 `json:"seed"`
	// CoverThreshold is AGS's c̄. Default 1000.
	CoverThreshold int `json:"coverThreshold"`
	// SampleWorkers parallelizes the query across urn clones.
	SampleWorkers int `json:"sampleWorkers"`
	// Top truncates the response to the N largest estimates (0 = all).
	Top int `json:"top"`

	// Epsilon and Delta switch the query into run-to-precision mode: the
	// server samples until the estimate is certified within relative error
	// epsilon at confidence 1-delta (Theorem 3 of the paper), instead of
	// drawing a fixed budget. Mutually exclusive with Samples; requires the
	// "ags" strategy (the default when a precision field is set). Delta
	// defaults to 0.05 when only epsilon is sent.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// TargetMotif names the single canonical graphlet code (e.g. "g3b") the
	// certificate must cover; empty certifies every tallied motif.
	TargetMotif string `json:"targetMotif"`
	// MaxSamples caps a run-to-precision query's draws (0 = the engine's
	// default cap). The response's achieved.met reports whether the target
	// precision was reached within the cap.
	MaxSamples int `json:"maxSamples"`
}

// AchievedInfo is the precision certificate of a run-to-precision query.
type AchievedInfo struct {
	// Eps is the certified relative error at confidence 1-delta; absent
	// when nothing was certifiable (the bound was vacuous at the cap).
	Eps *float64 `json:"eps,omitempty"`
	// Delta is the requested confidence parameter the certificate is at.
	Delta float64 `json:"delta"`
	// Samples is the number of draws the run actually made.
	Samples int `json:"samples"`
	// Met reports whether the certified eps reached the requested epsilon.
	Met bool `json:"met"`
}

// CountEstimate is one graphlet's estimate in a CountResponse.
type CountEstimate struct {
	// Code is the canonical graphlet code; Description a human-readable
	// rendering ("5-clique", "4-star", …).
	Code        string  `json:"code"`
	Description string  `json:"description"`
	Count       float64 `json:"count"`
	Frequency   float64 `json:"frequency"`
}

// CountResponse is the JSON body answering a count query. Graph is set by
// the /v1 handlers only; the legacy /count endpoint (which serves exactly
// one graph) omits it, keeping its historical body byte-stable.
type CountResponse struct {
	Graph        string          `json:"graph,omitempty"`
	K            int             `json:"k"`
	Strategy     string          `json:"strategy"`
	Samples      int             `json:"samples"`
	Covered      int             `json:"covered"`
	SampleTimeMs float64         `json:"sampleTimeMs"`
	Achieved     *AchievedInfo   `json:"achieved,omitempty"`
	Counts       []CountEstimate `json:"counts"`
}

// SignaturesRequest is the JSON body of POST /v1/graphs/{name}/signatures.
// The sampling fields mean exactly what they do on a count query (including
// the run-to-precision fields); Nodes and TopNodes shape the per-node
// output only.
type SignaturesRequest struct {
	Strategy       string  `json:"strategy"`
	Samples        int     `json:"samples"`
	Seed           int64   `json:"seed"`
	CoverThreshold int     `json:"coverThreshold"`
	SampleWorkers  int     `json:"sampleWorkers"`
	Epsilon        float64 `json:"epsilon"`
	Delta          float64 `json:"delta"`
	TargetMotif    string  `json:"targetMotif"`
	MaxSamples     int     `json:"maxSamples"`
	// Nodes restricts the signatures to these vertex ids; empty means every
	// node touched by at least one sample.
	Nodes []int32 `json:"nodes"`
	// TopNodes truncates the response to the N nodes with the largest
	// incidence totals. 0 defaults to 50 when Nodes is empty (whole-graph
	// responses would otherwise scale with the graph) and to "all" when an
	// explicit node list was sent.
	TopNodes int `json:"topNodes"`
}

// SignatureMotif is one tallied motif in a SignaturesResponse; every node
// vector aligns index-for-index with the motifs list.
type SignatureMotif struct {
	Code        string `json:"code"`
	Description string `json:"description"`
}

// SignatureNode is one node's graphlet degree vector.
type SignatureNode struct {
	Node int32 `json:"node"`
	// Total is the number of sampled occurrences touching the node.
	Total int64 `json:"total"`
	// Vector is the per-motif incidence tally, aligned with motifs.
	Vector []int64 `json:"vector"`
}

// SignaturesResponse answers POST /v1/graphs/{name}/signatures. Nodes are
// ordered by descending total (ties by ascending id), after TopNodes
// truncation.
type SignaturesResponse struct {
	Graph        string           `json:"graph"`
	K            int              `json:"k"`
	Strategy     string           `json:"strategy"`
	Samples      int              `json:"samples"`
	Covered      int              `json:"covered"`
	SampleTimeMs float64          `json:"sampleTimeMs"`
	Achieved     *AchievedInfo    `json:"achieved,omitempty"`
	Motifs       []SignatureMotif `json:"motifs"`
	Nodes        []SignatureNode  `json:"nodes"`
}

// BatchRequest is the JSON body of POST /v1/batch: a list of queries
// answered off one engine resolution of a single named graph.
type BatchRequest struct {
	// Graph names the registered graph every query in the batch runs
	// against. Empty means the server's default graph.
	Graph string `json:"graph"`
	// Queries is the per-entry query list (same schema as /count bodies).
	Queries []CountRequest `json:"queries"`
}

// BatchResult is one entry's outcome in a BatchResponse: exactly one of
// Count or Error is set. A bad entry fails alone — it does not fail the
// batch.
type BatchResult struct {
	Count *CountResponse `json:"count,omitempty"`
	Error string         `json:"error,omitempty"`
	// Code is the machine-readable error code (see errorResponse).
	Code string `json:"code,omitempty"`
}

// BatchResponse answers POST /v1/batch; Results aligns index-for-index
// with the request's Queries.
type BatchResponse struct {
	Graph   string        `json:"graph"`
	Results []BatchResult `json:"results"`
}

// GraphInfo is one registered graph in a GraphsResponse.
type GraphInfo struct {
	Name string `json:"name"`
	// Resident reports whether the graph's engine is currently loaded
	// (false after an LRU eviction; the next query reloads it).
	Resident bool  `json:"resident"`
	K        int   `json:"k"`
	Nodes    int   `json:"nodes"`
	Edges    int64 `json:"edges"`
	// TableBytes is the graph's packed table payload; MappedBytes the part
	// served off a read-only file mapping (0 when the table was loaded
	// onto the heap).
	TableBytes  int64   `json:"tableBytes"`
	MappedBytes int64   `json:"mappedBytes"`
	OpenMs      float64 `json:"openMs"`
	Opens       int64   `json:"opens"`
	Queries     int64   `json:"queries"`
}

// GraphsResponse is the JSON body answering GET /v1/graphs.
type GraphsResponse struct {
	Graphs []GraphInfo `json:"graphs"`
}

// Stats is the JSON body answering the legacy GET /stats: the default
// graph's engine statistics plus server-wide traffic counters.
type Stats struct {
	K          int   `json:"k"`
	Nodes      int   `json:"nodes"`
	Edges      int64 `json:"edges"`
	TableBytes int64 `json:"tableBytes"`
	// OpenMs is the one-time table open + urn construction cost the engine
	// amortizes over every query it serves.
	OpenMs       float64 `json:"openMs"`
	UptimeSec    float64 `json:"uptimeSec"`
	Queries      int64   `json:"queries"`
	TotalSamples int64   `json:"totalSamples"`
}

// Machine-readable error codes carried by every /v1 error response.
const (
	// codeBadRequest: the request body or parameters are malformed.
	codeBadRequest = "bad_request"
	// codeUnknownGraph: the named graph is not registered.
	codeUnknownGraph = "unknown_graph"
	// codeOverloaded: the server is at its in-flight sampling limit; retry
	// after the Retry-After header.
	codeOverloaded = "overloaded"
	// codeCanceled: the query was canceled before completing.
	codeCanceled = "canceled"
	// codeInternal: an unexpected server-side failure.
	codeInternal = "internal"
)

// errorResponse is the JSON body of every error answer. Error is the
// human-readable message; Code the stable machine-readable class (always
// set on /v1 responses).
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
