package serve

// Wire types of the HTTP API, shared by the /v1 handlers and the legacy
// single-graph aliases. Everything in this file is a JSON contract:
// field additions must be backward compatible (omitempty on anything the
// legacy endpoints don't set) and nothing here may depend on handler
// internals.

// CountRequest is the JSON body of POST /count and
// POST /v1/graphs/{name}/count, and the element type of a batch's query
// list. Every field is optional: the zero value runs 100k naive samples
// at seed 1, the defaults of the library's Query.
type CountRequest struct {
	// Strategy is "naive" (default) or "ags".
	Strategy string `json:"strategy"`
	// Samples is the sampling budget. Default 100000.
	Samples int `json:"samples"`
	// Seed makes the query reproducible. Default 1. A query whose seed is
	// set explicitly (non-zero) is eligible for the server's seeded-result
	// cache; omitting it (or sending 0) bypasses the cache.
	Seed int64 `json:"seed"`
	// CoverThreshold is AGS's c̄. Default 1000.
	CoverThreshold int `json:"coverThreshold"`
	// SampleWorkers parallelizes the query across urn clones.
	SampleWorkers int `json:"sampleWorkers"`
	// Top truncates the response to the N largest estimates (0 = all).
	Top int `json:"top"`
}

// CountEstimate is one graphlet's estimate in a CountResponse.
type CountEstimate struct {
	// Code is the canonical graphlet code; Description a human-readable
	// rendering ("5-clique", "4-star", …).
	Code        string  `json:"code"`
	Description string  `json:"description"`
	Count       float64 `json:"count"`
	Frequency   float64 `json:"frequency"`
}

// CountResponse is the JSON body answering a count query. Graph is set by
// the /v1 handlers only; the legacy /count endpoint (which serves exactly
// one graph) omits it, keeping its historical body byte-stable.
type CountResponse struct {
	Graph        string          `json:"graph,omitempty"`
	K            int             `json:"k"`
	Strategy     string          `json:"strategy"`
	Samples      int             `json:"samples"`
	Covered      int             `json:"covered"`
	SampleTimeMs float64         `json:"sampleTimeMs"`
	Counts       []CountEstimate `json:"counts"`
}

// BatchRequest is the JSON body of POST /v1/batch: a list of queries
// answered off one engine resolution of a single named graph.
type BatchRequest struct {
	// Graph names the registered graph every query in the batch runs
	// against. Empty means the server's default graph.
	Graph string `json:"graph"`
	// Queries is the per-entry query list (same schema as /count bodies).
	Queries []CountRequest `json:"queries"`
}

// BatchResult is one entry's outcome in a BatchResponse: exactly one of
// Count or Error is set. A bad entry fails alone — it does not fail the
// batch.
type BatchResult struct {
	Count *CountResponse `json:"count,omitempty"`
	Error string         `json:"error,omitempty"`
	// Code is the machine-readable error code (see errorResponse).
	Code string `json:"code,omitempty"`
}

// BatchResponse answers POST /v1/batch; Results aligns index-for-index
// with the request's Queries.
type BatchResponse struct {
	Graph   string        `json:"graph"`
	Results []BatchResult `json:"results"`
}

// GraphInfo is one registered graph in a GraphsResponse.
type GraphInfo struct {
	Name string `json:"name"`
	// Resident reports whether the graph's engine is currently loaded
	// (false after an LRU eviction; the next query reloads it).
	Resident bool  `json:"resident"`
	K        int   `json:"k"`
	Nodes    int   `json:"nodes"`
	Edges    int64 `json:"edges"`
	// TableBytes is the graph's packed table payload; MappedBytes the part
	// served off a read-only file mapping (0 when the table was loaded
	// onto the heap).
	TableBytes  int64   `json:"tableBytes"`
	MappedBytes int64   `json:"mappedBytes"`
	OpenMs      float64 `json:"openMs"`
	Opens       int64   `json:"opens"`
	Queries     int64   `json:"queries"`
}

// GraphsResponse is the JSON body answering GET /v1/graphs.
type GraphsResponse struct {
	Graphs []GraphInfo `json:"graphs"`
}

// Stats is the JSON body answering the legacy GET /stats: the default
// graph's engine statistics plus server-wide traffic counters.
type Stats struct {
	K          int   `json:"k"`
	Nodes      int   `json:"nodes"`
	Edges      int64 `json:"edges"`
	TableBytes int64 `json:"tableBytes"`
	// OpenMs is the one-time table open + urn construction cost the engine
	// amortizes over every query it serves.
	OpenMs       float64 `json:"openMs"`
	UptimeSec    float64 `json:"uptimeSec"`
	Queries      int64   `json:"queries"`
	TotalSamples int64   `json:"totalSamples"`
}

// Machine-readable error codes carried by every /v1 error response.
const (
	// codeBadRequest: the request body or parameters are malformed.
	codeBadRequest = "bad_request"
	// codeUnknownGraph: the named graph is not registered.
	codeUnknownGraph = "unknown_graph"
	// codeOverloaded: the server is at its in-flight sampling limit; retry
	// after the Retry-After header.
	codeOverloaded = "overloaded"
	// codeCanceled: the query was canceled before completing.
	codeCanceled = "canceled"
	// codeInternal: an unexpected server-side failure.
	codeInternal = "internal"
)

// errorResponse is the JSON body of every error answer. Error is the
// human-readable message; Code the stable machine-readable class (always
// set on /v1 responses).
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
