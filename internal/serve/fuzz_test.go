package serve

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzCountRequest drives arbitrary bytes through the /count body decoder.
// The decoder must be total: any input yields either a valid, fully
// validated engine query or an error — never a panic, and never a query
// that violates the invariants the engine relies on (positive budget,
// bounded workers, valid threshold, known strategy).
func FuzzCountRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"strategy":"ags","samples":50000,"seed":7,"top":10}`))
	f.Add([]byte(`{"strategy":"naive","samples":1,"coverThreshold":1000,"sampleWorkers":8}`))
	f.Add([]byte(`{"samples":-5}`))
	f.Add([]byte(`{"unknown":"field"}`))
	f.Add([]byte(`{"strategy":` + strings.Repeat(`[`, 1000) + `}`))
	f.Add([]byte(`{"seed":9223372036854775807}`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, body []byte) {
		q, req, err := decodeCountRequest(bytes.NewReader(body))
		if err != nil {
			return
		}
		if req == nil {
			t.Fatal("nil request on success")
		}
		if q.Samples < 1 {
			t.Fatalf("accepted query with budget %d", q.Samples)
		}
		if q.Strategy != core.Naive && q.Strategy != core.AGS {
			t.Fatalf("accepted unknown strategy %v", q.Strategy)
		}
		if err := core.ValidateSampleWorkers(q.SampleWorkers); err != nil {
			t.Fatalf("accepted bad worker count: %v", err)
		}
		if q.CoverThreshold != 0 {
			if err := core.ValidateCoverThreshold(q.CoverThreshold); err != nil {
				t.Fatalf("accepted bad cover threshold: %v", err)
			}
		}
		if req.Top < 0 {
			t.Fatalf("accepted negative top %d", req.Top)
		}
	})
}
