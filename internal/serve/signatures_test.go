package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestV1Signatures: the endpoint answers per-node graphlet degree vectors,
// and — because the engine pins its stream decomposition — the decoded
// nodes and motifs are identical at any sampleWorkers count for one seed.
func TestV1Signatures(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	var base SignaturesResponse
	for i, body := range []string{
		`{"strategy":"ags","samples":3000,"seed":17,"sampleWorkers":1}`,
		`{"strategy":"ags","samples":3000,"seed":17,"sampleWorkers":4}`,
	} {
		var resp SignaturesResponse
		w := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/signatures", body, &resp)
		if w.Code != http.StatusOK {
			t.Fatalf("POST signatures = %d: %s", w.Code, w.Body.String())
		}
		if resp.Graph != "alpha" || resp.K != 4 || resp.Samples != 3000 {
			t.Fatalf("response header fields: %+v", resp)
		}
		if len(resp.Motifs) == 0 || len(resp.Nodes) == 0 {
			t.Fatal("empty signatures response")
		}
		if len(resp.Nodes) > defaultTopNodes {
			t.Fatalf("unfiltered response returned %d nodes, default cap is %d", len(resp.Nodes), defaultTopNodes)
		}
		for _, n := range resp.Nodes {
			if len(n.Vector) != len(resp.Motifs) {
				t.Fatalf("node %d vector length %d, want %d motifs", n.Node, len(n.Vector), len(resp.Motifs))
			}
		}
		// Descending-total order (ties by ascending id).
		for j := 1; j < len(resp.Nodes); j++ {
			a, b := resp.Nodes[j-1], resp.Nodes[j]
			if a.Total < b.Total || (a.Total == b.Total && a.Node > b.Node) {
				t.Fatalf("nodes out of order at %d: %+v then %+v", j, a, b)
			}
		}
		if i == 0 {
			base = resp
			continue
		}
		if !reflect.DeepEqual(base.Nodes, resp.Nodes) || !reflect.DeepEqual(base.Motifs, resp.Motifs) {
			t.Fatal("signatures differ across sampleWorkers at the same seed")
		}
	}
}

// TestV1SignaturesNodeSelection: an explicit node list restricts the
// vectors and defeats the default top-node cap; topNodes truncates.
func TestV1SignaturesNodeSelection(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	var resp SignaturesResponse
	w := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/signatures",
		`{"samples":2000,"seed":5,"nodes":[0,1,2]}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("POST = %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Nodes) != 3 {
		t.Fatalf("explicit nodes: got %d, want 3", len(resp.Nodes))
	}
	var topped SignaturesResponse
	w = doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/signatures",
		`{"samples":2000,"seed":5,"topNodes":2}`, &topped)
	if w.Code != http.StatusOK {
		t.Fatalf("POST = %d: %s", w.Code, w.Body.String())
	}
	if len(topped.Nodes) != 2 {
		t.Fatalf("topNodes=2: got %d nodes", len(topped.Nodes))
	}
}

// TestV1SignaturesErrors: bad inputs answer structured v1 errors.
func TestV1SignaturesErrors(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	for _, tc := range []struct {
		name, target, body string
		status             int
		code               string
	}{
		{"unknown graph", "/v1/graphs/nope/signatures", `{"samples":10,"seed":1}`, http.StatusNotFound, codeUnknownGraph},
		{"bad node id", "/v1/graphs/alpha/signatures", `{"samples":10,"seed":1,"nodes":[99999]}`, http.StatusBadRequest, codeBadRequest},
		{"bad target code", "/v1/graphs/alpha/signatures", `{"epsilon":0.5,"targetMotif":"xyz"}`, http.StatusBadRequest, codeBadRequest},
		{"negative topNodes", "/v1/graphs/alpha/signatures", `{"samples":10,"topNodes":-1}`, http.StatusBadRequest, codeBadRequest},
		{"samples+epsilon", "/v1/graphs/alpha/signatures", `{"samples":10,"epsilon":0.5}`, http.StatusBadRequest, codeBadRequest},
		{"unknown field", "/v1/graphs/alpha/signatures", `{"bogus":1}`, http.StatusBadRequest, codeBadRequest},
	} {
		var er errorResponse
		w := doJSON(t, srv, http.MethodPost, tc.target, tc.body, nil)
		if w.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body.String())
			continue
		}
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Code != tc.code {
			t.Errorf("%s: code = %q (err %v), want %q", tc.name, er.Code, err, tc.code)
		}
	}
	w := doJSON(t, srv, http.MethodGet, "/v1/graphs/alpha/signatures", "", nil)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d, want 405", w.Code)
	}
}

// TestV1PrecisionCount: a precision count query defaults to AGS, answers
// with a certificate, and the precision metrics counters advance.
func TestV1PrecisionCount(t *testing.T) {
	srv, _ := testV1Server(t, Config{})
	var resp CountResponse
	w := doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/count",
		`{"epsilon":0.5,"delta":0.2,"maxSamples":4000,"seed":3}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("POST precision count = %d: %s", w.Code, w.Body.String())
	}
	if resp.Strategy != "ags" {
		t.Fatalf("precision query strategy = %q, want ags by default", resp.Strategy)
	}
	if resp.Achieved == nil {
		t.Fatal("precision response has no certificate")
	}
	if resp.Achieved.Delta != 0.2 || resp.Achieved.Samples != resp.Samples {
		t.Fatalf("certificate inconsistent: %+v vs samples %d", resp.Achieved, resp.Samples)
	}
	if resp.Samples > 4000 {
		t.Fatalf("samples %d exceed the cap", resp.Samples)
	}

	var sig SignaturesResponse
	w = doJSON(t, srv, http.MethodPost, "/v1/graphs/alpha/signatures",
		`{"epsilon":0.5,"delta":0.2,"maxSamples":4000,"seed":3}`, &sig)
	if w.Code != http.StatusOK {
		t.Fatalf("POST precision signatures = %d: %s", w.Code, w.Body.String())
	}
	if sig.Achieved == nil {
		t.Fatal("precision signatures response has no certificate")
	}

	metrics := doJSON(t, srv, http.MethodGet, "/metrics", "", nil).Body.String()
	for _, want := range []string{
		"motivo_signature_queries_total 1",
		"motivo_precision_queries_total 2",
		"motivo_precision_met_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
