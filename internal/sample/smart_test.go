package sample

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// The smart-star property: for random graphs and every treelet size, a
// smart table must be observationally identical to the materialized table
// of the same coloring — entry-identical records (keys, counts, totals)
// and identical urn draw sequences at equal seed. This is the invariant
// everything else (bit-identical estimates, AGS behavior, the serving
// layer) rests on.

func buildPair(t *testing.T, g *graph.Graph, k int, seed int64) (*table.Table, *table.Table, *coloring.Coloring, *treelet.Catalog) {
	t.Helper()
	col := coloring.Uniform(g.NumNodes(), k, seed)
	cat := treelet.NewCatalog(k)
	mat := build.DefaultOptions()
	mat.SmartStars = false
	tabMat, _, err := build.Run(context.Background(), g, col, k, cat, mat)
	if err != nil {
		t.Fatal(err)
	}
	tabSmart, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tabMat, tabSmart, col, cat
}

// entries flattens one record view into pairs.
func entries(vw table.View) (keys []treelet.Colored, counts []u128.Uint128) {
	vw.Each(func(k treelet.Colored, c u128.Uint128) bool {
		keys = append(keys, k)
		counts = append(counts, c)
		return true
	})
	return
}

func TestSmartRecordsEntryIdenticalProperty(t *testing.T) {
	graphs := map[string]func(seed int64) *graph.Graph{
		"er": func(seed int64) *graph.Graph { return gen.ErdosRenyi(60, 200, seed) },
		"ba": func(seed int64) *graph.Graph { return gen.BarabasiAlbert(60, 3, seed) },
	}
	for name, mk := range graphs {
		for _, k := range []int{2, 3, 4, 5} {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/k=%d/seed=%d", name, k, seed), func(t *testing.T) {
					g := mk(seed)
					tabMat, tabSmart, _, _ := buildPair(t, g, k, seed*31+int64(k))
					var total int
					for h := 1; h <= k; h++ {
						for v := int32(0); int(v) < g.NumNodes(); v++ {
							mk, mc := entries(tabMat.Rec(h, v))
							sk, sc := entries(tabSmart.Rec(h, v))
							if !reflect.DeepEqual(mk, sk) {
								t.Fatalf("h=%d v=%d keys differ:\nmat:   %v\nsmart: %v", h, v, mk, sk)
							}
							if !reflect.DeepEqual(mc, sc) {
								t.Fatalf("h=%d v=%d counts differ:\nmat:   %v\nsmart: %v", h, v, mc, sc)
							}
							if tabMat.Rec(h, v).Total() != tabSmart.Rec(h, v).Total() {
								t.Fatalf("h=%d v=%d totals differ", h, v)
							}
							total += len(mk)
						}
					}
					if total == 0 {
						t.Fatal("graphs produced no entries at all — vacuous run")
					}
				})
			}
		}
	}
}

func TestSmartUrnDrawSequenceIdentical(t *testing.T) {
	g := gen.ErdosRenyi(80, 280, 17)
	for _, k := range []int{3, 4, 5} {
		tabMat, tabSmart, col, cat := buildPair(t, g, k, int64(k)*101)
		urnMat, err := NewUrn(g, col, tabMat, cat)
		if err != nil {
			t.Fatal(err)
		}
		urnSmart, err := NewUrn(g, col, tabSmart, cat)
		if err != nil {
			t.Fatal(err)
		}
		if urnMat.Total() != urnSmart.Total() {
			t.Fatalf("k=%d: urn totals differ: %v vs %v", k, urnMat.Total(), urnSmart.Total())
		}
		rngA := rand.New(rand.NewSource(42))
		rngB := rand.New(rand.NewSource(42))
		for i := 0; i < 2000; i++ {
			codeA, nodesA := urnMat.Sample(rngA)
			codeB, nodesB := urnSmart.Sample(rngB)
			if codeA != codeB || !reflect.DeepEqual(nodesA, nodesB) {
				t.Fatalf("k=%d draw %d differs: %v%v vs %v%v", k, i, codeA, nodesA, codeB, nodesB)
			}
		}
	}
}

func TestSmartShapeUrnDrawSequenceIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(90, 3, 23)
	k := 5
	tabMat, tabSmart, col, cat := buildPair(t, g, k, 303)
	urnMat, err := NewUrn(g, col, tabMat, cat)
	if err != nil {
		t.Fatal(err)
	}
	urnSmart, err := NewUrn(g, col, tabSmart, cat)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, shape := range cat.UnrootedK {
		suMat, err := urnMat.NewShapeUrn(shape)
		if err != nil {
			t.Fatal(err)
		}
		suSmart, err := urnSmart.NewShapeUrn(shape)
		if err != nil {
			t.Fatal(err)
		}
		if suMat.Total() != suSmart.Total() {
			t.Fatalf("shape %v: totals differ: %v vs %v", shape, suMat.Total(), suSmart.Total())
		}
		if suMat.Empty() != suSmart.Empty() {
			t.Fatalf("shape %v: emptiness differs", shape)
		}
		if suMat.Empty() {
			continue
		}
		rngA := rand.New(rand.NewSource(7))
		rngB := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			codeA, nodesA := suMat.Sample(rngA)
			codeB, nodesB := suSmart.Sample(rngB)
			if codeA != codeB || !reflect.DeepEqual(nodesA, nodesB) {
				t.Fatalf("shape %v draw %d differs", shape, i)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no shape had occurrences — vacuous run")
	}
}
