// Package sample implements motivo's sampling phase (paper, Sections 2.2,
// 3.2 and 4): the treelet count table acts as an abstract urn from which
// colorful k-treelet copies are drawn uniformly at random; the induced
// subgraph on the sampled nodes, canonicalized, is the graphlet occurrence.
//
// Two urn interfaces are provided, mirroring the paper:
//
//   - Urn.Sample draws a uniform colorful k-treelet copy (the CC/naive
//     primitive sample()): root node by the alias method, colored treelet
//     within the root's record, then a recursive descent that splits the
//     treelet by its canonical decomposition at every level.
//   - ShapeUrn restricts draws to one unrooted k-treelet shape T — the
//     sample(T) primitive AGS is built on (Section 4).
//
// Neighbor buffering (Section 3.2) is implemented exactly as described:
// when the child node must be chosen among the neighbors of a node with
// degree ≥ BufferThreshold, one sweep draws BufferSize i.i.d. choices and
// caches the unused ones for future requests, so high-degree nodes are
// swept only a fraction of the time.
//
// # The batched hot path
//
// Sampling revisits the same few hundred hot records millions of times, so
// per-draw varint decode and per-sweep recomputation dominate the naive
// implementation. Every urn therefore amortizes three ways, and
// SampleBatch exposes the draw loop the estimators consume:
//
//   - a decoded-record cache (table.DecodedCache) flattens hot records —
//     synthesis included — into sorted key + cumulative-count arrays, so
//     occ/count/iter/sample become binary searches instead of varint walks;
//   - a sweep cache memoizes chooseChild's candidate distribution per
//     (node, colored treelet), so repeat visits pay one Float64 and one
//     binary search instead of a full neighbor sweep;
//   - scratch buffers (sampled nodes, rooted-form cumulatives) are reused
//     across the draws of a batch instead of allocated per draw.
//
// All three are invisible to results: cached values are bit-identical to
// what recomputation would produce and RNG consumption per draw is
// unchanged, so a SampleBatch sequence equals repeated Sample calls
// draw-for-draw at equal seed — with caches on, off, or any mix. The
// determinism tests in batch_test.go pin this down.
package sample

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/alias"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/table"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// DefaultDecodePairBudget caps the decoded-record cache: decoded pairs
// cost ~24 bytes each, so the default bounds the cache near 6 MB per urn
// (the cache is shared by all clones) — enough to keep every hot record of
// the paper-scale workloads resident.
const DefaultDecodePairBudget = 1 << 18

// DefaultSweepCandBudget caps the sweep cache by total cached candidates
// (~24 bytes each); see DefaultDecodePairBudget for the sizing rationale.
const DefaultSweepCandBudget = 1 << 18

// Urn draws uniform colorful k-treelet occurrences and their induced
// graphlets. It is not safe for concurrent use; create one Urn per
// goroutine over the same (read-only) table.
type Urn struct {
	G   *graph.Graph
	Col *coloring.Coloring
	Tab *table.Table
	Cat *treelet.Catalog
	K   int

	// BufferThreshold is the degree at which neighbor buffering kicks in
	// (paper: 10^4); BufferSize is how many choices one sweep produces
	// (paper: 100).
	BufferThreshold int
	BufferSize      int

	roots     []int32
	rootAlias *alias.Table
	total     u128.Uint128

	buffers    map[bufKey][]childChoice
	canonCache map[graphlet.Code]graphlet.Code
	synthCache *table.SynthCache // memo for smart-star neighbor sums

	// The amortization caches hold pure functions of the immutable table,
	// so they are concurrency-safe and shared across clones: a record is
	// decoded (and a sweep computed) once per urn lifetime, not once per
	// clone or per query.
	decode *table.DecodedCache
	sweeps *sweepCache

	nodesBuf []int32 // sampled-copy scratch, reused across draws

	// Stats observable by experiments.
	Sweeps     int64 // neighbor sweeps performed (sweep-cache misses)
	BufferHits int64 // child choices served from a buffer
}

type bufKey struct {
	v  int32
	tc treelet.Colored
}

type childChoice struct {
	u   int32
	cpp treelet.Colored
}

// sweepEntry is one memoized chooseChild distribution: the candidate
// (neighbor, colored first-child) pairs in sweep order with their float
// cumulative weights. Values are exactly what a fresh sweep would compute.
type sweepEntry struct {
	cands []childChoice
	cum   []float64
	total float64
}

// sweepCache memoizes sweep distributions under a total candidate budget;
// like table.DecodedCache it is concurrency-safe, frozen once the budget
// is spent, and shared across the clones of one urn. Concurrent misses may
// compute the same sweep twice; the first published entry wins (entries
// are identical, so callers cannot tell).
type sweepCache struct {
	mu     sync.RWMutex
	m      map[bufKey]*sweepEntry
	cands  int
	budget int
}

func newSweepCache(budget int) *sweepCache {
	return &sweepCache{m: make(map[bufKey]*sweepEntry), budget: budget}
}

// get returns the cached sweep of key, or nil (with ok=false reporting
// whether the cache still admits insertions).
func (c *sweepCache) get(key bufKey) (sw *sweepEntry, admits bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[key], c.cands < c.budget
}

func (c *sweepCache) put(key bufKey, sw *sweepEntry) *sweepEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.m[key]; ok {
		return prior
	}
	if c.cands >= c.budget {
		return sw
	}
	c.m[key] = sw
	c.cands += len(sw.cands)
	return sw
}

// NewUrn prepares the urn: the alias table over root nodes weighted by
// occ(v) (built in O(n), Section 3.3) and the total treelet count t. The
// per-node totals pass — the dominant open-time cost on smart tables,
// where each total runs star synthesis — fans out over GOMAXPROCS
// goroutines; the result is identical to the sequential pass (per-node
// totals are independent, and the alias weights assemble in node order).
func NewUrn(g *graph.Graph, col *coloring.Coloring, tab *table.Table, cat *treelet.Catalog) (*Urn, error) {
	k := tab.K
	if cat.K < k {
		return nil, fmt.Errorf("sample: catalog k=%d < table k=%d", cat.K, k)
	}
	u := &Urn{
		G: g, Col: col, Tab: tab, Cat: cat, K: k,
		BufferThreshold: 10000,
		BufferSize:      100,
		buffers:         make(map[bufKey][]childChoice),
		canonCache:      make(map[graphlet.Code]graphlet.Code),
		synthCache:      table.NewSynthCache(),
		decode:          table.NewDecodedCache(DefaultDecodePairBudget),
		sweeps:          newSweepCache(DefaultSweepCandBudget),
	}
	n := g.NumNodes()
	totals := make([]u128.Uint128, n)
	workers := parallelWorkers(n)
	if workers <= 1 {
		for v := 0; v < n; v++ {
			totals[v] = tab.Rec(k, int32(v)).WithCache(u.synthCache).Total()
		}
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, n)
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				cache := table.NewSynthCache() // synthesis memo is not concurrency-safe
				for v := lo; v < hi; v++ {
					totals[v] = tab.Rec(k, int32(v)).WithCache(cache).Total()
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	weights := make([]float64, 0, n)
	for v := 0; v < n; v++ {
		t := totals[v]
		if !t.IsZero() {
			u.roots = append(u.roots, int32(v))
			weights = append(weights, t.Float64())
		}
		u.total = u.total.Add(t)
	}
	u.rootAlias = alias.New(weights)
	return u, nil
}

// parallelWorkers sizes a construction fan-out: GOMAXPROCS goroutines,
// but never more than one per 256 items (tiny inputs stay sequential).
func parallelWorkers(items int) int {
	w := runtime.GOMAXPROCS(0)
	if cap := items/256 + 1; w > cap {
		w = cap
	}
	return w
}

// Total returns t, the number of colorful k-treelet copies in the urn.
// Without 0-rooting every copy is counted k times; Total corrects for that
// so it always reports distinct copies.
func (u *Urn) Total() u128.Uint128 {
	if u.Tab.ZeroRooted {
		return u.total
	}
	q, _ := u.total.QuoRem64(uint64(u.K))
	return q
}

// Empty reports whether the urn holds no colorful k-treelets (possible on
// unlucky colorings of tiny graphs).
func (u *Urn) Empty() bool { return u.rootAlias == nil }

// view returns the merged record view of (h, v) with the urn's synthesis
// memo attached — the uncached read path.
func (u *Urn) view(h int, v int32) table.View {
	return u.Tab.Rec(h, v).WithCache(u.synthCache)
}

// SetCacheBudgets replaces the urn's shared amortization caches with fresh
// ones holding at most decodePairs decoded pairs and sweepCands sweep
// candidates (≤ 0 disables the respective cache — results are unchanged,
// only slower). Call before the first draw and before cloning; existing
// clones keep the old caches.
func (u *Urn) SetCacheBudgets(decodePairs, sweepCands int) {
	u.decode = table.NewDecodedCache(decodePairs)
	u.sweeps = newSweepCache(sweepCands)
}

// decRec returns the decoded form of record (h, v) when the decode cache
// admits it, nil otherwise (caller falls back to the packed view).
func (u *Urn) decRec(h int, v int32) *table.Decoded {
	return u.decode.Get(h, v, u.view(h, v))
}

// Sample draws one uniform colorful k-treelet copy and returns the
// canonical code of the induced graphlet plus the sampled nodes. The node
// slice is reused across calls; copy it to retain.
func (u *Urn) Sample(rng *rand.Rand) (graphlet.Code, []int32) {
	if u.Empty() {
		panic("sample: urn is empty")
	}
	return u.sampleOne(rng)
}

// SampleBatch draws up to n uniform copies, calling fn after every draw
// with the canonical induced code and the sampled nodes (the node slice is
// reused across draws; copy it to retain). It stops early when fn returns
// false and returns the number of draws made. Draw-for-draw, RNG
// consumption and results are bit-identical to repeated Sample calls, so
// batch size never changes a seeded sequence; batching exists to amortize
// record decode, sweep computation and scratch allocation across the
// draws between two estimator decisions.
func (u *Urn) SampleBatch(rng *rand.Rand, n int, fn func(graphlet.Code, []int32) bool) int {
	if u.Empty() {
		panic("sample: urn is empty")
	}
	for i := 0; i < n; i++ {
		code, nodes := u.sampleOne(rng)
		if !fn(code, nodes) {
			return i + 1
		}
	}
	return n
}

// sampleOne is one draw of the hot path: root by alias, colored treelet
// within the root's (decoded) record, recursive materialization.
func (u *Urn) sampleOne(rng *rand.Rand) (graphlet.Code, []int32) {
	v := u.roots[u.rootAlias.Next(rng)]
	var tc treelet.Colored
	if d := u.decRec(u.K, v); d != nil {
		tc = d.Sample(rng)
	} else {
		tc = u.view(u.K, v).Sample(rng)
	}
	return u.materialize(v, tc, rng)
}

// materialize expands a rooted colored treelet choice at v into a concrete
// copy and canonicalizes its induced subgraph. The returned node slice is
// the urn's reusable scratch buffer.
func (u *Urn) materialize(v int32, tc treelet.Colored, rng *rand.Rand) (graphlet.Code, []int32) {
	if u.nodesBuf == nil {
		u.nodesBuf = make([]int32, 0, u.K)
	}
	u.nodesBuf = u.nodesBuf[:0]
	u.sampleCopy(v, tc, rng, &u.nodesBuf)
	return u.Induced(u.nodesBuf), u.nodesBuf
}

// sampleCopy recursively samples a uniform copy of tc rooted at v,
// appending the copy's nodes to out.
func (u *Urn) sampleCopy(v int32, tc treelet.Colored, rng *rand.Rand, out *[]int32) {
	if tc.Tree() == treelet.Leaf {
		*out = append(*out, v)
		return
	}
	ch := u.chooseChild(v, tc, rng)
	tp := u.Cat.Rest(tc.Tree())
	cp := treelet.MakeColored(tp, tc.Colors()&^ch.cpp.Colors())
	u.sampleCopy(v, cp, rng, out)
	u.sampleCopy(ch.u, ch.cpp, rng, out)
}

// chooseChild picks the child node u ~ v and the colored first-child part
// (T”_C”) with probability proportional to
// c(T”_C”, u) · c(T'_{C\C”}, v), which makes every copy of tc at v
// equally likely (each copy has exactly β_T generating choices).
func (u *Urn) chooseChild(v int32, tc treelet.Colored, rng *rand.Rand) childChoice {
	key := bufKey{v, tc}
	if buf := u.buffers[key]; len(buf) > 0 {
		ch := buf[len(buf)-1]
		u.buffers[key] = buf[:len(buf)-1]
		u.BufferHits++
		return ch
	}
	sw := u.sweepFor(key)
	if len(sw.cands) == 0 {
		panic(fmt.Sprintf("sample: no child choice for treelet %v at node %d (corrupt table?)", tc, v))
	}
	draws := 1
	if u.G.Degree(v) >= u.BufferThreshold {
		draws = u.BufferSize
	}
	if draws == 1 {
		r := rng.Float64() * sw.total
		return sw.cands[searchFloat(sw.cum, r)]
	}
	picks := make([]childChoice, draws)
	for d := range picks {
		r := rng.Float64() * sw.total
		picks[d] = sw.cands[searchFloat(sw.cum, r)]
	}
	u.buffers[key] = picks[:draws-1]
	return picks[draws-1]
}

// sweepFor returns the candidate distribution of (v, tc), memoized in the
// shared sweep cache. Cached entries are bit-identical to a fresh sweep
// (the float cumulatives are computed once and reused), so the cache
// cannot perturb draw sequences.
func (u *Urn) sweepFor(key bufKey) *sweepEntry {
	sw, admits := u.sweeps.get(key)
	if sw != nil {
		return sw
	}
	sw = u.computeSweep(key.v, key.tc)
	if admits {
		sw = u.sweeps.put(key, sw)
	}
	return sw
}

// computeSweep performs one neighbor sweep: the candidate (neighbor,
// colored first-child) pairs of tc at v with cumulative weights
// c(T”_C”, u) · c(T'_{C\C”}, v), reading records through the decode cache
// when resident.
func (u *Urn) computeSweep(v int32, tc treelet.Colored) *sweepEntry {
	tree := tc.Tree()
	tpp := u.Cat.FirstChild(tree)
	tp := u.Cat.Rest(tree)
	hpp, hp := tpp.Size(), tp.Size()
	C := tc.Colors()

	u.Sweeps++
	sw := &sweepEntry{}
	dv := u.decRec(hp, v)
	var rv table.View
	if dv == nil {
		rv = u.view(hp, v)
	}
	countV := func(cp treelet.Colored) u128.Uint128 {
		if dv != nil {
			return dv.Count(cp)
		}
		return rv.Count(cp)
	}
	each := func(w int32) func(treelet.Colored, u128.Uint128) bool {
		return func(cpp treelet.Colored, cu u128.Uint128) bool {
			cs := cpp.Colors()
			if cs&C != cs { // C'' must be a subset of C
				return true
			}
			cp := treelet.MakeColored(tp, C&^cs)
			cv := countV(cp)
			if cv.IsZero() {
				return true
			}
			sw.total += cv.Float64() * cu.Float64()
			sw.cands = append(sw.cands, childChoice{w, cpp})
			sw.cum = append(sw.cum, sw.total)
			return true
		}
	}
	for _, w := range u.G.Neighbors(v) {
		if dw := u.decRec(hpp, w); dw != nil {
			dw.ShapeEach(tpp, each(w))
		} else {
			u.view(hpp, w).ShapeEach(tpp, each(w))
		}
	}
	return sw
}

// searchFloat returns the first index with cum[i] > r (clamped to the last
// index to be safe against floating-point edge effects).
func searchFloat(cum []float64, r float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Induced returns the canonical code of the subgraph induced by nodes,
// memoizing canonicalizations (sampled graphlets repeat heavily; this is
// our stand-in for Nauty being fast).
func (u *Urn) Induced(nodes []int32) graphlet.Code {
	var raw graphlet.Code
	k := len(nodes)
	raw = codeOf(u.G, nodes)
	if canon, ok := u.canonCache[raw]; ok {
		return canon
	}
	canon := graphlet.Canonical(k, raw)
	u.canonCache[raw] = canon
	return canon
}

// codeOf packs the induced adjacency of nodes into a raw (uncanonicalized)
// code using O(k² log δ) edge-membership queries.
func codeOf(g *graph.Graph, nodes []int32) graphlet.Code {
	var edges [][2]int
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graphlet.FromEdges(len(nodes), edges)
}
