// Package sample implements motivo's sampling phase (paper, Sections 2.2,
// 3.2 and 4): the treelet count table acts as an abstract urn from which
// colorful k-treelet copies are drawn uniformly at random; the induced
// subgraph on the sampled nodes, canonicalized, is the graphlet occurrence.
//
// Two urn interfaces are provided, mirroring the paper:
//
//   - Urn.Sample draws a uniform colorful k-treelet copy (the CC/naive
//     primitive sample()): root node by the alias method, colored treelet
//     within the root's record, then a recursive descent that splits the
//     treelet by its canonical decomposition at every level.
//   - ShapeUrn restricts draws to one unrooted k-treelet shape T — the
//     sample(T) primitive AGS is built on (Section 4).
//
// Neighbor buffering (Section 3.2) is implemented exactly as described:
// when the child node must be chosen among the neighbors of a node with
// degree ≥ BufferThreshold, one sweep draws BufferSize i.i.d. choices and
// caches the unused ones for future requests, so high-degree nodes are
// swept only a fraction of the time.
package sample

import (
	"fmt"
	"math/rand"

	"repro/internal/alias"
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/table"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// Urn draws uniform colorful k-treelet occurrences and their induced
// graphlets. It is not safe for concurrent use; create one Urn per
// goroutine over the same (read-only) table.
type Urn struct {
	G   *graph.Graph
	Col *coloring.Coloring
	Tab *table.Table
	Cat *treelet.Catalog
	K   int

	// BufferThreshold is the degree at which neighbor buffering kicks in
	// (paper: 10^4); BufferSize is how many choices one sweep produces
	// (paper: 100).
	BufferThreshold int
	BufferSize      int

	roots     []int32
	rootAlias *alias.Table
	total     u128.Uint128

	buffers    map[bufKey][]childChoice
	canonCache map[graphlet.Code]graphlet.Code
	synthCache *table.SynthCache // memo for smart-star neighbor sums

	// Stats observable by experiments.
	Sweeps     int64 // neighbor sweeps performed
	BufferHits int64 // child choices served from a buffer
}

type bufKey struct {
	v  int32
	tc treelet.Colored
}

type childChoice struct {
	u   int32
	cpp treelet.Colored
}

// NewUrn prepares the urn: the alias table over root nodes weighted by
// occ(v) (built in O(n), Section 3.3) and the total treelet count t.
func NewUrn(g *graph.Graph, col *coloring.Coloring, tab *table.Table, cat *treelet.Catalog) (*Urn, error) {
	k := tab.K
	if cat.K < k {
		return nil, fmt.Errorf("sample: catalog k=%d < table k=%d", cat.K, k)
	}
	u := &Urn{
		G: g, Col: col, Tab: tab, Cat: cat, K: k,
		BufferThreshold: 10000,
		BufferSize:      100,
		buffers:         make(map[bufKey][]childChoice),
		canonCache:      make(map[graphlet.Code]graphlet.Code),
		synthCache:      table.NewSynthCache(),
	}
	weights := make([]float64, 0, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		t := tab.Rec(k, int32(v)).WithCache(u.synthCache).Total()
		if !t.IsZero() {
			u.roots = append(u.roots, int32(v))
			weights = append(weights, t.Float64())
		}
		u.total = u.total.Add(t)
	}
	u.rootAlias = alias.New(weights)
	return u, nil
}

// Total returns t, the number of colorful k-treelet copies in the urn.
// Without 0-rooting every copy is counted k times; Total corrects for that
// so it always reports distinct copies.
func (u *Urn) Total() u128.Uint128 {
	if u.Tab.ZeroRooted {
		return u.total
	}
	q, _ := u.total.QuoRem64(uint64(u.K))
	return q
}

// Empty reports whether the urn holds no colorful k-treelets (possible on
// unlucky colorings of tiny graphs).
func (u *Urn) Empty() bool { return u.rootAlias == nil }

// Sample draws one uniform colorful k-treelet copy and returns the
// canonical code of the induced graphlet plus the sampled nodes. The node
// slice is reused across calls; copy it to retain.
func (u *Urn) Sample(rng *rand.Rand) (graphlet.Code, []int32) {
	if u.Empty() {
		panic("sample: urn is empty")
	}
	v := u.roots[u.rootAlias.Next(rng)]
	tc := u.Tab.Rec(u.K, v).WithCache(u.synthCache).Sample(rng)
	return u.materialize(v, tc, rng)
}

// materialize expands a rooted colored treelet choice at v into a concrete
// copy and canonicalizes its induced subgraph.
func (u *Urn) materialize(v int32, tc treelet.Colored, rng *rand.Rand) (graphlet.Code, []int32) {
	nodes := make([]int32, 0, u.K)
	u.sampleCopy(v, tc, rng, &nodes)
	return u.Induced(nodes), nodes
}

// sampleCopy recursively samples a uniform copy of tc rooted at v,
// appending the copy's nodes to out.
func (u *Urn) sampleCopy(v int32, tc treelet.Colored, rng *rand.Rand, out *[]int32) {
	if tc.Tree() == treelet.Leaf {
		*out = append(*out, v)
		return
	}
	ch := u.chooseChild(v, tc, rng)
	tp := u.Cat.Rest(tc.Tree())
	cp := treelet.MakeColored(tp, tc.Colors()&^ch.cpp.Colors())
	u.sampleCopy(v, cp, rng, out)
	u.sampleCopy(ch.u, ch.cpp, rng, out)
}

// chooseChild picks the child node u ~ v and the colored first-child part
// (T”_C”) with probability proportional to
// c(T”_C”, u) · c(T'_{C\C”}, v), which makes every copy of tc at v
// equally likely (each copy has exactly β_T generating choices).
func (u *Urn) chooseChild(v int32, tc treelet.Colored, rng *rand.Rand) childChoice {
	key := bufKey{v, tc}
	if buf := u.buffers[key]; len(buf) > 0 {
		ch := buf[len(buf)-1]
		u.buffers[key] = buf[:len(buf)-1]
		u.BufferHits++
		return ch
	}
	tree := tc.Tree()
	tpp := u.Cat.FirstChild(tree)
	tp := u.Cat.Rest(tree)
	hpp, hp := tpp.Size(), tp.Size()
	C := tc.Colors()
	rv := u.Tab.Rec(hp, v).WithCache(u.synthCache)

	u.Sweeps++
	var cands []childChoice
	var cum []float64
	total := 0.0
	for _, w := range u.G.Neighbors(v) {
		u.Tab.Rec(hpp, w).WithCache(u.synthCache).ShapeEach(tpp, func(cpp treelet.Colored, cu u128.Uint128) bool {
			cs := cpp.Colors()
			if cs&C != cs { // C'' must be a subset of C
				return true
			}
			cp := treelet.MakeColored(tp, C&^cs)
			cv := rv.Count(cp)
			if cv.IsZero() {
				return true
			}
			total += cv.Float64() * cu.Float64()
			cands = append(cands, childChoice{w, cpp})
			cum = append(cum, total)
			return true
		})
	}
	if len(cands) == 0 {
		panic(fmt.Sprintf("sample: no child choice for treelet %v at node %d (corrupt table?)", tc, v))
	}
	draws := 1
	if u.G.Degree(v) >= u.BufferThreshold {
		draws = u.BufferSize
	}
	picks := make([]childChoice, draws)
	for d := range picks {
		r := rng.Float64() * total
		picks[d] = cands[searchFloat(cum, r)]
	}
	if draws > 1 {
		u.buffers[key] = picks[:draws-1]
	}
	return picks[draws-1]
}

// searchFloat returns the first index with cum[i] > r (clamped to the last
// index to be safe against floating-point edge effects).
func searchFloat(cum []float64, r float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Induced returns the canonical code of the subgraph induced by nodes,
// memoizing canonicalizations (sampled graphlets repeat heavily; this is
// our stand-in for Nauty being fast).
func (u *Urn) Induced(nodes []int32) graphlet.Code {
	var raw graphlet.Code
	k := len(nodes)
	raw = codeOf(u.G, nodes)
	if canon, ok := u.canonCache[raw]; ok {
		return canon
	}
	canon := graphlet.Canonical(k, raw)
	u.canonCache[raw] = canon
	return canon
}

// codeOf packs the induced adjacency of nodes into a raw (uncanonicalized)
// code using O(k² log δ) edge-membership queries.
func codeOf(g *graph.Graph, nodes []int32) graphlet.Code {
	var edges [][2]int
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graphlet.FromEdges(len(nodes), edges)
}
