package sample

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graphlet"
	"repro/internal/table"
)

// The batching property: a SampleBatch sequence is bit-identical to
// repeated Sample calls at equal seed — for every batch size, on both
// materialized and smart tables, and with the amortization caches on or
// off. The estimators lean on this: restructuring their loops around
// batches must not change any seeded result.

type draw struct {
	code  graphlet.Code
	nodes []int32
}

func record(code graphlet.Code, nodes []int32) draw {
	return draw{code, append([]int32(nil), nodes...)} // buffers are reused across draws
}

func TestSampleBatchBitIdentical(t *testing.T) {
	g := gen.ErdosRenyi(80, 280, 17)
	const k, total, seed = 5, 600, 99
	tabMat, tabSmart, col, cat := buildPair(t, g, k, 505)
	for _, tc := range []struct {
		name string
		tab  *table.Table
	}{
		{"materialized", tabMat},
		{"smart", tabSmart},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: the one-at-a-time sequence, caches on.
			ref, err := NewUrn(g, col, tc.tab, cat)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			want := make([]draw, 0, total)
			for i := 0; i < total; i++ {
				want = append(want, record(ref.Sample(rng)))
			}
			for _, caches := range []bool{true, false} {
				for _, batch := range []int{1, 7, 64} {
					t.Run(fmt.Sprintf("caches=%v/batch=%d", caches, batch), func(t *testing.T) {
						urn, err := NewUrn(g, col, tc.tab, cat)
						if err != nil {
							t.Fatal(err)
						}
						if !caches {
							urn.SetCacheBudgets(0, 0)
						}
						rng := rand.New(rand.NewSource(seed))
						got := make([]draw, 0, total)
						for len(got) < total {
							n := min(batch, total-len(got))
							made := urn.SampleBatch(rng, n, func(code graphlet.Code, nodes []int32) bool {
								got = append(got, record(code, nodes))
								return true
							})
							if made != n {
								t.Fatalf("SampleBatch made %d of %d draws", made, n)
							}
						}
						for i := range want {
							if want[i].code != got[i].code || !reflect.DeepEqual(want[i].nodes, got[i].nodes) {
								t.Fatalf("draw %d differs: want %v%v, got %v%v",
									i, want[i].code, want[i].nodes, got[i].code, got[i].nodes)
							}
						}
					})
				}
			}
		})
	}
}

func TestShapeSampleBatchBitIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(90, 3, 23)
	const k, total, seed = 5, 300, 41
	tabMat, tabSmart, col, cat := buildPair(t, g, k, 303)
	for _, tc := range []struct {
		name string
		tab  *table.Table
	}{
		{"materialized", tabMat},
		{"smart", tabSmart},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mkShape := func(cacheOn bool) map[string]*ShapeUrn {
				urn, err := NewUrn(g, col, tc.tab, cat)
				if err != nil {
					t.Fatal(err)
				}
				if !cacheOn {
					urn.SetCacheBudgets(0, 0)
				}
				out := make(map[string]*ShapeUrn)
				for _, shape := range cat.UnrootedK {
					su, err := urn.NewShapeUrn(shape)
					if err != nil {
						t.Fatal(err)
					}
					if !su.Empty() {
						out[fmt.Sprint(shape)] = su
					}
				}
				return out
			}
			refs := mkShape(true)
			if len(refs) == 0 {
				t.Fatal("no shape had occurrences — vacuous run")
			}
			want := make(map[string][]draw, len(refs))
			for name, su := range refs {
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < total; i++ {
					want[name] = append(want[name], record(su.Sample(rng)))
				}
			}
			for _, caches := range []bool{true, false} {
				for _, batch := range []int{1, 7, 64} {
					t.Run(fmt.Sprintf("caches=%v/batch=%d", caches, batch), func(t *testing.T) {
						for name, su := range mkShape(caches) {
							rng := rand.New(rand.NewSource(seed))
							var got []draw
							for len(got) < total {
								n := min(batch, total-len(got))
								su.SampleBatch(rng, n, func(code graphlet.Code, nodes []int32) bool {
									got = append(got, record(code, nodes))
									return true
								})
							}
							for i := range want[name] {
								w, g := want[name][i], got[i]
								if w.code != g.code || !reflect.DeepEqual(w.nodes, g.nodes) {
									t.Fatalf("shape %s draw %d differs", name, i)
								}
							}
						}
					})
				}
			}
		})
	}
}

// TestParallelConstructionBitIdentical pins the open-path contract: urns
// and shape urns built with the parallel weighting passes (GOMAXPROCS > 1)
// are indistinguishable from sequentially built ones — same totals, same
// roots, same seeded draw sequences. Run under -race this also exercises
// the construction fan-out for data races regardless of host CPU count.
func TestParallelConstructionBitIdentical(t *testing.T) {
	g := gen.ErdosRenyi(400, 1600, 29)
	const k, seed = 5, 13
	_, tabSmart, col, cat := buildPair(t, g, k, 707)

	build := func(procs int) (*Urn, []*ShapeUrn) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		urn, err := NewUrn(g, col, tabSmart, cat)
		if err != nil {
			t.Fatal(err)
		}
		sus, err := urn.NewShapeUrns(cat.UnrootedK)
		if err != nil {
			t.Fatal(err)
		}
		return urn, sus
	}
	seqUrn, seqShapes := build(1)
	parUrn, parShapes := build(4)

	if seqUrn.Total() != parUrn.Total() {
		t.Fatalf("urn totals differ: %v vs %v", seqUrn.Total(), parUrn.Total())
	}
	rngA, rngB := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		ca, na := seqUrn.Sample(rngA)
		cb, nb := parUrn.Sample(rngB)
		if ca != cb || !reflect.DeepEqual(na, nb) {
			t.Fatalf("urn draw %d differs", i)
		}
	}
	for i := range seqShapes {
		sa, sb := seqShapes[i], parShapes[i]
		if sa.Total() != sb.Total() || sa.Empty() != sb.Empty() {
			t.Fatalf("shape %v: totals/emptiness differ", sa.Shape)
		}
		if sa.Empty() {
			continue
		}
		rngA, rngB := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		for d := 0; d < 100; d++ {
			ca, na := sa.Sample(rngA)
			cb, nb := sb.Sample(rngB)
			if ca != cb || !reflect.DeepEqual(na, nb) {
				t.Fatalf("shape %v draw %d differs", sa.Shape, d)
			}
		}
	}
}

// TestSampleBatchEarlyExit pins the estimator contract: cutting a batch
// short leaves the RNG exactly where the equivalent number of Sample
// calls would, so the global seeded sequence continues unbroken across
// batch boundaries (AGS relies on this when it switches shape mid-batch).
func TestSampleBatchEarlyExit(t *testing.T) {
	g := gen.ErdosRenyi(80, 280, 17)
	const k, seed = 5, 7
	_, tabSmart, col, cat := buildPair(t, g, k, 505)
	ref, err := NewUrn(g, col, tabSmart, cat)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var want []draw
	for i := 0; i < 20; i++ {
		want = append(want, record(ref.Sample(rng)))
	}

	urn, err := NewUrn(g, col, tabSmart, cat)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(seed))
	var got []draw
	made := urn.SampleBatch(rng, 20, func(code graphlet.Code, nodes []int32) bool {
		got = append(got, record(code, nodes))
		return len(got) < 4 // stop the batch after the 4th draw
	})
	if made != 4 {
		t.Fatalf("early-exit batch made %d draws, want 4", made)
	}
	for i := 0; i < 16; i++ { // the sequence must pick up where the batch stopped
		got = append(got, record(urn.Sample(rng)))
	}
	for i := range want {
		if want[i].code != got[i].code || !reflect.DeepEqual(want[i].nodes, got[i].nodes) {
			t.Fatalf("draw %d differs across the early-exit boundary", i)
		}
	}
}
