package sample

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/treelet"
)

func buildUrn(t *testing.T, g *graph.Graph, k int, seed int64) *Urn {
	t.Helper()
	col := coloring.Uniform(g.NumNodes(), k, seed)
	cat := treelet.NewCatalog(k)
	tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUrn(g, col, tab, cat)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSampleNodesAreColorfulTreelets(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 7)
	k := 4
	u := buildUrn(t, g, k, 11)
	if u.Empty() {
		t.Fatal("urn unexpectedly empty")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		code, nodes := u.Sample(rng)
		if len(nodes) != k {
			t.Fatalf("sample has %d nodes", len(nodes))
		}
		var cs treelet.ColorSet
		seen := make(map[int32]bool)
		for _, v := range nodes {
			if seen[v] {
				t.Fatal("repeated node in sample")
			}
			seen[v] = true
			c := treelet.Singleton(u.Col.Colors[v])
			if !cs.Disjoint(c) {
				t.Fatal("sample not colorful")
			}
			cs = cs.Union(c)
		}
		if !graphlet.IsConnected(k, codeOf(g, nodes)) {
			t.Fatal("sampled nodes not connected")
		}
		if code != u.Induced(nodes) {
			t.Fatal("returned code does not match induced subgraph")
		}
	}
}

// TestDeterministicSingleGraphlet: when n == k with an identity (rainbow)
// coloring, every sample is the whole graph and the naive estimator is
// exact: ĉ = (t/σ)·1/p_k with t = σ and p_k = 1.
func TestDeterministicSingleGraphlet(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Complete(5), gen.Cycle(5), gen.Lollipop(4, 1)} {
		k := 5
		col := &coloring.Coloring{K: k, Colors: []uint8{0, 1, 2, 3, 4}, PColorful: 1}
		cat := treelet.NewCatalog(k)
		tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewUrn(g, col, tab, cat)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		tallies := make(map[graphlet.Code]int64)
		const S = 200
		for i := 0; i < S; i++ {
			code, _ := u.Sample(rng)
			tallies[code]++
		}
		if len(tallies) != 1 {
			t.Fatalf("expected a single graphlet, got %d", len(tallies))
		}
		sig := estimate.NewSigma(k)
		est, err := estimate.Naive(tallies, S, u.Total().Float64(), sig, col.PColorful)
		if err != nil {
			t.Fatal(err)
		}
		for code, c := range est {
			if math.Abs(c-1) > 1e-9 {
				t.Errorf("estimate for %v = %v, want exactly 1", code, c)
			}
			// t must equal σ of the only graphlet.
			if u.Total().Float64() != float64(sig.Of(code)) {
				t.Errorf("t=%v != σ=%d", u.Total(), sig.Of(code))
			}
		}
	}
}

// TestNaiveEstimatesMatchExact: averaged over colorings, naive-sampling
// estimates converge to the exact induced counts.
func TestNaiveEstimatesMatchExact(t *testing.T) {
	g := gen.ErdosRenyi(30, 90, 13)
	k := 4
	truth, err := exact.Count(g, k)
	if err != nil {
		t.Fatal(err)
	}
	sig := estimate.NewSigma(k)
	sum := make(estimate.Counts)
	const runs = 8
	const S = 30000
	for r := 0; r < runs; r++ {
		u := buildUrn(t, g, k, int64(100+r))
		rng := rand.New(rand.NewSource(int64(200 + r)))
		tallies := make(map[graphlet.Code]int64)
		for i := 0; i < S; i++ {
			code, _ := u.Sample(rng)
			tallies[code]++
		}
		est, err := estimate.Naive(tallies, S, u.Total().Float64(), sig, u.Col.PColorful)
		if err != nil {
			t.Fatal(err)
		}
		for c, v := range est {
			sum[c] += v / runs
		}
	}
	// Graphlets with enough expected colorful copies (p_k·g ≳ 30) must be
	// within 15%; rarer ones are dominated by coloring variance.
	pk := coloring.PUniform(k)
	for code, want := range truth {
		if pk*want < 30 {
			continue
		}
		got := sum[code]
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("graphlet %v: estimate %.1f, exact %.0f", code, got, want)
		}
	}
	if l1 := estimate.L1(sum, truth); l1 > 0.1 {
		t.Errorf("ℓ1 error %.3f too large", l1)
	}
}

func TestShapeUrnRestrictsShape(t *testing.T) {
	g := gen.ErdosRenyi(30, 90, 17)
	k := 4
	u := buildUrn(t, g, k, 19)
	totals := u.Tab.ShapeTotals(u.Cat)
	sigShapes := estimate.NewSigmaShapes(k, u.Cat)
	rng := rand.New(rand.NewSource(23))
	var sumShapes float64
	for _, shape := range u.Cat.UnrootedK {
		if totals[shape].IsZero() {
			continue
		}
		su, err := u.NewShapeUrn(shape)
		if err != nil {
			t.Fatal(err)
		}
		sumShapes += su.Total().Float64()
		for i := 0; i < 300; i++ {
			code, nodes := su.Sample(rng)
			if len(nodes) != k {
				t.Fatal("wrong node count")
			}
			// The sampled graphlet must have ≥1 spanning tree of this shape.
			if sigShapes.Of(code)[shape] == 0 {
				t.Fatalf("graphlet %v sampled from shape %v it does not span", code, shape)
			}
		}
	}
	if sumShapes != u.Total().Float64() {
		t.Errorf("Σ r_j = %v, urn total = %v", sumShapes, u.Total())
	}
}

func TestShapeUrnUnknownShape(t *testing.T) {
	u := buildUrn(t, gen.ErdosRenyi(20, 50, 29), 4, 31)
	if _, err := u.NewShapeUrn(treelet.Leaf); err == nil {
		t.Error("expected error for non-k shape")
	}
}

func TestNeighborBuffering(t *testing.T) {
	// Star-heavy graph: the hub triggers buffering once the threshold is
	// lowered below its degree.
	g := gen.StarHeavy(1, 300, 40, 37)
	k := 4
	u := buildUrn(t, g, k, 41)
	u.BufferThreshold = 50
	rng := rand.New(rand.NewSource(43))
	const S = 5000
	tallies := make(map[graphlet.Code]int64)
	for i := 0; i < S; i++ {
		code, _ := u.Sample(rng)
		tallies[code]++
	}
	if u.BufferHits == 0 {
		t.Fatal("buffering never used despite hub node")
	}
	// Compare against an unbuffered urn with the same table: estimates
	// must agree (buffering must not bias sampling).
	u2, err := NewUrn(u.G, u.Col, u.Tab, u.Cat)
	if err != nil {
		t.Fatal(err)
	}
	u2.BufferThreshold = 1 << 30
	rng2 := rand.New(rand.NewSource(47))
	tallies2 := make(map[graphlet.Code]int64)
	for i := 0; i < S; i++ {
		code, _ := u2.Sample(rng2)
		tallies2[code]++
	}
	if u2.BufferHits != 0 {
		t.Fatal("buffering active despite huge threshold")
	}
	for code, n := range tallies {
		f1 := float64(n) / S
		f2 := float64(tallies2[code]) / S
		if f1 > 0.05 && math.Abs(f1-f2) > 0.05 {
			t.Errorf("buffered vs unbuffered frequency for %v: %.3f vs %.3f", code, f1, f2)
		}
	}
}

func TestUrnTotalZeroRootingCorrection(t *testing.T) {
	g := gen.ErdosRenyi(25, 60, 53)
	k := 4
	col := coloring.Uniform(g.NumNodes(), k, 59)
	cat := treelet.NewCatalog(k)
	optsN := build.DefaultOptions()
	optsN.ZeroRooted = false
	tabN, _, err := build.Run(context.Background(), g, col, k, cat, optsN)
	if err != nil {
		t.Fatal(err)
	}
	tabZ, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	uN, err := NewUrn(g, col, tabN, cat)
	if err != nil {
		t.Fatal(err)
	}
	uZ, err := NewUrn(g, col, tabZ, cat)
	if err != nil {
		t.Fatal(err)
	}
	if uN.Total() != uZ.Total() {
		t.Errorf("Total with/without 0-rooting: %v vs %v", uN.Total(), uZ.Total())
	}
}

func TestEmptyUrn(t *testing.T) {
	// Two isolated-ish nodes with k=3: no 3-treelet exists.
	g, err := graph.Build(2, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	col := coloring.Uniform(2, k, 61)
	cat := treelet.NewCatalog(k)
	tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUrn(g, col, tab, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Empty() {
		t.Fatal("urn should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on empty urn must panic")
		}
	}()
	u.Sample(rand.New(rand.NewSource(1)))
}
