package sample

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/alias"
	"repro/internal/graphlet"
	"repro/internal/table"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// ShapeUrn is the sample(T) primitive of Section 4: it draws uniform
// colorful copies of a single unrooted k-treelet shape T. Building one
// requires a pass over the size-k records to weight root nodes by their
// occurrences of T (the paper notes the alias sampler must be rebuilt from
// scratch whenever AGS switches shape — this constructor is that rebuild).
type ShapeUrn struct {
	Shape treelet.Treelet

	urn       *Urn
	rootings  []treelet.Treelet
	roots     []int32
	rootAlias *alias.Table
	total     u128.Uint128

	// Rooted-form choice scratch, reused across the draws of a batch.
	cumBuf  []float64
	treeBuf []treelet.Treelet
}

// NewShapeUrn restricts the urn to the unrooted shape T.
func (u *Urn) NewShapeUrn(shape treelet.Treelet) (*ShapeUrn, error) {
	sus, err := u.NewShapeUrns([]treelet.Treelet{shape})
	if err != nil {
		return nil, err
	}
	return sus[0], nil
}

// NewShapeUrns builds shape urns for every given shape in one weighting
// pass: each root record is walked once, accumulating the per-shape root
// weights for all shapes simultaneously, and the pass fans out over
// GOMAXPROCS goroutines. The result is identical to building each urn with
// NewShapeUrn — per-root weights are exact u128 sums (regrouping cannot
// change them) and roots assemble in node order — but AGS's prepare step,
// which needs every shape of the catalog, pays one table pass instead of
// one per shape. This is the parallel "rebuild the alias sampler" of
// Section 4, hoisted to engine open.
func (u *Urn) NewShapeUrns(shapes []treelet.Treelet) ([]*ShapeUrn, error) {
	sus := make([]*ShapeUrn, len(shapes))
	rootedTo := make(map[treelet.Treelet]int)
	for i, shape := range shapes {
		rootings := u.Cat.Rootings(shape)
		if len(rootings) == 0 {
			return nil, fmt.Errorf("sample: %v is not an unrooted k-treelet shape of the catalog", shape)
		}
		sus[i] = &ShapeUrn{Shape: shape, urn: u, rootings: rootings}
		for _, t := range rootings {
			rootedTo[t] = i
		}
	}

	// Per-chunk accumulation in root order; chunks concatenate in order, so
	// the assembled weights match a sequential pass exactly.
	type shapeAcc struct {
		roots   [][]int32
		weights [][]float64
		totals  []u128.Uint128
	}
	workers := parallelWorkers(len(u.roots))
	accs := make([]shapeAcc, workers)
	chunk := (len(u.roots) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(u.roots))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := &accs[w]
			acc.roots = make([][]int32, len(shapes))
			acc.weights = make([][]float64, len(shapes))
			acc.totals = make([]u128.Uint128, len(shapes))
			cache := table.NewSynthCache() // synthesis memo is not concurrency-safe
			perShape := make([]u128.Uint128, len(shapes))
			for _, v := range u.roots[lo:hi] {
				for i := range perShape {
					perShape[i] = u128.Zero
				}
				u.Tab.Rec(u.K, v).WithCache(cache).Each(func(k treelet.Colored, cnt u128.Uint128) bool {
					if i, ok := rootedTo[k.Tree()]; ok {
						perShape[i] = perShape[i].Add(cnt)
					}
					return true
				})
				for i, wt := range perShape {
					if !wt.IsZero() {
						acc.roots[i] = append(acc.roots[i], v)
						acc.weights[i] = append(acc.weights[i], wt.Float64())
						acc.totals[i] = acc.totals[i].Add(wt)
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	for i, s := range sus {
		var weights []float64
		for w := range accs {
			s.roots = append(s.roots, accs[w].roots[i]...)
			weights = append(weights, accs[w].weights[i]...)
			s.total = s.total.Add(accs[w].totals[i])
		}
		s.rootAlias = alias.New(weights)
	}
	return sus, nil
}

// Total returns r_T: the number of colorful copies of the shape in the urn
// (distinct copies; corrected for the k-fold rooting when 0-rooting is
// off).
func (s *ShapeUrn) Total() u128.Uint128 {
	if s.urn.Tab.ZeroRooted {
		return s.total
	}
	q, _ := s.total.QuoRem64(uint64(s.urn.K))
	return q
}

// Empty reports whether the shape has no colorful occurrence.
func (s *ShapeUrn) Empty() bool { return s.rootAlias == nil }

// Sample draws one uniform colorful copy of the shape and returns the
// canonical induced graphlet and the nodes. The node slice is reused
// across calls; copy it to retain.
func (s *ShapeUrn) Sample(rng *rand.Rand) (graphlet.Code, []int32) {
	if s.Empty() {
		panic("sample: shape urn is empty")
	}
	return s.sampleOne(rng)
}

// SampleBatch draws up to n uniform copies of the shape, calling fn after
// every draw with the canonical induced code and the sampled nodes (the
// node slice is reused across draws; copy it to retain). It stops early
// when fn returns false and returns the number of draws made — AGS uses
// the early exit to cut a batch short the moment it switches shape, so no
// draw ever comes from a stale urn. Draw sequences are bit-identical to
// repeated Sample calls at equal RNG state; see Urn.SampleBatch.
func (s *ShapeUrn) SampleBatch(rng *rand.Rand, n int, fn func(graphlet.Code, []int32) bool) int {
	if s.Empty() {
		panic("sample: shape urn is empty")
	}
	for i := 0; i < n; i++ {
		code, nodes := s.sampleOne(rng)
		if !fn(code, nodes) {
			return i + 1
		}
	}
	return n
}

// sampleOne is one sample(T) draw: root by the per-shape alias, rooted
// form of the shape proportionally to its count at the root, colored
// treelet within that rooted form, recursive materialization.
func (s *ShapeUrn) sampleOne(rng *rand.Rand) (graphlet.Code, []int32) {
	u := s.urn
	v := s.roots[s.rootAlias.Next(rng)]
	d := u.decRec(u.K, v)
	var rec table.View
	if d == nil {
		rec = u.view(u.K, v)
	}
	shapeTotal := func(t treelet.Treelet) u128.Uint128 {
		if d != nil {
			return d.ShapeTotal(t)
		}
		return rec.ShapeTotal(t)
	}
	s.cumBuf, s.treeBuf = s.cumBuf[:0], s.treeBuf[:0]
	total := 0.0
	for _, t := range s.rootings {
		w := shapeTotal(t)
		if w.IsZero() {
			continue
		}
		total += w.Float64()
		s.cumBuf = append(s.cumBuf, total)
		s.treeBuf = append(s.treeBuf, t)
	}
	t := s.treeBuf[searchFloat(s.cumBuf, rng.Float64()*total)]
	var tc treelet.Colored
	if d != nil {
		tc = d.SampleShape(rng, t)
	} else {
		tc = rec.SampleShape(rng, t)
	}
	return u.materialize(v, tc, rng)
}
