package sample

import (
	"fmt"
	"math/rand"

	"repro/internal/alias"
	"repro/internal/graphlet"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// ShapeUrn is the sample(T) primitive of Section 4: it draws uniform
// colorful copies of a single unrooted k-treelet shape T. Building one
// requires a pass over the size-k records to weight root nodes by their
// occurrences of T (the paper notes the alias sampler must be rebuilt from
// scratch whenever AGS switches shape — this constructor is that rebuild).
type ShapeUrn struct {
	Shape treelet.Treelet

	urn       *Urn
	rootings  []treelet.Treelet
	roots     []int32
	rootAlias *alias.Table
	total     u128.Uint128
}

// NewShapeUrn restricts the urn to the unrooted shape T.
func (u *Urn) NewShapeUrn(shape treelet.Treelet) (*ShapeUrn, error) {
	rootings := u.Cat.Rootings(shape)
	if len(rootings) == 0 {
		return nil, fmt.Errorf("sample: %v is not an unrooted k-treelet shape of the catalog", shape)
	}
	s := &ShapeUrn{Shape: shape, urn: u, rootings: rootings}
	weights := make([]float64, 0, len(u.roots))
	for _, v := range u.roots {
		rec := u.Tab.Rec(u.K, v).WithCache(u.synthCache)
		w := u128.Zero
		for _, t := range rootings {
			w = w.Add(rec.ShapeTotal(t))
		}
		if !w.IsZero() {
			s.roots = append(s.roots, v)
			weights = append(weights, w.Float64())
			s.total = s.total.Add(w)
		}
	}
	s.rootAlias = alias.New(weights)
	return s, nil
}

// Total returns r_T: the number of colorful copies of the shape in the urn
// (distinct copies; corrected for the k-fold rooting when 0-rooting is
// off).
func (s *ShapeUrn) Total() u128.Uint128 {
	if s.urn.Tab.ZeroRooted {
		return s.total
	}
	q, _ := s.total.QuoRem64(uint64(s.urn.K))
	return q
}

// Empty reports whether the shape has no colorful occurrence.
func (s *ShapeUrn) Empty() bool { return s.rootAlias == nil }

// Sample draws one uniform colorful copy of the shape and returns the
// canonical induced graphlet and the nodes.
func (s *ShapeUrn) Sample(rng *rand.Rand) (graphlet.Code, []int32) {
	if s.Empty() {
		panic("sample: shape urn is empty")
	}
	v := s.roots[s.rootAlias.Next(rng)]
	rec := s.urn.Tab.Rec(s.urn.K, v).WithCache(s.urn.synthCache)
	// Choose the rooted form of the shape proportionally to its count at
	// v, then a colored treelet within that rooted form.
	var (
		cum   []float64
		trees []treelet.Treelet
		total float64
	)
	for _, t := range s.rootings {
		w := rec.ShapeTotal(t)
		if w.IsZero() {
			continue
		}
		total += w.Float64()
		cum = append(cum, total)
		trees = append(trees, t)
	}
	t := trees[searchFloat(cum, rng.Float64()*total)]
	tc := rec.SampleShape(rng, t)
	return s.urn.materialize(v, tc, rng)
}
