package sample

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graphlet"
)

func TestCloneParallelSampling(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 61)
	u := buildUrn(t, g, 4, 67)
	const workers = 4
	const perWorker = 3000

	var mu sync.Mutex
	merged := make(map[graphlet.Code]int64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			urn := u.Clone()
			rng := rand.New(rand.NewSource(int64(71 + w)))
			local := make(map[graphlet.Code]int64)
			for i := 0; i < perWorker; i++ {
				code, _ := urn.Sample(rng)
				local[code]++
			}
			mu.Lock()
			for c, n := range local {
				merged[c] += n
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	// Sequential reference distribution from the original urn.
	rng := rand.New(rand.NewSource(79))
	ref := make(map[graphlet.Code]int64)
	for i := 0; i < workers*perWorker; i++ {
		code, _ := u.Sample(rng)
		ref[code]++
	}
	total := float64(workers * perWorker)
	for c, n := range ref {
		fRef := float64(n) / total
		fPar := float64(merged[c]) / total
		if fRef > 0.05 && math.Abs(fRef-fPar) > 0.05 {
			t.Errorf("parallel frequency diverges for %v: %.3f vs %.3f", c, fPar, fRef)
		}
	}
}

func TestShapeWeightsSumToTotal(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 83)
	u := buildUrn(t, g, 4, 89)
	var sum float64
	for _, w := range u.ShapeWeights() {
		sum += w
	}
	if math.Abs(sum-u.Total().Float64()) > 1e-6*sum {
		t.Errorf("Σ shape weights %v != urn total %v", sum, u.Total().Float64())
	}
}
