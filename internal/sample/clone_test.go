package sample

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graphlet"
)

func TestCloneParallelSampling(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 61)
	u := buildUrn(t, g, 4, 67)
	const workers = 4
	const perWorker = 3000

	var mu sync.Mutex
	merged := make(map[graphlet.Code]int64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			urn := u.Clone()
			rng := rand.New(rand.NewSource(int64(71 + w)))
			local := make(map[graphlet.Code]int64)
			for i := 0; i < perWorker; i++ {
				code, _ := urn.Sample(rng)
				local[code]++
			}
			mu.Lock()
			for c, n := range local {
				merged[c] += n
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	// Sequential reference distribution from the original urn.
	rng := rand.New(rand.NewSource(79))
	ref := make(map[graphlet.Code]int64)
	for i := 0; i < workers*perWorker; i++ {
		code, _ := u.Sample(rng)
		ref[code]++
	}
	total := float64(workers * perWorker)
	for c, n := range ref {
		fRef := float64(n) / total
		fPar := float64(merged[c]) / total
		if fRef > 0.05 && math.Abs(fRef-fPar) > 0.05 {
			t.Errorf("parallel frequency diverges for %v: %.3f vs %.3f", c, fPar, fRef)
		}
	}
}

// testShapeUrn picks a shape with colorful occurrences and builds its urn.
func testShapeUrn(t *testing.T, u *Urn) *ShapeUrn {
	t.Helper()
	for _, s := range u.Cat.UnrootedK {
		su, err := u.NewShapeUrn(s)
		if err != nil {
			t.Fatal(err)
		}
		if !su.Empty() {
			return su
		}
	}
	t.Fatal("no shape with colorful occurrences")
	return nil
}

// TestShapeUrnCloneIdenticalSequence: a clone shares the alias state and
// starts with empty buffers, so with the same rng it must reproduce the
// original's draw sequence exactly.
func TestShapeUrnCloneIdenticalSequence(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 91)
	u := buildUrn(t, g, 4, 97)
	su := testShapeUrn(t, u)
	clone := su.Clone()
	if clone.Total() != su.Total() {
		t.Fatalf("clone total %v != original %v", clone.Total(), su.Total())
	}
	if clone.Shape != su.Shape {
		t.Fatalf("clone shape %v != original %v", clone.Shape, su.Shape)
	}
	a := rand.New(rand.NewSource(101))
	b := rand.New(rand.NewSource(101))
	for i := 0; i < 5000; i++ {
		ca, _ := su.Sample(a)
		cb, _ := clone.Sample(b)
		if ca != cb {
			t.Fatalf("draw %d diverged: %v vs %v", i, ca, cb)
		}
	}
}

// TestShapeUrnCloneOntoParallel: per-goroutine shape-urn clones over
// per-goroutine Urn clones must be race-free (run under -race) and agree
// with the original's frequency distribution.
func TestShapeUrnCloneOntoParallel(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 103)
	u := buildUrn(t, g, 4, 107)
	su := testShapeUrn(t, u)
	const workers = 4
	const perWorker = 2000

	var mu sync.Mutex
	merged := make(map[graphlet.Code]int64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(map[graphlet.Code]int64)
			clone := su.CloneOnto(u.Clone())
			rng := rand.New(rand.NewSource(int64(109 + w)))
			for i := 0; i < perWorker; i++ {
				code, _ := clone.Sample(rng)
				local[code]++
			}
			mu.Lock()
			for c, n := range local {
				merged[c] += n
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	rng := rand.New(rand.NewSource(113))
	ref := make(map[graphlet.Code]int64)
	for i := 0; i < workers*perWorker; i++ {
		code, _ := su.Sample(rng)
		ref[code]++
	}
	total := float64(workers * perWorker)
	for c, n := range ref {
		fRef := float64(n) / total
		fPar := float64(merged[c]) / total
		if fRef > 0.05 && math.Abs(fRef-fPar) > 0.05 {
			t.Errorf("clone frequency diverges for %v: %.3f vs %.3f", c, fPar, fRef)
		}
	}
}

func TestShapeWeightsSumToTotal(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 83)
	u := buildUrn(t, g, 4, 89)
	var sum float64
	for _, w := range u.ShapeWeights() {
		sum += w
	}
	if math.Abs(sum-u.Total().Float64()) > 1e-6*sum {
		t.Errorf("Σ shape weights %v != urn total %v", sum, u.Total().Float64())
	}
}
