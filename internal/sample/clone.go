package sample

import (
	"repro/internal/graphlet"
	"repro/internal/treelet"
)

// Clone returns an independent Urn over the same (immutable) graph, table
// and catalog: fresh neighbor buffers and canonicalization cache, shared
// alias table (it is read-only after construction). Use one clone per
// goroutine — the paper's sampling phase is embarrassingly parallel
// ("samples are by definition independent and are taken by different
// threads", Section 3.3).
func (u *Urn) Clone() *Urn {
	return &Urn{
		G: u.G, Col: u.Col, Tab: u.Tab, Cat: u.Cat, K: u.K,
		BufferThreshold: u.BufferThreshold,
		BufferSize:      u.BufferSize,
		roots:           u.roots,
		rootAlias:       u.rootAlias,
		total:           u.total,
		buffers:         make(map[bufKey][]childChoice),
		canonCache:      make(map[graphlet.Code]graphlet.Code),
	}
}

// ShapeWeights exposes per-shape totals r_j as float64 for diagnostics and
// experiments (keyed by unrooted canonical shape).
func (u *Urn) ShapeWeights() map[treelet.Treelet]float64 {
	totals := u.Tab.ShapeTotals(u.Cat)
	out := make(map[treelet.Treelet]float64, len(totals))
	for s, t := range totals {
		f := t.Float64()
		if !u.Tab.ZeroRooted {
			f /= float64(u.K)
		}
		out[s] = f
	}
	return out
}
