package sample

import (
	"repro/internal/graphlet"
	"repro/internal/table"
	"repro/internal/treelet"
)

// Clone returns an independent Urn over the same (immutable) graph, table
// and catalog: fresh neighbor buffers and canonicalization cache, shared
// alias table (it is read-only after construction) and shared
// decoded-record/sweep caches (concurrency-safe; their entries are pure
// functions of the table, so sharing only amortizes, never perturbs). Use
// one clone per goroutine — the paper's sampling phase is embarrassingly
// parallel ("samples are by definition independent and are taken by
// different threads", Section 3.3).
func (u *Urn) Clone() *Urn {
	return &Urn{
		G: u.G, Col: u.Col, Tab: u.Tab, Cat: u.Cat, K: u.K,
		BufferThreshold: u.BufferThreshold,
		BufferSize:      u.BufferSize,
		roots:           u.roots,
		rootAlias:       u.rootAlias,
		total:           u.total,
		buffers:         make(map[bufKey][]childChoice),
		canonCache:      make(map[graphlet.Code]graphlet.Code),
		synthCache:      table.NewSynthCache(),
		decode:          u.decode, // concurrency-safe, shared across clones
		sweeps:          u.sweeps,
	}
}

// CloneOnto returns a ShapeUrn that shares s's immutable root-alias state
// (roots, alias table, rootings, total) but materializes copies through u,
// so neighbor buffers and the canonicalization cache stay goroutine-local.
// u must be a Clone of the Urn the shape urn was built from (same graph,
// table and catalog); the per-shape alias state is valid only against that
// table.
func (s *ShapeUrn) CloneOnto(u *Urn) *ShapeUrn {
	return &ShapeUrn{
		Shape:     s.Shape,
		urn:       u,
		rootings:  s.rootings,
		roots:     s.roots,
		rootAlias: s.rootAlias,
		total:     s.total,
	}
}

// Clone returns an independent ShapeUrn backed by a fresh clone of its
// parent Urn. Unlike NewShapeUrn it costs O(1): the expensive per-shape
// root weighting is shared, only the mutable sampling state is new. Use
// one clone per goroutine — epoch-based parallel AGS hands every worker
// its own clone of each shape urn.
func (s *ShapeUrn) Clone() *ShapeUrn { return s.CloneOnto(s.urn.Clone()) }

// ShapeWeights exposes per-shape totals r_j as float64 for diagnostics and
// experiments (keyed by unrooted canonical shape).
func (u *Urn) ShapeWeights() map[treelet.Treelet]float64 {
	totals := u.Tab.ShapeTotals(u.Cat)
	out := make(map[treelet.Treelet]float64, len(totals))
	for s, t := range totals {
		f := t.Float64()
		if !u.Tab.ZeroRooted {
			f /= float64(u.K)
		}
		out[s] = f
	}
	return out
}
