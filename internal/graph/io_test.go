package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// noSeek hides Seek so ReadEdgeList takes the buffered legacy path.
type noSeek struct{ io.Reader }

// graphBytes serializes g's CSR — byte equality here is exact structural
// equality (offsets and adjacency).
func graphBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingMatchesBuffered is the golden equivalence test for the
// two-pass streaming edge-list reader: on every input — sparse ids,
// duplicates in both directions, self-loops, comments, blank lines — it
// must produce a CSR byte-identical to the legacy buffered reader's
// (same first-appearance id compaction, same sort/dedup normalization).
func TestStreamingMatchesBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var big strings.Builder
	big.WriteString("# random multigraph with sparse ids\n")
	for i := 0; i < 5000; i++ {
		u := rng.Intn(400) * 7
		v := rng.Intn(400) * 7
		big.WriteString(strconv.Itoa(u))
		big.WriteByte(' ')
		big.WriteString(strconv.Itoa(v))
		big.WriteByte('\n')
	}
	inputs := map[string]string{
		"empty":      "",
		"comments":   "# a\n% b\n\n",
		"loops-only": "5 5\n9 9\n",
		"basic":      "10 20\n20 30\n30 10\n10 40\n",
		"dups-and-loops": "1 2\n2 1\n1 2\n3 3\n2 4\n4 2\n" +
			"100 1\n1 100\n",
		"tabs-and-spaces": "7\t8\n8  9\n\t9 7\n",
		"extra-fields":    "1 2 0.5\n2 3 0.7\n", // SNAP-style weights: ignored
		"negative-ids":    "-1 0\n0 -5\n-5 -1\n",
		"random":          big.String(),
	}
	for name, in := range inputs {
		t.Run(name, func(t *testing.T) {
			// strings.Reader is an io.ReadSeeker → streaming two-pass path.
			gs, err := ReadEdgeList(strings.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			gb, err := ReadEdgeList(noSeek{strings.NewReader(in)})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(graphBytes(t, gs), graphBytes(t, gb)) {
				t.Errorf("streaming reader CSR differs from buffered reader CSR")
			}
		})
	}
}

// TestStreamingReaderAtOffset: the two-pass reader must rewind to where
// the edge list started, not to the start of the file.
func TestStreamingReaderAtOffset(t *testing.T) {
	r := strings.NewReader("XXXX0 1\n1 2\n")
	var skip [4]byte
	if _, err := io.ReadFull(r, skip[:]); err != nil {
		t.Fatal(err)
	}
	g, err := ReadEdgeList(r)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want 3 and 2", g.NumNodes(), g.NumEdges())
	}
}

// TestStreamingErrorsMatchBuffered: both paths must reject the same
// malformed lines with line-numbered messages.
func TestStreamingErrorsMatchBuffered(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 2.5\n", "0 1\nx\n"} {
		_, errS := ReadEdgeList(strings.NewReader(in))
		_, errB := ReadEdgeList(noSeek{strings.NewReader(in)})
		if errS == nil || errB == nil {
			t.Errorf("input %q: streaming err %v, buffered err %v — both must fail", in, errS, errB)
		}
	}
}

// validBinary builds a well-formed MvG1 byte image to mutate.
func validBinary(t *testing.T) []byte {
	t.Helper()
	g := mustBuild(t, 6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {1, 4}})
	return graphBytes(t, g)
}

// openBoth routes the same bytes through the heap reader and (via a temp
// file) the mmap opener, so the shared validator provably guards both.
func openBoth(t *testing.T, data []byte) (heapErr, mapErr error) {
	t.Helper()
	_, heapErr = ReadBinary(bytes.NewReader(data))
	path := filepath.Join(t.TempDir(), "g.mvg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := OpenMapped(path)
	if err == nil {
		defer g.Close()
	}
	return heapErr, err
}

// TestBinaryErrorSurface drives hostile MvG1 images through ReadBinary
// and OpenMapped: both loaders must reject every corruption, and neither
// may trust header counts before checking them against the actual file
// (a 24-byte header claiming 10^15 nodes must fail cheaply, not allocate).
func TestBinaryErrorSurface(t *testing.T) {
	le := binary.LittleEndian
	offsetsAt := func(v int) int { return binaryHeaderSize + 8*v }
	valid := validBinary(t)
	n := int(le.Uint64(valid[8:16]))
	adjAt := func(i int) int { return binaryHeaderSize + 8*(n+1) + 4*i }

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:binaryHeaderSize-1] }},
		{"truncated-offsets", func(b []byte) []byte { return b[:binaryHeaderSize+11] }},
		{"truncated-adjacency", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xEE) }},
		{"bad-magic", func(b []byte) []byte {
			le.PutUint64(b[0:8], 0xDEADBEEF)
			return b
		}},
		{"magic-high-bits", func(b []byte) []byte {
			le.PutUint64(b[0:8], uint64(binaryMagic)|1<<40)
			return b
		}},
		{"huge-n", func(b []byte) []byte {
			le.PutUint64(b[8:16], 1<<50) // hostile count ≫ file size
			return b
		}},
		{"n-over-maxnodes", func(b []byte) []byte {
			le.PutUint64(b[8:16], MaxNodes+1)
			return b
		}},
		{"odd-m2", func(b []byte) []byte {
			le.PutUint64(b[16:24], le.Uint64(b[16:24])+1)
			return b
		}},
		{"huge-m2", func(b []byte) []byte {
			le.PutUint64(b[16:24], 1<<52)
			return b
		}},
		{"offsets-nonzero-start", func(b []byte) []byte {
			le.PutUint64(b[offsetsAt(0):], 4)
			return b
		}},
		{"offsets-nonmonotone", func(b []byte) []byte {
			le.PutUint64(b[offsetsAt(2):], le.Uint64(b[offsetsAt(1):])-1)
			return b
		}},
		{"offsets-negative", func(b []byte) []byte {
			le.PutUint64(b[offsetsAt(3):], ^uint64(7)) // -8 as int64
			return b
		}},
		{"offsets-final-short", func(b []byte) []byte {
			le.PutUint64(b[offsetsAt(n):], le.Uint64(b[offsetsAt(n):])-4)
			return b
		}},
		{"adjacency-out-of-range", func(b []byte) []byte {
			le.PutUint32(b[adjAt(0):], uint32(n))
			return b
		}},
		{"adjacency-negative", func(b []byte) []byte {
			le.PutUint32(b[adjAt(0):], ^uint32(0))
			return b
		}},
		{"adjacency-unsorted", func(b []byte) []byte {
			// Node 0 has ≥ 2 neighbors; swapping breaks strict ascent.
			a, c := le.Uint32(b[adjAt(0):]), le.Uint32(b[adjAt(1):])
			le.PutUint32(b[adjAt(0):], c)
			le.PutUint32(b[adjAt(1):], a)
			return b
		}},
		{"adjacency-self-loop", func(b []byte) []byte {
			le.PutUint32(b[adjAt(0):], 0) // first neighbor of node 0 → loop
			return b
		}},
		{"adjacency-duplicate", func(b []byte) []byte {
			le.PutUint32(b[adjAt(1):], le.Uint32(b[adjAt(0):]))
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			heapErr, mapErr := openBoth(t, data)
			if heapErr == nil {
				t.Error("ReadBinary accepted the corrupt image")
			}
			if mapErr == nil {
				t.Error("OpenMapped accepted the corrupt image")
			}
		})
	}

	// Control: the unmutated image must pass both loaders.
	heapErr, mapErr := openBoth(t, append([]byte(nil), valid...))
	if heapErr != nil || mapErr != nil {
		t.Fatalf("valid image rejected: heap %v, map %v", heapErr, mapErr)
	}
}

// TestReadBinarySizeUnknown: with a plain io.Reader (no Seek, so the file
// size is unknowable) hostile counts must still fail after bounded reads.
func TestReadBinarySizeUnknown(t *testing.T) {
	valid := validBinary(t)
	if _, err := ReadBinary(noSeek{bytes.NewReader(valid)}); err != nil {
		t.Fatalf("valid image through a plain reader: %v", err)
	}
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostile[8:16], 1<<40)
	if _, err := ReadBinary(noSeek{bytes.NewReader(hostile)}); err == nil {
		t.Error("hostile node count through a plain reader must fail")
	}
}

// TestOpenMappedRoundTrip: a mapped graph must be structurally identical
// to its heap twin, report its residency, and close cleanly.
func TestOpenMappedRoundTrip(t *testing.T) {
	g := mustBuild(t, 8, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {0, 4}, {2, 6}})
	path := filepath.Join(t.TempDir(), "g.mvg")
	data := graphBytes(t, g)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	gm, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if !gm.Mapped() || gm.MappedBytes() != int64(len(data)) {
		t.Errorf("Mapped=%v MappedBytes=%d, want true and %d", gm.Mapped(), gm.MappedBytes(), len(data))
	}
	if g.Mapped() || g.MappedBytes() != 0 {
		t.Error("heap graph claims to be mapped")
	}
	if !bytes.Equal(graphBytes(t, gm), data) {
		t.Error("mapped graph CSR differs from source")
	}
	if err := gm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gm.Close(); err != nil {
		t.Fatalf("second Close must be a no-op: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close on a heap graph must be a no-op: %v", err)
	}
}

// TestOpenSniffsFormat: Open routes by content — text edge lists stream
// (and refuse OpenMapRequire), MvG1 files map under auto/require and
// heap-load under off — with identical graphs either way.
func TestOpenSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	// Edges chosen so WriteEdgeList's first-appearance order is the
	// identity — the text round trip then reproduces the CSR byte for byte.
	g := mustBuild(t, 5, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}})
	txtPath := filepath.Join(dir, "g.txt")
	binPath := filepath.Join(dir, "g.mvg")
	var txt bytes.Buffer
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, graphBytes(t, g), 0o644); err != nil {
		t.Fatal(err)
	}

	want := graphBytes(t, g)
	for _, tc := range []struct {
		path   string
		mode   OpenMode
		mapped bool
	}{
		{txtPath, OpenAuto, false},
		{txtPath, OpenHeap, false},
		{binPath, OpenAuto, true},
		{binPath, OpenMapRequire, true},
		{binPath, OpenHeap, false},
	} {
		got, err := Open(tc.path, tc.mode)
		if err != nil {
			t.Fatalf("Open(%s, %v): %v", tc.path, tc.mode, err)
		}
		if got.Mapped() != tc.mapped {
			t.Errorf("Open(%s, %v): Mapped=%v, want %v", tc.path, tc.mode, got.Mapped(), tc.mapped)
		}
		if !bytes.Equal(graphBytes(t, got), want) {
			t.Errorf("Open(%s, %v): CSR differs", tc.path, tc.mode)
		}
		got.Close()
	}
	if _, err := Open(txtPath, OpenMapRequire); err == nil {
		t.Error("OpenMapRequire on a text edge list must fail")
	}
	if _, err := Open(filepath.Join(dir, "nope"), OpenAuto); err == nil {
		t.Error("Open on a missing file must fail")
	}
}

// TestParseOpenMode pins the flag vocabulary and its inverse.
func TestParseOpenMode(t *testing.T) {
	for _, m := range []OpenMode{OpenAuto, OpenHeap, OpenMapRequire} {
		got, err := ParseOpenMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseOpenMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseOpenMode("mmap"); err == nil {
		t.Error(`ParseOpenMode("mmap") must fail`)
	}
}
