// Package graph provides the host-graph substrate: a compact immutable
// undirected simple graph in CSR (compressed sparse row) layout.
//
// Matching the paper (Section 3.3, "Input graph"): each adjacency list is a
// sorted static array, lists of consecutive vertices are contiguous in
// memory, iteration over neighbors is a slice scan, and edge-membership
// queries cost O(log δ(u)) via binary search — exactly what the sampling
// phase needs to induce a graphlet from a sampled treelet.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// sortNodes sorts a neighbor slice ascending.
func sortNodes(ns []Node) { slices.Sort(ns) }

// Node is a vertex identifier in [0, N).
type Node = int32

// Graph is an immutable undirected simple graph.
type Graph struct {
	offsets []int64 // len n+1; neighbor range of v is adj[offsets[v]:offsets[v+1]]
	adj     []Node  // concatenated sorted adjacency lists

	// mapped is set only on graphs opened with OpenMapped: offsets and
	// adj alias a read-only file mapping it owns (mmap.go).
	mapped *mappedGraph
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v Node) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(Node(v)); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the sorted adjacency list of v as a shared slice view.
// Callers must not modify it.
func (g *Graph) Neighbors(v Node) []Node {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, in O(log min(δ(u), δ(v))).
func (g *Graph) HasEdge(u, v Node) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Edge is an undirected edge; Build normalizes, deduplicates and drops
// self-loops, so callers may pass raw edge lists.
type Edge struct {
	U, V Node
}

// Build constructs a Graph on n vertices from an edge list. Endpoints must
// lie in [0, n). Duplicate edges (in either orientation) and self-loops are
// discarded.
func Build(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].U != norm[j].U {
			return norm[i].U < norm[j].U
		}
		return norm[i].V < norm[j].V
	})
	// Deduplicate in place.
	uniq := norm[:0]
	for i, e := range norm {
		if i > 0 && e == norm[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]Node, 2*len(uniq)),
	}
	deg := make([]int64, n)
	for _, e := range uniq {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	fill := make([]int64, n)
	copy(fill, g.offsets[:n])
	for _, e := range uniq {
		g.adj[fill[e.U]] = e.V
		fill[e.U]++
		g.adj[fill[e.V]] = e.U
		fill[e.V]++
	}
	// Each list is already sorted because edges were processed in sorted
	// order for U; the V side needs a sort.
	for v := 0; v < n; v++ {
		ns := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	return g, nil
}

// Subgraph returns the induced subgraph on the given nodes as a new Graph
// whose vertex i corresponds to nodes[i]. Nodes must be distinct.
func (g *Graph) Subgraph(nodes []Node) (*Graph, error) {
	var edges []Edge
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				edges = append(edges, Edge{Node(i), Node(j)})
			}
		}
	}
	return Build(len(nodes), edges)
}

// Connected reports whether the graph is connected (vacuously true when
// empty).
func (g *Graph) Connected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []Node{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				visited++
				stack = append(stack, u)
			}
		}
	}
	return visited == n
}
