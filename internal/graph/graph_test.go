package graph

import (
	"bytes"
	"strings"
	"testing"
)

func mustBuild(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := Build(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for v := Node(0); v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("deg(%d)=%d, want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge 0-1 missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge 0-2")
	}
}

func TestBuildDedupAndLoops(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}})
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Error("self-loop should be dropped")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 2}}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := Build(2, []Edge{{-1, 0}}); err == nil {
		t.Error("expected negative-id error")
	}
	if _, err := Build(-1, nil); err == nil {
		t.Error("expected negative-n error")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{3, 0}, {3, 4}, {3, 1}, {3, 2}})
	ns := g.Neighbors(3)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
}

func TestSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3.
	g := mustBuild(t, 4, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	sub, err := g.Subgraph([]Node{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 3 {
		t.Errorf("induced triangle has %d edges", sub.NumEdges())
	}
	sub2, err := g.Subgraph([]Node{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.NumEdges() != 1 {
		t.Errorf("induced {0,1,3} has %d edges, want 1", sub2.NumEdges())
	}
}

func TestConnected(t *testing.T) {
	if !mustBuild(t, 3, []Edge{{0, 1}, {1, 2}}).Connected() {
		t.Error("path should be connected")
	}
	if mustBuild(t, 3, []Edge{{0, 1}}).Connected() {
		t.Error("isolated node 2 should disconnect")
	}
	if !mustBuild(t, 0, nil).Connected() {
		t.Error("empty graph is vacuously connected")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment
10 20
20 30
30 10

10 40
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("expected error for single-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("expected error for non-numeric ids")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: n=%d m=%d", g2.NumNodes(), g2.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := mustBuild(t, 6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("binary round trip mismatch")
	}
	for v := Node(0); int(v) < g.NumNodes(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("expected bad-magic error")
	}
}

func TestMaxDegree(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{0, 1}, {0, 2}, {0, 3}, {3, 4}})
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree=%d, want 3", g.MaxDegree())
	}
}
