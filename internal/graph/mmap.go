package graph

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/mmapx"
)

// ErrNotMappable reports that a graph file cannot be served through
// OpenMapped but is (or may be) loadable another way: a platform without
// mmap, a big-endian host, or a file too small to carry an MvG1 header.
// Callers that prefer mapping should errors.Is on it and fall back to the
// heap loaders (Open with OpenAuto does exactly that). It never wraps
// corruption — a damaged MvG1 file is a hard error on both paths.
var ErrNotMappable = errors.New("graph: file not mappable")

// hostLittleEndian reports whether this host matches the on-disk byte
// order. The zero-copy path reinterprets mapped bytes as []int64 and
// []Node, which is only correct little-endian.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mappedGraph owns one read-only file mapping. The Graph's offset index
// and adjacency arena alias it, so its lifetime must cover the graph's:
// it is unmapped by an explicit Graph.Close or, failing that, by a
// finalizer once the graph is unreachable.
type mappedGraph struct {
	data   []byte
	closed atomic.Bool
}

func (mg *mappedGraph) close() error {
	if mg.closed.Swap(true) {
		return nil
	}
	return mmapx.Unmap(mg.data)
}

// OpenMapped opens an MvG1 binary CSR file (WriteBinary's output) by
// mapping it read-only: the offset index and adjacency arena point
// directly into the mapping, so the host graph costs ~0 Go heap however
// many edges it has, and residency is the kernel's page cache. The file
// is fully validated at open — the same header and CSR invariants
// ReadBinary enforces, as one sequential scan of the mapping — so a
// hostile file is rejected, never served.
//
// A platform without mmap or a big-endian host returns an error wrapping
// ErrNotMappable (retry with ReadBinary); a corrupt file is a hard error.
// Close the graph to release the mapping deterministically; otherwise a
// finalizer releases it when the graph becomes unreachable.
func OpenMapped(path string) (*Graph, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("%w: big-endian host", ErrNotMappable)
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() < binaryHeaderSize {
		return nil, fmt.Errorf("%w: %d-byte file is below the MvG1 header size", ErrNotMappable, st.Size())
	}
	data, err := mmapx.Map(path)
	if err != nil {
		if errors.Is(err, mmapx.ErrUnsupported) {
			return nil, fmt.Errorf("%w: %v", ErrNotMappable, err)
		}
		return nil, err
	}
	g, err := mapBinary(data)
	if err != nil {
		_ = mmapx.Unmap(data) // nothing aliases data yet
		return nil, err
	}
	runtime.SetFinalizer(g.mapped, func(mg *mappedGraph) { _ = mg.close() })
	return g, nil
}

// mapBinary builds a Graph whose sections alias the mapped MvG1 bytes,
// rejecting anything the heap reader would reject.
func mapBinary(data []byte) (*Graph, error) {
	var hdr [3]uint64
	for i := range hdr {
		hdr[i] = uint64(data[8*i]) | uint64(data[8*i+1])<<8 | uint64(data[8*i+2])<<16 | uint64(data[8*i+3])<<24 |
			uint64(data[8*i+4])<<32 | uint64(data[8*i+5])<<40 | uint64(data[8*i+6])<<48 | uint64(data[8*i+7])<<56
	}
	n, m2, err := validateBinaryHeader(hdr)
	if err != nil {
		return nil, err
	}
	if want := binaryFileSize(n, m2); int64(len(data)) != want {
		return nil, fmt.Errorf("graph: header claims n=%d m2=%d (%d bytes), file has %d", n, m2, want, len(data))
	}
	offBytes := data[binaryHeaderSize : binaryHeaderSize+8*(n+1)]
	offsets := castInt64s(offBytes, int(n)+1)
	adj := castNodes(data[binaryHeaderSize+8*(n+1):], int(m2))
	if err := validateCSR(offsets, adj); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, adj: adj, mapped: &mappedGraph{data: data}}, nil
}

// Mapped reports whether the graph is served off a read-only file mapping
// (OpenMapped) rather than heap slices.
func (g *Graph) Mapped() bool { return g.mapped != nil }

// MappedBytes returns the size of the file mapping backing the graph, or
// 0 for heap graphs. Mapped bytes are page-cache residency, not process
// heap.
func (g *Graph) MappedBytes() int64 {
	if g.mapped == nil {
		return 0
	}
	return int64(len(g.mapped.data))
}

// Close releases the file mapping of a mapped graph. After Close every
// neighbor access faults, so call it only once nothing can still read the
// graph. On heap graphs (and on repeat calls) it is a no-op.
func (g *Graph) Close() error {
	if g.mapped == nil {
		return nil
	}
	runtime.SetFinalizer(g.mapped, nil)
	return g.mapped.close()
}

// castInt64s reinterprets a mapped offset-index section as []int64
// without copying. Safe by construction: b points into a page-aligned
// mapping at file offset 24 (8-byte aligned), the host is little-endian
// (OpenMapped gates on it), and the mapping is read-only for its whole
// lifetime.
func castInt64s(b []byte, n int) []int64 {
	if n == 0 {
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

// castNodes reinterprets a mapped adjacency arena as []Node (the section
// starts 4-byte aligned: 24 + 8*(n+1)).
func castNodes(b []byte, n int) []Node {
	if n == 0 {
		return []Node{}
	}
	return unsafe.Slice((*Node)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

// OpenMode selects how Open serves a graph file.
type OpenMode int

const (
	// OpenAuto — the default — memory-maps MvG1 binary files (zero-copy,
	// ~0 heap) falling back to the heap reader where mapping is
	// unavailable, and streams edge-list files through the two-pass
	// reader. The right choice everywhere except tests pinning one path.
	OpenAuto OpenMode = iota
	// OpenHeap always loads onto the Go heap: ReadBinary for MvG1 files,
	// the streaming edge-list reader for text.
	OpenHeap
	// OpenMapRequire maps or fails — edge-list inputs and unmappable
	// platforms are errors, for deployments where silently paying the
	// heap footprint of a billion-edge graph would be an outage.
	OpenMapRequire
)

func (m OpenMode) String() string {
	switch m {
	case OpenAuto:
		return "auto"
	case OpenHeap:
		return "off"
	case OpenMapRequire:
		return "require"
	}
	return fmt.Sprintf("OpenMode(%d)", int(m))
}

// ParseOpenMode converts a mode name (as accepted by the -map-graph CLI
// flag) into an OpenMode; it is the inverse of OpenMode.String.
func ParseOpenMode(name string) (OpenMode, error) {
	switch name {
	case "auto":
		return OpenAuto, nil
	case "off":
		return OpenHeap, nil
	case "require":
		return OpenMapRequire, nil
	}
	return 0, fmt.Errorf("graph: unknown open mode %q (want auto, off or require)", name)
}

// Open loads a host graph from path, sniffing the format: files starting
// with the MvG1 magic are binary CSRs (memory-mapped or heap-loaded per
// mode), anything else is parsed as a whitespace edge list through the
// streaming two-pass reader. Convert an edge list once with WriteBinary
// (`motivo convert`) and every later Open is O(ms) and heap-free.
func Open(path string, mode OpenMode) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	bin := false
	if _, err := io.ReadFull(f, magic[:]); err == nil {
		m := uint32(magic[0]) | uint32(magic[1])<<8 | uint32(magic[2])<<16 | uint32(magic[3])<<24
		bin = m == binaryMagic
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if !bin {
		if mode == OpenMapRequire {
			return nil, fmt.Errorf("graph: %s is not an MvG1 binary (edge lists cannot be mapped; convert it first)", path)
		}
		return ReadEdgeList(f)
	}
	if mode != OpenHeap {
		g, err := OpenMapped(path)
		if err == nil || mode == OpenMapRequire || !errors.Is(err, ErrNotMappable) {
			return g, err
		}
		// OpenAuto: not mappable here — fall back to the heap reader.
	}
	return ReadBinary(f)
}
