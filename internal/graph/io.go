package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// lines starting with '#' or '%' are comments). Vertex ids may be sparse;
// they are compacted to [0, n) preserving order of first appearance.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]Node)
	var edges []Edge
	id := func(raw int64) Node {
		if v, ok := remap[raw]; ok {
			return v
		}
		v := Node(len(remap))
		remap[raw] = v
		return v
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges = append(edges, Edge{id(u), id(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Build(len(remap), edges)
}

// WriteEdgeList writes the graph as a plain edge list (each undirected edge
// once, smaller endpoint first).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := Node(0); int(v) < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the compact binary graph format (paper §5:
// "converted to the motivo binary format").
const binaryMagic = uint32(0x4d764731) // "MvG1"

// WriteBinary serializes the graph in a compact little-endian CSR format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{uint64(binaryMagic), uint64(g.NumNodes()), uint64(len(g.adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if uint32(hdr[0]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, m2 := int(hdr[1]), int(hdr[2])
	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]Node, m2),
	}
	if err := binary.Read(br, binary.LittleEndian, &g.offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &g.adj); err != nil {
		return nil, err
	}
	return g, nil
}
