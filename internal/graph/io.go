package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxNodes bounds the vertex count of any loadable graph: Node is an
// int32, so ids live in [0, MaxNodes).
const MaxNodes = 1<<31 - 1

// scanEdges parses the whitespace-separated edge-list format ("u v" per
// line; blank lines and lines starting with '#' or '%' are comments),
// calling fn with each edge's raw vertex ids. It is the one parser behind
// both passes of the streaming reader and the buffered fallback, so every
// path reports identical errors for identical inputs.
func scanEdges(r io.Reader, fn func(u, v int64) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if err := fn(u, v); err != nil {
			return fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// remapper compacts sparse raw vertex ids to [0, n) in order of first
// appearance — the id schedule both reader paths share, so they produce
// identical graphs from identical inputs.
type remapper map[int64]Node

func (m remapper) id(raw int64) (Node, error) {
	if v, ok := m[raw]; ok {
		return v, nil
	}
	if len(m) >= MaxNodes {
		return 0, fmt.Errorf("more than %d distinct vertex ids", MaxNodes)
	}
	v := Node(len(m))
	m[raw] = v
	return v, nil
}

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// lines starting with '#' or '%' are comments). Vertex ids may be sparse;
// they are compacted to [0, n) preserving order of first appearance.
// Self-loops are dropped (their endpoints still claim an id) and repeated
// edges are deduplicated, exactly as graph.Build does.
//
// When r can seek (an *os.File, bytes.Reader, …) the input is read in two
// streaming passes — pass 1 counts degrees and builds the id remap with
// O(n) scratch, pass 2 fills a preallocated CSR in place — so peak memory
// is the CSR itself plus the remap, never an O(m) edge buffer. Plain
// readers fall back to buffering the edge list.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	if rs, ok := r.(io.ReadSeeker); ok {
		if pos, err := rs.Seek(0, io.SeekCurrent); err == nil {
			return readEdgeListStreaming(rs, pos)
		}
		// A Seeker that cannot report its position (pipes pretending)
		// gets the buffered path.
	}
	return readEdgeListBuffered(r)
}

// readEdgeListBuffered is the legacy one-pass reader for non-seekable
// inputs: every edge is buffered and handed to Build, which sorts,
// deduplicates and drops self-loops.
func readEdgeListBuffered(r io.Reader) (*Graph, error) {
	remap := make(remapper)
	var edges []Edge
	err := scanEdges(r, func(u, v int64) error {
		ui, err := remap.id(u)
		if err != nil {
			return err
		}
		vi, err := remap.id(v)
		if err != nil {
			return err
		}
		edges = append(edges, Edge{ui, vi})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Build(len(remap), edges)
}

// readEdgeListStreaming is the two-pass streaming reader. Pass 1 builds
// the id remap and per-vertex degree counts (duplicates included, loops
// excluded); pass 2 seeks back and scatters endpoints into a CSR sized
// exactly from the counts. Each adjacency list is then sorted and
// deduplicated in place, compacting the arena — the same normalization
// Build applies to a buffered edge list, so the two paths are
// bit-identical on any input.
func readEdgeListStreaming(rs io.ReadSeeker, pos int64) (*Graph, error) {
	remap := make(remapper)
	var deg []int64
	err := scanEdges(rs, func(u, v int64) error {
		ui, err := remap.id(u)
		if err != nil {
			return err
		}
		vi, err := remap.id(v)
		if err != nil {
			return err
		}
		for len(deg) < len(remap) {
			deg = append(deg, 0)
		}
		if ui == vi {
			return nil // self-loop: the id is claimed, the edge dropped
		}
		deg[ui]++
		deg[vi]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := len(remap)
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]Node, offsets[n])
	// deg becomes the per-vertex fill cursor for pass 2.
	fill := deg
	copy(fill, offsets[:n])

	if _, err := rs.Seek(pos, io.SeekStart); err != nil {
		return nil, fmt.Errorf("graph: rewind for pass 2: %w", err)
	}
	err = scanEdges(rs, func(u, v int64) error {
		ui, ok := remap[u]
		if !ok {
			return fmt.Errorf("vertex %d appeared between passes (input changed mid-read?)", u)
		}
		vi, ok := remap[v]
		if !ok {
			return fmt.Errorf("vertex %d appeared between passes (input changed mid-read?)", v)
		}
		if ui == vi {
			return nil
		}
		if fill[ui] >= offsets[ui+1] || fill[vi] >= offsets[vi+1] {
			return fmt.Errorf("edge count grew between passes (input changed mid-read?)")
		}
		adj[fill[ui]] = vi
		fill[ui]++
		adj[fill[vi]] = ui
		fill[vi]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		if fill[v] != offsets[v+1] {
			return nil, fmt.Errorf("graph: edge count shrank between passes (input changed mid-read?)")
		}
	}

	// Sort + dedup each list in place, compacting the arena. The write
	// cursor w never overtakes the read range, so this is safe in place.
	var w int64
	lo := int64(0)
	for v := 0; v < n; v++ {
		hi := offsets[v+1]
		ns := adj[lo:hi]
		sortNodes(ns)
		offsets[v] = w
		prev := Node(-1)
		for _, u := range ns {
			if u == prev {
				continue
			}
			adj[w] = u
			prev = u
			w++
		}
		lo = hi
	}
	offsets[n] = w
	return &Graph{offsets: offsets, adj: adj[:w:w]}, nil
}

// WriteEdgeList writes the graph as a plain edge list (each undirected edge
// once, smaller endpoint first).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := Node(0); int(v) < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the compact binary graph format (paper §5:
// "converted to the motivo binary format").
const binaryMagic = uint32(0x4d764731) // "MvG1"

// binaryHeaderSize is the MvG1 header: magic, n, m2 as little-endian u64.
const binaryHeaderSize = 24

// binaryFileSize returns the exact byte size of an MvG1 file for n nodes
// and an adjacency arena of m2 entries — the header, the (n+1)-entry
// offset index, and the arena itself.
func binaryFileSize(n, m2 int64) int64 {
	return binaryHeaderSize + 8*(n+1) + 4*m2
}

// WriteBinary serializes the graph in the compact little-endian MvG1 CSR
// format: a 24-byte header (magic, n, m2), the (n+1)-entry int64 offset
// index, then the int32 adjacency arena. Both sections start 8- and
// 4-byte aligned respectively, which is what lets OpenMapped serve the
// file zero-copy straight out of a read-only mapping.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{uint64(binaryMagic), uint64(g.NumNodes()), uint64(len(g.adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// validateBinaryHeader checks an MvG1 header against the structural
// limits, returning (n, m2). Shared by the heap reader and OpenMapped so
// a hostile header is rejected identically on both paths, before any
// size-proportional allocation.
func validateBinaryHeader(hdr [3]uint64) (n, m2 int64, err error) {
	if uint32(hdr[0]) != binaryMagic || hdr[0]>>32 != 0 {
		return 0, 0, fmt.Errorf("graph: bad magic %#x (not an MvG1 file)", hdr[0])
	}
	if hdr[1] > MaxNodes {
		return 0, 0, fmt.Errorf("graph: header claims %d nodes, max is %d", hdr[1], MaxNodes)
	}
	n = int64(hdr[1])
	if hdr[2] > uint64(n)*uint64(MaxNodes) || hdr[2]%2 != 0 {
		return 0, 0, fmt.Errorf("graph: header claims %d adjacency entries for %d nodes", hdr[2], n)
	}
	return n, int64(hdr[2]), nil
}

// validateCSR checks every structural invariant the Graph methods rely on:
// offsets start at 0, are monotone, and end exactly at the arena length;
// each adjacency list is strictly increasing (sorted, no duplicates), free
// of self-loops, and in [0, n). It is the one validator shared by
// ReadBinary and OpenMapped — untrusted bytes pass it or are rejected,
// never served.
func validateCSR(offsets []int64, adj []Node) error {
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return fmt.Errorf("graph: offsets start at %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(adj)) {
		return fmt.Errorf("graph: offsets end at %d, arena has %d entries", offsets[n], len(adj))
	}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if hi < lo {
			return fmt.Errorf("graph: offsets not monotone at node %d (%d after %d)", v, hi, lo)
		}
		if hi > int64(len(adj)) {
			return fmt.Errorf("graph: node %d adjacency [%d:%d) beyond the %d-entry arena", v, lo, hi, len(adj))
		}
		prev := Node(-1)
		for _, u := range adj[lo:hi] {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: node %d has neighbor %d out of range [0,%d)", v, u, n)
			}
			if u == Node(v) {
				return fmt.Errorf("graph: node %d has a self-loop", v)
			}
			if u <= prev {
				return fmt.Errorf("graph: node %d adjacency not strictly increasing at %d", v, u)
			}
			prev = u
		}
	}
	return nil
}

// readerSize reports the number of bytes remaining in r when that is
// discoverable without consuming it (io.Seeker covers *os.File,
// bytes.Reader and strings.Reader). ok is false for plain streams.
func readerSize(r io.Reader) (size int64, ok bool) {
	s, isSeeker := r.(io.Seeker)
	if !isSeeker {
		return 0, false
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, false
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, false
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return 0, false
	}
	return end - cur, true
}

// chunkEntries bounds the scratch buffer of the incremental section
// readers: 8192 entries = 64 KiB of int64s per read.
const chunkEntries = 8192

// readInt64s reads count little-endian int64s in bounded chunks. The
// result slice grows with the bytes actually read, so a hostile count in
// a truncated file fails after a bounded allocation instead of
// make([]int64, count) up front.
func readInt64s(br *bufio.Reader, count int64) ([]int64, error) {
	out := make([]int64, 0, min(count, chunkEntries))
	buf := make([]byte, 8*chunkEntries)
	for int64(len(out)) < count {
		c := min(count-int64(len(out)), chunkEntries)
		b := buf[:8*c]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: truncated offset index: %w", err)
		}
		for i := int64(0); i < c; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[8*i:])))
		}
	}
	return out, nil
}

// readNodes reads count little-endian int32 node ids in bounded chunks,
// growing the result with the bytes actually read (see readInt64s).
func readNodes(br *bufio.Reader, count int64) ([]Node, error) {
	out := make([]Node, 0, min(count, 2*chunkEntries))
	buf := make([]byte, 8*chunkEntries)
	for int64(len(out)) < count {
		c := min(count-int64(len(out)), 2*chunkEntries)
		b := buf[:4*c]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: truncated adjacency arena: %w", err)
		}
		for i := int64(0); i < c; i++ {
			out = append(out, Node(binary.LittleEndian.Uint32(b[4*i:])))
		}
	}
	return out, nil
}

// ReadBinary deserializes a graph written by WriteBinary, treating the
// input as untrusted: the header is validated (magic, node/edge limits,
// and — when r can report its size — an exact byte-length match) before
// any size-proportional allocation, sections are read in bounded chunks so
// truncation fails early, and the resulting CSR must pass validateCSR
// (monotone in-bounds offsets, sorted loop-free lists) before a Graph is
// returned.
func ReadBinary(r io.Reader) (*Graph, error) {
	size, sizeKnown := readerSize(r)
	br := bufio.NewReaderSize(r, 1<<20)
	var hb [binaryHeaderSize]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return nil, fmt.Errorf("graph: truncated header: %w", err)
	}
	var hdr [3]uint64
	for i := range hdr {
		hdr[i] = binary.LittleEndian.Uint64(hb[8*i:])
	}
	n, m2, err := validateBinaryHeader(hdr)
	if err != nil {
		return nil, err
	}
	if sizeKnown {
		if want := binaryFileSize(n, m2); size != want {
			return nil, fmt.Errorf("graph: header claims n=%d m2=%d (%d bytes), input has %d", n, m2, want, size)
		}
	}
	offsets, err := readInt64s(br, n+1)
	if err != nil {
		return nil, err
	}
	adj, err := readNodes(br, m2)
	if err != nil {
		return nil, err
	}
	if err := validateCSR(offsets, adj); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, adj: adj}, nil
}
