// Package gen provides deterministic synthetic graph generators.
//
// The paper evaluates on nine public graphs (Table 1) ranging from Facebook
// (0.1M nodes) to Friendster (65.6M nodes, 1.8B edges). Those datasets are
// not shipped here; instead each generator below reproduces the structural
// regime that a family of datasets exercises:
//
//   - ErdosRenyi: flat degree and graphlet distributions (Dblp/Amazon-like;
//     the regime where naive sampling ties or beats AGS, Section 5.3).
//   - BarabasiAlbert: heavy-tailed degrees (Orkut/LiveJournal-like; hubs
//     trigger the neighbor-buffering optimization, Section 3.2).
//   - StarHeavy: one or few dominant hubs so that almost all k-graphlets
//     are stars (Yelp-like: >99.9996% of 8-graphlets are stars; the
//     showcase for AGS, Section 5.3).
//   - Lollipop: the (n', n-n') lollipop of Theorem 5, the worst case for
//     any sample(T)-based algorithm.
//
// All generators take an explicit seed and are reproducible across runs.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi returns a G(n, m) graph: m distinct uniform random edges.
func ErdosRenyi(n int, m int, seed int64) *graph.Graph {
	if max := int64(n) * int64(n-1) / 2; int64(m) > max {
		panic(fmt.Sprintf("gen: ErdosRenyi m=%d exceeds max %d", m, max))
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int32]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int32{u, v}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err) // generator bug; edges are in range by construction
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: nodes arrive one
// at a time and connect to mPerNode existing nodes chosen proportionally to
// their current degree (the repeated-endpoint-list trick).
func BarabasiAlbert(n, mPerNode int, seed int64) *graph.Graph {
	if mPerNode < 1 || n <= mPerNode {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs n > mPerNode >= 1, got n=%d m=%d", n, mPerNode))
	}
	rng := rand.New(rand.NewSource(seed))
	// Start from a star on mPerNode+1 nodes so early picks have targets.
	var edges []graph.Edge
	endpoints := make([]int32, 0, 2*n*mPerNode)
	for v := 1; v <= mPerNode; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
		endpoints = append(endpoints, 0, int32(v))
	}
	// Targets are kept in a slice in pick order (not a map): iterating a
	// map here would append endpoints in randomized order and break
	// seed-reproducibility of every later degree-proportional draw.
	targets := make([]int32, 0, mPerNode)
	for v := mPerNode + 1; v < n; v++ {
		targets = targets[:0]
	pick:
		for len(targets) < mPerNode {
			t := endpoints[rng.Intn(len(endpoints))]
			for _, p := range targets {
				if p == t {
					continue pick
				}
			}
			targets = append(targets, t)
		}
		for _, t := range targets {
			edges = append(edges, graph.Edge{U: int32(v), V: t})
			endpoints = append(endpoints, int32(v), t)
		}
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// StarHeavy returns a graph dominated by `hubs` high-degree centers, each
// adjacent to all of `leaves` shared leaf nodes, plus `extraEdges` random
// edges among the leaves. With hubs=1 and extraEdges small, virtually every
// k-graphlet is a star — the Yelp regime of Section 5.3.
func StarHeavy(hubs, leaves, extraEdges int, seed int64) *graph.Graph {
	n := hubs + leaves
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for h := 0; h < hubs; h++ {
		for l := 0; l < leaves; l++ {
			edges = append(edges, graph.Edge{U: int32(h), V: int32(hubs + l)})
		}
	}
	for i := 0; i < extraEdges; i++ {
		u := int32(hubs + rng.Intn(leaves))
		v := int32(hubs + rng.Intn(leaves))
		edges = append(edges, graph.Edge{U: u, V: v}) // dups/loops dropped by Build
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Lollipop returns the (cliqueN, tailLen) lollipop graph of Theorem 5: a
// clique on cliqueN nodes with a dangling path of tailLen nodes attached to
// clique node 0.
func Lollipop(cliqueN, tailLen int) *graph.Graph {
	n := cliqueN + tailLen
	var edges []graph.Edge
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	prev := int32(0)
	for t := 0; t < tailLen; t++ {
		v := int32(cliqueN + t)
		edges = append(edges, graph.Edge{U: prev, V: v})
		prev = v
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Complete returns the clique K_n.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns the path graph P_n.
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	if n > 2 {
		edges = append(edges, graph.Edge{U: 0, V: int32(n - 1)})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Star returns the star K_{1,n-1} centered at node 0.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i)})
	}
	g, err := graph.Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
