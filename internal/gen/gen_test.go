package gen

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumNodes() != 100 || g.NumEdges() != 300 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	// Determinism.
	g2 := ErdosRenyi(100, 300, 1)
	for v := graph.Node(0); v < 100; v++ {
		if g.Degree(v) != g2.Degree(v) {
			t.Fatal("same seed must give same graph")
		}
	}
	g3 := ErdosRenyi(100, 300, 2)
	same := true
	for v := graph.Node(0); v < 100; v++ {
		if g.Degree(v) != g3.Degree(v) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical degree sequences (suspicious)")
	}
}

func TestErdosRenyiPanicsWhenOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ErdosRenyi(3, 4, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 7)
	if g.NumNodes() != 500 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	// m ≈ (n - m0 - ... ) * mPerNode; at least n-4 nodes add ≤3 edges each.
	if g.NumEdges() < 1000 || g.NumEdges() > 1500 {
		t.Errorf("m=%d out of expected band", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("BA graph should be connected")
	}
	// Heavy tail: max degree far above the mean degree.
	mean := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(g.MaxDegree()) < 4*mean {
		t.Errorf("max degree %d not heavy-tailed vs mean %.1f", g.MaxDegree(), mean)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	// Exact edge-for-edge equality, not just the degree sequence: the
	// endpoint list once grew in map-iteration order, which silently
	// de-seeded every later degree-proportional draw.
	var a, b bytes.Buffer
	if err := BarabasiAlbert(500, 3, 7).WriteEdgeList(&a); err != nil {
		t.Fatal(err)
	}
	if err := BarabasiAlbert(500, 3, 7).WriteEdgeList(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed must give the identical edge list")
	}
}

func TestStarHeavy(t *testing.T) {
	g := StarHeavy(1, 1000, 20, 3)
	if g.NumNodes() != 1001 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if g.Degree(0) != 1000 {
		t.Errorf("hub degree %d, want 1000", g.Degree(0))
	}
	if g.NumEdges() < 1000 || g.NumEdges() > 1020 {
		t.Errorf("m=%d", g.NumEdges())
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(10, 4)
	if g.NumNodes() != 14 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	wantM := int64(10*9/2 + 4)
	if g.NumEdges() != wantM {
		t.Errorf("m=%d want %d", g.NumEdges(), wantM)
	}
	if !g.Connected() {
		t.Error("lollipop must be connected")
	}
	// Tail end has degree 1.
	if g.Degree(13) != 1 {
		t.Errorf("tail end degree %d", g.Degree(13))
	}
}

func TestSmallShapes(t *testing.T) {
	if g := Complete(5); g.NumEdges() != 10 {
		t.Errorf("K5 edges=%d", g.NumEdges())
	}
	if g := Path(5); g.NumEdges() != 4 || !g.Connected() {
		t.Errorf("P5 wrong")
	}
	if g := Cycle(5); g.NumEdges() != 5 {
		t.Errorf("C5 edges=%d", g.NumEdges())
	}
	if g := Star(5); g.Degree(0) != 4 {
		t.Errorf("star center degree=%d", g.Degree(0))
	}
	if g := Cycle(2); g.NumEdges() != 1 {
		t.Errorf("C2 degenerates to single edge, got %d", g.NumEdges())
	}
}
