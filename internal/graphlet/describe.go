package graphlet

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders a graphlet code as a short human-readable description:
// special names for well-known shapes, otherwise edge count and degree
// sequence. It lives here (rather than in the root package) so the HTTP
// serving layer can render responses without importing the public API.
func Describe(k int, c Code) string {
	deg := Degrees(k, c)
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	switch {
	case IsClique(k, c):
		return fmt.Sprintf("%d-clique", k)
	case IsStar(k, c):
		return fmt.Sprintf("%d-star", k)
	case isPath(k, c):
		return fmt.Sprintf("%d-path", k)
	case isCycle(k, c):
		return fmt.Sprintf("%d-cycle", k)
	}
	parts := make([]string, len(deg))
	for i, d := range deg {
		parts[i] = fmt.Sprintf("%d", d)
	}
	// The code suffix disambiguates non-isomorphic graphlets that share an
	// edge count and degree sequence.
	return fmt.Sprintf("%dv/%de deg[%s] %s", k, c.EdgeCount(), strings.Join(parts, ","), c)
}

func isPath(k int, c Code) bool {
	if c.EdgeCount() != k-1 {
		return false
	}
	ones, twos := 0, 0
	for _, d := range Degrees(k, c) {
		switch d {
		case 1:
			ones++
		case 2:
			twos++
		}
	}
	return ones == 2 && twos == k-2
}

func isCycle(k int, c Code) bool {
	if c.EdgeCount() != k {
		return false
	}
	for _, d := range Degrees(k, c) {
		if d != 2 {
			return false
		}
	}
	return true
}
