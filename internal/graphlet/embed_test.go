package graphlet

import (
	"testing"

	"repro/internal/gen"
)

func TestAutomorphismsKnown(t *testing.T) {
	cases := []struct {
		name string
		k    int
		c    Code
		want int64
	}{
		{"edge", 2, FromEdges(2, [][2]int{{0, 1}}), 2},
		{"P3", 3, FromEdges(3, [][2]int{{0, 1}, {1, 2}}), 2},
		{"triangle", 3, FromGraph(gen.Complete(3)), 6},
		{"P4", 4, FromGraph(gen.Path(4)), 2},
		{"C4", 4, FromGraph(gen.Cycle(4)), 8},
		{"K4", 4, FromGraph(gen.Complete(4)), 24},
		{"star4", 4, FromGraph(gen.Star(4)), 6},  // 3! leaf permutations
		{"star5", 5, FromGraph(gen.Star(5)), 24}, // 4!
		{"C5", 5, FromGraph(gen.Cycle(5)), 10},   // dihedral
		{"C6", 6, FromGraph(gen.Cycle(6)), 12},
	}
	for _, tc := range cases {
		if got := Automorphisms(tc.k, tc.c); got != tc.want {
			t.Errorf("%s: |Aut| = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestEmbeddingsKnown(t *testing.T) {
	k4 := FromGraph(gen.Complete(4))
	p4 := FromGraph(gen.Path(4))
	c4 := FromGraph(gen.Cycle(4))
	star4 := FromGraph(gen.Star(4))

	// Any graph embeds into the clique in all k! ways.
	if got := Embeddings(4, p4, k4); got != 24 {
		t.Errorf("Emb(P4→K4) = %d, want 24", got)
	}
	// P4 into C4: choose a start vertex and direction.
	if got := Embeddings(4, p4, c4); got != 8 {
		t.Errorf("Emb(P4→C4) = %d, want 8", got)
	}
	// The clique does not embed into anything sparser.
	if got := Embeddings(4, k4, c4); got != 0 {
		t.Errorf("Emb(K4→C4) = %d, want 0", got)
	}
	// Star into C4: the center needs degree 3, C4 is 2-regular.
	if got := Embeddings(4, star4, c4); got != 0 {
		t.Errorf("Emb(star→C4) = %d, want 0", got)
	}
}

func TestSubgraphMultiplicity(t *testing.T) {
	k4 := FromGraph(gen.Complete(4))
	p4 := FromGraph(gen.Path(4))
	c4 := FromGraph(gen.Cycle(4))
	// Spanning paths of K4: 4!/2 = 12.
	if got := SubgraphMultiplicity(4, p4, k4); got != 12 {
		t.Errorf("paths in K4 = %d, want 12", got)
	}
	// Spanning cycles of K4: 3.
	if got := SubgraphMultiplicity(4, c4, k4); got != 3 {
		t.Errorf("cycles in K4 = %d, want 3", got)
	}
	// A graph spans itself exactly once.
	for _, c := range []Code{k4, p4, c4} {
		if got := SubgraphMultiplicity(4, c, c); got != 1 {
			t.Errorf("self multiplicity = %d, want 1", got)
		}
	}
}

func TestEmbeddingsInvariantUnderRelabeling(t *testing.T) {
	// Multiplicity must not depend on which representative codes are used.
	h := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	target := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	want := SubgraphMultiplicity(5, h, target)
	perm := []int{2, 0, 4, 1, 3}
	h2 := Relabel(5, h, perm)
	t2 := Relabel(5, target, perm)
	if got := SubgraphMultiplicity(5, h2, t2); got != want {
		t.Errorf("multiplicity changed under relabeling: %d vs %d", got, want)
	}
}
