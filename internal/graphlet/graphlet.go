// Package graphlet represents k-node graphlets (connected induced
// subgraphs) and the per-graphlet quantities motivo needs: canonical codes,
// spanning-tree counts, and the σ_ij table (number of spanning trees of
// graphlet H_i isomorphic to treelet shape T_j).
//
// Following Section 3.3 of the paper, a graphlet is a k × k symmetric
// adjacency matrix with zero diagonal packed as its strict upper triangle
// into a 128-bit integer (k(k-1)/2 ≤ 120 bits for k ≤ 16). The paper
// canonicalizes with the Nauty library; we substitute a degree-refined
// backtracking canonical labeling, exact for all k ≤ MaxK and fast because
// real graphlets rarely have large automorphism-compatible vertex classes
// (and the sampler memoizes canonical forms of repeated raw codes).
package graphlet

import (
	"fmt"
	"math/bits"
	"strconv"

	"repro/internal/graph"
	"repro/internal/treelet"
)

// MaxK is the largest supported graphlet size, aligned with treelet.MaxK.
const MaxK = treelet.MaxK

// Code is a packed graphlet adjacency matrix. It is comparable and usable
// as a map key. Bit index of the vertex pair (i, j), i < j, is
// j(j-1)/2 + i.
type Code struct {
	Hi, Lo uint64
}

// pairIndex returns the triangular bit index of the pair {i, j}.
func pairIndex(i, j int) uint {
	if i > j {
		i, j = j, i
	}
	return uint(j*(j-1)/2 + i)
}

// Bit reports whether vertices i and j are adjacent.
func (c Code) Bit(i, j int) bool {
	idx := pairIndex(i, j)
	if idx < 64 {
		return c.Lo&(1<<idx) != 0
	}
	return c.Hi&(1<<(idx-64)) != 0
}

// set returns c with the {i, j} bit set.
func (c Code) set(i, j int) Code {
	idx := pairIndex(i, j)
	if idx < 64 {
		c.Lo |= 1 << idx
	} else {
		c.Hi |= 1 << (idx - 64)
	}
	return c
}

// EdgeCount returns the number of edges.
func (c Code) EdgeCount() int {
	return bits.OnesCount64(c.Lo) + bits.OnesCount64(c.Hi)
}

// Less orders codes lexicographically (used to pick canonical minima).
func (c Code) Less(d Code) bool {
	if c.Hi != d.Hi {
		return c.Hi < d.Hi
	}
	return c.Lo < d.Lo
}

// String formats the code as "k?/hex" independent of k; mainly for debug.
func (c Code) String() string {
	if c.Hi == 0 {
		return fmt.Sprintf("g%x", c.Lo)
	}
	return fmt.Sprintf("g%x%016x", c.Hi, c.Lo)
}

// ParseCode parses the String form back into a Code: "g" followed by the
// hex adjacency bits ("g3b", or, past 64 bits, the Hi word then exactly 16
// hex digits of Lo). It is the inverse of String, used wherever a motif is
// named over the wire (the signatures/precision APIs and the CLI -target
// flag).
func ParseCode(s string) (Code, error) {
	if len(s) < 2 || s[0] != 'g' {
		return Code{}, fmt.Errorf("graphlet: code %q must be \"g\" + hex digits", s)
	}
	digits := s[1:]
	if len(digits) <= 16 {
		lo, err := strconv.ParseUint(digits, 16, 64)
		if err != nil {
			return Code{}, fmt.Errorf("graphlet: bad code %q: %v", s, err)
		}
		return Code{Lo: lo}, nil
	}
	split := len(digits) - 16
	if split > 16 {
		return Code{}, fmt.Errorf("graphlet: code %q longer than 128 bits", s)
	}
	if digits[0] == '0' {
		// String never emits leading zeros in the Hi word; rejecting them
		// keeps ParseCode a strict inverse (one spelling per code).
		return Code{}, fmt.Errorf("graphlet: code %q has leading zeros", s)
	}
	hi, err := strconv.ParseUint(digits[:split], 16, 64)
	if err != nil {
		return Code{}, fmt.Errorf("graphlet: bad code %q: %v", s, err)
	}
	lo, err := strconv.ParseUint(digits[split:], 16, 64)
	if err != nil {
		return Code{}, fmt.Errorf("graphlet: bad code %q: %v", s, err)
	}
	return Code{Hi: hi, Lo: lo}, nil
}

// FromGraph packs a small graph (its vertices must be 0..k-1) into a Code.
func FromGraph(g *graph.Graph) Code {
	k := g.NumNodes()
	if k > MaxK {
		panic(fmt.Sprintf("graphlet: size %d exceeds MaxK=%d", k, MaxK))
	}
	var c Code
	for v := 0; v < k; v++ {
		for _, u := range g.Neighbors(graph.Node(v)) {
			if int(u) > v {
				c = c.set(v, int(u))
			}
		}
	}
	return c
}

// FromEdges packs an edge list over vertices 0..k-1 into a Code.
func FromEdges(k int, edges [][2]int) Code {
	var c Code
	for _, e := range edges {
		if e[0] == e[1] || e[0] < 0 || e[1] < 0 || e[0] >= k || e[1] >= k {
			panic(fmt.Sprintf("graphlet: bad edge %v for k=%d", e, k))
		}
		c = c.set(e[0], e[1])
	}
	return c
}

// Degrees returns the degree of each vertex.
func Degrees(k int, c Code) []int {
	deg := make([]int, k)
	for j := 1; j < k; j++ {
		for i := 0; i < j; i++ {
			if c.Bit(i, j) {
				deg[i]++
				deg[j]++
			}
		}
	}
	return deg
}

// IsConnected reports whether the graphlet is connected.
func IsConnected(k int, c Code) bool {
	if k == 0 {
		return true
	}
	var seen, stack uint32
	stack = 1
	seen = 1
	count := 0
	for stack != 0 {
		v := bits.TrailingZeros32(stack)
		stack &^= 1 << v
		count++
		for u := 0; u < k; u++ {
			if u != v && c.Bit(v, u) && seen&(1<<u) == 0 {
				seen |= 1 << u
				stack |= 1 << u
			}
		}
	}
	return count == k
}

// Relabel applies the vertex permutation p (new label of vertex v is p[v]).
func Relabel(k int, c Code, p []int) Code {
	var out Code
	for j := 1; j < k; j++ {
		for i := 0; i < j; i++ {
			if c.Bit(i, j) {
				out = out.set(p[i], p[j])
			}
		}
	}
	return out
}

// IsClique reports whether the graphlet is the k-clique.
func IsClique(k int, c Code) bool { return c.EdgeCount() == k*(k-1)/2 }

// IsStar reports whether the graphlet is the k-star (one center adjacent to
// all others, no other edges).
func IsStar(k int, c Code) bool {
	if c.EdgeCount() != k-1 {
		return false
	}
	deg := Degrees(k, c)
	centers, leaves := 0, 0
	for _, d := range deg {
		switch d {
		case k - 1:
			centers++
		case 1:
			leaves++
		}
	}
	if k == 2 {
		return true
	}
	return centers == 1 && leaves == k-1
}
