package graphlet

import "sort"

// Canonical returns the canonical form of a graphlet code: the minimum code
// over all vertex relabelings that respect the (isomorphism-invariant)
// vertex-class ordering. Vertices are first partitioned by a two-round
// Weisfeiler–Leman-style invariant (degree, then degree + sorted multiset
// of neighbor degrees); any isomorphism maps classes to classes, so
// restricting the search to class-respecting permutations is exact while
// pruning the k! search space drastically for irregular graphlets.
func Canonical(k int, c Code) Code {
	if k <= 1 {
		return c
	}
	inv := invariants(k, c)
	// Vertices sorted by invariant; equal invariants form a class.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return inv[order[a]] < inv[order[b]] })
	// Class boundaries.
	bounds := []int{0}
	for i := 1; i < k; i++ {
		if inv[order[i]] != inv[order[i-1]] {
			bounds = append(bounds, i)
		}
	}
	bounds = append(bounds, k)

	best := Code{Hi: ^uint64(0), Lo: ^uint64(0)}
	perm := make([]int, k) // perm[v] = new label of vertex v
	var rec func(class int)
	rec = func(class int) {
		if class == len(bounds)-1 {
			if cand := Relabel(k, c, perm); cand.Less(best) {
				best = cand
			}
			return
		}
		lo, hi := bounds[class], bounds[class+1]
		// Permute the vertices of this class over positions lo..hi-1.
		permuteClass(order[lo:hi], lo, perm, func() { rec(class + 1) })
	}
	rec(0)
	return best
}

// permuteClass assigns each vertex in vs a distinct position base+i for
// every permutation, invoking done for each complete assignment.
func permuteClass(vs []int, base int, perm []int, done func()) {
	n := len(vs)
	var rec func(i int)
	used := make([]bool, n)
	pos := make([]int, n)
	rec = func(i int) {
		if i == n {
			for j, v := range vs {
				perm[v] = base + pos[j]
			}
			done()
			return
		}
		for p := 0; p < n; p++ {
			if !used[p] {
				used[p] = true
				pos[i] = p
				rec(i + 1)
				used[p] = false
			}
		}
	}
	rec(0)
}

// invariants computes a deterministic isomorphism-invariant value per
// vertex: two refinement rounds of (degree, sorted neighbor invariants),
// each packed into a uint64 by a polynomial rolling combine.
func invariants(k int, c Code) []uint64 {
	inv := make([]uint64, k)
	deg := Degrees(k, c)
	for v := 0; v < k; v++ {
		inv[v] = uint64(deg[v])
	}
	buf := make([]uint64, 0, k)
	for round := 0; round < 2; round++ {
		next := make([]uint64, k)
		for v := 0; v < k; v++ {
			buf = buf[:0]
			for u := 0; u < k; u++ {
				if u != v && c.Bit(u, v) {
					buf = append(buf, inv[u])
				}
			}
			sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
			h := inv[v]*0x9E3779B97F4A7C15 + 0x85EBCA6B
			for _, x := range buf {
				h = h*0xC2B2AE3D27D4EB4F + x + 1
			}
			next[v] = h
		}
		inv = next
	}
	return inv
}
