package graphlet

import (
	"repro/internal/treelet"
)

// SpanningTreeCount returns σ_i, the number of spanning trees of the
// graphlet, via Kirchhoff's matrix-tree theorem: the determinant of any
// (k-1)×(k-1) principal minor of the Laplacian (paper, Section 3.3). The
// determinant is computed exactly with Bareiss fraction-free elimination;
// values fit easily in int64 for k ≤ MaxK (at most k^(k-2) ≤ 11^9).
func SpanningTreeCount(k int, c Code) int64 {
	if k == 1 {
		return 1
	}
	n := k - 1
	m := make([][]int64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]int64, n)
	}
	deg := Degrees(k, c)
	for i := 0; i < n; i++ {
		m[i][i] = int64(deg[i])
		for j := 0; j < n; j++ {
			if i != j && c.Bit(i, j) {
				m[i][j] = -1
			}
		}
	}
	return bareissDet(m)
}

// bareissDet computes an exact integer determinant by Bareiss elimination.
// It destroys its argument.
func bareissDet(m [][]int64) int64 {
	n := len(m)
	sign := int64(1)
	prev := int64(1)
	for p := 0; p < n-1; p++ {
		if m[p][p] == 0 {
			// Pivot: find a row below with a nonzero entry in column p.
			swapped := false
			for r := p + 1; r < n; r++ {
				if m[r][p] != 0 {
					m[p], m[r] = m[r], m[p]
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := p + 1; i < n; i++ {
			for j := p + 1; j < n; j++ {
				m[i][j] = (m[i][j]*m[p][p] - m[i][p]*m[p][j]) / prev
			}
			m[i][p] = 0
		}
		prev = m[p][p]
	}
	return sign * m[n-1][n-1]
}

// SpanningTreeShapes returns σ_ij for graphlet c: for each unrooted
// canonical k-treelet shape T_j, the number of spanning trees of c
// isomorphic to T_j.
//
// Implementation mirrors the paper (Section 3.3, "Spanning trees"): run the
// colorful build-up dynamic program on the graphlet itself with the
// identity coloring (vertex i has color i). Every spanning tree is then
// automatically colorful and, with 0-rooting, is counted exactly once — at
// vertex 0 — under its rooted shape; grouping rooted shapes by their
// unrooted canonical form yields σ_ij. Σ_j σ_ij equals Kirchhoff's count,
// which the tests assert.
func SpanningTreeShapes(k int, c Code, cat *treelet.Catalog) map[treelet.Treelet]int64 {
	if cat.K < k {
		panic("graphlet: catalog too small for SpanningTreeShapes")
	}
	// counts[h][v] maps colored treelet code -> number of copies rooted at
	// v, for treelets on h vertices.
	counts := make([][]map[treelet.Colored]int64, k+1)
	for h := 1; h <= k; h++ {
		counts[h] = make([]map[treelet.Colored]int64, k)
		for v := 0; v < k; v++ {
			counts[h][v] = make(map[treelet.Colored]int64)
		}
	}
	for v := 0; v < k; v++ {
		counts[1][v][treelet.MakeColored(treelet.Leaf, treelet.Singleton(uint8(v)))] = 1
	}
	for h := 2; h <= k; h++ {
		for v := 0; v < k; v++ {
			if h == k && v != 0 {
				continue // 0-rooting: vertex 0 has color 0
			}
			acc := counts[h][v]
			for hpp := 1; hpp < h; hpp++ {
				hp := h - hpp
				for cp, np := range counts[hp][v] {
					for u := 0; u < k; u++ {
						if u == v || !c.Bit(u, v) {
							continue
						}
						for cpp, npp := range counts[hpp][u] {
							if !cp.Colors().Disjoint(cpp.Colors()) {
								continue
							}
							if !treelet.CanMerge(cp.Tree(), cpp.Tree()) {
								continue
							}
							acc[treelet.MergeColored(cp, cpp)] += np * npp
						}
					}
				}
			}
			// Divide by βT once all pairs are accumulated.
			for cc, n := range acc {
				b := int64(cc.Tree().Beta())
				if n%b != 0 {
					panic("graphlet: βT does not divide the accumulated count")
				}
				acc[cc] = n / b
			}
		}
	}
	out := make(map[treelet.Treelet]int64)
	full := treelet.ColorSet(1<<k - 1)
	for cc, n := range counts[k][0] {
		if cc.Colors() == full {
			out[cat.Unrooted(cc.Tree())] += n
		}
	}
	return out
}
