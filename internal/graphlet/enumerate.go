package graphlet

import "fmt"

// numConnected is the number of connected graphs on n unlabeled vertices
// (OEIS A001349) — the number of distinct n-graphlets. The paper quotes
// "over 10k" for k = 8 (11117) and "over 11.7M" for k = 10.
var numConnected = []int64{1, 1, 1, 2, 6, 21, 112, 853, 11117, 261080, 11716571, 1006700565}

// NumGraphlets returns the number of distinct connected graphlets on k
// nodes, used to normalize "fraction of graphlets estimated accurately"
// (Figure 9).
func NumGraphlets(k int) int64 {
	if k < 0 || k >= len(numConnected) {
		panic(fmt.Sprintf("graphlet: NumGraphlets(%d) out of range", k))
	}
	return numConnected[k]
}

// Enumerate lists the canonical codes of all connected graphlets on k
// nodes by exhaustive generation over the 2^(k(k-1)/2) labeled graphs.
// Practical for k ≤ 7 (≈ 2M labeled graphs); larger k would need canonical
// augmentation, which motivo itself avoids by canonicalizing only sampled
// graphlets.
func Enumerate(k int) []Code {
	if k < 1 || k > 7 {
		panic(fmt.Sprintf("graphlet: Enumerate(%d) supported only for 1 ≤ k ≤ 7", k))
	}
	bitsN := uint(k * (k - 1) / 2)
	seen := make(map[Code]bool)
	var out []Code
	for m := uint64(0); m < 1<<bitsN; m++ {
		c := Code{Lo: m}
		if !IsConnected(k, c) {
			continue
		}
		canon := Canonical(k, c)
		if !seen[canon] {
			seen[canon] = true
			out = append(out, canon)
		}
	}
	return out
}
