package graphlet

// This file implements the induced → non-induced count conversion the
// paper alludes to in Section 1: "non-induced copies are easier to count
// and can be derived from the induced ones". A non-induced (subgraph) copy
// of H on a vertex set S with induced subgraph H' is a spanning subgraph
// of H' isomorphic to H; there are Emb(H→H')/Aut(H) of those per induced
// occurrence of H', so
//
//	noninduced(H) = Σ_{H'} Emb(H→H')/Aut(H) · induced(H')
//
// with the sum over all k-graphlets H' (only those with at least as many
// edges contribute).

// Embeddings returns the number of edge-preserving bijections from the
// vertices of h onto the vertices of target (both on k vertices): maps σ
// with (i,j) ∈ E(h) ⇒ (σi, σj) ∈ E(target).
func Embeddings(k int, h, target Code) int64 {
	if h.EdgeCount() > target.EdgeCount() {
		return 0
	}
	// Backtracking over images with incremental edge checks; degree
	// pruning keeps this fast for k ≤ MaxK.
	degH := Degrees(k, h)
	degT := Degrees(k, target)
	perm := make([]int, k)
	used := make([]bool, k)
	var count int64
	var rec func(v int)
	rec = func(v int) {
		if v == k {
			count++
			return
		}
		for img := 0; img < k; img++ {
			if used[img] || degH[v] > degT[img] {
				continue
			}
			ok := true
			for u := 0; u < v; u++ {
				if h.Bit(u, v) && !target.Bit(perm[u], img) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[v] = img
			used[img] = true
			rec(v + 1)
			used[img] = false
		}
	}
	rec(0)
	return count
}

// Automorphisms returns |Aut(h)| = Embeddings(h → h).
func Automorphisms(k int, h Code) int64 { return Embeddings(k, h, h) }

// SubgraphMultiplicity returns the number of spanning subgraphs of target
// isomorphic to h: Emb(h→target)/Aut(h).
func SubgraphMultiplicity(k int, h, target Code) int64 {
	e := Embeddings(k, h, target)
	if e == 0 {
		return 0
	}
	return e / Automorphisms(k, h)
}
