package graphlet

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/treelet"
)

func TestCodeBits(t *testing.T) {
	c := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if !c.Bit(0, 1) || !c.Bit(1, 0) || !c.Bit(2, 3) {
		t.Fatal("set bits missing")
	}
	if c.Bit(0, 2) || c.Bit(1, 3) {
		t.Fatal("phantom bits")
	}
	if c.EdgeCount() != 2 {
		t.Fatalf("edge count %d", c.EdgeCount())
	}
}

func TestHighBits(t *testing.T) {
	// Pair (10, 11) for k=12 would exceed MaxK; use k=11 and its largest
	// pair (9, 10): index 10*9/2+9 = 54 — still in Lo. Force a Hi bit via
	// pairIndex math instead.
	if pairIndex(0, 1) != 0 || pairIndex(1, 2) != 2 || pairIndex(0, 2) != 1 {
		t.Fatal("pairIndex wrong for small pairs")
	}
	if pairIndex(9, 10) != 54 {
		t.Fatalf("pairIndex(9,10)=%d", pairIndex(9, 10))
	}
}

func TestFromGraphMatchesFromEdges(t *testing.T) {
	g := gen.Cycle(5)
	c := FromGraph(g)
	want := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if c != want {
		t.Fatalf("cycle code mismatch: %v vs %v", c, want)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(3, FromEdges(3, [][2]int{{0, 1}, {1, 2}})) {
		t.Error("path connected")
	}
	if IsConnected(3, FromEdges(3, [][2]int{{0, 1}})) {
		t.Error("isolated vertex must disconnect")
	}
	if !IsConnected(1, Code{}) {
		t.Error("singleton connected")
	}
}

func TestCanonicalInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		k := 3 + rng.Intn(5) // 3..7
		// Random connected graphlet: random graph + retry.
		var c Code
		for {
			c = Code{Lo: rng.Uint64() & (1<<(k*(k-1)/2) - 1)}
			if IsConnected(k, c) {
				break
			}
		}
		canon := Canonical(k, c)
		// Random permutation.
		p := rng.Perm(k)
		relabeled := Relabel(k, c, p)
		if got := Canonical(k, relabeled); got != canon {
			t.Fatalf("k=%d: canonical not invariant: %v vs %v (perm %v)", k, got, canon, p)
		}
	}
}

func TestCanonicalSeparatesNonIsomorphic(t *testing.T) {
	// Path P4 vs star K_{1,3}: same degree sum, different canonical codes.
	p4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	s4 := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	if Canonical(4, p4) == Canonical(4, s4) {
		t.Error("P4 and K_{1,3} must have different canonical forms")
	}
	// C4 vs diamond (C4 + chord): differ by an edge.
	c4 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	diamond := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if Canonical(4, c4) == Canonical(4, diamond) {
		t.Error("C4 and diamond must differ")
	}
}

func TestEnumerateMatchesOEIS(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 6, 5: 21, 6: 112}
	for k, n := range want {
		if got := len(Enumerate(k)); got != n {
			t.Errorf("Enumerate(%d) = %d graphlets, want %d", k, got, n)
		}
	}
}

func TestEnumerateK7(t *testing.T) {
	if testing.Short() {
		t.Skip("2M labeled graphs; skipped in -short")
	}
	if got := len(Enumerate(7)); got != 853 {
		t.Errorf("Enumerate(7) = %d, want 853", got)
	}
}

func TestNumGraphlets(t *testing.T) {
	if NumGraphlets(8) != 11117 {
		t.Errorf("NumGraphlets(8) = %d", NumGraphlets(8))
	}
	if NumGraphlets(10) != 11716571 {
		t.Errorf("NumGraphlets(10) = %d", NumGraphlets(10))
	}
}

func TestSpanningTreeCountKnown(t *testing.T) {
	cases := []struct {
		name string
		k    int
		c    Code
		want int64
	}{
		{"edge", 2, FromEdges(2, [][2]int{{0, 1}}), 1},
		{"triangle", 3, FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}), 3},
		{"P4", 4, FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}), 1},
		{"C4", 4, FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), 4},
		{"K4", 4, FromGraph(gen.Complete(4)), 16},   // Cayley: 4^2
		{"K5", 5, FromGraph(gen.Complete(5)), 125},  // 5^3
		{"K6", 6, FromGraph(gen.Complete(6)), 1296}, // 6^4
		{"C6", 6, FromGraph(gen.Cycle(6)), 6},
		{"star6", 6, FromGraph(gen.Star(6)), 1},
	}
	for _, tc := range cases {
		if got := SpanningTreeCount(tc.k, tc.c); got != tc.want {
			t.Errorf("%s: σ = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestSpanningTreeShapesSumMatchesKirchhoff(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for k := 3; k <= 7; k++ {
		cat := treelet.NewCatalog(k)
		for trial := 0; trial < 30; trial++ {
			var c Code
			for {
				c = Code{Lo: rng.Uint64() & (1<<(k*(k-1)/2) - 1)}
				if IsConnected(k, c) {
					break
				}
			}
			shapes := SpanningTreeShapes(k, c, cat)
			var sum int64
			for shape, n := range shapes {
				if n <= 0 {
					t.Fatalf("non-positive σ_ij %d", n)
				}
				if shape.Size() != k {
					t.Fatalf("shape of size %d in σ table", shape.Size())
				}
				sum += n
			}
			if want := SpanningTreeCount(k, c); sum != want {
				t.Fatalf("k=%d: Σσ_ij = %d, Kirchhoff = %d (code %v)", k, sum, want, c)
			}
		}
	}
}

func TestSpanningTreeShapesPath(t *testing.T) {
	// A path's only spanning tree is the path itself.
	k := 5
	cat := treelet.NewCatalog(k)
	c := FromGraph(gen.Path(k))
	shapes := SpanningTreeShapes(k, c, cat)
	if len(shapes) != 1 {
		t.Fatalf("path has %d spanning shapes, want 1", len(shapes))
	}
	for shape, n := range shapes {
		if n != 1 {
			t.Errorf("σ = %d, want 1", n)
		}
		// The shape must be the unrooted canonical path.
		want := treelet.UnrootedCanonical(treelet.FromParents([]int{0, 0, 1, 2, 3}))
		if shape != want {
			t.Errorf("shape %v, want path %v", shape, want)
		}
	}
}

func TestSpanningTreeShapesClique(t *testing.T) {
	// K4: 16 spanning trees = 12 paths + 4 stars.
	cat := treelet.NewCatalog(4)
	shapes := SpanningTreeShapes(4, FromGraph(gen.Complete(4)), cat)
	path := treelet.UnrootedCanonical(treelet.FromParents([]int{0, 0, 1, 2}))
	star := treelet.UnrootedCanonical(treelet.FromParents([]int{0, 0, 0, 0}))
	if shapes[path] != 12 || shapes[star] != 4 {
		t.Errorf("K4 shapes = %v (path %v star %v), want 12 paths + 4 stars", shapes, shapes[path], shapes[star])
	}
}

func TestIsCliqueIsStar(t *testing.T) {
	if !IsClique(4, FromGraph(gen.Complete(4))) {
		t.Error("K4 is a clique")
	}
	if IsClique(4, FromGraph(gen.Cycle(4))) {
		t.Error("C4 is not a clique")
	}
	if !IsStar(5, FromGraph(gen.Star(5))) {
		t.Error("K_{1,4} is a star")
	}
	if IsStar(5, FromGraph(gen.Path(5))) {
		t.Error("P5 is not a star")
	}
	if !IsStar(2, FromEdges(2, [][2]int{{0, 1}})) {
		t.Error("edge counts as 2-star")
	}
}

func TestDegrees(t *testing.T) {
	deg := Degrees(4, FromGraph(gen.Star(4)))
	if deg[0] != 3 || deg[1] != 1 || deg[2] != 1 || deg[3] != 1 {
		t.Errorf("star degrees %v", deg)
	}
}

// TestParseCodeRoundTrip: ParseCode must invert String for every
// enumerated graphlet (both 64-bit and 128-bit packings) and reject
// malformed inputs.
func TestParseCodeRoundTrip(t *testing.T) {
	for _, k := range []int{3, 5} {
		for _, c := range Enumerate(k) {
			got, err := ParseCode(c.String())
			if err != nil {
				t.Fatalf("k=%d %v: %v", k, c, err)
			}
			if got != c {
				t.Fatalf("k=%d: round trip %v -> %q -> %v", k, c, c.String(), got)
			}
		}
	}
	// Synthetic wide code exercising the Hi word.
	wide := Code{Hi: 0xabc, Lo: 0x00000000deadbeef}
	got, err := ParseCode(wide.String())
	if err != nil || got != wide {
		t.Fatalf("wide round trip: %v, %v", got, err)
	}
	for _, bad := range []string{"", "g", "x12", "gzz", "g12345678901234567890123456789012x", "g0123456789abcdef0123"} {
		if c, err := ParseCode(bad); err == nil {
			t.Errorf("ParseCode(%q) = %v, want error", bad, c)
		}
	}
}
