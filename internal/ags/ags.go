// Package ags implements Adaptive Graphlet Sampling (paper, Section 4),
// the online greedy fractional-set-cover sampling strategy that breaks the
// additive 1/s approximation barrier of naive sampling.
//
// AGS samples through the per-shape urns sample(T). While a shape T_j is
// active, every graphlet H_i accrues weight σ_ij/r_j per draw — the
// probability that one sample(T_j) call spans a copy of H_i, divided by
// g_i. When a graphlet has been seen c̄ times it is "covered", and AGS
// switches to the shape T_j* minimizing the probability of hitting covered
// graphlets again (line 14 of the pseudocode):
//
//	j* = argmin_j (1/r_j) Σ_{i∈C} σ_ij · ĝ_i,  ĝ_i = c_i/w_i.
//
// The returned estimate for every graphlet — covered or not — is c_i/w_i,
// an unbiased (martingale) estimator of its colorful count g_i; Theorem 4
// gives the (1±ε) multiplicative guarantee.
//
// The weights w_i are maintained lazily: with n_j draws made while shape j
// was active, w_i = Σ_j n_j σ_ij / r_j, which equals the pseudocode's
// incremental updates but costs nothing for graphlets not yet observed.
package ags

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/estimate"
	"repro/internal/graphlet"
	"repro/internal/sample"
	"repro/internal/treelet"
)

// Options configures an AGS run.
type Options struct {
	// CoverThreshold is c̄, the number of occurrences after which a
	// graphlet counts as covered. The paper's experiments use 1000.
	CoverThreshold int
	// Budget is the total number of samples to draw.
	Budget int
	// Rng drives all sampling; required.
	Rng *rand.Rand
}

// DefaultOptions mirror the paper's experimental settings.
func DefaultOptions(budget int, rng *rand.Rand) Options {
	return Options{CoverThreshold: 1000, Budget: budget, Rng: rng}
}

// Result carries the outcome of an AGS run.
type Result struct {
	// Estimates maps each observed graphlet to its estimated number of
	// induced occurrences in G (colorful estimate divided by p_k).
	Estimates estimate.Counts
	// ColorfulEstimates is c_i/w_i, the estimate of colorful copies.
	ColorfulEstimates estimate.Counts
	// Tallies is c_i, the raw occurrence counts.
	Tallies map[graphlet.Code]int64
	// Samples is the number of draws made; Switches how many times the
	// active shape changed; Covered how many graphlets reached c̄.
	Samples  int
	Switches int
	Covered  int
}

// Run executes AGS on the urn.
func Run(urn *sample.Urn, opts Options) (*Result, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("ags: Options.Rng is required")
	}
	if opts.CoverThreshold < 1 {
		return nil, fmt.Errorf("ags: CoverThreshold must be ≥ 1, got %d", opts.CoverThreshold)
	}
	if urn.Empty() {
		return nil, fmt.Errorf("ags: urn is empty")
	}
	cat := urn.Cat
	k := urn.K

	// Shapes with at least one colorful occurrence, in deterministic order.
	totals := urn.Tab.ShapeTotals(cat)
	var shapes []treelet.Treelet
	for _, s := range cat.UnrootedK {
		if !totals[s].IsZero() {
			shapes = append(shapes, s)
		}
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("ags: no k-treelet shape has colorful occurrences")
	}
	sort.Slice(shapes, func(i, j int) bool { return shapes[i] < shapes[j] })

	urns := make(map[treelet.Treelet]*sample.ShapeUrn, len(shapes))
	rj := make(map[treelet.Treelet]float64, len(shapes))
	for _, s := range shapes {
		su, err := urn.NewShapeUrn(s)
		if err != nil {
			return nil, err
		}
		urns[s] = su
		rj[s] = su.Total().Float64()
	}

	// Initial shape: the one with the most colorful occurrences
	// (Section 4: "Initially, we choose the k-treelet T with the largest
	// number of colorful occurrences").
	cur := shapes[0]
	for _, s := range shapes {
		if rj[s] > rj[cur] {
			cur = s
		}
	}

	sigmaShapes := estimate.NewSigmaShapes(k, cat)
	nj := make(map[treelet.Treelet]int64, len(shapes))
	tallies := make(map[graphlet.Code]int64)
	covered := make(map[graphlet.Code]bool)

	// wi computes the lazy weight w_i = Σ_j n_j σ_ij / r_j.
	wi := func(code graphlet.Code) float64 {
		row := sigmaShapes.Of(code)
		var w float64
		for s, n := range nj {
			if n == 0 {
				continue
			}
			if sig, ok := row[s]; ok {
				w += float64(n) * float64(sig) / rj[s]
			}
		}
		return w
	}

	res := &Result{Tallies: tallies}
	for step := 0; step < opts.Budget; step++ {
		nj[cur]++ // weight update precedes the draw (pseudocode lines 7–9)
		code, _ := urns[cur].Sample(opts.Rng)
		tallies[code]++
		if int(tallies[code]) == opts.CoverThreshold && !covered[code] {
			covered[code] = true
			res.Covered++
			// Switch to the shape least likely to span covered graphlets.
			next := cur
			best := 0.0
			for i, s := range shapes {
				var mass float64
				for c := range covered {
					if sig, ok := sigmaShapes.Of(c)[s]; ok {
						w := wi(c)
						if w > 0 {
							mass += float64(sig) * float64(tallies[c]) / w
						}
					}
				}
				score := mass / rj[s]
				if i == 0 || score < best {
					best = score
					next = s
				}
			}
			if next != cur {
				res.Switches++
				cur = next
			}
		}
		res.Samples++
	}

	res.ColorfulEstimates = make(estimate.Counts, len(tallies))
	res.Estimates = make(estimate.Counts, len(tallies))
	pk := urn.Col.PColorful
	for code, c := range tallies {
		w := wi(code)
		if w == 0 {
			continue
		}
		colorful := float64(c) / w
		res.ColorfulEstimates[code] = colorful
		res.Estimates[code] = colorful / pk
	}
	return res, nil
}
