// Package ags implements Adaptive Graphlet Sampling (paper, Section 4),
// the online greedy fractional-set-cover sampling strategy that breaks the
// additive 1/s approximation barrier of naive sampling.
//
// AGS samples through the per-shape urns sample(T). While a shape T_j is
// active, every graphlet H_i accrues weight σ_ij/r_j per draw — the
// probability that one sample(T_j) call spans a copy of H_i, divided by
// g_i. When a graphlet has been seen c̄ times it is "covered", and AGS
// switches to the shape T_j* minimizing the probability of hitting covered
// graphlets again (line 14 of the pseudocode):
//
//	j* = argmin_j (1/r_j) Σ_{i∈C} σ_ij · ĝ_i,  ĝ_i = c_i/w_i.
//
// The returned estimate for every graphlet — covered or not — is c_i/w_i,
// an unbiased (martingale) estimator of its colorful count g_i; Theorem 4
// gives the (1±ε) multiplicative guarantee.
//
// The weights w_i are maintained lazily: with n_j draws made while shape j
// was active, w_i = Σ_j n_j σ_ij / r_j, which equals the pseudocode's
// incremental updates but costs nothing for graphlets not yet observed.
//
// # Parallel execution
//
// With Options.Workers ≥ 2 the run is epoch-based: every worker owns a
// clone of each shape urn (sample.ShapeUrn.CloneOnto over one sample.Urn
// clone per worker, so all mutable sampling state is goroutine-local) and
// draws a fixed-size batch of samples from the active shape. At the epoch
// barrier the per-worker tallies are merged, the per-shape draw counters
// n_j advance by the whole epoch, and cover detection plus the shape-switch
// argmin run once on the merged state. Because the estimator only depends
// on the counters n_j — not on which thread drew which sample — c_i/w_i is
// exactly the sequential estimator; the only semantic difference is that
// shape switches happen at epoch granularity instead of per draw.
//
// The covered mass Σ_{i∈C} σ_ij · ĝ_i consulted by the argmin is
// maintained incrementally per shape: when a graphlet is covered (or a
// covered graphlet's tally moves) only its own σ-row is folded in, instead
// of rescanning all covered graphlets against all shapes at every cover
// event. Snapshots ĝ_i are refreshed whenever the graphlet is re-drawn,
// which keeps the heuristic current for exactly the graphlets the active
// shape still hits.
package ags

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/estimate"
	"repro/internal/graphlet"
	"repro/internal/sample"
	"repro/internal/treelet"
)

// DefaultEpochSize is the per-worker batch size between epoch barriers
// when Options.EpochSize is 0. Small enough that cover detection stays
// responsive at the paper's c̄ = 1000, large enough that the barrier cost
// is amortized over thousands of draws.
const DefaultEpochSize = 256

// DefaultPrecisionCap is the hard sample cap of a run-to-precision run when
// Precision.MaxSamples is 0: a requested (ε, δ) that Theorem 3 cannot
// certify on the graph (motif too rare, Δ too large) stops here and reports
// the precision actually achieved instead of sampling forever.
const DefaultPrecisionCap = 4 << 20

// precisionCheckEvery is how many sequential draws happen between stopping-
// rule evaluations; the parallel driver checks at its epoch barriers.
const precisionCheckEvery = 1024

// Precision asks Run to sample until Theorem 3 certifies the estimates,
// instead of spending a fixed Budget.
type Precision struct {
	// Eps is the requested relative error: stop once
	// Pr[|ĝ − g| > Eps·g] < Delta holds per Theorem 3.
	Eps float64
	// Delta is the allowed failure probability, in (0, 1).
	Delta float64
	// Target restricts certification to one canonical motif code. The zero
	// Code (no edges, never a valid connected graphlet) certifies every
	// tallied motif instead.
	Target graphlet.Code
	// MaxSamples is the hard cap; 0 means DefaultPrecisionCap.
	MaxSamples int
}

// Certificate reports the precision a run-to-precision run achieved.
type Certificate struct {
	// Eps is the certified relative error at confidence 1−Delta: the
	// smallest ε for which Theorem 3 holds after Samples draws (for the
	// target motif, or the worst over all tallied motifs). +Inf when
	// nothing could be certified, e.g. the target motif was never sampled.
	Eps float64
	// Delta is the failure probability the certificate is stated at.
	Delta float64
	// Samples is the number of draws behind the certificate.
	Samples int
	// Met reports whether the requested ε was reached before the cap.
	Met bool
}

// Options configures an AGS run.
type Options struct {
	// CoverThreshold is c̄, the number of occurrences after which a
	// graphlet counts as covered. The paper's experiments use 1000.
	CoverThreshold int
	// Budget is the total number of samples to draw. Mutually exclusive
	// with Precision.
	Budget int
	// Precision, when non-nil, replaces the fixed Budget with the
	// run-to-precision stopping rule: draw until Theorem 3 certifies the
	// target within Precision.Eps at confidence 1−Precision.Delta, or the
	// sample cap is hit. The outcome is recorded in Result.Achieved.
	Precision *Precision
	// Rng drives all sampling; required. In parallel mode it only seeds
	// the per-worker generators.
	Rng *rand.Rand
	// Workers parallelizes sampling across per-worker shape-urn clones.
	// ≤ 1 samples sequentially with per-draw cover detection; ≥ 2 samples
	// in epochs (see the package comment). Runs are deterministic for a
	// fixed seed and worker count, but changing Workers changes the draw
	// sequence — unless VirtualWorkers pins the decomposition.
	Workers int
	// VirtualWorkers, when > 0, fixes the number of deterministic sampling
	// streams independently of physical parallelism: the epoch driver keeps
	// VirtualWorkers per-stream states (urn clones, rngs, batch slices) and
	// executes them on at most Workers goroutines. Results are then
	// bit-identical for a fixed seed across any Workers count — the
	// property the signatures workload is specified to. 0 means one stream
	// per physical worker (the classic behavior, where changing Workers
	// changes the draw sequence).
	VirtualWorkers int
	// EpochSize is the number of draws each (virtual) worker makes between
	// epoch barriers in parallel mode; 0 means DefaultEpochSize. Ignored
	// in sequential mode.
	EpochSize int
	// Observe, when non-nil, receives every draw: the stream (virtual
	// worker) index, the canonical code, and the k sampled vertices. The
	// nodes slice is scratch reused by the sampler — copy it to retain. In
	// parallel mode Observe is called concurrently from different streams
	// but never concurrently for the same stream index, so per-stream
	// accumulators indexed by worker need no locking. Draws of an epoch
	// that is discarded by cancellation may still have been observed;
	// callers discard the whole result on error anyway.
	Observe func(worker int, code graphlet.Code, nodes []int32)
	// Shapes, when non-nil, supplies the prepared per-shape machinery of
	// the urn's table (PrepareShapes), skipping the O(n · shapes) shape-urn
	// construction this Run would otherwise pay. The urn passed to Run must
	// be (a clone of) the urn the set was prepared from: the per-shape
	// alias state is valid only against that table. Results are
	// bit-identical with and without a prepared set.
	Shapes *ShapeSet
}

// DefaultOptions mirror the paper's experimental settings.
func DefaultOptions(budget int, rng *rand.Rand) Options {
	return Options{CoverThreshold: 1000, Budget: budget, Rng: rng}
}

// Result carries the outcome of an AGS run.
type Result struct {
	// Estimates maps each observed graphlet to its estimated number of
	// induced occurrences in G (colorful estimate divided by p_k).
	Estimates estimate.Counts
	// ColorfulEstimates is c_i/w_i, the estimate of colorful copies.
	ColorfulEstimates estimate.Counts
	// Tallies is c_i, the raw occurrence counts.
	Tallies map[graphlet.Code]int64
	// Samples is the number of draws made; Switches how many times the
	// active shape changed; Covered how many graphlets reached c̄.
	Samples  int
	Switches int
	Covered  int
	// Workers is the number of sampling goroutines used (1 = sequential).
	Workers int
	// Epochs is the number of merge barriers of a parallel run (0 when
	// sequential).
	Epochs int
	// Achieved is the precision certificate of a run-to-precision run; nil
	// for fixed-budget runs.
	Achieved *Certificate
}

// engine is the merged sampling state shared by the sequential and
// epoch-parallel drivers. It is only ever touched by the coordinating
// goroutine (between epochs, or inline in sequential mode).
type engine struct {
	shapes  []treelet.Treelet
	rj      map[treelet.Treelet]float64
	sigma   *estimate.SigmaShapes
	nj      map[treelet.Treelet]int64
	tallies map[graphlet.Code]int64
	covered map[graphlet.Code]bool
	// ghat is the ĝ_i snapshot currently folded into mass for each
	// covered graphlet; mass[s] = Σ_{i∈C} σ_is · ghat[i].
	ghat map[graphlet.Code]float64
	mass map[treelet.Treelet]float64
	cur  treelet.Treelet
	res  *Result
	// stale holds covered graphlets re-drawn since their last ĝ snapshot;
	// the sequential driver refreshes them in bulk before the next switch
	// decision. Held on the engine (not the driver) so a chunked
	// run-to-precision run carries pending refreshes across chunks.
	stale map[graphlet.Code]bool
	// pk and maxDeg parameterize the Theorem 3 stopping rule.
	pk     float64
	maxDeg int
}

// epsFor returns the smallest ε Theorem 3 certifies for one motif at
// confidence 1−delta given the current tallies, or +Inf if the motif has no
// usable estimate yet.
func (e *engine) epsFor(code graphlet.Code, delta float64) float64 {
	c := e.tallies[code]
	if c == 0 {
		return math.Inf(1)
	}
	w := e.wi(code)
	if w == 0 {
		return math.Inf(1)
	}
	gi := float64(c) / w / e.pk // estimated copies of H_i in G
	return estimate.TheoremThreeEps(delta, e.sigma.K, e.pk, gi, e.maxDeg)
}

// achievedEps evaluates the stopping rule: the certified ε for the target
// motif, or the worst certified ε over all tallied motifs when no target is
// set. Max over an unordered map is deterministic (no float accumulation).
func (e *engine) achievedEps(p *Precision) float64 {
	if p.Target != (graphlet.Code{}) {
		return e.epsFor(p.Target, p.Delta)
	}
	if len(e.tallies) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for code := range e.tallies {
		if eps := e.epsFor(code, p.Delta); eps > worst {
			worst = eps
		}
	}
	return worst
}

// wi computes the lazy weight w_i = Σ_j n_j σ_ij / r_j. The sum walks the
// shapes in their fixed sorted order, so the float accumulation — and with
// it every estimate — is bit-identical across runs and across engines.
func (e *engine) wi(code graphlet.Code) float64 {
	row := e.sigma.Of(code)
	var w float64
	for _, s := range e.shapes {
		n := e.nj[s]
		if n == 0 {
			continue
		}
		if sig, ok := row[s]; ok {
			w += float64(n) * float64(sig) / e.rj[s]
		}
	}
	return w
}

// refresh recomputes the covered graphlet's ĝ snapshot and folds the delta
// into the per-shape covered mass — O(|σ-row|) instead of a full
// covered×shapes rescan.
func (e *engine) refresh(code graphlet.Code) {
	w := e.wi(code)
	if w == 0 {
		return
	}
	g := float64(e.tallies[code]) / w
	d := g - e.ghat[code]
	if d == 0 {
		return
	}
	for s, sig := range e.sigma.Of(code) {
		if _, active := e.rj[s]; active {
			e.mass[s] += float64(sig) * d
		}
	}
	e.ghat[code] = g
}

// markCovered moves the graphlet into the covered set; its full σ_ij · ĝ_i
// contribution enters the mass through refresh (ghat starts at 0).
func (e *engine) markCovered(code graphlet.Code) {
	e.covered[code] = true
	e.res.Covered++
	e.refresh(code)
}

// switchShape runs the argmin of pseudocode line 14 on the maintained
// covered mass and activates the winning shape.
func (e *engine) switchShape() {
	next := e.cur
	best := 0.0
	for i, s := range e.shapes {
		score := e.mass[s] / e.rj[s]
		if i == 0 || score < best {
			best = score
			next = s
		}
	}
	if next != e.cur {
		e.res.Switches++
		e.cur = next
	}
}

// ShapeSet is the prepared, immutable sample(T) machinery of one count
// table: every unrooted k-treelet shape with colorful occurrences (in
// deterministic sorted order), its master per-shape urn, the shape weights
// r_j, the initial shape of Section 4, and a shared σ_ij cache. Building
// one costs a pass over the size-k records per shape; a long-lived engine
// prepares it once and hands it to every Run through Options.Shapes, where
// the master urns are cloned in O(1) onto the query's own Urn clone.
type ShapeSet struct {
	shapes  []treelet.Treelet
	urns    map[treelet.Treelet]*sample.ShapeUrn
	rj      map[treelet.Treelet]float64
	initial treelet.Treelet
	sigma   *estimate.SigmaShapes
}

// PrepareShapes builds the per-shape sampling state of the urn's table.
// The returned set is read-only and safe to share across concurrent Run
// calls (each run samples through clones, never the masters). All shape
// urns are built in one bulk sample.NewShapeUrns pass — a single parallel
// walk of the size-k records instead of one table pass per shape, the
// dominant tail of engine OpenTime at k ≥ 6.
func PrepareShapes(urn *sample.Urn) (*ShapeSet, error) {
	if urn.Empty() {
		return nil, fmt.Errorf("ags: urn is empty")
	}
	cat := urn.Cat

	// Candidate shapes in deterministic order; empties are dropped after
	// the bulk weighting pass (which discovers the totals anyway).
	all := make([]treelet.Treelet, len(cat.UnrootedK))
	copy(all, cat.UnrootedK)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sus, err := urn.NewShapeUrns(all)
	if err != nil {
		return nil, err
	}

	ss := &ShapeSet{
		urns:  make(map[treelet.Treelet]*sample.ShapeUrn, len(all)),
		rj:    make(map[treelet.Treelet]float64, len(all)),
		sigma: estimate.NewSigmaShapes(urn.K, cat),
	}
	for i, s := range all {
		if sus[i].Empty() {
			continue
		}
		ss.shapes = append(ss.shapes, s)
		ss.urns[s] = sus[i]
		ss.rj[s] = sus[i].Total().Float64()
	}
	if len(ss.shapes) == 0 {
		return nil, fmt.Errorf("ags: no k-treelet shape has colorful occurrences")
	}
	shapes := ss.shapes

	// Initial shape: the one with the most colorful occurrences
	// (Section 4: "Initially, we choose the k-treelet T with the largest
	// number of colorful occurrences").
	ss.initial = shapes[0]
	for _, s := range shapes {
		if ss.rj[s] > ss.rj[ss.initial] {
			ss.initial = s
		}
	}
	return ss, nil
}

// Run executes AGS on the urn. The context is checked periodically in the
// draw loop (sequentially) and at every epoch barrier (in parallel), so a
// canceled query returns promptly with ctx.Err().
func Run(ctx context.Context, urn *sample.Urn, opts Options) (*Result, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("ags: Options.Rng is required")
	}
	if opts.CoverThreshold < 1 {
		return nil, fmt.Errorf("ags: CoverThreshold must be ≥ 1, got %d", opts.CoverThreshold)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("ags: Workers must be ≥ 0, got %d", opts.Workers)
	}
	if opts.VirtualWorkers < 0 {
		return nil, fmt.Errorf("ags: VirtualWorkers must be ≥ 0, got %d", opts.VirtualWorkers)
	}
	if opts.EpochSize < 0 {
		return nil, fmt.Errorf("ags: EpochSize must be ≥ 0, got %d", opts.EpochSize)
	}
	if p := opts.Precision; p != nil {
		if opts.Budget != 0 {
			return nil, fmt.Errorf("ags: Budget and Precision are mutually exclusive")
		}
		if !(p.Eps > 0) || math.IsInf(p.Eps, 1) {
			return nil, fmt.Errorf("ags: Precision.Eps must be positive and finite, got %v", p.Eps)
		}
		if !(p.Delta > 0 && p.Delta < 1) {
			return nil, fmt.Errorf("ags: Precision.Delta must be in (0, 1), got %v", p.Delta)
		}
		if p.MaxSamples < 0 {
			return nil, fmt.Errorf("ags: Precision.MaxSamples must be ≥ 0, got %d", p.MaxSamples)
		}
	}
	if urn.Empty() {
		return nil, fmt.Errorf("ags: urn is empty")
	}
	ss := opts.Shapes
	if ss == nil {
		var err error
		if ss, err = PrepareShapes(urn); err != nil {
			return nil, err
		}
	}
	// Materialize draws through the caller's urn: CloneOnto shares the
	// immutable per-shape alias state and keeps all mutable sampling state
	// (neighbor buffers, canonicalization cache) on this run's urn.
	urns := make(map[treelet.Treelet]*sample.ShapeUrn, len(ss.urns))
	for s, su := range ss.urns {
		urns[s] = su.CloneOnto(urn)
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// The number of deterministic sampling streams: defaults to one per
	// physical worker; VirtualWorkers pins it independently of Workers.
	streams := opts.VirtualWorkers
	if streams == 0 {
		streams = workers
	}
	e := &engine{
		shapes:  ss.shapes,
		rj:      ss.rj,
		sigma:   ss.sigma,
		nj:      make(map[treelet.Treelet]int64, len(ss.shapes)),
		tallies: make(map[graphlet.Code]int64),
		covered: make(map[graphlet.Code]bool),
		ghat:    make(map[graphlet.Code]float64),
		mass:    make(map[treelet.Treelet]float64, len(ss.shapes)),
		cur:     ss.initial,
		res:     &Result{Workers: workers},
		stale:   make(map[graphlet.Code]bool),
		pk:      urn.Col.PColorful,
		maxDeg:  urn.G.MaxDegree(),
	}
	e.res.Tallies = e.tallies

	p := opts.Precision
	budget := opts.Budget
	if p != nil {
		budget = p.MaxSamples
		if budget == 0 {
			budget = DefaultPrecisionCap
		}
	}

	var err error
	if streams == 1 {
		err = runSequential(ctx, e, urns, opts, budget)
	} else {
		err = runParallel(ctx, e, urn, urns, opts, workers, streams, budget)
	}
	if err != nil {
		return nil, err
	}
	if p != nil {
		achieved := e.achievedEps(p)
		e.res.Achieved = &Certificate{
			Eps:     achieved,
			Delta:   p.Delta,
			Samples: e.res.Samples,
			Met:     achieved <= p.Eps,
		}
	}

	e.res.ColorfulEstimates = make(estimate.Counts, len(e.tallies))
	e.res.Estimates = make(estimate.Counts, len(e.tallies))
	pk := urn.Col.PColorful
	for code, c := range e.tallies {
		w := e.wi(code)
		if w == 0 {
			continue
		}
		colorful := float64(c) / w
		e.res.ColorfulEstimates[code] = colorful
		e.res.Estimates[code] = colorful / pk
	}
	return e.res, nil
}

// runSequential keeps the classic semantics — cover detection after every
// sample, shape switches the moment a graphlet reaches c̄ — but draws
// through SampleBatch: one batch runs from the current shape until either
// the budget is spent, the active shape changes (the callback cuts the
// batch short so no draw ever comes from a stale urn), or cancellation is
// observed. Per-draw state updates are identical to the one-at-a-time
// loop, so results are bit-identical at equal seed. In precision mode the
// budget is the sample cap and the Theorem 3 stopping rule is evaluated
// every precisionCheckEvery draws.
func runSequential(ctx context.Context, e *engine, urns map[treelet.Treelet]*sample.ShapeUrn, opts Options, budget int) error {
	for e.res.Samples < budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := budget - e.res.Samples
		if opts.Precision != nil && chunk > precisionCheckEvery {
			chunk = precisionCheckEvery
		}
		if err := drawSequential(ctx, e, urns, opts, chunk); err != nil {
			return err
		}
		if opts.Precision != nil && e.achievedEps(opts.Precision) <= opts.Precision.Eps {
			return nil
		}
	}
	return nil
}

// drawSequential draws exactly n more samples (modulo cancellation) with
// per-draw cover detection.
func drawSequential(ctx context.Context, e *engine, urns map[treelet.Treelet]*sample.ShapeUrn, opts Options, n int) error {
	step := 0
	for step < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := e.cur
		urns[cur].SampleBatch(opts.Rng, n-step, func(code graphlet.Code, nodes []int32) bool {
			// The weight update precedes the draw in the pseudocode (lines
			// 7–9); folding it in here is equivalent since drawing never
			// reads n_j.
			e.nj[cur]++
			e.tallies[code]++
			e.res.Samples++
			step++
			if opts.Observe != nil {
				opts.Observe(0, code, nodes)
			}
			if e.covered[code] {
				e.stale[code] = true
			} else if e.tallies[code] >= int64(opts.CoverThreshold) {
				refreshStale(e, e.stale)
				e.markCovered(code)
				e.switchShape()
				if e.cur != cur {
					return false
				}
			}
			return step&1023 != 0 || ctx.Err() == nil
		})
	}
	return nil
}

// refreshStale folds the pending ĝ updates into the covered mass in
// deterministic (sorted-code) order, so float summation order — and with
// it the argmin on near-ties — cannot vary between identical runs.
func refreshStale(e *engine, stale map[graphlet.Code]bool) {
	if len(stale) == 0 {
		return
	}
	codes := make([]graphlet.Code, 0, len(stale))
	for c := range stale {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].Less(codes[j]) })
	for _, c := range codes {
		e.refresh(c)
		delete(stale, c)
	}
}

// runParallel is the epoch-based driver described in the package comment,
// generalized to `streams` deterministic sampling streams executed on at
// most `workers` goroutines (streams == workers unless VirtualWorkers is
// set). Every per-draw and per-merge decision depends only on the stream
// decomposition, never on goroutine scheduling, so results are
// bit-identical for a fixed (seed, streams) pair at any physical worker
// count. Cancellation is detected at the epoch barrier (workers also bail
// out of a batch early); a canceled run returns ctx.Err() and its partial
// state is discarded by the caller. In precision mode the budget is the
// sample cap and the Theorem 3 stopping rule runs at each barrier.
func runParallel(ctx context.Context, e *engine, urn *sample.Urn, master map[treelet.Treelet]*sample.ShapeUrn, opts Options, workers, streams, budget int) error {
	batch := opts.EpochSize
	if batch == 0 {
		batch = DefaultEpochSize
	}
	type workerState struct {
		urns map[treelet.Treelet]*sample.ShapeUrn
		rng  *rand.Rand
	}
	ws := make([]*workerState, streams)
	for w := range ws {
		clone := urn.Clone()
		urns := make(map[treelet.Treelet]*sample.ShapeUrn, len(master))
		for s, su := range master {
			urns[s] = su.CloneOnto(clone)
		}
		// Seeding draws happen in stream order so the run is reproducible
		// for a fixed (seed, streams) pair.
		ws[w] = &workerState{urns: urns, rng: rand.New(rand.NewSource(opts.Rng.Int63()))}
	}
	if workers > streams {
		workers = streams
	}

	locals := make([]map[graphlet.Code]int64, streams)
	sem := make(chan struct{}, workers)
	for remaining := budget; remaining > 0; {
		epoch := streams * batch
		if epoch > remaining {
			epoch = remaining
		}
		base, extra := epoch/streams, epoch%streams
		var wg sync.WaitGroup
		for w := range ws {
			n := base
			if w < extra {
				n++
			}
			locals[w] = nil
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(st *workerState, w, n int) {
				defer wg.Done()
				sem <- struct{}{} // at most `workers` streams sample at once
				defer func() { <-sem }()
				su := st.urns[e.cur]
				local := make(map[graphlet.Code]int64)
				i, canceled := 0, false
				su.SampleBatch(st.rng, n, func(code graphlet.Code, nodes []int32) bool {
					local[code]++
					if opts.Observe != nil {
						opts.Observe(w, code, nodes)
					}
					i++
					if i&255 == 0 && ctx.Err() != nil {
						canceled = true // partial batch; the barrier discards the epoch
						return false
					}
					return true
				})
				if !canceled {
					locals[w] = local
				}
			}(ws[w], w, n)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}

		// Merge at the barrier: counters first (wi must see the whole
		// epoch), then cover detection in sorted-code order so float
		// accumulation into the covered mass is deterministic.
		e.nj[e.cur] += int64(epoch)
		epochTallies := make(map[graphlet.Code]int64)
		for _, local := range locals {
			for c, n := range local {
				epochTallies[c] += n
			}
		}
		codes := make([]graphlet.Code, 0, len(epochTallies))
		for c := range epochTallies {
			codes = append(codes, c)
			e.tallies[c] += epochTallies[c]
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i].Less(codes[j]) })
		newlyCovered := false
		for _, c := range codes {
			if e.covered[c] {
				e.refresh(c)
			} else if e.tallies[c] >= int64(opts.CoverThreshold) {
				e.markCovered(c)
				newlyCovered = true
			}
		}
		if newlyCovered {
			e.switchShape()
		}
		e.res.Samples += epoch
		e.res.Epochs++
		remaining -= epoch
		if opts.Precision != nil && e.achievedEps(opts.Precision) <= opts.Precision.Eps {
			return nil
		}
	}
	return nil
}
