package ags

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestParallelOptionsValidation(t *testing.T) {
	u := buildUrn(t, gen.ErdosRenyi(20, 50, 211), 4, 223)
	rng := rand.New(rand.NewSource(227))
	if _, err := Run(context.Background(), u, Options{Budget: 10, CoverThreshold: 1, Rng: rng, Workers: -1}); err == nil {
		t.Error("negative Workers must fail")
	}
	if _, err := Run(context.Background(), u, Options{Budget: 10, CoverThreshold: 1, Rng: rng, EpochSize: -5}); err == nil {
		t.Error("negative EpochSize must fail")
	}
}

// TestParallelAGSRace drives ≥ 4 workers over the shared read-only table;
// under `go test -race` (which CI runs) it proves the per-worker clone
// isolation of the epoch sampler.
func TestParallelAGSRace(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 101)
	u := buildUrn(t, g, 4, 103)
	res, err := Run(context.Background(), u, Options{
		CoverThreshold: 100, Budget: 8000, Workers: 4, EpochSize: 128,
		Rng: rand.New(rand.NewSource(107)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 8000 {
		t.Errorf("samples = %d, want 8000", res.Samples)
	}
	if res.Workers != 4 {
		t.Errorf("workers = %d, want 4", res.Workers)
	}
	// 8000 draws at 4×128 per epoch: ⌈8000/512⌉ barriers.
	if want := 16; res.Epochs != want {
		t.Errorf("epochs = %d, want %d", res.Epochs, want)
	}
	var total int64
	for _, c := range res.Tallies {
		total += c
	}
	if total != int64(res.Samples) {
		t.Errorf("tallies sum %d != samples %d", total, res.Samples)
	}
	for code := range res.Tallies {
		if res.Estimates[code] <= 0 {
			t.Errorf("graphlet %v tallied but estimate %v", code, res.Estimates[code])
		}
	}
}

// TestParallelAGSDeterminism: same seed + same worker count ⇒ identical
// Result, bit for bit. (Changing the worker count legitimately changes the
// draw sequence; determinism is only promised per (seed, workers) pair.)
func TestParallelAGSDeterminism(t *testing.T) {
	g := gen.ErdosRenyi(50, 150, 109)
	run := func() *Result {
		u := buildUrn(t, g, 4, 113)
		res, err := Run(context.Background(), u, Options{
			CoverThreshold: 150, Budget: 10000, Workers: 4, EpochSize: 128,
			Rng: rand.New(rand.NewSource(127)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical (seed, workers) runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSequentialWorkerAliases: Workers 0 and 1 are both the sequential
// path and must draw the identical sample sequence.
func TestSequentialWorkerAliases(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 137)
	run := func(workers int) *Result {
		u := buildUrn(t, g, 4, 139)
		res, err := Run(context.Background(), u, Options{
			CoverThreshold: 100, Budget: 4000, Workers: workers,
			Rng: rand.New(rand.NewSource(149)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(0), run(1); !reflect.DeepEqual(a, b) {
		t.Error("Workers=0 and Workers=1 runs differ")
	}
}

// TestParallelAGSAccuracy: the epoch-parallel run must stay within the
// sequential run's L1 error envelope (2×, the acceptance bound) against
// exact ground truth — the estimator c_i/w_i is the same, only the shape
// switch granularity differs.
func TestParallelAGSAccuracy(t *testing.T) {
	g := gen.ErdosRenyi(30, 90, 131)
	k := 4
	truth, err := exact.Count(g, k)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	seqSum := make(estimate.Counts)
	parSum := make(estimate.Counts)
	for r := 0; r < runs; r++ {
		u := buildUrn(t, g, k, int64(700+r))
		seq, err := Run(context.Background(), u, Options{
			CoverThreshold: 300, Budget: 30000,
			Rng: rand.New(rand.NewSource(int64(800 + r))),
		})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(context.Background(), u, Options{
			CoverThreshold: 300, Budget: 30000, Workers: 4,
			Rng: rand.New(rand.NewSource(int64(800 + r))),
		})
		if err != nil {
			t.Fatal(err)
		}
		for c, v := range seq.Estimates {
			seqSum[c] += v / runs
		}
		for c, v := range par.Estimates {
			parSum[c] += v / runs
		}
	}
	seqL1 := estimate.L1(seqSum, truth)
	parL1 := estimate.L1(parSum, truth)
	if parL1 > 2*seqL1+0.01 {
		t.Errorf("parallel ℓ1 %.4f exceeds 2× sequential ℓ1 %.4f", parL1, seqL1)
	}
	// Absolute sanity: the parallel estimator itself must be accurate.
	if parL1 > 0.15 {
		t.Errorf("parallel ℓ1 %.4f too large in absolute terms", parL1)
	}
}

// TestParallelAGSAdaptivity: the epoch sampler must still cover the
// dominant star and switch shapes on a star-heavy graph (the Section 5.3
// behavior TestAGSFindsRareGraphlets checks for the sequential path).
func TestParallelAGSAdaptivity(t *testing.T) {
	g := gen.StarHeavy(1, 400, 25, 5)
	u := buildUrn(t, g, 5, 7)
	res, err := Run(context.Background(), u, Options{
		CoverThreshold: 500, Budget: 20000, Workers: 4,
		Rng: rand.New(rand.NewSource(151)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered == 0 {
		t.Error("parallel AGS covered nothing on a star-dominated graph")
	}
	if res.Switches == 0 {
		t.Error("parallel AGS never switched shapes on a star-dominated graph")
	}
}
