package ags

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/sample"
	"repro/internal/treelet"
)

func buildUrn(t *testing.T, g *graph.Graph, k int, seed int64) *sample.Urn {
	t.Helper()
	col := coloring.Uniform(g.NumNodes(), k, seed)
	cat := treelet.NewCatalog(k)
	tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u, err := sample.NewUrn(g, col, tab, cat)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestOptionsValidation(t *testing.T) {
	u := buildUrn(t, gen.ErdosRenyi(20, 50, 1), 4, 2)
	if _, err := Run(context.Background(), u, Options{Budget: 10, CoverThreshold: 1}); err == nil {
		t.Error("missing rng must fail")
	}
	if _, err := Run(context.Background(), u, Options{Budget: 10, CoverThreshold: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("zero threshold must fail")
	}
}

func TestAGSEstimatesMatchExact(t *testing.T) {
	g := gen.ErdosRenyi(30, 90, 3)
	k := 4
	truth, err := exact.Count(g, k)
	if err != nil {
		t.Fatal(err)
	}
	sum := make(estimate.Counts)
	const runs = 12
	for r := 0; r < runs; r++ {
		u := buildUrn(t, g, k, int64(300+r))
		opts := Options{CoverThreshold: 300, Budget: 30000, Rng: rand.New(rand.NewSource(int64(400 + r)))}
		res, err := Run(context.Background(), u, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Samples != opts.Budget {
			t.Fatalf("samples=%d, want %d", res.Samples, opts.Budget)
		}
		for c, v := range res.Estimates {
			sum[c] += v / runs
		}
	}
	// Only graphlets with enough expected colorful copies per coloring
	// (p_k·g ≳ 30) are testable at tight tolerance; rarer ones are
	// dominated by coloring variance (Theorem 3's bound is vacuous there).
	pk := coloring.PUniform(k)
	for code, want := range truth {
		if pk*want < 30 {
			continue
		}
		got := sum[code]
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("graphlet %v: AGS estimate %.1f, exact %.0f", code, got, want)
		}
	}
	if l1 := estimate.L1(sum, truth); l1 > 0.12 {
		t.Errorf("ℓ1 error %.3f too large", l1)
	}
}

// TestAGSFindsRareGraphlets is the core adaptive claim (Section 5.3): on a
// star-dominated graph, naive sampling sees (almost) only the star, while
// AGS with the same budget covers the star quickly, switches shape, and
// tallies rare graphlets.
func TestAGSFindsRareGraphlets(t *testing.T) {
	g := gen.StarHeavy(1, 400, 25, 5)
	k := 5
	u := buildUrn(t, g, k, 7)

	// Naive sampling baseline.
	rng := rand.New(rand.NewSource(11))
	naive := make(map[graphlet.Code]int64)
	const budget = 20000
	for i := 0; i < budget; i++ {
		code, _ := u.Sample(rng)
		naive[code]++
	}

	// AGS with the same budget on a fresh urn state.
	u2, err := sample.NewUrn(u.G, u.Col, u.Tab, u.Cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), u2, Options{CoverThreshold: 500, Budget: budget, Rng: rand.New(rand.NewSource(13))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Error("AGS never switched shapes on a star-dominated graph")
	}
	// AGS must observe strictly more distinct graphlets with solid tallies.
	solid := func(m map[graphlet.Code]int64) int {
		n := 0
		for _, c := range m {
			if c >= 10 {
				n++
			}
		}
		return n
	}
	if solid(res.Tallies) <= solid(naive) {
		t.Errorf("AGS solid graphlets %d not above naive %d", solid(res.Tallies), solid(naive))
	}
}

func TestAGSStarEstimateAccurate(t *testing.T) {
	// The k-star count on StarHeavy(1, L, 0) is exactly C(L, k-1).
	L := 200
	g := gen.StarHeavy(1, L, 0, 17)
	k := 4
	want := float64(L*(L-1)*(L-2)) / 6
	sum := 0.0
	const runs = 6
	star := graphlet.Canonical(k, graphlet.FromEdges(k, [][2]int{{0, 1}, {0, 2}, {0, 3}}))
	for r := 0; r < runs; r++ {
		u := buildUrn(t, g, k, int64(500+r))
		res, err := Run(context.Background(), u, Options{CoverThreshold: 200, Budget: 4000, Rng: rand.New(rand.NewSource(int64(600 + r)))})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Estimates[star] / runs
	}
	if math.Abs(sum-want)/want > 0.2 {
		t.Errorf("star estimate %.0f, exact %.0f", sum, want)
	}
}

func TestAGSCoverageBookkeeping(t *testing.T) {
	g := gen.ErdosRenyi(25, 70, 19)
	k := 4
	u := buildUrn(t, g, k, 23)
	res, err := Run(context.Background(), u, Options{CoverThreshold: 50, Budget: 5000, Rng: rand.New(rand.NewSource(29))})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	var total int64
	for _, c := range res.Tallies {
		if c >= 50 {
			covered++
		}
		total += c
	}
	if covered != res.Covered {
		t.Errorf("Covered=%d, tallies say %d", res.Covered, covered)
	}
	if total != int64(res.Samples) {
		t.Errorf("tallies sum %d != samples %d", total, res.Samples)
	}
	// Every tallied graphlet must carry an estimate.
	for code := range res.Tallies {
		if res.Estimates[code] <= 0 {
			t.Errorf("graphlet %v has tally but estimate %v", code, res.Estimates[code])
		}
	}
}

// TestRunToPrecisionTerminatesEarly: on a low-degree graph Theorem 3
// certifies a loose ε almost immediately, so the run must stop well short
// of the cap with a met certificate.
func TestRunToPrecisionTerminatesEarly(t *testing.T) {
	u := buildUrn(t, gen.Cycle(2000), 3, 7)
	res, err := Run(context.Background(), u, Options{
		CoverThreshold: 200,
		Rng:            rand.New(rand.NewSource(9)),
		Precision:      &Precision{Eps: 0.5, Delta: 0.1, MaxSamples: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	cert := res.Achieved
	if cert == nil {
		t.Fatal("no certificate")
	}
	if !cert.Met || cert.Eps > 0.5 {
		t.Fatalf("certificate not met: ε=%v after %d samples", cert.Eps, cert.Samples)
	}
	if res.Samples >= 1<<20 || res.Samples == 0 {
		t.Fatalf("run did not stop early: %d samples", res.Samples)
	}
	if cert.Samples != res.Samples || cert.Delta != 0.1 {
		t.Fatalf("certificate %+v inconsistent with result samples %d", cert, res.Samples)
	}
}

// TestRunToPrecisionBoundedByCap: a star-heavy graph's Δ^(k-2) makes a
// tight ε uncertifiable, so the run must terminate exactly at MaxSamples
// with an honest unmet certificate — never spin past the cap.
func TestRunToPrecisionBoundedByCap(t *testing.T) {
	u := buildUrn(t, gen.StarHeavy(1, 400, 25, 5), 4, 11)
	const cap = 5000
	res, err := Run(context.Background(), u, Options{
		CoverThreshold: 100,
		Rng:            rand.New(rand.NewSource(13)),
		Precision:      &Precision{Eps: 0.01, Delta: 0.05, MaxSamples: cap},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != cap {
		t.Fatalf("samples = %d, want exactly the cap %d", res.Samples, cap)
	}
	cert := res.Achieved
	if cert == nil {
		t.Fatal("no certificate")
	}
	if cert.Met {
		t.Fatalf("ε=0.01 cannot be met on a star graph; certificate says met (ε=%v)", cert.Eps)
	}
}

// TestRunToPrecisionDeterministicAcrossWorkers: with the stream
// decomposition pinned via VirtualWorkers, a precision run's estimates,
// draw count and certificate are bit-identical at any physical worker
// count.
func TestRunToPrecisionDeterministicAcrossWorkers(t *testing.T) {
	g := gen.StarHeavy(1, 300, 40, 3)
	u := buildUrn(t, g, 4, 11)
	var base *Result
	for _, workers := range []int{1, 2, 8} {
		res, err := Run(context.Background(), u.Clone(), Options{
			CoverThreshold: 100,
			Rng:            rand.New(rand.NewSource(21)),
			Workers:        workers,
			VirtualWorkers: 4,
			Precision:      &Precision{Eps: 0.2, Delta: 0.1, MaxSamples: 20000},
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if base.Samples != res.Samples || base.Covered != res.Covered {
			t.Fatalf("workers=%d: samples/covered differ (%d/%d vs %d/%d)",
				workers, res.Samples, res.Covered, base.Samples, base.Covered)
		}
		if !reflect.DeepEqual(base.Tallies, res.Tallies) {
			t.Fatalf("workers=%d: tallies differ", workers)
		}
		if !reflect.DeepEqual(base.Estimates, res.Estimates) {
			t.Fatalf("workers=%d: estimates differ", workers)
		}
		if !reflect.DeepEqual(base.Achieved, res.Achieved) {
			t.Fatalf("workers=%d: certificates differ: %+v vs %+v", workers, res.Achieved, base.Achieved)
		}
	}
}

// TestObserveStreamsVertexIncidence: the Observe hook sees every draw
// exactly once with k vertex ids, under both the sequential and the
// parallel driver.
func TestObserveStreamsVertexIncidence(t *testing.T) {
	u := buildUrn(t, gen.ErdosRenyi(40, 110, 9), 4, 3)
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		perStream := make(map[int]int)
		var badLen int
		res, err := Run(context.Background(), u.Clone(), Options{
			Budget:         3000,
			CoverThreshold: 200,
			Rng:            rand.New(rand.NewSource(5)),
			Workers:        workers,
			Observe: func(stream int, code graphlet.Code, nodes []int32) {
				mu.Lock()
				perStream[stream]++
				if len(nodes) != 4 {
					badLen++
				}
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var seen int
		for _, n := range perStream {
			seen += n
		}
		if seen != res.Samples {
			t.Fatalf("workers=%d: observed %d draws, result says %d", workers, seen, res.Samples)
		}
		if badLen != 0 {
			t.Fatalf("workers=%d: %d draws had wrong vertex count", workers, badLen)
		}
	}
}
