package table

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// saveV2 writes t in the retired version-2 layout ("MvT2": no smart-star
// flag or section, levels always 1..k) so Load's backward-compatibility
// path is exercised against bytes produced by the documented old format.
func saveV2(t *testing.T, tab *Table, col *coloring.Coloring) []byte {
	t.Helper()
	if tab.smart != nil {
		t.Fatal("saveV2 is for materialized tables")
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	write := func(data any) {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			t.Fatal(err)
		}
	}
	flags := uint32(0)
	if tab.ZeroRooted {
		flags |= flagZeroRooted
	}
	if col != nil {
		flags |= flagHasColoring
	}
	for _, v := range []uint32{fileMagicV2, 2, uint32(tab.K), flags} {
		write(v)
	}
	write(uint64(tab.N))
	if col != nil {
		write(math.Float64bits(col.PColorful))
		write(col.Colors)
	}
	for h := 1; h <= tab.K; h++ {
		write(uint64(len(tab.levels[h].arena)))
		write(tab.levels[h].starts)
		write(tab.levels[h].arena)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// smallMaterialized builds a tiny hand-stored materialized table.
func smallMaterialized(t *testing.T) (*Table, *coloring.Coloring) {
	t.Helper()
	tab := New(4, 2, false)
	var p Pairs
	for v := int32(0); v < 4; v++ {
		p.Reset()
		p.Append(treelet.MakeColored(treelet.Leaf, treelet.Singleton(uint8(v%2))), u128.One)
		tab.SetRec(1, v, &p)
	}
	edge := treelet.Star(2)
	p.Reset()
	p.Append(treelet.MakeColored(edge, 0b11), u128.From64(3))
	tab.SetRec(2, 0, &p)
	col := &coloring.Coloring{K: 2, Colors: []uint8{0, 1, 0, 1}, PColorful: 0.5}
	return tab, col
}

func TestMvT2FileStillOpens(t *testing.T) {
	tab, col := smallMaterialized(t)
	raw := saveV2(t, tab, col)
	got, gotCol, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading a version-2 file: %v", err)
	}
	if got.SmartStars() {
		t.Fatal("version-2 file loaded as a smart table")
	}
	if gotCol == nil || gotCol.PColorful != col.PColorful || !bytes.Equal(gotCol.Colors, col.Colors) {
		t.Fatal("coloring section lost through the v2 path")
	}
	if got.K != tab.K || got.N != tab.N || got.Pairs() != tab.Pairs() {
		t.Fatal("v2 table shape mismatch")
	}
	if got.Rec(2, 0).Count(treelet.MakeColored(treelet.Star(2), 0b11)) != u128.From64(3) {
		t.Fatal("v2 record content lost")
	}
	// A v2 file claiming smart stars is corrupt by definition.
	bad := saveV2(t, tab, col)
	bad[12] |= flagSmartStars
	if _, _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("version-2 file with the smart-star flag must be rejected")
	}
}

// smartFixture builds a smart table over a real graph with one stored
// (height-3) record, exercising the stored/synthesized merge.
func smartFixture(t *testing.T) (*Table, *graph.Graph, *coloring.Coloring) {
	t.Helper()
	g := gen.ErdosRenyi(24, 70, 9)
	k := 4
	col := coloring.Uniform(g.NumNodes(), k, 11)
	tab := New(g.NumNodes(), k, true)
	if err := tab.EnableSmartStars(g, col); err != nil {
		t.Fatal(err)
	}
	// One stored record of the only height-3 shape on 4 nodes (the path
	// rooted at its end).
	path4 := treelet.FromParents([]int{0, 0, 1, 2})
	if path4.Height() != 3 {
		t.Fatalf("fixture shape has height %d", path4.Height())
	}
	var v0 int32 = -1
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		if col.Of(v) == 0 {
			v0 = v
			break
		}
	}
	if v0 < 0 {
		t.Fatal("no color-0 node")
	}
	var p Pairs
	p.Append(treelet.MakeColored(path4, 0b1111), u128.From64(7))
	tab.SetRec(k, v0, &p)
	return tab, g, col
}

func TestSmartTableSaveLoadRoundTrip(t *testing.T) {
	tab, g, col := smartFixture(t)
	var buf bytes.Buffer
	if _, err := Save(&buf, tab, col); err != nil {
		t.Fatal(err)
	}
	got, gotCol, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.SmartStars() || got.GraphAttached() {
		t.Fatal("loaded table must be smart and detached")
	}
	if gotCol == nil {
		t.Fatal("coloring lost")
	}
	if err := got.AttachGraph(g); err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= tab.K; h++ {
		for v := int32(0); int(v) < tab.N; v++ {
			want, wantC := recEntries(tab.Rec(h, v))
			have, haveC := recEntries(got.Rec(h, v))
			if len(want) != len(have) {
				t.Fatalf("h=%d v=%d entry count differs", h, v)
			}
			for i := range want {
				if want[i] != have[i] || wantC[i] != haveC[i] {
					t.Fatalf("h=%d v=%d entry %d differs", h, v, i)
				}
			}
		}
	}
	// Attaching the wrong graph must fail loudly.
	wrong := gen.ErdosRenyi(24, 70, 10)
	fresh, _, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.AttachGraph(wrong); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("wrong graph accepted: %v", err)
	}
	small := gen.ErdosRenyi(10, 20, 1)
	if err := fresh.AttachGraph(small); err == nil {
		t.Fatal("graph with wrong node count accepted")
	}
}

func recEntries(vw View) (keys []treelet.Colored, counts []u128.Uint128) {
	vw.Each(func(k treelet.Colored, c u128.Uint128) bool {
		keys = append(keys, k)
		counts = append(counts, c)
		return true
	})
	return
}

func TestSmartTableSaveRequiresColoring(t *testing.T) {
	tab, _, _ := smartFixture(t)
	if _, err := tab.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("smart table saved without a coloring")
	}
}

func TestSmartLevelsRejectStores(t *testing.T) {
	tab, _, _ := smartFixture(t)
	if err := tab.SetLevel(2, nil, make([]int64, tab.N)); err == nil {
		t.Fatal("SetLevel on a fully synthetic level must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetRec on a fully synthetic level must panic")
		}
	}()
	var p Pairs
	p.Append(treelet.MakeColored(treelet.Star(2), 0b11), u128.One)
	tab.SetRec(2, 0, &p)
}

func TestValidateRejectsStoredSynthesizedShape(t *testing.T) {
	// A materialized table holding a star entry at a stored level becomes
	// invalid the moment the smart state is installed — smart files must
	// never carry materialized star records.
	g := gen.ErdosRenyi(12, 30, 3)
	k := 4
	col := coloring.Uniform(g.NumNodes(), k, 5)
	tab := New(g.NumNodes(), k, false)
	var p Pairs
	p.Append(treelet.MakeColored(treelet.Star(4), 0b1111), u128.From64(2))
	tab.SetRec(4, 0, &p)
	if err := tab.Validate(); err != nil {
		t.Fatalf("materialized star record is legal: %v", err)
	}
	tab.setSmartFromFile(col.Colors, colorDegrees(g, col.Colors, k))
	if err := tab.Validate(); err == nil || !strings.Contains(err.Error(), "synthesized shape") {
		t.Fatalf("stored synthesized shape not rejected: %v", err)
	}
}

func TestSubsetsAscOrder(t *testing.T) {
	var got []treelet.ColorSet
	subsetsAsc(0b110110, 2, func(cs treelet.ColorSet) { got = append(got, cs) })
	want := []treelet.ColorSet{
		0b000110, 0b010010, 0b010100, 0b100010, 0b100100, 0b110000,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subset %d = %b, want %b (order broken)", i, got[i], want[i])
		}
	}
}

// TestSynthStarClosedForm pins the center-rooted star count to the paper's
// closed form ∏ d_c(v) on a hand-built graph.
func TestSynthStarClosedForm(t *testing.T) {
	// Node 0 with neighbors colored 1,1,2,3 (k=4).
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}
	g, err := graph.Build(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	col := &coloring.Coloring{K: 4, Colors: []uint8{0, 1, 1, 2, 3}, PColorful: 1}
	tab := New(5, 4, false)
	if err := tab.EnableSmartStars(g, col); err != nil {
		t.Fatal(err)
	}
	star4 := treelet.Star(4)
	// C = {0,1,2,3}: leaves need colors 1,2,3 → d_1·d_2·d_3 = 2·1·1.
	if got := tab.Rec(4, 0).Count(treelet.MakeColored(star4, 0b1111)); got != u128.From64(2) {
		t.Fatalf("star count = %v, want 2", got)
	}
	// 3-star at the center with C = {0,1,2}: d_1·d_2 = 2.
	if got := tab.Rec(3, 0).Count(treelet.MakeColored(treelet.Star(3), 0b0111)); got != u128.From64(2) {
		t.Fatalf("3-star count = %v, want 2", got)
	}
	// Leaf-rooted 3-star at node 1 (v–center–leaf): center must be node 0
	// with a leaf of the remaining color; for C = {0,1,2} the center is
	// color 0... the center's color is in C\{col(v)} and the leaf takes the
	// rest: center 0 (color 0), leaf any neighbor of 0 with color 2 → 1.
	leafStar3 := treelet.FromParents([]int{0, 0, 1})
	if leafStar3.StarCenter() != 1 {
		t.Fatal("fixture is not the leaf-rooted star")
	}
	if got := tab.Rec(3, 1).Count(treelet.MakeColored(leafStar3, 0b0111)); got != u128.From64(1) {
		t.Fatalf("leaf-rooted 3-star count = %v, want 1", got)
	}
}
