package table

// The decoded-record cache: the batched sampling hot path's amortization
// layer in front of the packed Record views.
//
// A packed record answers every primitive by walking varint payload (plus,
// on smart tables, re-running star synthesis); that is the right trade for
// a one-shot query, but the sampling phase revisits the same few hundred
// hot records millions of times. Decoded is the flat form of one merged
// View — sorted keys plus cumulative counts — on which every primitive is
// a binary search: occ O(1), count/iter O(log n), sample O(log n) with no
// varint decode and no synthesis. DecodedCache holds decoded records under
// a pair budget; once the budget is reached the cache freezes (hot records
// enter first under sampling workloads, so the resident set is the right
// one) and misses fall back to the packed view.
//
// Every Decoded primitive returns bit-identical values to the View it was
// decoded from and consumes RNG identically (one u128.RandN per sample on
// the same total), so caching is invisible to draw sequences — the
// property the batched samplers' determinism tests pin down.

import (
	"sort"
	"sync"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// Decoded is one fully decoded record: the merged (stored + synthesized)
// entries of a View in ascending key order, with cumulative counts. The
// zero value is an empty record.
type Decoded struct {
	Keys []treelet.Colored
	// Cum[i] is the cumulative count through entry i (inclusive); the
	// point count of entry i is Cum[i]-Cum[i-1].
	Cum []u128.Uint128
}

// Decode flattens the view into d (replacing its contents).
func (vw View) Decode(d *Decoded) {
	d.Keys = d.Keys[:0]
	d.Cum = d.Cum[:0]
	cum := u128.Zero
	vw.Each(func(k treelet.Colored, cnt u128.Uint128) bool {
		cum = cum.Add(cnt)
		d.Keys = append(d.Keys, k)
		d.Cum = append(d.Cum, cum)
		return true
	})
}

// Len returns the number of entries.
func (d *Decoded) Len() int { return len(d.Keys) }

// Total returns occ(v) in O(1).
func (d *Decoded) Total() u128.Uint128 {
	if len(d.Cum) == 0 {
		return u128.Zero
	}
	return d.Cum[len(d.Cum)-1]
}

// countAt returns the point count of entry i.
func (d *Decoded) countAt(i int) u128.Uint128 {
	if i == 0 {
		return d.Cum[0]
	}
	return d.Cum[i].Sub(d.Cum[i-1])
}

// cumBefore returns the cumulative count of all entries before index i.
func (d *Decoded) cumBefore(i int) u128.Uint128 {
	if i == 0 {
		return u128.Zero
	}
	return d.Cum[i-1]
}

// lowerBound returns the smallest index whose key is ≥ key (Len if none).
func (d *Decoded) lowerBound(key treelet.Colored) int {
	return sort.Search(len(d.Keys), func(i int) bool { return d.Keys[i] >= key })
}

// Count returns occ(T_C, v) for one colored treelet, or zero if absent.
func (d *Decoded) Count(key treelet.Colored) u128.Uint128 {
	i := d.lowerBound(key)
	if i < len(d.Keys) && d.Keys[i] == key {
		return d.countAt(i)
	}
	return u128.Zero
}

// ShapeRange returns the half-open index range [lo, hi) of keys whose
// treelet part equals t.
func (d *Decoded) ShapeRange(t treelet.Treelet) (lo, hi int) {
	lo = d.lowerBound(treelet.MakeColored(t, 0))
	hi = d.lowerBound(treelet.MakeColored(t, treelet.MaxColorSet) + 1)
	return lo, hi
}

// ShapeTotal returns the total count over all colorings of shape t.
func (d *Decoded) ShapeTotal(t treelet.Treelet) u128.Uint128 {
	lo, hi := d.ShapeRange(t)
	if lo >= hi {
		return u128.Zero
	}
	return d.Cum[hi-1].Sub(d.cumBefore(lo))
}

// ShapeEach calls fn for every entry of shape t in ascending key order
// until fn returns false.
func (d *Decoded) ShapeEach(t treelet.Treelet, fn func(treelet.Colored, u128.Uint128) bool) {
	lo, hi := d.ShapeRange(t)
	for i := lo; i < hi; i++ {
		if !fn(d.Keys[i], d.countAt(i)) {
			return
		}
	}
}

// keyAtCumGE returns the key of the first entry whose cumulative count
// reaches rv (assuming 1 ≤ rv ≤ Total).
func (d *Decoded) keyAtCumGE(rv u128.Uint128) treelet.Colored {
	i := sort.Search(len(d.Cum), func(i int) bool { return d.Cum[i].Cmp(rv) >= 0 })
	if i == len(d.Cum) {
		i = len(d.Cum) - 1 // rv ≤ Total never lands here; mirror View's clamp
	}
	return d.Keys[i]
}

// Sample draws a key with probability proportional to its count — the
// sample(v) primitive, bit-identical to View.Sample at equal RNG state.
// It panics on an empty record.
func (d *Decoded) Sample(rng u128.RandSource) treelet.Colored {
	total := d.Total()
	if total.IsZero() {
		panic("table: Sample on empty record")
	}
	rv := u128.RandN(rng, total).Add64(1)
	return d.keyAtCumGE(rv)
}

// SampleShape draws a key of shape t with probability proportional to its
// count, bit-identical to View.SampleShape at equal RNG state. It panics
// on an empty shape.
func (d *Decoded) SampleShape(rng u128.RandSource, t treelet.Treelet) treelet.Colored {
	lo, hi := d.ShapeRange(t)
	if lo >= hi {
		panic("table: SampleShape on empty shape")
	}
	base := d.cumBefore(lo)
	span := d.Cum[hi-1].Sub(base)
	if span.IsZero() {
		panic("table: SampleShape on empty shape")
	}
	rv := base.Add(u128.RandN(rng, span).Add64(1))
	return d.keyAtCumGE(rv)
}

// DecodedCache memoizes decoded records per (size, node) under a total
// pair budget. Decoded records are pure functions of the immutable table,
// so the cache is safe for concurrent use and meant to be shared: all
// sampling clones of one urn read through the same cache, and a record is
// decoded once per urn lifetime instead of once per clone.
type DecodedCache struct {
	mu     sync.RWMutex
	m      map[uint64]*Decoded
	pairs  int
	budget int
}

// NewDecodedCache returns a cache holding at most budget decoded pairs
// (the last insertion may overshoot by one record). budget ≤ 0 returns a
// cache that never admits anything — the explicit "amortization off"
// setting the determinism tests compare against.
func NewDecodedCache(budget int) *DecodedCache {
	return &DecodedCache{m: make(map[uint64]*Decoded), budget: budget}
}

func decKey(h int, v int32) uint64 { return uint64(h)<<32 | uint64(uint32(v)) }

// Get returns the decoded record of (h, v), decoding vw on a miss. Once
// the pair budget is spent the cache freezes and misses return nil; the
// caller falls back to the packed view. Concurrent misses on the same
// record may decode it twice; the first published copy wins (the copies
// are identical, so callers cannot tell).
func (c *DecodedCache) Get(h int, v int32, vw View) *Decoded {
	if c == nil {
		return nil
	}
	key := decKey(h, v)
	c.mu.RLock()
	d, ok := c.m[key]
	frozen := c.pairs >= c.budget
	c.mu.RUnlock()
	if ok {
		return d
	}
	if frozen {
		return nil
	}
	d = &Decoded{}
	vw.Decode(d) // outside the lock: decode may run synthesis and is slow
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.m[key]; ok {
		return prior
	}
	if c.pairs >= c.budget {
		return nil
	}
	c.m[key] = d
	c.pairs += len(d.Keys)
	return d
}

// Pairs reports the resident decoded pairs — observability for tests and
// cache-budget tuning.
func (c *DecodedCache) Pairs() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pairs
}
