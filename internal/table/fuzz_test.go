package table

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// FuzzPackedRecordRoundTrip drives the delta/varint codec with
// fuzzer-derived pair sets: the raw bytes are chopped into (key, count)
// pairs, canonicalized, encoded, and the packed record must decode back to
// exactly the input and answer point queries consistently. Run with
//
//	go test -fuzz=Fuzz -fuzztime=10s ./internal/table
func FuzzPackedRecordRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})
	seed := make([]byte, 20*(blockSize+3))
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Derive a canonical pair set: 20 bytes per entry — 8 key bytes
		// (masked to the 46-bit Colored layout), 8+4 count bytes (the
		// short tail makes >64-bit counts reachable but rare, like real
		// tables).
		m := make(map[treelet.Colored]u128.Uint128)
		for len(data) >= 20 {
			key := treelet.Colored(binary.LittleEndian.Uint64(data) & (1<<46 - 1))
			cnt := u128.Uint128{
				Lo: binary.LittleEndian.Uint64(data[8:]),
				Hi: uint64(binary.LittleEndian.Uint32(data[16:])),
			}
			m[key] = cnt
			data = data[20:]
		}
		var p Pairs
		p.FromMap(m)
		enc := AppendRecord(nil, &p)
		if len(m) == 0 {
			if len(enc) != 0 {
				t.Fatalf("empty input encoded to %d bytes", len(enc))
			}
			return
		}
		rec, err := ViewRecord(enc)
		if err != nil {
			t.Fatalf("ViewRecord: %v", err)
		}
		if rec.Bytes() != int64(len(enc)) {
			t.Fatalf("view spans %d bytes, encoder wrote %d", rec.Bytes(), len(enc))
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		// Trailing garbage must not change the view (records are sliced
		// out of arenas, so buffers routinely extend past the record).
		recPad, err := ViewRecord(append(append([]byte{}, enc...), 0xAA, 0x55))
		if err != nil {
			t.Fatalf("ViewRecord with padding: %v", err)
		}
		if recPad.Bytes() != rec.Bytes() || recPad.Len() != rec.Len() {
			t.Fatal("padding changed the record view")
		}
		// Full round trip through the cursor.
		var got Pairs
		rec.AppendPairs(&got)
		if len(got.Keys) != len(p.Keys) {
			t.Fatalf("decoded %d pairs, want %d", len(got.Keys), len(p.Keys))
		}
		total := u128.Zero
		for i := range p.Keys {
			if got.Keys[i] != p.Keys[i] || got.Counts[i] != p.Counts[i] {
				t.Fatalf("pair %d: (%v,%v) != (%v,%v)", i, got.Keys[i], got.Counts[i], p.Keys[i], p.Counts[i])
			}
			total = total.Add(p.Counts[i])
		}
		if rec.Total() != total {
			t.Fatalf("Total %v != sum %v", rec.Total(), total)
		}
		// Point queries against the map.
		for k, want := range m {
			if gotC := rec.Count(k); gotC != want {
				t.Fatalf("Count(%v) = %v, want %v", k, gotC, want)
			}
		}
		// Re-encoding the decoded pairs must be byte-identical (canonical
		// encoding — the property table byte-identity tests lean on).
		if !bytes.Equal(enc, AppendRecord(nil, &got)) {
			t.Fatal("re-encoding is not byte-identical")
		}
	})
}
