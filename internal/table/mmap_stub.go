//go:build !unix

package table

import "fmt"

// mmapFile on platforms without memory mapping: OpenMapped reports
// ErrNotMappable so callers fall back to the heap loader.
func mmapFile(path string) ([]byte, error) {
	return nil, fmt.Errorf("%w: no mmap on this platform", ErrNotMappable)
}

func munmapFile(data []byte) error { return nil }
