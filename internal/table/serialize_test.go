package table

import (
	"bytes"
	"testing"

	"repro/internal/coloring"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// testTable builds a small fixed table across three levels.
func testTable(t *testing.T) *Table {
	t.Helper()
	tab := New(4, 3, true)
	var p Pairs
	p.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.Leaf, 0b001): u128.One,
	})
	tab.SetRec(1, 0, &p)
	edge := treelet.FromParents([]int{0, 0})
	p.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(edge, 0b011): u128.From64(7),
		treelet.MakeColored(edge, 0b101): {Hi: 3, Lo: 9},
	})
	tab.SetRec(2, 1, &p)
	p.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.FromParents([]int{0, 0, 1}), 0b111): u128.From64(2),
	})
	tab.SetRec(3, 2, &p)
	return tab
}

// equalTables compares two tables entry by entry.
func equalTables(t *testing.T, a, b *Table) {
	t.Helper()
	if a.K != b.K || a.N != b.N || a.ZeroRooted != b.ZeroRooted {
		t.Fatal("header mismatch")
	}
	for h := 1; h <= a.K; h++ {
		for v := int32(0); int(v) < a.N; v++ {
			ra, rb := a.Rec(h, v), b.Rec(h, v)
			if ra.Len() != rb.Len() {
				t.Fatalf("h=%d v=%d length mismatch", h, v)
			}
			for i := 0; i < ra.Len(); i++ {
				ka, ca := ra.Packed().At(i)
				kb, cb := rb.Packed().At(i)
				if ka != kb || ca != cb {
					t.Fatalf("h=%d v=%d entry %d mismatch", h, v, i)
				}
			}
		}
	}
}

func TestTableSerializationRoundTrip(t *testing.T) {
	tab := testTable(t)
	var buf bytes.Buffer
	n, err := tab.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
	if got.TotalK() != tab.TotalK() {
		t.Error("TotalK changed across serialization")
	}
}

func TestSaveLoadWithColoring(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 42)
	var buf bytes.Buffer
	if _, err := Save(&buf, tab, col); err != nil {
		t.Fatal(err)
	}
	got, gotCol, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
	if gotCol == nil {
		t.Fatal("coloring section lost")
	}
	if gotCol.K != col.K || gotCol.PColorful != col.PColorful {
		t.Errorf("coloring header mismatch: %+v vs %+v", gotCol, col)
	}
	if !bytes.Equal(gotCol.Colors, col.Colors) {
		t.Error("node colors changed across serialization")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 7)
	path := t.TempDir() + "/graph.tbl"
	n, err := SaveFile(path, tab, col)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("SaveFile reported no bytes")
	}
	got, gotCol, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
	if gotCol == nil || !bytes.Equal(gotCol.Colors, col.Colors) {
		t.Error("coloring lost through the file round trip")
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	if _, err := ReadTable(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := ReadTable(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	var buf bytes.Buffer
	tab := testTable(t)
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Plausible magic but absurd k.
	data := append([]byte(nil), buf.Bytes()...)
	data[8] = 0xFF // k field
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("implausible k must fail")
	}
	// Wrong version.
	data = append([]byte(nil), buf.Bytes()...)
	data[4] = 9
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("unknown version must fail")
	}
	// Truncated arena.
	data = buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("truncated arena must fail")
	}
	// Corrupt payload byte: entry-level validation must catch it. Flip the
	// last arena byte (a count varint terminator) to a continuation byte.
	data = append([]byte(nil), buf.Bytes()...)
	data[len(data)-1] |= 0x80
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("corrupt record payload must fail validation")
	}
}
