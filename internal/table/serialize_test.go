package table

import (
	"bytes"
	"testing"

	"repro/internal/treelet"
	"repro/internal/u128"
)

func TestTableSerializationRoundTrip(t *testing.T) {
	tab := New(4, 3, true)
	tab.Recs[1][0] = FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.Leaf, 0b001): u128.One,
	})
	edge := treelet.FromParents([]int{0, 0})
	tab.Recs[2][1] = FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(edge, 0b011): u128.From64(7),
		treelet.MakeColored(edge, 0b101): {Hi: 3, Lo: 9},
	})
	tab.Recs[3][2] = FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.FromParents([]int{0, 0, 1}), 0b111): u128.From64(2),
	})

	var buf bytes.Buffer
	n, err := tab.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != tab.K || got.N != tab.N || got.ZeroRooted != tab.ZeroRooted {
		t.Fatal("header mismatch")
	}
	for h := 1; h <= tab.K; h++ {
		for v := 0; v < tab.N; v++ {
			a, b := &tab.Recs[h][v], &got.Recs[h][v]
			if a.Len() != b.Len() {
				t.Fatalf("h=%d v=%d length mismatch", h, v)
			}
			for i := 0; i < a.Len(); i++ {
				ka, ca := a.At(i)
				kb, cb := b.At(i)
				if ka != kb || ca != cb {
					t.Fatalf("h=%d v=%d entry %d mismatch", h, v, i)
				}
			}
		}
	}
	if got.TotalK() != tab.TotalK() {
		t.Error("TotalK changed across serialization")
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	if _, err := ReadTable(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := ReadTable(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	// Plausible magic but absurd k.
	var buf bytes.Buffer
	tab := New(1, 2, false)
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 0xFF // k field
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("implausible k must fail")
	}
}
