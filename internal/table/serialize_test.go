package table

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"testing"

	"repro/internal/coloring"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// testTable builds a small fixed table across three levels.
func testTable(t *testing.T) *Table {
	t.Helper()
	tab := New(4, 3, true)
	var p Pairs
	p.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.Leaf, 0b001): u128.One,
	})
	tab.SetRec(1, 0, &p)
	edge := treelet.FromParents([]int{0, 0})
	p.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(edge, 0b011): u128.From64(7),
		treelet.MakeColored(edge, 0b101): {Hi: 3, Lo: 9},
	})
	tab.SetRec(2, 1, &p)
	p.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.FromParents([]int{0, 0, 1}), 0b111): u128.From64(2),
	})
	tab.SetRec(3, 2, &p)
	return tab
}

// equalTables compares two tables entry by entry.
func equalTables(t *testing.T, a, b *Table) {
	t.Helper()
	if a.K != b.K || a.N != b.N || a.ZeroRooted != b.ZeroRooted {
		t.Fatal("header mismatch")
	}
	for h := 1; h <= a.K; h++ {
		for v := int32(0); int(v) < a.N; v++ {
			ra, rb := a.Rec(h, v), b.Rec(h, v)
			if ra.Len() != rb.Len() {
				t.Fatalf("h=%d v=%d length mismatch", h, v)
			}
			for i := 0; i < ra.Len(); i++ {
				ka, ca := ra.Packed().At(i)
				kb, cb := rb.Packed().At(i)
				if ka != kb || ca != cb {
					t.Fatalf("h=%d v=%d entry %d mismatch", h, v, i)
				}
			}
		}
	}
}

func TestTableSerializationRoundTrip(t *testing.T) {
	tab := testTable(t)
	var buf bytes.Buffer
	n, err := tab.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
	if got.TotalK() != tab.TotalK() {
		t.Error("TotalK changed across serialization")
	}
}

func TestSaveLoadWithColoring(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 42)
	var buf bytes.Buffer
	if _, err := Save(&buf, tab, col); err != nil {
		t.Fatal(err)
	}
	got, gotCol, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
	if gotCol == nil {
		t.Fatal("coloring section lost")
	}
	if gotCol.K != col.K || gotCol.PColorful != col.PColorful {
		t.Errorf("coloring header mismatch: %+v vs %+v", gotCol, col)
	}
	if !bytes.Equal(gotCol.Colors, col.Colors) {
		t.Error("node colors changed across serialization")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 7)
	path := t.TempDir() + "/graph.tbl"
	n, err := SaveFile(path, tab, col)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("SaveFile reported no bytes")
	}
	got, gotCol, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
	if gotCol == nil || !bytes.Equal(gotCol.Colors, col.Colors) {
		t.Error("coloring lost through the file round trip")
	}
}

// TestSaveV3RoundTrip pins downgrade compatibility: the legacy writer
// still produces loadable MvT3 files, and the heap loader reads them back
// entry-identical — old tables (and tables written for old readers) keep
// working without the v4 checksums or directory.
func TestSaveV3RoundTrip(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 42)
	var buf bytes.Buffer
	if _, err := SaveV3(&buf, tab, col); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(buf.Bytes()); got != fileMagicV3 {
		t.Fatalf("SaveV3 wrote magic %#x, want %#x", got, fileMagicV3)
	}
	got, gotCol, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
	if gotCol == nil || !bytes.Equal(gotCol.Colors, col.Colors) || gotCol.PColorful != col.PColorful {
		t.Error("coloring lost through the v3 round trip")
	}
	if got.Mapped() {
		t.Error("a v3 load must not report a mapping")
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	if _, err := ReadTable(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := ReadTable(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	var buf bytes.Buffer
	tab := testTable(t)
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Plausible magic but absurd k.
	data := append([]byte(nil), buf.Bytes()...)
	data[8] = 0xFF // k field
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("implausible k must fail")
	}
	// Wrong version.
	data = append([]byte(nil), buf.Bytes()...)
	data[4] = 9
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("unknown version must fail")
	}
	// Truncated arena.
	data = buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("truncated arena must fail")
	}
	// Corrupt payload byte: entry-level validation must catch it. Flip the
	// last arena byte (a count varint terminator) to a continuation byte.
	data = append([]byte(nil), buf.Bytes()...)
	data[len(data)-1] |= 0x80
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Error("corrupt record payload must fail validation")
	}
}

// TestOpenErrorSurface drives the same corrupted files through both open
// paths — LoadFile (heap) and OpenMapped (zero-copy) — and pins where
// each one fails. The heap path checks the whole-file checksum eagerly,
// so every flipped byte fails at open; the mapped path validates the
// header, directory and meta region at open but defers level payloads to
// first touch, so directory-checksum corruption opens fine and surfaces
// through Verify.
func TestOpenErrorSurface(t *testing.T) {
	tab := testTable(t) // k=3, materialized: three dir entries at 48/80/112
	col := coloring.Uniform(tab.N, tab.K, 5)
	var v4, v3 bytes.Buffer
	if _, err := Save(&v4, tab, col); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveV3(&v3, tab, col); err != nil {
		t.Fatal(err)
	}
	metaOff := headerSize + 3*dirEntrySize // first meta byte (PColorful bits)

	// Probe once whether this platform maps at all; without mmap every
	// OpenMapped returns ErrNotMappable and the mapped expectations below
	// would be vacuous.
	probe := t.TempDir() + "/probe.tbl"
	if err := os.WriteFile(probe, v4.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mmapOK := true
	if ptab, _, err := OpenMapped(probe); err != nil {
		if !errors.Is(err, ErrNotMappable) {
			t.Fatal(err)
		}
		mmapOK = false
	} else {
		ptab.Close()
	}

	mutate := func(src []byte, f func(d []byte)) func() []byte {
		return func() []byte {
			d := append([]byte(nil), src...)
			f(d)
			return d
		}
	}
	cases := []struct {
		name string
		data func() []byte
		// heapOK: LoadFile must succeed. mappedNotMappable: OpenMapped must
		// fail with ErrNotMappable (the MapAuto fallback signal).
		// mappedLazy: OpenMapped must succeed and Verify must then fail —
		// everything else must fail hard at OpenMapped.
		heapOK            bool
		mappedNotMappable bool
		mappedLazy        bool
	}{
		{name: "truncated-header", data: func() []byte { return v4.Bytes()[:32] },
			mappedNotMappable: true}, // below 48 bytes it could be a tiny legacy file
		{name: "truncated-arena", data: func() []byte { return v4.Bytes()[:v4.Len()-3] }},
		{name: "bad-magic", data: mutate(v4.Bytes(), func(d []byte) { d[0] ^= 0xFF })},
		{name: "bad-version", data: mutate(v4.Bytes(), func(d []byte) { d[4] = 9 })},
		{name: "arena-length-overflow", data: mutate(v4.Bytes(), func(d []byte) {
			binary.LittleEndian.PutUint64(d[headerSize:], 1<<50) // level-1 arenaLen
		})},
		{name: "unaligned-starts-offset", data: mutate(v4.Bytes(), func(d []byte) {
			off := binary.LittleEndian.Uint64(d[headerSize+8:])
			binary.LittleEndian.PutUint64(d[headerSize+8:], off+1)
		})},
		{name: "corrupt-meta-region", data: mutate(v4.Bytes(), func(d []byte) { d[metaOff] ^= 0x01 })},
		{name: "corrupt-level-checksum", data: mutate(v4.Bytes(), func(d []byte) {
			d[headerSize+24] ^= 0x01 // level-1 dir checksum field
		}), mappedLazy: true},
		{name: "corrupt-arena-payload", data: mutate(v4.Bytes(), func(d []byte) {
			d[v4.Len()-1] ^= 0x40 // last arena byte, level k
		}), mappedLazy: true},
		{name: "legacy-v3-file", data: func() []byte { return v3.Bytes() },
			heapOK: true, mappedNotMappable: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := t.TempDir() + "/t.tbl"
			if err := os.WriteFile(path, tc.data(), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, herr := LoadFile(path)
			if tc.heapOK && herr != nil {
				t.Errorf("heap open: unexpected error %v", herr)
			}
			if !tc.heapOK && herr == nil {
				t.Error("heap open: corruption went undetected")
			}
			if !mmapOK {
				return
			}
			mtab, _, merr := OpenMapped(path)
			switch {
			case tc.mappedNotMappable:
				if !errors.Is(merr, ErrNotMappable) {
					t.Errorf("mapped open: want ErrNotMappable, got %v", merr)
				}
			case tc.mappedLazy:
				if merr != nil {
					t.Fatalf("mapped open must defer level validation, got %v", merr)
				}
				defer mtab.Close()
				if verr := mtab.Verify(); verr == nil {
					t.Error("Verify on a corrupted mapping must fail")
				}
			default:
				if merr == nil {
					mtab.Close()
					t.Error("mapped open: corruption went undetected")
				} else if errors.Is(merr, ErrNotMappable) {
					t.Errorf("mapped open: corruption must fail hard, not signal fallback: %v", merr)
				}
			}
		})
	}
}
