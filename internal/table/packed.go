package table

// The packed record codec: motivo's succinct count-table representation
// (paper, Section 3.1, "Succinct data structures").
//
// A record is a byte string
//
//	header  := uvarint(n) uvarint128(total) uvarint(payloadLen)
//	index   := ⌈n/blockSize⌉ fixed-width entries, present only when
//	           n > blockSize:
//	             8B  first key of the block (little-endian)
//	            16B  cumulative count of all entries before the block
//	             4B  byte offset of the block within the payload
//	payload := n entries of uvarint(key delta) uvarint128(point count);
//	           the first entry of each block stores its full key (delta
//	           from 0), every other entry the difference to its
//	           predecessor
//
// Keys are sorted, so deltas are small — within one treelet shape they live
// in the ColorBits-wide color field — and point counts are overwhelmingly
// tiny; both varint-compress far below the 24 bytes/pair of word-aligned
// slices (the paper's packed entries are 176 bits; delta+varint coding gets
// us under that on real tables). The sparse block index restores the
// O(log)-ish primitives of the cumulative-array layout: binary search over
// block headers, then a ≤ blockSize sequential scan. Cumulative totals per
// block (rather than per entry) are what the paper trades for space; the
// scan bound keeps occ/iter/sample within a constant of the dense layout.
//
// The same byte string is the spill wire format (disk.go) and the
// persistent table format (serialize.go): records move between RAM and disk
// with plain copies, never re-encoding.

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// blockSize is the number of entries per index block: the sequential-scan
// bound of every point query. 32 keeps the fixed index below one byte per
// pair while bounding scans to a cache line or two of decoded entries.
const blockSize = 32

// indexEntrySize is the fixed width of one block-index entry:
// 8 (first key) + 16 (cumulative before) + 4 (payload offset).
const indexEntrySize = 28

// Record is a read-only view of one packed record: the sorted
// (colored treelet, count) multiset of one node at one size, exposing the
// paper's primitives (occ, iter, sample) without decoding the record. The
// zero value is an empty record. Views are plain value types into the
// table arena; copying one is free and queries allocate nothing.
type Record struct {
	n     int
	total u128.Uint128
	index []byte // fixed-width block index; nil when n ≤ blockSize
	data  []byte // delta/varint payload
	enc   int    // total encoded size in bytes, header included
}

// Pairs is the decoded, slice-backed form of a record: sorted keys and
// point counts. It is the build phase's scratch representation — workers
// accumulate into maps, sort into Pairs, and encode straight into packed
// form — and the reference the packed codec is tested against.
type Pairs struct {
	Keys   []treelet.Colored
	Counts []u128.Uint128
}

// Len returns the number of pairs.
func (p *Pairs) Len() int { return len(p.Keys) }

// Reset empties p, keeping capacity.
func (p *Pairs) Reset() {
	p.Keys = p.Keys[:0]
	p.Counts = p.Counts[:0]
}

// Append adds one pair; callers must keep keys strictly increasing.
func (p *Pairs) Append(k treelet.Colored, c u128.Uint128) {
	p.Keys = append(p.Keys, k)
	p.Counts = append(p.Counts, c)
}

// FromMap fills p with the sorted contents of a scratch accumulation map
// (the "flush" of the greedy flushing strategy).
func (p *Pairs) FromMap(m map[treelet.Colored]u128.Uint128) {
	p.Reset()
	for k := range m {
		p.Keys = append(p.Keys, k)
	}
	sort.Slice(p.Keys, func(i, j int) bool { return p.Keys[i] < p.Keys[j] })
	if cap(p.Counts) < len(p.Keys) {
		p.Counts = make([]u128.Uint128, 0, len(p.Keys))
	}
	for _, k := range p.Keys {
		p.Counts = append(p.Counts, m[k])
	}
}

// AppendRecord encodes the sorted pairs as one packed record appended to
// dst and returns the extended slice. Empty input appends nothing (empty
// records are represented by absence, not by a zero-length encoding).
func AppendRecord(dst []byte, p *Pairs) []byte {
	n := len(p.Keys)
	if n == 0 {
		return dst
	}
	// Pre-pass: payload size and total, so header and index land before the
	// payload without a scratch buffer.
	total := u128.Zero
	plen := 0
	prev := treelet.Colored(0)
	for j, k := range p.Keys {
		if j%blockSize == 0 {
			prev = 0
		}
		plen += uvarintLen(uint64(k-prev)) + uvarint128Len(p.Counts[j])
		prev = k
		total = total.Add(p.Counts[j])
	}
	nblocks := 0
	if n > blockSize {
		nblocks = (n + blockSize - 1) / blockSize
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = appendUvarint128(dst, total)
	dst = binary.AppendUvarint(dst, uint64(plen))
	idxStart := len(dst)
	dst = append(dst, make([]byte, nblocks*indexEntrySize)...)
	payloadStart := len(dst)

	cum := u128.Zero
	prev = 0
	for j, k := range p.Keys {
		if j%blockSize == 0 {
			prev = 0
			if nblocks > 0 {
				e := dst[idxStart+(j/blockSize)*indexEntrySize:]
				binary.LittleEndian.PutUint64(e, uint64(k))
				binary.LittleEndian.PutUint64(e[8:], cum.Lo)
				binary.LittleEndian.PutUint64(e[16:], cum.Hi)
				binary.LittleEndian.PutUint32(e[24:], uint32(len(dst)-payloadStart))
			}
		}
		dst = binary.AppendUvarint(dst, uint64(k-prev))
		dst = appendUvarint128(dst, p.Counts[j])
		prev = k
		cum = cum.Add(p.Counts[j])
	}
	return dst
}

// ViewRecord decodes the record header at the start of b and returns the
// view plus its total encoded length. It validates that the declared
// regions fit inside b; entry-level integrity is checked separately by
// Record.Validate.
func ViewRecord(b []byte) (Record, error) {
	n64, s1 := binary.Uvarint(b)
	if s1 <= 0 {
		return Record{}, fmt.Errorf("table: truncated record header")
	}
	total, s2 := uvarint128(b[s1:])
	if s2 <= 0 {
		return Record{}, fmt.Errorf("table: truncated record total")
	}
	plen64, s3 := binary.Uvarint(b[s1+s2:])
	if s3 <= 0 {
		return Record{}, fmt.Errorf("table: truncated record payload length")
	}
	h := s1 + s2 + s3
	if n64 == 0 || n64 > uint64(len(b)) || plen64 > uint64(len(b)) {
		return Record{}, fmt.Errorf("table: implausible record header n=%d plen=%d", n64, plen64)
	}
	n, plen := int(n64), int(plen64)
	nblocks := 0
	if n > blockSize {
		nblocks = (n + blockSize - 1) / blockSize
	}
	end := h + nblocks*indexEntrySize + plen
	if end > len(b) {
		return Record{}, fmt.Errorf("table: record overruns its buffer (%d > %d)", end, len(b))
	}
	return Record{
		n:     n,
		total: total,
		index: b[h : h+nblocks*indexEntrySize],
		data:  b[h+nblocks*indexEntrySize : end],
		enc:   end,
	}, nil
}

// FromMap packs a scratch accumulation map into a standalone Record —
// convenience for tests and single-record callers; the build path encodes
// straight into level arenas instead.
func FromMap(m map[treelet.Colored]u128.Uint128) Record {
	if len(m) == 0 {
		return Record{}
	}
	var p Pairs
	p.FromMap(m)
	r, err := ViewRecord(AppendRecord(nil, &p))
	if err != nil {
		panic(err) // encode → view cannot fail on valid pairs
	}
	return r
}

// Len returns the number of (treelet, colorset) pairs stored.
func (r Record) Len() int { return r.n }

// Total returns occ(v): the total count in the record, in O(1).
func (r Record) Total() u128.Uint128 { return r.total }

// Bytes returns the encoded size of the record in bytes: the packed
// accounting (varint header + sparse block index + delta/varint payload),
// replacing the 24 bytes/pair of the former word-aligned slice layout.
func (r Record) Bytes() int64 { return int64(r.enc) }

// blocks returns the number of index blocks (0 for single-block records).
func (r Record) blocks() int { return len(r.index) / indexEntrySize }

// blockKey returns the first key of block b from the index.
func (r Record) blockKey(b int) treelet.Colored {
	return treelet.Colored(binary.LittleEndian.Uint64(r.index[b*indexEntrySize:]))
}

// blockCum returns the cumulative count before block b from the index.
func (r Record) blockCum(b int) u128.Uint128 {
	e := r.index[b*indexEntrySize+8:]
	return u128.Uint128{
		Lo: binary.LittleEndian.Uint64(e),
		Hi: binary.LittleEndian.Uint64(e[8:]),
	}
}

// blockOff returns the payload byte offset of block b from the index.
func (r Record) blockOff(b int) int {
	return int(binary.LittleEndian.Uint32(r.index[b*indexEntrySize+24:]))
}

// Cursor is a sequential decoder over a record's entries. The zero value
// is not useful; obtain one from Record.Cursor. It is a plain stack value:
// iterating allocates nothing.
type Cursor struct {
	data []byte
	pos  int
	idx  int
	prev treelet.Colored
}

// Cursor returns a cursor positioned at entry i (0 ≤ i ≤ Len). Seeking
// jumps to i's block through the index and decodes at most blockSize
// entries; advancing costs O(1) per entry.
func (r Record) Cursor(i int) Cursor {
	c := Cursor{data: r.data}
	if b := i / blockSize; b > 0 && len(r.index) > 0 {
		if nb := r.blocks(); b >= nb {
			b = nb - 1 // i == Len on a block boundary: seek into the last block
		}
		c.pos = r.blockOff(b)
		c.idx = b * blockSize
	}
	for c.idx < i {
		c.skip()
	}
	return c
}

// Next decodes and returns the entry under the cursor, advancing past it.
// Calling Next more than Len times is a programming error and panics.
func (c *Cursor) Next() (treelet.Colored, u128.Uint128) {
	if c.idx%blockSize == 0 {
		c.prev = 0
	}
	d, s1 := binary.Uvarint(c.data[c.pos:])
	cnt, s2 := uvarint128(c.data[c.pos+s1:])
	if s1 <= 0 || s2 <= 0 {
		panic("table: corrupt record payload")
	}
	c.pos += s1 + s2
	c.idx++
	c.prev += treelet.Colored(d)
	return c.prev, cnt
}

// skip advances one entry without materializing the count.
func (c *Cursor) skip() {
	if c.idx%blockSize == 0 {
		c.prev = 0
	}
	d, s1 := binary.Uvarint(c.data[c.pos:])
	s2 := uvarint128Skip(c.data[c.pos+s1:])
	if s1 <= 0 || s2 <= 0 {
		panic("table: corrupt record payload")
	}
	c.pos += s1 + s2
	c.idx++
	c.prev += treelet.Colored(d)
}

// AppendPairs decodes the whole record into p (appending; call p.Reset
// first to replace). It is the build phase's bulk read path.
func (r Record) AppendPairs(p *Pairs) {
	c := r.Cursor(0)
	for i := 0; i < r.n; i++ {
		k, cnt := c.Next()
		p.Append(k, cnt)
	}
}

// lowerBound returns the smallest index whose key is ≥ key (Len if none):
// binary search over block first-keys, then a bounded scan.
func (r Record) lowerBound(key treelet.Colored) int {
	if r.n == 0 {
		return 0
	}
	b := 0
	if nb := r.blocks(); nb > 0 {
		// Largest block whose first key is ≤ key.
		b = sort.Search(nb, func(i int) bool { return r.blockKey(i) > key }) - 1
		if b < 0 {
			return 0
		}
	}
	c := r.Cursor(b * blockSize)
	end := (b + 1) * blockSize
	if end > r.n || r.blocks() == 0 {
		end = r.n
	}
	for i := b * blockSize; i < end; i++ {
		if k, _ := c.Next(); k >= key {
			return i
		}
	}
	return end
}

// Count returns occ(T_C, v): the count of one colored treelet, or zero if
// absent.
func (r Record) Count(key treelet.Colored) u128.Uint128 {
	if r.n == 0 {
		return u128.Zero
	}
	b := 0
	if nb := r.blocks(); nb > 0 {
		b = sort.Search(nb, func(i int) bool { return r.blockKey(i) > key }) - 1
		if b < 0 {
			return u128.Zero
		}
	}
	c := r.Cursor(b * blockSize)
	end := (b + 1) * blockSize
	if end > r.n || r.blocks() == 0 {
		end = r.n
	}
	for i := b * blockSize; i < end; i++ {
		k, cnt := c.Next()
		if k == key {
			return cnt
		}
		if k > key {
			break
		}
	}
	return u128.Zero
}

// At returns the i-th key and its point count, in O(blockSize).
func (r Record) At(i int) (treelet.Colored, u128.Uint128) {
	c := r.Cursor(i)
	return c.Next()
}

// CumAt returns the cumulative count through entry i (inclusive).
func (r Record) CumAt(i int) u128.Uint128 {
	b := i / blockSize
	cum := u128.Zero
	if r.blocks() > 0 {
		cum = r.blockCum(b)
	}
	c := r.Cursor(b * blockSize)
	for j := b * blockSize; j <= i; j++ {
		_, cnt := c.Next()
		cum = cum.Add(cnt)
	}
	return cum
}

// ShapeRange returns the half-open index range [lo, hi) of keys whose
// treelet part equals t — the iter(T, v) primitive. All colorings of one
// shape are contiguous because the shape occupies the key's high bits.
func (r Record) ShapeRange(t treelet.Treelet) (lo, hi int) {
	lo = r.lowerBound(treelet.MakeColored(t, 0))
	hi = r.lowerBound(treelet.MakeColored(t, treelet.MaxColorSet) + 1)
	return lo, hi
}

// RangeTotal returns the total count of entries in the index range
// [lo, hi).
func (r Record) RangeTotal(lo, hi int) u128.Uint128 {
	if lo >= hi {
		return u128.Zero
	}
	t := r.CumAt(hi - 1)
	if lo == 0 {
		return t
	}
	return t.Sub(r.CumAt(lo - 1))
}

// ShapeTotal returns the total count of all colorings of shape t.
func (r Record) ShapeTotal(t treelet.Treelet) u128.Uint128 {
	lo, hi := r.ShapeRange(t)
	return r.RangeTotal(lo, hi)
}

// keyAtCumGE returns the key of the first entry whose cumulative count is
// ≥ rv, assuming 1 ≤ rv ≤ Total: binary search over block cumulative
// headers, then a bounded accumulating scan that yields the key directly
// (the hot sampling path decodes each candidate entry exactly once).
func (r Record) keyAtCumGE(rv u128.Uint128) treelet.Colored {
	b := 0
	if nb := r.blocks(); nb > 0 {
		// Largest block whose cumulative-before is < rv.
		b = sort.Search(nb, func(i int) bool { return r.blockCum(i).Cmp(rv) >= 0 }) - 1
		if b < 0 {
			b = 0
		}
	}
	cum := u128.Zero
	if r.blocks() > 0 {
		cum = r.blockCum(b)
	}
	c := r.Cursor(b * blockSize)
	var key treelet.Colored
	for i := b * blockSize; i < r.n; i++ {
		var cnt u128.Uint128
		key, cnt = c.Next()
		cum = cum.Add(cnt)
		if cum.Cmp(rv) >= 0 {
			break
		}
	}
	return key // for rv ≤ Total the loop always breaks; else the last key
}

// Sample draws a key with probability proportional to its count: the
// sample(v) primitive. It panics on an empty record.
func (r Record) Sample(rng u128.RandSource) treelet.Colored {
	if r.total.IsZero() {
		panic("table: Sample on empty record")
	}
	// R uniform in [1, total]; pick the first entry with cumulative ≥ R.
	rv := u128.RandN(rng, r.total).Add64(1)
	return r.keyAtCumGE(rv)
}

// SampleRange draws a key within the index range [lo, hi) with probability
// proportional to its count — the restricted sample used by AGS's
// sample(T) primitive.
func (r Record) SampleRange(rng u128.RandSource, lo, hi int) treelet.Colored {
	var base u128.Uint128
	if lo > 0 {
		base = r.CumAt(lo - 1)
	}
	span := r.CumAt(hi - 1).Sub(base)
	if span.IsZero() {
		panic("table: SampleRange on empty range")
	}
	rv := base.Add(u128.RandN(rng, span).Add64(1))
	return r.keyAtCumGE(rv)
}

// Validate walks the full record checking entry-level integrity: payload
// varints in bounds, strictly increasing keys, index entries consistent
// with the payload, and the header total matching the entry sum. Load
// paths run it on untrusted bytes so corruption surfaces at open time, not
// as a panic mid-query.
func (r Record) Validate() error {
	if r.n == 0 {
		return nil
	}
	pos, idx := 0, 0
	prev := treelet.Colored(0)
	cum := u128.Zero
	last := treelet.Colored(0)
	for idx < r.n {
		if idx%blockSize == 0 {
			prev = 0
			if r.blocks() > 0 {
				b := idx / blockSize
				if r.blockOff(b) != pos {
					return fmt.Errorf("table: block %d offset %d != payload position %d", b, r.blockOff(b), pos)
				}
				if r.blockCum(b) != cum {
					return fmt.Errorf("table: block %d cumulative mismatch", b)
				}
			}
		}
		if pos >= len(r.data) {
			return fmt.Errorf("table: payload truncated at entry %d", idx)
		}
		d, s1 := binary.Uvarint(r.data[pos:])
		if s1 <= 0 || pos+s1 > len(r.data) {
			return fmt.Errorf("table: bad key varint at entry %d", idx)
		}
		cnt, s2 := uvarint128(r.data[pos+s1:])
		if s2 <= 0 {
			return fmt.Errorf("table: bad count varint at entry %d", idx)
		}
		key := prev + treelet.Colored(d)
		if idx > 0 && key <= last {
			return fmt.Errorf("table: keys not strictly increasing at entry %d", idx)
		}
		if idx%blockSize == 0 && r.blocks() > 0 && key != r.blockKey(idx/blockSize) {
			return fmt.Errorf("table: block %d first key mismatch", idx/blockSize)
		}
		cum = cum.Add(cnt)
		prev, last = key, key
		pos += s1 + s2
		idx++
	}
	if pos != len(r.data) {
		return fmt.Errorf("table: %d trailing payload bytes", len(r.data)-pos)
	}
	if cum != r.total {
		return fmt.Errorf("table: header total %v != entry sum %v", r.total, cum)
	}
	return nil
}

// --- varint helpers ------------------------------------------------------

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// uvarint128Len returns the encoded size of u in bytes.
func uvarint128Len(u u128.Uint128) int {
	if u.Hi == 0 {
		return uvarintLen(u.Lo)
	}
	return (64 + bits.Len64(u.Hi) + 6) / 7
}

// appendUvarint128 appends the LEB128 encoding of u (1–19 bytes).
func appendUvarint128(dst []byte, u u128.Uint128) []byte {
	for u.Hi != 0 || u.Lo >= 0x80 {
		dst = append(dst, byte(u.Lo)|0x80)
		u.Lo = u.Lo>>7 | u.Hi<<57
		u.Hi >>= 7
	}
	return append(dst, byte(u.Lo))
}

// uvarint128 decodes a LEB128 128-bit value, returning it and the number
// of bytes read (0 on truncated or overlong input).
func uvarint128(b []byte) (u128.Uint128, int) {
	var u u128.Uint128
	shift := uint(0)
	for i := 0; i < len(b); i++ {
		c := b[i]
		v := uint64(c & 0x7f)
		switch {
		case shift < 64:
			u.Lo |= v << shift
			if shift > 57 {
				u.Hi |= v >> (64 - shift)
			}
		case shift < 128:
			u.Hi |= v << (shift - 64)
		default:
			return u128.Zero, 0
		}
		if c < 0x80 {
			return u, i + 1
		}
		shift += 7
	}
	return u128.Zero, 0
}

// uvarint128Skip returns the byte length of the LEB128 value at the start
// of b without decoding it (0 on truncated input).
func uvarint128Skip(b []byte) int {
	for i := 0; i < len(b) && i < 19; i++ {
		if b[i] < 0x80 {
			return i + 1
		}
	}
	return 0
}
