// Package table implements motivo's succinct treelet count table
// (paper, Section 3.1, "Motivo's count table") as a build-once /
// query-many storage engine.
//
// For every node v and treelet size h there is one packed record: the
// colored-treelet keys s_TC in increasing (lexicographic = integer) order
// with their point counts, delta/varint-coded into a per-size byte arena
// (see packed.go for the codec). A per-(size, node) offset index locates
// each record; a sparse block index inside each record keeps the paper's
// primitive costs:
//
//   - occ(v)        O(1)  (header total),
//   - occ(T_C, v)   O(log + blockSize)  (block search + bounded scan),
//   - iter(T, v)    O(log + blockSize)  (two lower bounds),
//   - sample(v)     O(log + blockSize)  (block search on cumulatives),
//
// exactly the primitive set of the paper, traded down from the dense
// cumulative-array layout to ~4x less memory. Records are immutable once a
// level is installed; readers take Record views (plain value types into
// the arena) and queries allocate nothing.
package table

import (
	"fmt"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// level is one size level of the table: an arena of packed records plus
// the per-node offset index (-1 marks an empty record).
type level struct {
	arena  []byte
	starts []int64
}

// Table is the complete treelet count table of a colored graph: one packed
// record per node per size 1..K. With ZeroRooted set, size-K records exist
// only at color-0 nodes (Section 3.2), each unrooted size-K copy counted
// exactly once.
type Table struct {
	K          int
	N          int
	ZeroRooted bool
	levels     []level // levels[h], index 0 unused
}

// New allocates an empty table for n nodes and treelets up to size k.
func New(n, k int, zeroRooted bool) *Table {
	t := &Table{K: k, N: n, ZeroRooted: zeroRooted, levels: make([]level, k+1)}
	for h := 1; h <= k; h++ {
		t.levels[h] = emptyLevel(n)
	}
	return t
}

func emptyLevel(n int) level {
	starts := make([]int64, n)
	for i := range starts {
		starts[i] = -1
	}
	return level{starts: starts}
}

// Rec returns the packed record view of node v at size h (the zero Record
// if the node has none). Views stay valid as long as the level is not
// replaced.
func (t *Table) Rec(h int, v int32) Record {
	lv := &t.levels[h]
	off := lv.starts[v]
	if off < 0 {
		return Record{}
	}
	r, err := ViewRecord(lv.arena[off:])
	if err != nil {
		panic(fmt.Sprintf("table: corrupt record h=%d v=%d: %v", h, v, err))
	}
	return r
}

// SetRec encodes p as the record of node v at size h, appending it to the
// level arena. It is a sequential builder API (levelOne, tests); the
// concurrent build pass goes through LevelWriter instead. Setting an
// already-set record is a programming error.
func (t *Table) SetRec(h int, v int32, p *Pairs) {
	if p.Len() == 0 {
		return
	}
	lv := &t.levels[h]
	if lv.starts[v] >= 0 {
		panic(fmt.Sprintf("table: record h=%d v=%d set twice", h, v))
	}
	lv.starts[v] = int64(len(lv.arena))
	lv.arena = AppendRecord(lv.arena, p)
}

// SetLevel installs a complete size level from an arena of packed records
// and their per-node start offsets, compacting the arena into node order so
// the table layout is deterministic regardless of the order records were
// produced in (concurrent builders flush in scheduling order).
func (t *Table) SetLevel(h int, arena []byte, starts []int64) error {
	if len(starts) != t.N {
		return fmt.Errorf("table: level %d has %d offsets, table has %d nodes", h, len(starts), t.N)
	}
	compact := make([]byte, 0, len(arena))
	newStarts := make([]int64, t.N)
	for v, off := range starts {
		if off < 0 {
			newStarts[v] = -1
			continue
		}
		if off > int64(len(arena)) {
			return fmt.Errorf("table: level %d record %d offset %d beyond arena", h, v, off)
		}
		r, err := ViewRecord(arena[off:])
		if err != nil {
			return fmt.Errorf("table: level %d record %d: %w", h, v, err)
		}
		newStarts[v] = int64(len(compact))
		compact = append(compact, arena[off:off+int64(r.enc)]...)
	}
	t.levels[h] = level{arena: compact, starts: newStarts}
	return nil
}

// TotalK returns the total number of colorful k-treelet copies in the urn
// (the paper's t) — the sum of occ(v) over the size-K records.
func (t *Table) TotalK() u128.Uint128 {
	sum := u128.Zero
	for v := int32(0); int(v) < t.N; v++ {
		sum = sum.Add(t.Rec(t.K, v).Total())
	}
	return sum
}

// ShapeTotals returns r_j for every size-K rooted shape grouped by unrooted
// canonical form: the number of colorful copies of each unrooted k-treelet
// shape in the urn.
func (t *Table) ShapeTotals(cat *treelet.Catalog) map[treelet.Treelet]u128.Uint128 {
	out := make(map[treelet.Treelet]u128.Uint128)
	for _, u := range cat.UnrootedK {
		out[u] = u128.Zero
	}
	for v := int32(0); int(v) < t.N; v++ {
		r := t.Rec(t.K, v)
		c := r.Cursor(0)
		for i := 0; i < r.Len(); i++ {
			key, cnt := c.Next()
			shape := cat.Unrooted(key.Tree())
			out[shape] = out[shape].Add(cnt)
		}
	}
	return out
}

// Bytes returns the storage footprint of the table: the packed arenas plus
// the per-(size, node) offset index (8 bytes per node per level).
func (t *Table) Bytes() int64 {
	var b int64
	for h := 1; h <= t.K; h++ {
		b += int64(len(t.levels[h].arena))
		b += int64(8 * len(t.levels[h].starts))
	}
	return b
}

// Pairs returns the total number of (key, count) pairs stored.
func (t *Table) Pairs() int64 {
	var p int64
	for h := 1; h <= t.K; h++ {
		for v := int32(0); int(v) < t.N; v++ {
			p += int64(t.Rec(h, v).Len())
		}
	}
	return p
}

// Validate walks every record of every level checking entry-level
// integrity — the deep check load paths run on untrusted bytes.
func (t *Table) Validate() error {
	for h := 1; h <= t.K; h++ {
		for v := int32(0); int(v) < t.N; v++ {
			lv := &t.levels[h]
			off := lv.starts[v]
			if off < 0 {
				continue
			}
			if off > int64(len(lv.arena)) {
				return fmt.Errorf("table: level %d record %d offset beyond arena", h, v)
			}
			r, err := ViewRecord(lv.arena[off:])
			if err != nil {
				return fmt.Errorf("table: level %d record %d: %w", h, v, err)
			}
			if err := r.Validate(); err != nil {
				return fmt.Errorf("table: level %d record %d: %w", h, v, err)
			}
		}
	}
	return nil
}
