// Package table implements motivo's compact treelet count table
// (paper, Section 3.1, "Motivo's count table").
//
// For every node v and treelet size h there is one Record: two parallel
// arrays holding the colored-treelet keys s_TC in increasing (lexicographic
// = integer) order and the *cumulative* 128-bit counts
// η(T_C, v) = Σ_{T'_C' ≤ T_C} c(T'_C', v). Storing cumulative counts makes
//
//   - occ(v)        O(1)  (last cumulative value),
//   - occ(T_C, v)   O(k)  (binary search + one subtraction),
//   - iter(T, v)    O(k)  (binary search to the shape's contiguous range),
//   - sample(v)     O(k)  (draw R ∈ [1, η_v], search first η ≥ R),
//
// exactly the primitive set and costs listed in the paper.
package table

import (
	"sort"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// Record is the sorted count record of one node for one treelet size.
// The zero value is an empty record (no colorful treelets at this node).
type Record struct {
	Keys []treelet.Colored
	Cum  []u128.Uint128
}

// FromMap builds a Record from a scratch accumulation map, sorting keys and
// accumulating counts (the "flush" of the greedy flushing strategy).
func FromMap(m map[treelet.Colored]u128.Uint128) Record {
	if len(m) == 0 {
		return Record{}
	}
	keys := make([]treelet.Colored, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cum := make([]u128.Uint128, len(keys))
	run := u128.Zero
	for i, k := range keys {
		run = run.Add(m[k])
		cum[i] = run
	}
	return Record{Keys: keys, Cum: cum}
}

// Len returns the number of (treelet, colorset) pairs stored.
func (r *Record) Len() int { return len(r.Keys) }

// Total returns occ(v): the total number of colorful treelet copies in the
// record, in O(1).
func (r *Record) Total() u128.Uint128 {
	if len(r.Cum) == 0 {
		return u128.Zero
	}
	return r.Cum[len(r.Cum)-1]
}

// Count returns occ(T_C, v): the count of one colored treelet, or zero if
// absent.
func (r *Record) Count(key treelet.Colored) u128.Uint128 {
	i := sort.Search(len(r.Keys), func(i int) bool { return r.Keys[i] >= key })
	if i == len(r.Keys) || r.Keys[i] != key {
		return u128.Zero
	}
	return r.countAt(i)
}

// countAt recovers the point count at index i from the cumulative array.
func (r *Record) countAt(i int) u128.Uint128 {
	if i == 0 {
		return r.Cum[0]
	}
	return r.Cum[i].Sub(r.Cum[i-1])
}

// At returns the i-th key and its point count.
func (r *Record) At(i int) (treelet.Colored, u128.Uint128) {
	return r.Keys[i], r.countAt(i)
}

// ShapeRange returns the half-open index range [lo, hi) of keys whose
// treelet part equals t — the iter(T, v) primitive. All colorings of one
// shape are contiguous because the shape occupies the key's high bits.
func (r *Record) ShapeRange(t treelet.Treelet) (lo, hi int) {
	min := treelet.MakeColored(t, 0)
	max := treelet.MakeColored(t, 0xFFFF)
	lo = sort.Search(len(r.Keys), func(i int) bool { return r.Keys[i] >= min })
	hi = sort.Search(len(r.Keys), func(i int) bool { return r.Keys[i] > max })
	return lo, hi
}

// ShapeTotal returns the total count of all colorings of shape t in O(k).
func (r *Record) ShapeTotal(t treelet.Treelet) u128.Uint128 {
	lo, hi := r.ShapeRange(t)
	if lo == hi {
		return u128.Zero
	}
	if lo == 0 {
		return r.Cum[hi-1]
	}
	return r.Cum[hi-1].Sub(r.Cum[lo-1])
}

// Sample draws a key with probability proportional to its count: the
// sample(v) primitive. It panics on an empty record.
func (r *Record) Sample(rng u128.RandSource) treelet.Colored {
	total := r.Total()
	if total.IsZero() {
		panic("table: Sample on empty record")
	}
	// R uniform in [1, total]; pick the first index with Cum ≥ R.
	rv := u128.RandN(rng, total).Add64(1)
	i := sort.Search(len(r.Cum), func(i int) bool { return r.Cum[i].Cmp(rv) >= 0 })
	return r.Keys[i]
}

// SampleRange draws a key within the index range [lo, hi) with probability
// proportional to its count — the restricted sample used by AGS's
// sample(T) primitive.
func (r *Record) SampleRange(rng u128.RandSource, lo, hi int) treelet.Colored {
	var base u128.Uint128
	if lo > 0 {
		base = r.Cum[lo-1]
	}
	span := r.Cum[hi-1].Sub(base)
	if span.IsZero() {
		panic("table: SampleRange on empty range")
	}
	rv := base.Add(u128.RandN(rng, span).Add64(1))
	i := lo + sort.Search(hi-lo, func(i int) bool { return r.Cum[lo+i].Cmp(rv) >= 0 })
	return r.Keys[i]
}

// Bytes returns the in-memory footprint of the record payload: 8 bytes per
// key + 16 per count. (Motivo packs pairs into 176 bits; Go slices are
// word-aligned, so we report the actual 192-bit layout.)
func (r *Record) Bytes() int64 {
	return int64(len(r.Keys)) * (8 + 16)
}

// Table is the complete treelet count table of a colored graph: one Record
// per node per size 1..K. With ZeroRooted set, size-K records exist only at
// color-0 nodes (Section 3.2), each unrooted size-K copy counted exactly
// once.
type Table struct {
	K          int
	N          int
	ZeroRooted bool
	// Recs[h][v] is the record of node v for size h (index 0 unused).
	Recs [][]Record
}

// New allocates an empty table for n nodes and treelets up to size k.
func New(n, k int, zeroRooted bool) *Table {
	t := &Table{K: k, N: n, ZeroRooted: zeroRooted, Recs: make([][]Record, k+1)}
	for h := 1; h <= k; h++ {
		t.Recs[h] = make([]Record, n)
	}
	return t
}

// Rec returns the record of node v at size h.
func (t *Table) Rec(h int, v int32) *Record { return &t.Recs[h][v] }

// TotalK returns the total number of colorful k-treelet copies in the urn
// (the paper's t) — the sum of occ(v) over the size-K records.
func (t *Table) TotalK() u128.Uint128 {
	sum := u128.Zero
	for v := range t.Recs[t.K] {
		sum = sum.Add(t.Recs[t.K][v].Total())
	}
	return sum
}

// ShapeTotals returns r_j for every size-K rooted shape grouped by unrooted
// canonical form: the number of colorful copies of each unrooted k-treelet
// shape in the urn.
func (t *Table) ShapeTotals(cat *treelet.Catalog) map[treelet.Treelet]u128.Uint128 {
	out := make(map[treelet.Treelet]u128.Uint128)
	for _, u := range cat.UnrootedK {
		out[u] = u128.Zero
	}
	for v := range t.Recs[t.K] {
		r := &t.Recs[t.K][v]
		for i := range r.Keys {
			shape := cat.Unrooted(r.Keys[i].Tree())
			out[shape] = out[shape].Add(r.countAt(i))
		}
	}
	return out
}

// Bytes returns the total payload size of all records.
func (t *Table) Bytes() int64 {
	var b int64
	for h := 1; h <= t.K; h++ {
		for v := range t.Recs[h] {
			b += t.Recs[h][v].Bytes()
		}
	}
	return b
}

// Pairs returns the total number of (key, count) pairs stored.
func (t *Table) Pairs() int64 {
	var p int64
	for h := 1; h <= t.K; h++ {
		for v := range t.Recs[h] {
			p += int64(t.Recs[h][v].Len())
		}
	}
	return p
}
