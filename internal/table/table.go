// Package table implements motivo's succinct treelet count table
// (paper, Section 3.1, "Motivo's count table") as a build-once /
// query-many storage engine.
//
// For every node v and treelet size h there is one packed record: the
// colored-treelet keys s_TC in increasing (lexicographic = integer) order
// with their point counts, delta/varint-coded into a per-size byte arena
// (see packed.go for the codec). A per-(size, node) offset index locates
// each record; a sparse block index inside each record keeps the paper's
// primitive costs:
//
//   - occ(v)        O(1)  (header total),
//   - occ(T_C, v)   O(log + blockSize)  (block search + bounded scan),
//   - iter(T, v)    O(log + blockSize)  (two lower bounds),
//   - sample(v)     O(log + blockSize)  (block search on cumulatives),
//
// exactly the primitive set of the paper, traded down from the dense
// cumulative-array layout to ~4x less memory. Records are immutable once a
// level is installed; readers take View/Record values (plain value types
// into the arena) and queries allocate nothing on the materialized paths.
//
// A smart table (see smart.go) additionally synthesizes every star-family
// record (rooted treelets of height ≤ 2) on the fly from per-node
// colored-degree summaries: those shapes occupy zero arena bytes, and the
// View merges the synthesized entries into the stored ones behind the same
// interface, in the same sorted key order, with the same counts the DP
// would have produced.
package table

import (
	"fmt"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// level is one size level of the table: an arena of packed records plus
// the per-node offset index (-1 marks an empty record). Fully synthetic
// levels of a smart table are zero-valued: no arena, no index.
type level struct {
	arena  []byte
	starts []int64
}

// Table is the complete treelet count table of a colored graph: one packed
// record per node per size 1..K. With ZeroRooted set, size-K records exist
// only at color-0 nodes (Section 3.2), each unrooted size-K copy counted
// exactly once. With smart stars enabled, height-≤2 shapes are synthesized
// (smart.go) and only height-≥3 shapes are stored.
type Table struct {
	K          int
	N          int
	ZeroRooted bool
	levels     []level // levels[h], index 0 unused
	smart      *smartState

	// Set only on tables opened with OpenMapped: the levels alias a
	// read-only file mapping owned by mapped, and verify[h] carries the
	// lazy first-touch checksum state of each stored level (mmap.go).
	mapped *mappedState
	verify []levelVerify
}

// New allocates an empty table for n nodes and treelets up to size k.
func New(n, k int, zeroRooted bool) *Table {
	t := &Table{K: k, N: n, ZeroRooted: zeroRooted, levels: make([]level, k+1)}
	for h := 1; h <= k; h++ {
		t.levels[h] = emptyLevel(n)
	}
	return t
}

func emptyLevel(n int) level {
	starts := make([]int64, n)
	for i := range starts {
		starts[i] = -1
	}
	return level{starts: starts}
}

// topLevelSkip reports whether (h, v) is excluded by 0-rooting: the size-K
// level exists only at color-0 nodes. Stored records respect this by
// construction; the synthesis path must apply the same rule.
func (t *Table) topLevelSkip(h int, v int32) bool {
	return t.smart != nil && t.ZeroRooted && h == t.K && t.smart.colors[v] != 0
}

// Rec returns the record view of node v at size h: the stored packed
// record merged with any synthesized star-family entries. Views stay valid
// as long as the level is not replaced and (for smart tables) are only
// usable once the graph is attached.
func (t *Table) Rec(h int, v int32) View {
	vw := View{t: t, h: h, v: v}
	if t.verify != nil {
		t.ensureVerified(h)
	}
	lv := &t.levels[h]
	if lv.starts != nil {
		if off := lv.starts[v]; off >= 0 {
			r, err := ViewRecord(lv.arena[off:])
			if err != nil {
				panic(fmt.Sprintf("table: corrupt record h=%d v=%d: %v", h, v, err))
			}
			vw.rec = r
		}
	}
	return vw
}

// SetRec encodes p as the record of node v at size h, appending it to the
// level arena. It is a sequential builder API (levelOne, tests); the
// concurrent build pass goes through LevelWriter instead. Setting an
// already-set record, or storing into a fully synthetic level of a smart
// table, is a programming error.
func (t *Table) SetRec(h int, v int32, p *Pairs) {
	if p.Len() == 0 {
		return
	}
	if t.mapped != nil {
		panic("table: SetRec on a mapped table (the mapping is read-only)")
	}
	lv := &t.levels[h]
	if lv.starts == nil {
		panic(fmt.Sprintf("table: SetRec on fully synthetic level %d of a smart table", h))
	}
	if lv.starts[v] >= 0 {
		panic(fmt.Sprintf("table: record h=%d v=%d set twice", h, v))
	}
	lv.starts[v] = int64(len(lv.arena))
	lv.arena = AppendRecord(lv.arena, p)
}

// SetLevel installs a complete size level from an arena of packed records
// and their per-node start offsets, compacting the arena into node order so
// the table layout is deterministic regardless of the order records were
// produced in (concurrent builders flush in scheduling order).
func (t *Table) SetLevel(h int, arena []byte, starts []int64) error {
	if t.mapped != nil {
		return fmt.Errorf("table: SetLevel on a mapped table (the mapping is read-only)")
	}
	if len(starts) != t.N {
		return fmt.Errorf("table: level %d has %d offsets, table has %d nodes", h, len(starts), t.N)
	}
	if t.smart != nil && h < minStoredSize {
		return fmt.Errorf("table: level %d of a smart table is fully synthetic", h)
	}
	compact := make([]byte, 0, len(arena))
	newStarts := make([]int64, t.N)
	for v, off := range starts {
		if off < 0 {
			newStarts[v] = -1
			continue
		}
		if off > int64(len(arena)) {
			return fmt.Errorf("table: level %d record %d offset %d beyond arena", h, v, off)
		}
		r, err := ViewRecord(arena[off:])
		if err != nil {
			return fmt.Errorf("table: level %d record %d: %w", h, v, err)
		}
		newStarts[v] = int64(len(compact))
		compact = append(compact, arena[off:off+int64(r.enc)]...)
	}
	t.levels[h] = level{arena: compact, starts: newStarts}
	return nil
}

// SetLevelOrdered installs a size level whose arena is already compact
// and in node order — every non-empty record contiguous with the
// previous one, offsets ascending with v — taking ownership of arena
// without the defensive re-copy SetLevel performs. The bounded-memory
// build's external merge produces exactly this layout (per-shard spills
// are written in vertex order and concatenated in shard order); the
// contiguity check here makes the install provably byte-identical to
// running SetLevel's compaction on the same records.
func (t *Table) SetLevelOrdered(h int, arena []byte, starts []int64) error {
	if t.mapped != nil {
		return fmt.Errorf("table: SetLevelOrdered on a mapped table (the mapping is read-only)")
	}
	if len(starts) != t.N {
		return fmt.Errorf("table: level %d has %d offsets, table has %d nodes", h, len(starts), t.N)
	}
	if t.smart != nil && h < minStoredSize {
		return fmt.Errorf("table: level %d of a smart table is fully synthetic", h)
	}
	var next int64
	for v, off := range starts {
		if off < 0 {
			continue
		}
		if off != next {
			return fmt.Errorf("table: level %d record %d at offset %d, want %d (arena not node-ordered)", h, v, off, next)
		}
		r, err := ViewRecord(arena[off:])
		if err != nil {
			return fmt.Errorf("table: level %d record %d: %w", h, v, err)
		}
		next = off + int64(r.enc)
	}
	if next != int64(len(arena)) {
		return fmt.Errorf("table: level %d arena has %d bytes after the last record", h, int64(len(arena))-next)
	}
	t.levels[h] = level{arena: arena, starts: starts}
	return nil
}

// TotalK returns the total number of colorful k-treelet copies in the urn
// (the paper's t) — the sum of occ(v) over the size-K records.
func (t *Table) TotalK() u128.Uint128 {
	sum := u128.Zero
	for v := int32(0); int(v) < t.N; v++ {
		sum = sum.Add(t.Rec(t.K, v).Total())
	}
	return sum
}

// ShapeTotals returns r_j for every size-K rooted shape grouped by unrooted
// canonical form: the number of colorful copies of each unrooted k-treelet
// shape in the urn.
func (t *Table) ShapeTotals(cat *treelet.Catalog) map[treelet.Treelet]u128.Uint128 {
	out := make(map[treelet.Treelet]u128.Uint128)
	for _, u := range cat.UnrootedK {
		out[u] = u128.Zero
	}
	cache := NewSynthCache() // local to this pass, so the walk stays concurrency-safe
	for v := int32(0); int(v) < t.N; v++ {
		t.Rec(t.K, v).WithCache(cache).Each(func(key treelet.Colored, cnt u128.Uint128) bool {
			shape := cat.Unrooted(key.Tree())
			out[shape] = out[shape].Add(cnt)
			return true
		})
	}
	return out
}

// Bytes returns the storage footprint of the table: the packed arenas, the
// per-(size, node) offset indexes (8 bytes per node per stored level), and
// — for smart tables — the colored-degree summaries and node colors the
// synthesis runs on. Fully synthetic levels cost nothing.
func (t *Table) Bytes() int64 {
	var b int64
	for h := 1; h <= t.K; h++ {
		b += int64(len(t.levels[h].arena))
		b += int64(8 * len(t.levels[h].starts))
	}
	if t.smart != nil {
		b += int64(4*len(t.smart.deg)) + int64(len(t.smart.colors))
	}
	return b
}

// MappedBytes returns the size of the read-only file mapping backing the
// table, or 0 for heap tables. Mapped bytes are page-cache residency, not
// process heap: the kernel reclaims them under pressure and re-faults
// them from the file, which is why budgeting code should account them
// separately from HeapBytes.
func (t *Table) MappedBytes() int64 {
	if t.mapped == nil {
		return 0
	}
	return int64(len(t.mapped.data))
}

// HeapBytes returns the part of Bytes that lives on the Go heap. For a
// heap-loaded table that is everything; for a mapped table the arenas and
// offset indexes alias the mapping and only the smart-star synthesis
// state (decoded degrees + colors) is heap-resident.
func (t *Table) HeapBytes() int64 {
	if t.mapped == nil {
		return t.Bytes()
	}
	if t.smart == nil {
		return 0
	}
	return int64(4*len(t.smart.deg)) + int64(len(t.smart.colors))
}

// Pairs returns the total number of (key, count) pairs physically stored.
// Synthesized entries are not counted: they occupy no bytes, which is the
// point of smart stars (LogicalPairs counts them too).
func (t *Table) Pairs() int64 {
	var p int64
	for h := 1; h <= t.K; h++ {
		lv := &t.levels[h]
		for _, off := range lv.starts {
			if off < 0 {
				continue
			}
			r, err := ViewRecord(lv.arena[off:])
			if err != nil {
				panic(fmt.Sprintf("table: corrupt record: %v", err))
			}
			p += int64(r.Len())
		}
	}
	return p
}

// LogicalPairs returns the number of (key, count) pairs the table serves,
// synthesized entries included — equal to Pairs on a materialized table.
// The graph must be attached on smart tables.
func (t *Table) LogicalPairs() int64 {
	if t.smart == nil {
		return t.Pairs()
	}
	var p int64
	for h := 1; h <= t.K; h++ {
		for v := int32(0); int(v) < t.N; v++ {
			p += int64(t.Rec(h, v).Len())
		}
	}
	return p
}

// Validate walks every stored record of every level checking entry-level
// integrity — the deep check load paths run on untrusted bytes. On smart
// tables it additionally rejects stored entries of synthesized shapes
// (those must never be materialized) and stored fully-synthetic levels.
func (t *Table) Validate() error {
	for h := 1; h <= t.K; h++ {
		if err := t.validateLevel(h); err != nil {
			return err
		}
	}
	return nil
}

// validateLevel is Validate for one size level — also the record-integrity
// half of a mapped table's lazy first-touch verification (mmap.go).
func (t *Table) validateLevel(h int) error {
	lv := &t.levels[h]
	if t.smart != nil && h < minStoredSize && lv.starts != nil {
		return fmt.Errorf("table: smart table stores fully synthetic level %d", h)
	}
	for v := 0; v < len(lv.starts); v++ {
		off := lv.starts[v]
		if off < 0 {
			continue
		}
		if off > int64(len(lv.arena)) {
			return fmt.Errorf("table: level %d record %d offset beyond arena", h, v)
		}
		r, err := ViewRecord(lv.arena[off:])
		if err != nil {
			return fmt.Errorf("table: level %d record %d: %w", h, v, err)
		}
		if err := r.Validate(); err != nil {
			return fmt.Errorf("table: level %d record %d: %w", h, v, err)
		}
		if t.smart != nil {
			c := r.Cursor(0)
			for i := 0; i < r.Len(); i++ {
				key, _ := c.Next()
				if t.synthesized(key.Tree()) {
					return fmt.Errorf("table: level %d record %d stores synthesized shape %v", h, v, key.Tree())
				}
			}
		}
	}
	return nil
}

// --- View: the merged stored + synthesized record ---------------------------

// View is the read interface over one (size, node) record: the packed
// stored entries merged, in sorted key order, with any star-family entries
// synthesized from the colored-degree summaries. On a materialized table a
// View is a thin wrapper over the packed Record and costs nothing extra.
// The zero View is empty. Views are value types and safe to copy; a View of
// a smart table must not outlive AttachGraph-time state changes (there are
// none after construction).
type View struct {
	t     *Table
	h     int
	v     int32
	rec   Record
	cache *SynthCache
}

// WithCache returns the view with a synthesis memo attached: neighbor-sum
// terms of synthesized counts are looked up in (and added to) cache. The
// cache must be owned by the calling goroutine.
func (vw View) WithCache(c *SynthCache) View {
	vw.cache = c
	return vw
}

// Packed exposes the stored packed record of the view (empty on fully
// synthetic levels) — the codec-level escape hatch used by tests and
// storage accounting.
func (vw View) Packed() Record { return vw.rec }

// synthetic returns the synthesized shapes of the view's size, or nil when
// nothing is synthesized at (h, v) — materialized table, detached state, or
// a node excluded by 0-rooting.
func (vw View) synthetic() []synthShape {
	if vw.t == nil || vw.t.smart == nil {
		return nil
	}
	if vw.t.topLevelSkip(vw.h, vw.v) {
		return nil
	}
	return vw.t.smart.synth[vw.h]
}

// Each calls fn for every entry of the view in ascending key order —
// synthesized entries merged into stored ones — until fn returns false.
func (vw View) Each(fn func(treelet.Colored, u128.Uint128) bool) {
	syn := vw.synthetic()
	if len(syn) == 0 {
		c := vw.rec.Cursor(0)
		for i := 0; i < vw.rec.Len(); i++ {
			k, cnt := c.Next()
			if !fn(k, cnt) {
				return
			}
		}
		return
	}
	s := vw.t.smart
	c := vw.rec.Cursor(0)
	n, pi := vw.rec.Len(), 0
	var (
		pk   treelet.Colored
		pc   u128.Uint128
		have bool
	)
	advance := func() {
		if pi < n {
			pk, pc = c.Next()
			pi++
			have = true
		} else {
			have = false
		}
	}
	advance()
	for si := range syn {
		// Stored entries sorting before the next synthesized shape (stored
		// records never contain a synthesized shape — Validate enforces it).
		bound := treelet.MakeColored(syn[si].t, 0)
		for have && pk < bound {
			if !fn(pk, pc) {
				return
			}
			advance()
		}
		if !s.synthShapeEach(vw.t.K, vw.v, &syn[si], vw.cache, fn) {
			return
		}
	}
	for have {
		if !fn(pk, pc) {
			return
		}
		advance()
	}
}

// Len returns the number of entries the view serves (synthesized included;
// it walks the synthesized shapes, so prefer Each where iteration is the
// goal anyway).
func (vw View) Len() int {
	n := vw.rec.Len()
	for _, sh := range vw.synthetic() {
		s := vw.t.smart
		s.synthShapeEach(vw.t.K, vw.v, &sh, vw.cache, func(treelet.Colored, u128.Uint128) bool {
			n++
			return true
		})
	}
	return n
}

// Total returns occ(v): the total count over stored and synthesized
// entries. O(1) on materialized tables.
func (vw View) Total() u128.Uint128 {
	tot := vw.rec.Total()
	for _, sh := range vw.synthetic() {
		s := vw.t.smart
		s.synthShapeEach(vw.t.K, vw.v, &sh, vw.cache, func(_ treelet.Colored, cnt u128.Uint128) bool {
			tot = tot.Add(cnt)
			return true
		})
	}
	return tot
}

// Count returns occ(T_C, v) for one colored treelet, or zero if absent.
func (vw View) Count(key treelet.Colored) u128.Uint128 {
	if vw.t != nil && vw.t.synthesized(key.Tree()) {
		syn := vw.synthetic()
		if syn == nil {
			return u128.Zero
		}
		return vw.t.smart.synthCount(vw.t.K, vw.v, vw.t.smart.synthSet[key.Tree()], key.Colors(), vw.cache)
	}
	return vw.rec.Count(key)
}

// ShapeTotal returns the total count over all colorings of shape t.
func (vw View) ShapeTotal(t treelet.Treelet) u128.Uint128 {
	if vw.t != nil && vw.t.synthesized(t) {
		tot := u128.Zero
		syn := vw.synthetic()
		if syn == nil {
			return tot
		}
		vw.t.smart.synthShapeEach(vw.t.K, vw.v, vw.t.smart.synthSet[t], vw.cache, func(_ treelet.Colored, cnt u128.Uint128) bool {
			tot = tot.Add(cnt)
			return true
		})
		return tot
	}
	return vw.rec.ShapeTotal(t)
}

// ShapeEach calls fn for every entry of shape t in ascending color-set
// order — the iter(T, v) primitive — until fn returns false.
func (vw View) ShapeEach(t treelet.Treelet, fn func(treelet.Colored, u128.Uint128) bool) {
	if vw.t != nil && vw.t.synthesized(t) {
		if vw.synthetic() == nil {
			return
		}
		vw.t.smart.synthShapeEach(vw.t.K, vw.v, vw.t.smart.synthSet[t], vw.cache, fn)
		return
	}
	lo, hi := vw.rec.ShapeRange(t)
	c := vw.rec.Cursor(lo)
	for i := lo; i < hi; i++ {
		k, cnt := c.Next()
		if !fn(k, cnt) {
			return
		}
	}
}

// AppendPairs decodes the whole view into p (appending; call p.Reset first
// to replace) — the build phase's bulk read path.
func (vw View) AppendPairs(p *Pairs) {
	vw.Each(func(k treelet.Colored, cnt u128.Uint128) bool {
		p.Append(k, cnt)
		return true
	})
}

// Sample draws a key with probability proportional to its count — the
// sample(v) primitive. It consumes exactly one u128.RandN from rng whether
// entries are stored or synthesized, so smart and materialized tables of
// the same graph produce identical draw sequences at equal seed. It panics
// on an empty view.
func (vw View) Sample(rng u128.RandSource) treelet.Colored {
	if len(vw.synthetic()) == 0 {
		return vw.rec.Sample(rng)
	}
	total := vw.Total()
	if total.IsZero() {
		panic("table: Sample on empty record")
	}
	rv := u128.RandN(rng, total).Add64(1)
	return vw.keyAtCumGE(rv)
}

// SampleShape draws a key of shape t with probability proportional to its
// count — the restricted sample AGS's sample(T) primitive uses. Like
// Sample, it consumes exactly one u128.RandN regardless of storage mode.
func (vw View) SampleShape(rng u128.RandSource, t treelet.Treelet) treelet.Colored {
	if vw.t != nil && vw.t.synthesized(t) {
		span := vw.ShapeTotal(t)
		if span.IsZero() {
			panic("table: SampleShape on empty shape")
		}
		rv := u128.RandN(rng, span).Add64(1)
		cum := u128.Zero
		var key treelet.Colored
		vw.t.smart.synthShapeEach(vw.t.K, vw.v, vw.t.smart.synthSet[t], vw.cache, func(k treelet.Colored, cnt u128.Uint128) bool {
			key = k
			cum = cum.Add(cnt)
			return cum.Cmp(rv) < 0
		})
		return key
	}
	lo, hi := vw.rec.ShapeRange(t)
	if lo >= hi {
		panic("table: SampleShape on empty shape")
	}
	return vw.rec.SampleRange(rng, lo, hi)
}

// keyAtCumGE returns the key of the first merged entry whose cumulative
// count reaches rv.
func (vw View) keyAtCumGE(rv u128.Uint128) treelet.Colored {
	cum := u128.Zero
	var key treelet.Colored
	vw.Each(func(k treelet.Colored, cnt u128.Uint128) bool {
		key = k
		cum = cum.Add(cnt)
		return cum.Cmp(rv) < 0
	})
	return key
}
