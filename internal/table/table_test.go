package table

import (
	"math/rand"
	"testing"

	"repro/internal/treelet"
	"repro/internal/u128"
)

func sampleMap() map[treelet.Colored]u128.Uint128 {
	edge := treelet.FromParents([]int{0, 0})
	path3 := treelet.FromParents([]int{0, 0, 1})
	star3 := treelet.FromParents([]int{0, 0, 0})
	return map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(edge, 0b0011):  u128.From64(5),
		treelet.MakeColored(edge, 0b0101):  u128.From64(2),
		treelet.MakeColored(path3, 0b0111): u128.From64(7),
		treelet.MakeColored(star3, 0b0111): u128.From64(1),
	}
}

func TestFromMapSortedCumulative(t *testing.T) {
	r := FromMap(sampleMap())
	if r.Len() != 4 {
		t.Fatalf("len %d", r.Len())
	}
	c := r.Cursor(0)
	var prev treelet.Colored
	cum := u128.Zero
	for i := 0; i < r.Len(); i++ {
		k, cnt := c.Next()
		if i > 0 && prev >= k {
			t.Fatal("keys not strictly sorted")
		}
		if cnt.IsZero() {
			t.Fatal("zero point count encoded")
		}
		prev = k
		cum = cum.Add(cnt)
		if got := r.CumAt(i); got != cum {
			t.Fatalf("CumAt(%d) = %v, want %v", i, got, cum)
		}
	}
	if r.Total() != u128.From64(15) {
		t.Errorf("total %v", r.Total())
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCountLookup(t *testing.T) {
	m := sampleMap()
	r := FromMap(m)
	for key, want := range m {
		if got := r.Count(key); got != want {
			t.Errorf("Count(%v) = %v, want %v", key, got, want)
		}
	}
	absent := treelet.MakeColored(treelet.Leaf, 0b1)
	if !r.Count(absent).IsZero() {
		t.Error("absent key should count 0")
	}
}

func TestEmptyRecord(t *testing.T) {
	var r Record
	if r.Len() != 0 || !r.Total().IsZero() {
		t.Fatal("zero record should be empty")
	}
	if e := FromMap(nil); e.Len() != 0 {
		t.Fatal("FromMap(nil) should be empty")
	}
	if lo, hi := r.ShapeRange(treelet.FromParents([]int{0, 0})); lo != 0 || hi != 0 {
		t.Fatal("empty record should have empty shape ranges")
	}
}

func TestShapeRangeAndTotal(t *testing.T) {
	r := FromMap(sampleMap())
	edge := treelet.FromParents([]int{0, 0})
	lo, hi := r.ShapeRange(edge)
	if hi-lo != 2 {
		t.Fatalf("edge range size %d, want 2", hi-lo)
	}
	if got := r.ShapeTotal(edge); got != u128.From64(7) {
		t.Errorf("edge shape total %v, want 7", got)
	}
	if got := r.RangeTotal(lo, hi); got != u128.From64(7) {
		t.Errorf("edge range total %v, want 7", got)
	}
	star3 := treelet.FromParents([]int{0, 0, 0})
	if got := r.ShapeTotal(star3); got != u128.From64(1) {
		t.Errorf("star3 shape total %v", got)
	}
	if got := r.ShapeTotal(treelet.FromParents([]int{0, 0, 1, 2})); !got.IsZero() {
		t.Errorf("absent shape total %v", got)
	}
}

func TestSampleProportional(t *testing.T) {
	r := FromMap(sampleMap())
	rng := rand.New(rand.NewSource(17))
	counts := make(map[treelet.Colored]int)
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[r.Sample(rng)]++
	}
	total := r.Total().Float64()
	for key, want := range sampleMap() {
		got := float64(counts[key]) / draws
		expect := want.Float64() / total
		if got < expect-0.02 || got > expect+0.02 {
			t.Errorf("key %v drawn with freq %.4f, want %.4f", key, got, expect)
		}
	}
}

func TestSampleRangeRestricted(t *testing.T) {
	r := FromMap(sampleMap())
	edge := treelet.FromParents([]int{0, 0})
	lo, hi := r.ShapeRange(edge)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		k := r.SampleRange(rng, lo, hi)
		if k.Tree() != edge {
			t.Fatalf("restricted sample escaped the shape: %v", k.Tree())
		}
	}
}

func TestSamplePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var r Record
	r.Sample(rand.New(rand.NewSource(1)))
}

func TestDiskStoreRoundTrip(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var p0 Pairs
	p0.FromMap(sampleMap())
	enc0 := AppendRecord(nil, &p0)
	if err := ds.Flush(0, enc0); err != nil {
		t.Fatal(err)
	}
	var p3 Pairs
	p3.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.Leaf, 0b1): {Hi: 2, Lo: 3},
	})
	if err := ds.Flush(3, AppendRecord(nil, &p3)); err != nil {
		t.Fatal(err)
	}
	got0, err := ds.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if got0.Len() != p0.Len() || got0.Total() != u128.From64(15) {
		t.Fatal("record 0 round trip failed")
	}
	got1, err := ds.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Len() != 0 {
		t.Fatal("unflushed record should load empty")
	}
	arena, starts, err := ds.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 5 || starts[0] != 0 || starts[2] != -1 || starts[3] != int64(len(enc0)) {
		t.Fatalf("LoadAll starts mismatch: %v", starts)
	}
	tab := New(5, 1, false)
	if err := tab.SetLevel(1, arena, starts); err != nil {
		t.Fatal(err)
	}
	// 128-bit counts survive.
	if _, cnt := tab.Rec(1, 3).Packed().At(0); cnt != (u128.Uint128{Hi: 2, Lo: 3}) {
		t.Fatalf("hi bits lost: %v", cnt)
	}
	if tab.Rec(1, 0).Len() != p0.Len() {
		t.Fatal("record 0 lost through SetLevel")
	}
	if ds.Size() == 0 {
		t.Error("spill size should be positive")
	}
}

func TestTableAccounting(t *testing.T) {
	tab := New(3, 2, true)
	var p Pairs
	p.FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.FromParents([]int{0, 0}), 0b11): u128.From64(4),
	})
	tab.SetRec(2, 0, &p)
	if tab.TotalK() != u128.From64(4) {
		t.Errorf("TotalK = %v", tab.TotalK())
	}
	if tab.Pairs() != 1 {
		t.Errorf("Pairs = %d", tab.Pairs())
	}
	// Packed accounting: the single record (≈ a dozen bytes) plus the
	// 8-byte-per-node-per-level offset index.
	rec := tab.Rec(2, 0).Packed()
	want := rec.Bytes() + 8*3*2
	if tab.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", tab.Bytes(), want)
	}
	if rec.Bytes() >= 24 {
		t.Errorf("packed single-pair record takes %d bytes, dense layout was 24", rec.Bytes())
	}
}
