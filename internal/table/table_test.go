package table

import (
	"math/rand"
	"testing"

	"repro/internal/treelet"
	"repro/internal/u128"
)

func sampleMap() map[treelet.Colored]u128.Uint128 {
	edge := treelet.FromParents([]int{0, 0})
	path3 := treelet.FromParents([]int{0, 0, 1})
	star3 := treelet.FromParents([]int{0, 0, 0})
	return map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(edge, 0b0011):  u128.From64(5),
		treelet.MakeColored(edge, 0b0101):  u128.From64(2),
		treelet.MakeColored(path3, 0b0111): u128.From64(7),
		treelet.MakeColored(star3, 0b0111): u128.From64(1),
	}
}

func TestFromMapSortedCumulative(t *testing.T) {
	r := FromMap(sampleMap())
	if r.Len() != 4 {
		t.Fatalf("len %d", r.Len())
	}
	for i := 1; i < r.Len(); i++ {
		if r.Keys[i-1] >= r.Keys[i] {
			t.Fatal("keys not strictly sorted")
		}
		if r.Cum[i].Cmp(r.Cum[i-1]) <= 0 {
			t.Fatal("cumulative not increasing")
		}
	}
	if r.Total() != u128.From64(15) {
		t.Errorf("total %v", r.Total())
	}
}

func TestCountLookup(t *testing.T) {
	m := sampleMap()
	r := FromMap(m)
	for key, want := range m {
		if got := r.Count(key); got != want {
			t.Errorf("Count(%v) = %v, want %v", key, got, want)
		}
	}
	absent := treelet.MakeColored(treelet.Leaf, 0b1)
	if !r.Count(absent).IsZero() {
		t.Error("absent key should count 0")
	}
}

func TestEmptyRecord(t *testing.T) {
	var r Record
	if r.Len() != 0 || !r.Total().IsZero() {
		t.Fatal("zero record should be empty")
	}
	if e := FromMap(nil); e.Len() != 0 {
		t.Fatal("FromMap(nil) should be empty")
	}
}

func TestShapeRangeAndTotal(t *testing.T) {
	r := FromMap(sampleMap())
	edge := treelet.FromParents([]int{0, 0})
	lo, hi := r.ShapeRange(edge)
	if hi-lo != 2 {
		t.Fatalf("edge range size %d, want 2", hi-lo)
	}
	if got := r.ShapeTotal(edge); got != u128.From64(7) {
		t.Errorf("edge shape total %v, want 7", got)
	}
	star3 := treelet.FromParents([]int{0, 0, 0})
	if got := r.ShapeTotal(star3); got != u128.From64(1) {
		t.Errorf("star3 shape total %v", got)
	}
	if got := r.ShapeTotal(treelet.FromParents([]int{0, 0, 1, 2})); !got.IsZero() {
		t.Errorf("absent shape total %v", got)
	}
}

func TestSampleProportional(t *testing.T) {
	r := FromMap(sampleMap())
	rng := rand.New(rand.NewSource(17))
	counts := make(map[treelet.Colored]int)
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[r.Sample(rng)]++
	}
	total := r.Total().Float64()
	for key, want := range sampleMap() {
		got := float64(counts[key]) / draws
		expect := want.Float64() / total
		if got < expect-0.02 || got > expect+0.02 {
			t.Errorf("key %v drawn with freq %.4f, want %.4f", key, got, expect)
		}
	}
}

func TestSampleRangeRestricted(t *testing.T) {
	r := FromMap(sampleMap())
	edge := treelet.FromParents([]int{0, 0})
	lo, hi := r.ShapeRange(edge)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		k := r.SampleRange(rng, lo, hi)
		if k.Tree() != edge {
			t.Fatalf("restricted sample escaped the shape: %v", k.Tree())
		}
	}
}

func TestSamplePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var r Record
	r.Sample(rand.New(rand.NewSource(1)))
}

func TestDiskStoreRoundTrip(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	r0 := FromMap(sampleMap())
	if err := ds.Flush(0, r0); err != nil {
		t.Fatal(err)
	}
	r3 := FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.Leaf, 0b1): {Hi: 2, Lo: 3},
	})
	if err := ds.Flush(3, r3); err != nil {
		t.Fatal(err)
	}
	got0, err := ds.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if got0.Len() != r0.Len() || got0.Total() != r0.Total() {
		t.Fatal("record 0 round trip failed")
	}
	got1, err := ds.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Len() != 0 {
		t.Fatal("unflushed record should load empty")
	}
	all, err := ds.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 || all[0].Len() != r0.Len() || all[3].Total() != r3.Total() || all[2].Len() != 0 {
		t.Fatal("LoadAll mismatch")
	}
	// 128-bit counts survive.
	if all[3].Cum[0] != (u128.Uint128{Hi: 2, Lo: 3}) {
		t.Fatalf("hi bits lost: %v", all[3].Cum[0])
	}
	if ds.Size() == 0 {
		t.Error("spill size should be positive")
	}
}

func TestTableAccounting(t *testing.T) {
	tab := New(3, 2, true)
	tab.Recs[2][0] = FromMap(map[treelet.Colored]u128.Uint128{
		treelet.MakeColored(treelet.FromParents([]int{0, 0}), 0b11): u128.From64(4),
	})
	if tab.TotalK() != u128.From64(4) {
		t.Errorf("TotalK = %v", tab.TotalK())
	}
	if tab.Pairs() != 1 {
		t.Errorf("Pairs = %d", tab.Pairs())
	}
	if tab.Bytes() != 24 {
		t.Errorf("Bytes = %d", tab.Bytes())
	}
}
