package table

import (
	"math/rand"
	"testing"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// refRecord is the slice-backed reference implementation the packed codec
// is checked against: sorted keys with a dense cumulative array, i.e. the
// pre-packing layout of the count table. Its Sample mirrors the packed
// draw formula exactly (same rng consumption), so draws must agree
// key-for-key.
type refRecord struct {
	keys []treelet.Colored
	cum  []u128.Uint128
}

func newRef(p *Pairs) *refRecord {
	r := &refRecord{keys: p.Keys}
	run := u128.Zero
	for _, c := range p.Counts {
		run = run.Add(c)
		r.cum = append(r.cum, run)
	}
	return r
}

func (r *refRecord) total() u128.Uint128 {
	if len(r.cum) == 0 {
		return u128.Zero
	}
	return r.cum[len(r.cum)-1]
}

func (r *refRecord) countAt(i int) u128.Uint128 {
	if i == 0 {
		return r.cum[0]
	}
	return r.cum[i].Sub(r.cum[i-1])
}

func (r *refRecord) count(key treelet.Colored) u128.Uint128 {
	for i, k := range r.keys {
		if k == key {
			return r.countAt(i)
		}
	}
	return u128.Zero
}

func (r *refRecord) shapeRange(t treelet.Treelet) (lo, hi int) {
	min := treelet.MakeColored(t, 0)
	max := treelet.MakeColored(t, treelet.MaxColorSet)
	lo = len(r.keys)
	for i, k := range r.keys {
		if k >= min {
			lo = i
			break
		}
	}
	hi = len(r.keys)
	for i := lo; i < len(r.keys); i++ {
		if r.keys[i] > max {
			hi = i
			break
		}
	}
	return lo, hi
}

func (r *refRecord) sample(rng u128.RandSource) treelet.Colored {
	rv := u128.RandN(rng, r.total()).Add64(1)
	for i, c := range r.cum {
		if c.Cmp(rv) >= 0 {
			return r.keys[i]
		}
	}
	panic("refRecord: cumulative exhausted")
}

func (r *refRecord) sampleRange(rng u128.RandSource, lo, hi int) treelet.Colored {
	var base u128.Uint128
	if lo > 0 {
		base = r.cum[lo-1]
	}
	span := r.cum[hi-1].Sub(base)
	rv := base.Add(u128.RandN(rng, span).Add64(1))
	for i := lo; i < hi; i++ {
		if r.cum[i].Cmp(rv) >= 0 {
			return r.keys[i]
		}
	}
	panic("refRecord: range cumulative exhausted")
}

// randomPairs generates n sorted pairs over a few treelet shapes with a
// mixture of tiny and >64-bit counts.
func randomPairs(rng *rand.Rand, n int, cat *treelet.Catalog) *Pairs {
	shapes := cat.BySize[4]
	m := make(map[treelet.Colored]u128.Uint128, n)
	for len(m) < n {
		t := shapes[rng.Intn(len(shapes))]
		cs := treelet.ColorSet(rng.Intn(1 << 10))
		cnt := u128.From64(uint64(rng.Intn(1000)) + 1)
		switch rng.Intn(8) {
		case 0: // huge: exercise the 128-bit varint path
			cnt = u128.Uint128{Hi: rng.Uint64()%1000 + 1, Lo: rng.Uint64()}
		case 1: // zero counts are legal in the codec
			cnt = u128.Zero
		}
		m[treelet.MakeColored(t, cs)] = cnt
	}
	var p Pairs
	p.FromMap(m)
	return &p
}

// TestPackedMatchesReference is the codec property test: packed and
// slice-backed records must agree on every primitive over randomized
// records, including sizes straddling the block-index boundary.
func TestPackedMatchesReference(t *testing.T) {
	cat := treelet.NewCatalog(4)
	rng := rand.New(rand.NewSource(101))
	sizes := []int{1, 2, blockSize - 1, blockSize, blockSize + 1, 2*blockSize - 1, 2 * blockSize, 5*blockSize + 7, 400}
	for _, n := range sizes {
		for rep := 0; rep < 4; rep++ {
			p := randomPairs(rng, n, cat)
			ref := newRef(p)
			rec, err := ViewRecord(AppendRecord(nil, p))
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("n=%d: Validate: %v", n, err)
			}
			if rec.Len() != len(ref.keys) {
				t.Fatalf("n=%d: Len %d != %d", n, rec.Len(), len(ref.keys))
			}
			if rec.Total() != ref.total() {
				t.Fatalf("n=%d: Total %v != %v", n, rec.Total(), ref.total())
			}
			// At / CumAt over every index.
			for i := range ref.keys {
				k, c := rec.At(i)
				if k != ref.keys[i] || c != ref.countAt(i) {
					t.Fatalf("n=%d At(%d): (%v,%v) != (%v,%v)", n, i, k, c, ref.keys[i], ref.countAt(i))
				}
				if got := rec.CumAt(i); got != ref.cum[i] {
					t.Fatalf("n=%d CumAt(%d): %v != %v", n, i, got, ref.cum[i])
				}
			}
			// Count on every present key plus probes around them.
			for i, k := range ref.keys {
				if got := rec.Count(k); got != ref.countAt(i) {
					t.Fatalf("n=%d Count(%v): %v != %v", n, k, got, ref.countAt(i))
				}
				for _, probe := range []treelet.Colored{k - 1, k + 1} {
					if got, want := rec.Count(probe), ref.count(probe); got != want {
						t.Fatalf("n=%d Count(probe %v): %v != %v", n, probe, got, want)
					}
				}
			}
			// ShapeRange / ShapeTotal for every catalog shape.
			for _, shapes := range cat.BySize {
				for _, sh := range shapes {
					lo, hi := rec.ShapeRange(sh)
					rlo, rhi := ref.shapeRange(sh)
					if lo != rlo || hi != rhi {
						t.Fatalf("n=%d ShapeRange(%v): [%d,%d) != [%d,%d)", n, sh, lo, hi, rlo, rhi)
					}
					if lo == hi {
						continue
					}
					want := ref.cum[hi-1]
					if lo > 0 {
						want = want.Sub(ref.cum[lo-1])
					}
					if got := rec.ShapeTotal(sh); got != want {
						t.Fatalf("n=%d ShapeTotal(%v): %v != %v", n, sh, got, want)
					}
				}
			}
			// Sample / SampleRange: identical draw sequences off identical
			// rng streams (both consume via u128.RandN on the same totals).
			if !rec.Total().IsZero() {
				r1 := rand.New(rand.NewSource(int64(n)))
				r2 := rand.New(rand.NewSource(int64(n)))
				for d := 0; d < 200; d++ {
					if got, want := rec.Sample(r1), ref.sample(r2); got != want {
						t.Fatalf("n=%d draw %d: Sample %v != %v", n, d, got, want)
					}
				}
				for _, sh := range cat.BySize[4] {
					lo, hi := rec.ShapeRange(sh)
					if lo == hi || rec.RangeTotal(lo, hi).IsZero() {
						continue
					}
					for d := 0; d < 50; d++ {
						if got, want := rec.SampleRange(r1, lo, hi), ref.sampleRange(r2, lo, hi); got != want {
							t.Fatalf("n=%d SampleRange(%v) draw %d: %v != %v", n, sh, d, got, want)
						}
					}
				}
			}
		}
	}
}

// TestCursorSequentialDecode checks the cursor against At from every
// starting position.
func TestCursorSequentialDecode(t *testing.T) {
	cat := treelet.NewCatalog(4)
	rng := rand.New(rand.NewSource(77))
	p := randomPairs(rng, 3*blockSize+5, cat)
	rec, err := ViewRecord(AppendRecord(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < rec.Len(); start += 7 {
		c := rec.Cursor(start)
		for i := start; i < rec.Len(); i++ {
			k, cnt := c.Next()
			wk, wc := rec.At(i)
			if k != wk || cnt != wc {
				t.Fatalf("cursor from %d at %d: (%v,%v) != (%v,%v)", start, i, k, cnt, wk, wc)
			}
		}
	}
	// End cursor on a block boundary must be constructible.
	_ = rec.Cursor(rec.Len())
}

// TestVarint128RoundTrip exercises the 128-bit LEB128 helpers across the
// width spectrum.
func TestVarint128RoundTrip(t *testing.T) {
	cases := []u128.Uint128{
		{}, {Lo: 1}, {Lo: 127}, {Lo: 128}, {Lo: 1 << 20}, {Lo: ^uint64(0)},
		{Hi: 1}, {Hi: 1, Lo: 42}, {Hi: ^uint64(0), Lo: ^uint64(0)},
		{Hi: 1 << 57, Lo: 0xDEADBEEF},
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		cases = append(cases, u128.Uint128{Hi: rng.Uint64() >> (rng.Intn(64)), Lo: rng.Uint64()})
	}
	for _, u := range cases {
		b := appendUvarint128(nil, u)
		if len(b) != uvarint128Len(u) {
			t.Fatalf("%v: encoded %d bytes, predicted %d", u, len(b), uvarint128Len(u))
		}
		got, n := uvarint128(b)
		if n != len(b) || got != u {
			t.Fatalf("%v: round trip gave %v (%d bytes)", u, got, n)
		}
		if s := uvarint128Skip(b); s != len(b) {
			t.Fatalf("%v: skip %d != len %d", u, s, len(b))
		}
	}
	if _, n := uvarint128([]byte{0x80, 0x80}); n != 0 {
		t.Error("truncated varint must decode to 0 length")
	}
}
