package table

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/coloring"
)

// statSize returns the size of the file at path.
func statSize(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ErrNotMappable reports that a file cannot be served through OpenMapped
// but is (or may be) loadable through LoadFile: a pre-v4 format version,
// a platform without mmap, or a big-endian host. Callers that prefer
// mapping should errors.Is on it and fall back to the heap path
// (core.Open does exactly that). It never wraps corruption — a damaged
// v4 file is a hard error on both paths.
var ErrNotMappable = errors.New("table: file not mappable")

// hostLittleEndian reports whether this host matches the on-disk byte
// order. The zero-copy paths reinterpret mapped bytes as []int64 and as
// varint payloads, which is only correct little-endian; big-endian hosts
// (rare for Go servers) get the byte-swapping heap loader instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mappedState owns one read-only file mapping. The Table's arenas and
// offset indexes alias it, so its lifetime must cover the table's: it is
// unmapped by an explicit Table.Close or, failing that, by a finalizer
// once the table is unreachable (which is how registry-evicted engines
// release their mappings — eviction must not unmap under live queries).
type mappedState struct {
	data    []byte
	fileSum uint32
	closed  atomic.Bool
}

func (ms *mappedState) close() error {
	if ms.closed.Swap(true) {
		return nil
	}
	return munmapFile(ms.data)
}

// levelVerify is the lazy verification state of one stored level of a
// mapped table: the file span holding the level's offset index + arena,
// its directory checksum, and a once guarding the single verification
// pass (CRC over the span, then the record-walk of validateLevel).
type levelVerify struct {
	once sync.Once
	err  error
	off  int64 // span start in the mapping (the offset index)
	len  int64 // span length: index bytes + arena bytes
	sum  uint32
}

// OpenMapped opens a version-4 table file by mapping it read-only:
// per-level arenas and offset indexes point directly into the mapping —
// zero copy, so the open reads only the header, level directory, and the
// O(n) meta region, and its cost is independent of arena size. The table
// serves the exact same View interface as a heap-loaded one and produces
// bit-identical query results.
//
// Validation is lazy: the meta region is checked at open, each level is
// checked once on first touch (checksum over its mapped span, then the
// same record walk LoadFile runs), and Verify forces every deferred
// check. A pre-v4 file, a platform without mmap, or a big-endian host
// returns an error wrapping ErrNotMappable — retry with LoadFile; a
// corrupt v4 file is a hard error.
//
// Close the table to release the mapping deterministically; otherwise a
// finalizer releases it when the table becomes unreachable.
func OpenMapped(path string) (*Table, *coloring.Coloring, error) {
	if !hostLittleEndian {
		return nil, nil, fmt.Errorf("%w: big-endian host", ErrNotMappable)
	}
	data, err := mmapFile(path)
	if err != nil {
		return nil, nil, err
	}
	unmap := func() {
		// The table was never built, so nothing aliases data.
		_ = munmapFile(data)
	}
	if len(data) >= 8 {
		magic := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		version := uint32(data[4]) // read before unmap
		if magic == fileMagicV2 || magic == fileMagicV3 {
			unmap()
			return nil, nil, fmt.Errorf("%w: format version %d predates checksums (rewrite with `motivo build` to enable mapping)",
				ErrNotMappable, version)
		}
	}
	p, err := parseV4(data)
	if err != nil {
		unmap()
		return nil, nil, err
	}
	ms := &mappedState{data: data}
	t, col, err := buildFromV4(data, p, ms)
	if err != nil {
		unmap()
		return nil, nil, err
	}
	runtime.SetFinalizer(ms, func(ms *mappedState) { _ = ms.close() })
	return t, col, nil
}

// Mapped reports whether the table is served off a read-only file
// mapping (OpenMapped) rather than heap arenas.
func (t *Table) Mapped() bool { return t.mapped != nil }

// Close releases the file mapping of a mapped table. After Close every
// record access faults, so it must only be called once no query can
// still touch the table. On heap tables (and on repeat calls) it is a
// no-op. Letting a mapped table go unreachable without Close is safe —
// a finalizer releases the mapping — but keeps the virtual mapping alive
// until the next GC cycle.
func (t *Table) Close() error {
	if t.mapped == nil {
		return nil
	}
	runtime.SetFinalizer(t.mapped, nil)
	return t.mapped.close()
}

// verifiedLevel runs level h's deferred verification exactly once and
// returns its result: the CRC-32C of the level's mapped span against the
// directory checksum, then the record-integrity walk. Concurrent callers
// block until the single pass finishes.
func (t *Table) verifiedLevel(h int) error {
	lv := &t.verify[h]
	lv.once.Do(func() {
		span := t.mapped.data[lv.off : lv.off+lv.len]
		if sum := crc32.Checksum(span, crcTable); sum != lv.sum {
			lv.err = fmt.Errorf("table: level %d checksum mismatch (%#x, directory says %#x): corrupted file", h, sum, lv.sum)
			return
		}
		lv.err = t.validateLevel(h)
	})
	return lv.err
}

// ensureVerified is the first-touch hook Rec runs on mapped tables. A
// failed check panics: by the time a query touches a level the caller
// holds Views into the mapping, and serving counts off bytes that just
// failed their checksum is not an option (same contract as the
// corrupt-record panic below — use Verify up front to get an error
// instead).
func (t *Table) ensureVerified(h int) {
	if err := t.verifiedLevel(h); err != nil {
		panic(err.Error())
	}
}

// Verify forces every deferred integrity check. On a mapped table that
// is the whole-file checksum plus each level's first-touch verification
// (subsequent Verify calls and record accesses re-verify nothing); on a
// heap table everything was already checked at load and this is
// Validate. Use it to fail fast — at engine start, or after a table file
// may have been touched — instead of panicking mid-query.
func (t *Table) Verify() error {
	if t.mapped == nil {
		return t.Validate()
	}
	if sum := crc32.Checksum(t.mapped.data[headerSize:], crcTable); sum != t.mapped.fileSum {
		return fmt.Errorf("table: file checksum mismatch (%#x, header says %#x): corrupted file", sum, t.mapped.fileSum)
	}
	for h := t.storedSizeMin(); h <= t.K; h++ {
		if err := t.verifiedLevel(h); err != nil {
			return err
		}
	}
	return nil
}

// castStarts reinterprets a mapped offset-index section as []int64
// without copying. Safe by construction: b points into a page-aligned
// mapping at a file offset parseV4 checked is 8-byte aligned, the host
// is little-endian (OpenMapped gates on it), and the mapping is
// read-only for its whole lifetime.
func castStarts(b []byte, n int) []int64 {
	if n == 0 {
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), n)
}
