package table

// Smart stars (paper, Section 3.2 "smart stars"): star-shaped treelets have
// closed-form colorful counts — the star S_h rooted at its center v with
// color set C has exactly ∏_{c ∈ C\{col(v)}} d_c(v) colorful copies, where
// d_c(v) is v's c-colored degree. Materializing those records through the
// dynamic program wastes both build time and table bytes, so a smart table
// never stores them: it keeps one compact colored-degree summary per node
// (k small counters) and synthesizes star records on demand behind the same
// View interface the samplers already read through.
//
// This implementation closes the family under one more level: every rooted
// treelet of height ≤ 2 ("stars of stars" — a root whose child subtrees are
// all stars) is synthesizable from the degree summaries alone, because
// disjoint color sets make the child choices independent:
//
//	c(T_C, v) = Σ_{ {C_1,…,C_p} partition of C\{col v} }  ∏_i w_v(C_i)
//	w_v(C')   = Σ_{u ~ v, col(u) ∈ C'}  ∏_{c ∈ C'\{col u}} d_c(u)
//
// where the partition parts match the child star sizes and parts assigned
// to identical child shapes are taken unordered (which is exactly the β_T
// correction of the DP, performed combinatorially instead of by division).
// Distinctness of all k nodes is guaranteed by the disjoint colors, the
// same argument the color-coding DP rests on, so the synthesized counts are
// entry-identical to what the DP would have materialized.
//
// Height ≤ 2 covers every treelet of size ≤ 3, so a smart table stores no
// levels below size 4 at all — no arenas, no offset indexes — and levels
// ≥ 4 store only the height-≥ 3 shapes. On the ER benchmark graph at k=6
// this cuts total table bytes by ~2.7x (see TestSmartStarsTableBytes).

import (
	"fmt"
	"math/bits"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// maxSynthHeight is the largest rooted-treelet height the degree summaries
// can synthesize: 0 (leaf), 1 (star at its center), 2 (star of stars).
const maxSynthHeight = 2

// minStoredSize is the smallest treelet size with any materialized shape:
// every rooted tree on ≤ 3 nodes has height ≤ 2, so smart tables store no
// level below it.
const minStoredSize = 4

// starGroup is one run of identical star-shaped child subtrees of a
// synthesized shape's root: mult children of size nodes each.
type starGroup struct {
	size int
	mult int
}

// synthShape is one synthesized (height ≤ 2) rooted treelet shape: its code
// and the star sizes of its child subtrees, grouped by multiplicity in
// canonical (ascending size) order.
type synthShape struct {
	t      treelet.Treelet
	groups []starGroup
}

// smartState is the synthesis machinery of a smart table: the graph, the
// node colors, the packed colored-degree summaries, and the synthesized
// shape directory per treelet size. All fields are immutable once attached,
// so Views over a smart table stay safe for concurrent readers.
type smartState struct {
	g      *graph.Graph // nil between Load and AttachGraph
	colors []uint8
	deg    []uint32 // deg[v*k+c] = number of neighbors of v with color c

	synth    [][]synthShape // synth[h]: synthesized shapes of size h, code order
	synthSet map[treelet.Treelet]*synthShape
}

// SmartStars reports whether the table synthesizes star-family records from
// colored-degree summaries instead of storing them.
func (t *Table) SmartStars() bool { return t.smart != nil }

// GraphAttached reports whether a smart table has its host graph bound (a
// freshly loaded table does not, until AttachGraph).
func (t *Table) GraphAttached() bool { return t.smart != nil && t.smart.g != nil }

// colorDegrees computes the per-node colored-degree summary of g under
// colors: k counters per node.
func colorDegrees(g *graph.Graph, colors []uint8, k int) []uint32 {
	deg := make([]uint32, g.NumNodes()*k)
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		row := deg[int(v)*k : int(v)*k+k]
		for _, u := range g.Neighbors(v) {
			row[colors[u]]++
		}
	}
	return deg
}

// newSmartState builds the immutable synthesis directory for size k.
func newSmartState(k int) *smartState {
	cat := treelet.NewCatalog(k)
	s := &smartState{
		synth:    make([][]synthShape, k+1),
		synthSet: make(map[treelet.Treelet]*synthShape),
	}
	for h := 1; h <= k; h++ {
		for _, t := range cat.BySize[h] {
			if cat.Height(t) > maxSynthHeight {
				continue
			}
			sh := synthShape{t: t}
			for _, c := range t.Children() {
				n := c.Size()
				if m := len(sh.groups); m > 0 && sh.groups[m-1].size == n {
					sh.groups[m-1].mult++
				} else {
					sh.groups = append(sh.groups, starGroup{size: n, mult: 1})
				}
			}
			s.synth[h] = append(s.synth[h], sh)
		}
		for i := range s.synth[h] {
			s.synthSet[s.synth[h][i].t] = &s.synth[h][i]
		}
	}
	return s
}

// EnableSmartStars switches a freshly created table into smart mode: star
// and star-of-stars records are synthesized from colored-degree summaries
// of g under col, and levels below minStoredSize are never stored. It must
// be called before any record is installed (the build phase calls it right
// after New).
func (t *Table) EnableSmartStars(g *graph.Graph, col *coloring.Coloring) error {
	if col == nil || col.K != t.K {
		return fmt.Errorf("table: smart stars need a %d-coloring", t.K)
	}
	if g.NumNodes() != t.N || len(col.Colors) != t.N {
		return fmt.Errorf("table: smart stars: graph has %d nodes, coloring %d, table %d",
			g.NumNodes(), len(col.Colors), t.N)
	}
	for h := 1; h <= t.K; h++ {
		if len(t.levels[h].arena) > 0 {
			return fmt.Errorf("table: EnableSmartStars on a table with stored records")
		}
	}
	s := newSmartState(t.K)
	s.g = g
	s.colors = col.Colors
	s.deg = colorDegrees(g, col.Colors, t.K)
	t.smart = s
	for h := 1; h <= t.K && h < minStoredSize; h++ {
		t.levels[h] = level{} // fully synthetic: no arena, no offset index
	}
	return nil
}

// setSmartFromFile installs the smart state of a loaded table: colors and
// degree summaries come from the file; the graph arrives later through
// AttachGraph (which cross-checks the summaries against it).
func (t *Table) setSmartFromFile(colors []uint8, deg []uint32) {
	s := newSmartState(t.K)
	s.colors = colors
	s.deg = deg
	t.smart = s
	for h := 1; h <= t.K && h < minStoredSize; h++ {
		t.levels[h] = level{}
	}
}

// AttachGraph binds the host graph to a smart table loaded from disk.
// Synthesis walks adjacency, so a smart table cannot serve queries until
// the graph is attached; the stored degree summaries are verified against
// the graph, which catches a table paired with the wrong graph (or the
// wrong node order) at open time instead of as silently wrong counts.
func (t *Table) AttachGraph(g *graph.Graph) error {
	if t.smart == nil {
		return nil
	}
	if g.NumNodes() != t.N {
		return fmt.Errorf("table: graph has %d nodes, table %d", g.NumNodes(), t.N)
	}
	want := colorDegrees(g, t.smart.colors, t.K)
	for i, d := range want {
		if t.smart.deg[i] != d {
			return fmt.Errorf("table: colored-degree summary of node %d disagrees with the graph (wrong graph for this table?)", i/t.K)
		}
	}
	t.smart.g = g
	return nil
}

// synthesized reports whether shape records are synthesized rather than
// stored (smart tables only; the shape must belong to the catalog).
func (t *Table) synthesized(shape treelet.Treelet) bool {
	if t.smart == nil {
		return false
	}
	_, ok := t.smart.synthSet[shape]
	return ok
}

// --- the closed-form counts -------------------------------------------------

// SynthCache memoizes the neighbor-sum terms w_v(C') of star synthesis.
// The terms depend only on the (immutable) colored-degree summaries, so
// cached values never go stale; the cache exists because the build DP and
// the sampling descent ask for the same (v, C') many times. A cache must
// not be shared across goroutines — each build worker and each Urn owns
// one, mirroring how the urn's neighbor buffers are goroutine-local.
type SynthCache struct {
	m map[uint64]u128.Uint128
}

// NewSynthCache returns an empty cache.
func NewSynthCache() *SynthCache {
	return &SynthCache{m: make(map[uint64]u128.Uint128)}
}

// degOf returns d_c(v).
func (s *smartState) degOf(k int, v int32, c uint8) uint32 { return s.deg[int(v)*k+int(c)] }

// wv computes w_v(C') = Σ_{u~v, col(u)∈C'} ∏_{c∈C'\{col u}} d_c(u): the
// number of colorful stars with color set C' centered at a neighbor of v.
// For singleton C' this is just d_c(v) — no neighbor sweep.
func (s *smartState) wv(k int, v int32, cs treelet.ColorSet, cache *SynthCache) u128.Uint128 {
	if cs.Card() == 1 {
		return u128.From64(uint64(s.degOf(k, v, uint8(bits.TrailingZeros16(uint16(cs))))))
	}
	var key uint64
	if cache != nil {
		key = uint64(uint32(v))<<treelet.ColorBits | uint64(cs)
		if val, ok := cache.m[key]; ok {
			return val
		}
	}
	total := u128.Zero
	for _, u := range s.g.Neighbors(v) {
		cu := s.colors[u]
		if !cs.Has(cu) {
			continue
		}
		prod := u128.One
		rest := cs &^ treelet.Singleton(cu)
		for rest != 0 {
			c := uint8(bits.TrailingZeros16(uint16(rest)))
			rest &= rest - 1
			d := s.degOf(k, u, c)
			if d == 0 {
				prod = u128.Zero
				break
			}
			prod = prod.Mul64(uint64(d))
		}
		total = total.Add(prod)
	}
	if cache != nil {
		cache.m[key] = total
	}
	return total
}

// assign sums ∏_i w_v(C_i) over all unordered partitions of avail into
// parts matching the remaining child-star groups.
func (s *smartState) assign(k int, v int32, groups []starGroup, avail treelet.ColorSet, cache *SynthCache) u128.Uint128 {
	if len(groups) == 0 {
		if avail == 0 {
			return u128.One
		}
		return u128.Zero
	}
	return s.pick(k, v, groups, avail, 0, groups[0].mult, cache)
}

// pick chooses the next part for the current group: parts of one group are
// enumerated in strictly increasing mask order, which counts each unordered
// selection of identical child shapes exactly once (the combinatorial form
// of the DP's β_T division).
func (s *smartState) pick(k int, v int32, groups []starGroup, avail, min treelet.ColorSet, left int, cache *SynthCache) u128.Uint128 {
	if left == 0 {
		return s.assign(k, v, groups[1:], avail, cache)
	}
	total := u128.Zero
	subsetsAsc(avail, groups[0].size, func(part treelet.ColorSet) {
		if part <= min {
			return
		}
		w := s.wv(k, v, part, cache)
		if w.IsZero() {
			return
		}
		rest := s.pick(k, v, groups, avail&^part, part, left-1, cache)
		if !rest.IsZero() {
			total = total.Add(w.Mul(rest))
		}
	})
	return total
}

// synthCount computes the synthesized c(T_C, v) for a height-≤2 shape.
func (s *smartState) synthCount(k int, v int32, sh *synthShape, cs treelet.ColorSet, cache *SynthCache) u128.Uint128 {
	own := treelet.Singleton(s.colors[v])
	if cs&own == 0 || cs.Card() != sh.t.Size() {
		return u128.Zero
	}
	return s.assign(k, v, sh.groups, cs&^own, cache)
}

// synthShapeEach enumerates the synthesized entries of one shape at node v
// in ascending color-set order, calling fn for every nonzero count; fn
// returns false to stop early. The return value reports whether the walk
// ran to completion.
func (s *smartState) synthShapeEach(k int, v int32, sh *synthShape, cache *SynthCache, fn func(treelet.Colored, u128.Uint128) bool) bool {
	own := treelet.Singleton(s.colors[v])
	avail := ((treelet.ColorSet(1) << k) - 1) &^ own
	done := true
	subsetsAsc(avail, sh.t.Size()-1, func(rest treelet.ColorSet) {
		if !done {
			return
		}
		cnt := s.assign(k, v, sh.groups, rest, cache)
		if cnt.IsZero() {
			return
		}
		if !fn(treelet.MakeColored(sh.t, rest|own), cnt) {
			done = false
		}
	})
	return done
}

// subsetsAsc enumerates the size-n subsets of mask in ascending numeric
// order: the largest chosen bit ascends in the outer position, recursively.
func subsetsAsc(mask treelet.ColorSet, n int, fn func(treelet.ColorSet)) {
	if n == 0 {
		fn(0)
		return
	}
	var posns [treelet.ColorBits]uint8
	m := 0
	for rest := mask; rest != 0; rest &= rest - 1 {
		posns[m] = uint8(bits.TrailingZeros16(uint16(rest)))
		m++
	}
	combosAsc(posns[:m], n, 0, fn)
}

// combosAsc yields size-n bit combinations of the ascending positions list,
// each OR-ed with acc, in ascending numeric order.
func combosAsc(posns []uint8, n int, acc treelet.ColorSet, fn func(treelet.ColorSet)) {
	if n == 0 {
		fn(acc)
		return
	}
	for i := n - 1; i < len(posns); i++ {
		top := treelet.ColorSet(1) << posns[i]
		combosAsc(posns[:i], n-1, acc|top, fn)
	}
}
