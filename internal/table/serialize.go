package table

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// Serialization of a complete count table. Motivo persists its treelet
// count tables (and the σ_ij caches) on disk so the expensive build-up
// phase can be reused across sampling sessions (Section 3.3); this is that
// format: a header, then for every size level and node the sorted record
// as (key, cumulative count) pairs, little-endian.

const tableMagic = uint32(0x4d765431) // "MvT1"

// WriteTo serializes the table. It returns the number of bytes written.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		m, err := bw.Write(buf[:])
		n += int64(m)
		return err
	}
	zr := uint64(0)
	if t.ZeroRooted {
		zr = 1
	}
	for _, h := range []uint64{uint64(tableMagic), uint64(t.K), uint64(t.N), zr} {
		if err := put(h); err != nil {
			return n, err
		}
	}
	for h := 1; h <= t.K; h++ {
		for v := 0; v < t.N; v++ {
			rec := &t.Recs[h][v]
			if err := put(uint64(rec.Len())); err != nil {
				return n, err
			}
			for i := range rec.Keys {
				if err := put(uint64(rec.Keys[i])); err != nil {
					return n, err
				}
				if err := put(rec.Cum[i].Lo); err != nil {
					return n, err
				}
				if err := put(rec.Cum[i].Hi); err != nil {
					return n, err
				}
			}
		}
	}
	return n, bw.Flush()
}

// ReadTable deserializes a table written by WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, err
	}
	if uint32(magic) != tableMagic {
		return nil, fmt.Errorf("table: bad magic %#x", magic)
	}
	k64, err := get()
	if err != nil {
		return nil, err
	}
	n64, err := get()
	if err != nil {
		return nil, err
	}
	zr, err := get()
	if err != nil {
		return nil, err
	}
	k, n := int(k64), int(n64)
	if k < 1 || k > treelet.MaxK || n < 0 {
		return nil, fmt.Errorf("table: implausible header k=%d n=%d", k, n)
	}
	t := New(n, k, zr == 1)
	for h := 1; h <= k; h++ {
		for v := 0; v < n; v++ {
			ln, err := get()
			if err != nil {
				return nil, err
			}
			if ln == 0 {
				continue
			}
			rec := Record{
				Keys: make([]treelet.Colored, ln),
				Cum:  make([]u128.Uint128, ln),
			}
			for i := range rec.Keys {
				kk, err := get()
				if err != nil {
					return nil, err
				}
				rec.Keys[i] = treelet.Colored(kk)
				if rec.Cum[i].Lo, err = get(); err != nil {
					return nil, err
				}
				if rec.Cum[i].Hi, err = get(); err != nil {
					return nil, err
				}
			}
			t.Recs[h][v] = rec
		}
	}
	return t, nil
}
