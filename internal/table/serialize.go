package table

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/coloring"
	"repro/internal/treelet"
)

// Persistent table format — the build-once / query-many half of the
// storage engine. Motivo persists its count tables on disk so the
// expensive build-up phase is paid once and amortized over many sampling
// sessions (Section 3.3); this file is that format, version 3:
//
//	u32  magic "MvT3" (little-endian 0x4d765433)
//	u32  version (3)
//	u32  k
//	u32  flags (bit 0: zero-rooted; bit 1: coloring section present;
//	            bit 2: smart stars)
//	u64  n (number of nodes)
//	[coloring section, if flagged]
//	  f64  PColorful (IEEE-754 bits)
//	  n×u8 node colors
//	[smart-star section, if flagged]
//	  n×k uvarint colored degrees d_c(v), node-major, color-minor
//	[for each stored size h — 1..k, or 4..k when smart stars are on]
//	  u64   arena length in bytes
//	  n×i64 per-node start offsets (-1 = empty record)
//	  arena bytes (packed records, the wire format of packed.go)
//
// Everything is little-endian. The arenas are written exactly as they live
// in RAM, so opening a table is one sequential read per section straight
// into the arena — no per-record decoding. The coloring travels with the
// table because the counts are only meaningful under the coloring that
// produced them (and the estimator needs its PColorful). A smart table
// stores the colored-degree summaries instead of any star-family records
// and no levels below size 4 at all (those are fully synthesized); the
// summaries are cross-checked against the host graph at AttachGraph time,
// so pairing a table with the wrong graph fails at open, not as silently
// wrong counts.
//
// Version 2 ("MvT2") files — identical except for the magic, the version,
// and the absence of the smart-star flag and section — still load.

const (
	fileMagicV2 = uint32(0x4d765432) // "MvT2"
	fileMagicV3 = uint32(0x4d765433) // "MvT3"
	fileVersion = uint32(3)

	flagZeroRooted  = 1 << 0
	flagHasColoring = 1 << 1
	flagSmartStars  = 1 << 2
)

// storedSizeMin returns the smallest treelet size the table stores levels
// for: smart tables synthesize everything below minStoredSize.
func (t *Table) storedSizeMin() int {
	if t.smart != nil {
		return minStoredSize
	}
	return 1
}

// Save serializes the table (and, when non-nil, its coloring) to w. It
// returns the number of bytes written. A smart table requires the coloring
// (its synthesis state embeds the node colors).
func Save(w io.Writer, t *Table, col *coloring.Coloring) (int64, error) {
	if col != nil && len(col.Colors) != t.N {
		return 0, fmt.Errorf("table: coloring covers %d nodes, table has %d", len(col.Colors), t.N)
	}
	if t.smart != nil && col == nil {
		return 0, fmt.Errorf("table: a smart table must be saved with its coloring")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	flags := uint32(0)
	if t.ZeroRooted {
		flags |= flagZeroRooted
	}
	if col != nil {
		flags |= flagHasColoring
	}
	if t.smart != nil {
		flags |= flagSmartStars
	}
	for _, v := range []uint32{fileMagicV3, fileVersion, uint32(t.K), flags} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	if err := write(uint64(t.N)); err != nil {
		return n, err
	}
	if col != nil {
		if err := write(math.Float64bits(col.PColorful)); err != nil {
			return n, err
		}
		if err := write(col.Colors); err != nil {
			return n, err
		}
	}
	if t.smart != nil {
		var buf []byte
		for _, d := range t.smart.deg {
			buf = binary.AppendUvarint(buf[:0], uint64(d))
			if _, err := bw.Write(buf); err != nil {
				return n, err
			}
			n += int64(len(buf))
		}
	}
	for h := t.storedSizeMin(); h <= t.K; h++ {
		lv := &t.levels[h]
		if err := write(uint64(len(lv.arena))); err != nil {
			return n, err
		}
		if err := write(lv.starts); err != nil {
			return n, err
		}
		if err := write(lv.arena); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// WriteTo serializes the table without a coloring section. It returns the
// number of bytes written.
func (t *Table) WriteTo(w io.Writer) (int64, error) { return Save(w, t, nil) }

// maxLoadNodes bounds the node count a loaded header may declare: node ids
// are int32 throughout the pipeline, so anything larger is corruption and
// must fail fast instead of attempting a huge allocation (the bound also
// keeps int(n) safe on 32-bit platforms).
const maxLoadNodes = 1<<31 - 1

// Load deserializes a table written by Save — format version 3, or the
// earlier version 2. The returned coloring is nil when the file carries
// none. Every record is validated entry-by-entry, so corruption surfaces
// here instead of as a panic mid-query. A loaded smart table must have its
// host graph bound with AttachGraph before it can serve views.
func Load(r io.Reader) (*Table, *coloring.Coloring, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	read := func(data any) error { return binary.Read(br, binary.LittleEndian, data) }
	var magic, version, k32, flags uint32
	for _, p := range []*uint32{&magic, &version, &k32, &flags} {
		if err := read(p); err != nil {
			return nil, nil, fmt.Errorf("table: truncated header: %w", err)
		}
	}
	switch {
	case magic == fileMagicV3 && version == 3:
	case magic == fileMagicV2 && version == 2:
		if flags&flagSmartStars != 0 {
			return nil, nil, fmt.Errorf("table: version-2 file declares smart stars")
		}
	default:
		return nil, nil, fmt.Errorf("table: bad magic/version %#x/%d (want %#x/3 or %#x/2)",
			magic, version, fileMagicV3, fileMagicV2)
	}
	var n64 uint64
	if err := read(&n64); err != nil {
		return nil, nil, err
	}
	k := int(k32)
	if k < 1 || k > treelet.MaxK || n64 > maxLoadNodes {
		return nil, nil, fmt.Errorf("table: implausible header k=%d n=%d", k, n64)
	}
	n := int(n64)
	t := New(n, k, flags&flagZeroRooted != 0)
	var col *coloring.Coloring
	if flags&flagHasColoring != 0 {
		var pbits uint64
		if err := read(&pbits); err != nil {
			return nil, nil, fmt.Errorf("table: coloring section: %w", err)
		}
		col = &coloring.Coloring{
			K:         k,
			Colors:    make([]uint8, n),
			PColorful: math.Float64frombits(pbits),
		}
		if err := read(col.Colors); err != nil {
			return nil, nil, fmt.Errorf("table: coloring section: %w", err)
		}
		for v, c := range col.Colors {
			if int(c) >= k {
				return nil, nil, fmt.Errorf("table: node %d has color %d ≥ k=%d", v, c, k)
			}
		}
	}
	if flags&flagSmartStars != 0 {
		if col == nil {
			return nil, nil, fmt.Errorf("table: smart-star table carries no coloring section")
		}
		deg := make([]uint32, n*k)
		for i := range deg {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, fmt.Errorf("table: smart-star degree section: %w", err)
			}
			if d >= uint64(n) {
				return nil, nil, fmt.Errorf("table: implausible colored degree %d (n=%d)", d, n)
			}
			deg[i] = uint32(d)
		}
		t.setSmartFromFile(col.Colors, deg)
	}
	for h := t.storedSizeMin(); h <= k; h++ {
		var alen uint64
		if err := read(&alen); err != nil {
			return nil, nil, fmt.Errorf("table: level %d header: %w", h, err)
		}
		// Fail fast on headers declaring arenas beyond anything this
		// implementation can build (records are capped well below this by
		// RAM long before), instead of attempting the allocation.
		const maxArena = 1 << 40 // 1 TiB per level
		if alen > maxArena {
			return nil, nil, fmt.Errorf("table: implausible level %d arena size %d", h, alen)
		}
		starts := make([]int64, n)
		if err := read(starts); err != nil {
			return nil, nil, fmt.Errorf("table: level %d offset index: %w", h, err)
		}
		arena := make([]byte, alen)
		if _, err := io.ReadFull(br, arena); err != nil {
			return nil, nil, fmt.Errorf("table: level %d arena: %w", h, err)
		}
		for v, off := range starts {
			if off < -1 || off > int64(alen) {
				return nil, nil, fmt.Errorf("table: level %d record %d offset %d out of range", h, v, off)
			}
		}
		t.levels[h] = level{arena: arena, starts: starts}
	}
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, col, nil
}

// ReadTable deserializes just the table, discarding any coloring section.
func ReadTable(r io.Reader) (*Table, error) {
	t, _, err := Load(r)
	return t, err
}

// SaveFile writes the table (and optional coloring) to path, replacing any
// existing file. It returns the file size in bytes.
func SaveFile(path string, t *Table, col *coloring.Coloring) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := Save(f, t, col)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// LoadFile opens a table written by SaveFile with one sequential read per
// section.
func LoadFile(path string) (*Table, *coloring.Coloring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f)
}
