package table

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/coloring"
	"repro/internal/treelet"
)

// Persistent table format — the build-once / query-many half of the
// storage engine. Motivo persists its count tables on disk so the
// expensive build-up phase is paid once and amortized over many sampling
// sessions (Section 3.3); this file is that format, version 4:
//
//	[header, 48 bytes]
//	  u32  magic "MvT4" (little-endian 0x4d765434)
//	  u32  version (4)
//	  u32  k
//	  u32  flags (bit 0: zero-rooted; bit 1: coloring section present;
//	              bit 2: smart stars)
//	  u64  n (number of nodes)
//	  u64  meta-region length in bytes
//	  u32  file checksum  (CRC-32C of every byte after the header)
//	  u32  meta checksum  (CRC-32C of the meta region)
//	  u64  reserved (zero)
//	[level directory: one 32-byte entry per stored size h — 1..k, or
//	 4..k when smart stars are on]
//	  u64  arena length in bytes
//	  u64  absolute file offset of the offset index (8-byte aligned)
//	  u64  absolute file offset of the arena (= index offset + 8n)
//	  u32  level checksum (CRC-32C of the index bytes ‖ arena bytes)
//	  u32  reserved (zero)
//	[meta region]
//	  [coloring section, if flagged]
//	    f64  PColorful (IEEE-754 bits)
//	    n×u8 node colors
//	  [smart-star section, if flagged]
//	    n×k uvarint colored degrees d_c(v), node-major, color-minor
//	[for each stored level, in directory order]
//	  zero padding to the next 8-byte-aligned file offset
//	  n×i64 per-node start offsets (-1 = empty record)
//	  arena bytes (packed records, the wire format of packed.go)
//
// Everything is little-endian. The arenas are written exactly as they
// live in RAM, so a heap open is one sequential read per section — and,
// because the offset indexes sit at 8-byte-aligned offsets, OpenMapped
// (mmap.go) can serve the same file zero-copy: arenas and indexes point
// straight into the read-only mapping, the directory makes the open
// O(level count) instead of O(file size), and the per-level checksums
// let validation happen lazily on first touch instead of at open time.
// The coloring travels with the table because the counts are only
// meaningful under the coloring that produced them (and the estimator
// needs its PColorful). A smart table stores the colored-degree
// summaries instead of any star-family records and no levels below size
// 4 at all (those are fully synthesized); the summaries are
// cross-checked against the host graph at AttachGraph time, so pairing a
// table with the wrong graph fails at open, not as silently wrong
// counts.
//
// Version 3 ("MvT3") files — no checksums, no directory, no alignment,
// sections streamed back-to-back — and version 2 ("MvT2", additionally
// predating smart stars) still load via the heap path; SaveV3 still
// writes version 3 for downgrade scenarios.

const (
	fileMagicV2 = uint32(0x4d765432) // "MvT2"
	fileMagicV3 = uint32(0x4d765433) // "MvT3"
	fileMagicV4 = uint32(0x4d765434) // "MvT4"
	fileVersion = uint32(4)

	flagZeroRooted  = 1 << 0
	flagHasColoring = 1 << 1
	flagSmartStars  = 1 << 2

	headerSize   = 48
	dirEntrySize = 32
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on
// amd64/arm64, so whole-file and per-level sums cost a memory sweep.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// storedSizeMin returns the smallest treelet size the table stores levels
// for: smart tables synthesize everything below minStoredSize.
func (t *Table) storedSizeMin() int {
	if t.smart != nil {
		return minStoredSize
	}
	return 1
}

// checkSaveable validates the (table, coloring) pair both writers share.
func checkSaveable(t *Table, col *coloring.Coloring) error {
	if col != nil && len(col.Colors) != t.N {
		return fmt.Errorf("table: coloring covers %d nodes, table has %d", len(col.Colors), t.N)
	}
	if t.smart != nil && col == nil {
		return fmt.Errorf("table: a smart table must be saved with its coloring")
	}
	return nil
}

// saveFlags computes the format flag word for t saved with col.
func saveFlags(t *Table, col *coloring.Coloring) uint32 {
	flags := uint32(0)
	if t.ZeroRooted {
		flags |= flagZeroRooted
	}
	if col != nil {
		flags |= flagHasColoring
	}
	if t.smart != nil {
		flags |= flagSmartStars
	}
	return flags
}

// metaRegion encodes the coloring and smart-degree sections into one byte
// string — the v4 meta region (and, section by section, the exact bytes
// the v3 writer streams).
func metaRegion(t *Table, col *coloring.Coloring) []byte {
	var meta []byte
	if col != nil {
		meta = binary.LittleEndian.AppendUint64(meta, math.Float64bits(col.PColorful))
		meta = append(meta, col.Colors...)
	}
	if t.smart != nil {
		for _, d := range t.smart.deg {
			meta = binary.AppendUvarint(meta, uint64(d))
		}
	}
	return meta
}

// Save serializes the table (and, when non-nil, its coloring) to w in
// format version 4. It returns the number of bytes written. A smart table
// requires the coloring (its synthesis state embeds the node colors).
//
// The header carries a whole-file checksum and every level carries its
// own, so Save computes all sums in an in-memory pre-pass (w need not
// seek) before streaming the sections out.
func Save(w io.Writer, t *Table, col *coloring.Coloring) (int64, error) {
	if err := checkSaveable(t, col); err != nil {
		return 0, err
	}
	storedMin := t.storedSizeMin()
	// A smart table with k below the smallest stored size is fully
	// synthetic: zero stored levels, the meta region is the whole payload.
	nLevels := max(t.K-storedMin+1, 0)
	meta := metaRegion(t, col)

	// Lay the levels out and fill the directory: each offset index starts
	// at the next 8-byte-aligned file offset (zero-padded) so a mapped
	// open can point an []int64 straight at it.
	dir := make([]byte, nLevels*dirEntrySize)
	startsEnc := make([][]byte, nLevels)
	type levelLayout struct {
		arenaLen, startsOff, arenaOff uint64
	}
	layout := make([]levelLayout, nLevels)
	off := uint64(headerSize + len(dir) + len(meta))
	for i := range layout {
		lv := &t.levels[storedMin+i]
		enc := make([]byte, 8*len(lv.starts))
		for j, s := range lv.starts {
			binary.LittleEndian.PutUint64(enc[8*j:], uint64(s))
		}
		startsEnc[i] = enc
		off = (off + 7) &^ 7
		layout[i] = levelLayout{
			arenaLen:  uint64(len(lv.arena)),
			startsOff: off,
			arenaOff:  off + uint64(len(enc)),
		}
		off = layout[i].arenaOff + layout[i].arenaLen
		sum := crc32.Update(0, crcTable, enc)
		sum = crc32.Update(sum, crcTable, lv.arena)
		d := dir[i*dirEntrySize:]
		binary.LittleEndian.PutUint64(d[0:], layout[i].arenaLen)
		binary.LittleEndian.PutUint64(d[8:], layout[i].startsOff)
		binary.LittleEndian.PutUint64(d[16:], layout[i].arenaOff)
		binary.LittleEndian.PutUint32(d[24:], sum)
	}
	total := int64(off)

	// The file checksum covers every byte after the header, in file
	// order: directory, meta region, then each level's padding + index +
	// arena.
	var pad [8]byte
	fileSum := crc32.Update(0, crcTable, dir)
	fileSum = crc32.Update(fileSum, crcTable, meta)
	pos := uint64(headerSize + len(dir) + len(meta))
	for i := range layout {
		fileSum = crc32.Update(fileSum, crcTable, pad[:layout[i].startsOff-pos])
		fileSum = crc32.Update(fileSum, crcTable, startsEnc[i])
		fileSum = crc32.Update(fileSum, crcTable, t.levels[storedMin+i].arena)
		pos = layout[i].arenaOff + layout[i].arenaLen
	}

	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:], fileMagicV4)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.K))
	binary.LittleEndian.PutUint32(hdr[12:], saveFlags(t, col))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(t.N))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(meta)))
	binary.LittleEndian.PutUint32(hdr[32:], fileSum)
	binary.LittleEndian.PutUint32(hdr[36:], crc32.Checksum(meta, crcTable))

	bw := bufio.NewWriterSize(w, 1<<20)
	for _, b := range [][]byte{hdr, dir, meta} {
		if _, err := bw.Write(b); err != nil {
			return 0, err
		}
	}
	pos = uint64(headerSize + len(dir) + len(meta))
	for i := range layout {
		if _, err := bw.Write(pad[:layout[i].startsOff-pos]); err != nil {
			return 0, err
		}
		if _, err := bw.Write(startsEnc[i]); err != nil {
			return 0, err
		}
		if _, err := bw.Write(t.levels[storedMin+i].arena); err != nil {
			return 0, err
		}
		pos = layout[i].arenaOff + layout[i].arenaLen
	}
	return total, bw.Flush()
}

// SaveV3 serializes the table in the previous format version 3 — no
// checksums, no directory, no alignment — for downgrade scenarios and for
// exercising the legacy load path. New tables should use Save.
func SaveV3(w io.Writer, t *Table, col *coloring.Coloring) (int64, error) {
	if err := checkSaveable(t, col); err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	for _, v := range []uint32{fileMagicV3, 3, uint32(t.K), saveFlags(t, col)} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	if err := write(uint64(t.N)); err != nil {
		return n, err
	}
	if meta := metaRegion(t, col); len(meta) > 0 {
		if _, err := bw.Write(meta); err != nil {
			return n, err
		}
		n += int64(len(meta))
	}
	for h := t.storedSizeMin(); h <= t.K; h++ {
		lv := &t.levels[h]
		if err := write(uint64(len(lv.arena))); err != nil {
			return n, err
		}
		if err := write(lv.starts); err != nil {
			return n, err
		}
		if err := write(lv.arena); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// WriteTo serializes the table without a coloring section. It returns the
// number of bytes written.
func (t *Table) WriteTo(w io.Writer) (int64, error) { return Save(w, t, nil) }

// maxLoadNodes bounds the node count a loaded header may declare: node ids
// are int32 throughout the pipeline, so anything larger is corruption and
// must fail fast instead of attempting a huge allocation (the bound also
// keeps int(n) safe on 32-bit platforms).
const maxLoadNodes = 1<<31 - 1

// maxArena bounds a level arena a loaded header may declare: anything
// beyond it is corruption (records are capped well below this by RAM long
// before), and must fail fast instead of attempting the allocation.
const maxArena = 1 << 40 // 1 TiB per level

// Load deserializes a table written by Save — format version 4, or the
// earlier versions 3 and 2. The returned coloring is nil when the file
// carries none. Every record is validated entry-by-entry (and, for v4,
// the whole-file checksum is verified), so corruption surfaces here
// instead of as a panic mid-query. A loaded smart table must have its
// host graph bound with AttachGraph before it can serve views.
func Load(r io.Reader) (*Table, *coloring.Coloring, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	if head, _ := br.Peek(4); len(head) == 4 && binary.LittleEndian.Uint32(head) == fileMagicV4 {
		buf, err := io.ReadAll(br)
		if err != nil {
			return nil, nil, fmt.Errorf("table: reading v4 file: %w", err)
		}
		return loadV4(buf)
	}
	return loadLegacy(br)
}

// loadV4 deserializes a version-4 file from its complete byte image:
// whole-file checksum first, then the layout parse, then the same
// entry-by-entry validation the legacy loader runs. The returned table's
// arenas alias buf (one buffer keeps every level, no per-level copies);
// offset indexes are decoded into fresh slices.
func loadV4(buf []byte) (*Table, *coloring.Coloring, error) {
	p, err := parseV4(buf)
	if err != nil {
		return nil, nil, err
	}
	if sum := crc32.Checksum(buf[headerSize:], crcTable); sum != p.fileSum {
		return nil, nil, fmt.Errorf("table: file checksum mismatch (%#x, header says %#x): corrupted file", sum, p.fileSum)
	}
	t, col, err := buildFromV4(buf, p, nil)
	if err != nil {
		return nil, nil, err
	}
	for h := t.storedSizeMin(); h <= t.K; h++ {
		if err := t.validateLevel(h); err != nil {
			return nil, nil, err
		}
	}
	return t, col, nil
}

// v4File is the parsed layout of a version-4 file: header fields plus the
// level directory, bounds-checked against the file image but not yet
// checksummed (the heap loader verifies eagerly, the mapped open lazily).
type v4File struct {
	k         int
	flags     uint32
	n         int
	meta      []byte // aliases the file image
	fileSum   uint32
	metaSum   uint32
	levels    []v4Level
	storedMin int
}

// v4Level is one directory entry.
type v4Level struct {
	arenaLen  uint64
	startsOff uint64
	arenaOff  uint64
	sum       uint32
}

// parseV4 validates the header and level directory of a version-4 file
// image: magic, plausible k/n, in-bounds monotonic section offsets, the
// 8-byte alignment of every offset index, and the meta-region checksum
// (the meta region is O(n) and decoded at open either way, so its sum is
// never deferred). It reads only the header, directory and meta region —
// never the level payloads — which is what keeps a mapped open
// independent of arena size.
func parseV4(buf []byte) (*v4File, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("table: truncated header: %d bytes", len(buf))
	}
	magic := binary.LittleEndian.Uint32(buf[0:])
	version := binary.LittleEndian.Uint32(buf[4:])
	if magic != fileMagicV4 || version != 4 {
		return nil, fmt.Errorf("table: bad magic/version %#x/%d (want %#x/4)", magic, version, fileMagicV4)
	}
	p := &v4File{
		k:       int(binary.LittleEndian.Uint32(buf[8:])),
		flags:   binary.LittleEndian.Uint32(buf[12:]),
		fileSum: binary.LittleEndian.Uint32(buf[32:]),
		metaSum: binary.LittleEndian.Uint32(buf[36:]),
	}
	n64 := binary.LittleEndian.Uint64(buf[16:])
	metaLen := binary.LittleEndian.Uint64(buf[24:])
	if p.k < 1 || p.k > treelet.MaxK || n64 > maxLoadNodes {
		return nil, fmt.Errorf("table: implausible header k=%d n=%d", p.k, n64)
	}
	p.n = int(n64)
	p.storedMin = 1
	if p.flags&flagSmartStars != 0 {
		// k below the smallest stored size is legal: the table is fully
		// synthetic and the directory is empty.
		p.storedMin = minStoredSize
	}
	nLevels := max(p.k-p.storedMin+1, 0)
	dirEnd := uint64(headerSize + nLevels*dirEntrySize)
	metaEnd := dirEnd + metaLen
	if metaEnd > uint64(len(buf)) {
		return nil, fmt.Errorf("table: truncated file: directory + meta region need %d bytes, have %d", metaEnd, len(buf))
	}
	p.meta = buf[dirEnd:metaEnd]
	if sum := crc32.Checksum(p.meta, crcTable); sum != p.metaSum {
		return nil, fmt.Errorf("table: meta-region checksum mismatch (%#x, header says %#x): corrupted file", sum, p.metaSum)
	}
	p.levels = make([]v4Level, nLevels)
	pos := metaEnd
	for i := range p.levels {
		d := buf[headerSize+i*dirEntrySize:]
		lv := v4Level{
			arenaLen:  binary.LittleEndian.Uint64(d[0:]),
			startsOff: binary.LittleEndian.Uint64(d[8:]),
			arenaOff:  binary.LittleEndian.Uint64(d[16:]),
			sum:       binary.LittleEndian.Uint32(d[24:]),
		}
		h := p.storedMin + i
		if lv.arenaLen > maxArena {
			return nil, fmt.Errorf("table: implausible level %d arena size %d", h, lv.arenaLen)
		}
		if lv.startsOff%8 != 0 {
			return nil, fmt.Errorf("table: level %d offset index at unaligned offset %d", h, lv.startsOff)
		}
		if lv.startsOff < pos || lv.arenaOff != lv.startsOff+8*uint64(p.n) {
			return nil, fmt.Errorf("table: level %d directory entry out of order", h)
		}
		end := lv.arenaOff + lv.arenaLen
		if end > uint64(len(buf)) {
			return nil, fmt.Errorf("table: truncated file: level %d needs %d bytes, have %d", h, end, len(buf))
		}
		pos = end
		p.levels[i] = lv
	}
	return p, nil
}

// buildFromV4 constructs the table and coloring over a parsed v4 image.
// With ms == nil (the heap path) the offset indexes are decoded into
// fresh slices and the arenas alias buf; with ms non-nil (the mapped
// path, little-endian hosts only) both indexes and arenas point directly
// into the mapping zero-copy, and per-level verification state is
// installed for the lazy first-touch checks.
func buildFromV4(buf []byte, p *v4File, ms *mappedState) (*Table, *coloring.Coloring, error) {
	t := New(p.n, p.k, p.flags&flagZeroRooted != 0)
	col, rest, err := decodeMeta(p.meta, p.n, p.k, p.flags)
	if err != nil {
		return nil, nil, err
	}
	if p.flags&flagSmartStars != 0 {
		deg, err := decodeSmartDegrees(rest, p.n, p.k)
		if err != nil {
			return nil, nil, err
		}
		t.setSmartFromFile(col.Colors, deg)
		for h := 1; h < p.storedMin; h++ {
			t.levels[h] = level{}
		}
	}
	for i, lv := range p.levels {
		h := p.storedMin + i
		arena := buf[lv.arenaOff : lv.arenaOff+lv.arenaLen : lv.arenaOff+lv.arenaLen]
		startsBytes := buf[lv.startsOff:lv.arenaOff]
		var starts []int64
		if ms != nil {
			starts = castStarts(startsBytes, p.n)
		} else {
			starts = make([]int64, p.n)
			for v := range starts {
				starts[v] = int64(binary.LittleEndian.Uint64(startsBytes[8*v:]))
			}
		}
		for v, off := range starts {
			if off < -1 || off > int64(lv.arenaLen) {
				return nil, nil, fmt.Errorf("table: level %d record %d offset %d out of range", h, v, off)
			}
		}
		t.levels[h] = level{arena: arena, starts: starts}
	}
	if ms != nil {
		ms.fileSum = p.fileSum
		t.mapped = ms
		t.verify = make([]levelVerify, p.k+1)
		for i, lv := range p.levels {
			t.verify[p.storedMin+i] = levelVerify{
				off: int64(lv.startsOff),
				len: int64(lv.arenaOff + lv.arenaLen - lv.startsOff),
				sum: lv.sum,
			}
		}
	}
	return t, col, nil
}

// decodeMeta decodes the coloring section off the front of the meta
// region, returning the remaining bytes (the smart-degree section, when
// flagged). The colors are copied out, never aliased: the coloring
// outlives any mapping teardown.
func decodeMeta(meta []byte, n, k int, flags uint32) (*coloring.Coloring, []byte, error) {
	if flags&flagHasColoring == 0 {
		if flags&flagSmartStars != 0 {
			return nil, nil, fmt.Errorf("table: smart-star table carries no coloring section")
		}
		return nil, meta, nil
	}
	if len(meta) < 8+n {
		return nil, nil, fmt.Errorf("table: coloring section: meta region holds %d bytes, need %d", len(meta), 8+n)
	}
	col := &coloring.Coloring{
		K:         k,
		Colors:    make([]uint8, n),
		PColorful: math.Float64frombits(binary.LittleEndian.Uint64(meta)),
	}
	copy(col.Colors, meta[8:8+n])
	for v, c := range col.Colors {
		if int(c) >= k {
			return nil, nil, fmt.Errorf("table: node %d has color %d ≥ k=%d", v, c, k)
		}
	}
	return col, meta[8+n:], nil
}

// decodeSmartDegrees decodes the n×k uvarint colored-degree section.
func decodeSmartDegrees(b []byte, n, k int) ([]uint32, error) {
	deg := make([]uint32, n*k)
	for i := range deg {
		d, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, fmt.Errorf("table: smart-star degree section: truncated at entry %d", i)
		}
		if d >= uint64(n) {
			return nil, fmt.Errorf("table: implausible colored degree %d (n=%d)", d, n)
		}
		deg[i] = uint32(d)
		b = b[w:]
	}
	return deg, nil
}

// loadLegacy deserializes format versions 3 and 2 — the streaming reader
// the pre-checksum formats use.
func loadLegacy(br *bufio.Reader) (*Table, *coloring.Coloring, error) {
	read := func(data any) error { return binary.Read(br, binary.LittleEndian, data) }
	var magic, version, k32, flags uint32
	for _, p := range []*uint32{&magic, &version, &k32, &flags} {
		if err := read(p); err != nil {
			return nil, nil, fmt.Errorf("table: truncated header: %w", err)
		}
	}
	switch {
	case magic == fileMagicV3 && version == 3:
	case magic == fileMagicV2 && version == 2:
		if flags&flagSmartStars != 0 {
			return nil, nil, fmt.Errorf("table: version-2 file declares smart stars")
		}
	default:
		return nil, nil, fmt.Errorf("table: bad magic/version %#x/%d (want %#x/4, %#x/3 or %#x/2)",
			magic, version, fileMagicV4, fileMagicV3, fileMagicV2)
	}
	var n64 uint64
	if err := read(&n64); err != nil {
		return nil, nil, err
	}
	k := int(k32)
	if k < 1 || k > treelet.MaxK || n64 > maxLoadNodes {
		return nil, nil, fmt.Errorf("table: implausible header k=%d n=%d", k, n64)
	}
	n := int(n64)
	t := New(n, k, flags&flagZeroRooted != 0)
	var col *coloring.Coloring
	if flags&flagHasColoring != 0 {
		var pbits uint64
		if err := read(&pbits); err != nil {
			return nil, nil, fmt.Errorf("table: coloring section: %w", err)
		}
		col = &coloring.Coloring{
			K:         k,
			Colors:    make([]uint8, n),
			PColorful: math.Float64frombits(pbits),
		}
		if err := read(col.Colors); err != nil {
			return nil, nil, fmt.Errorf("table: coloring section: %w", err)
		}
		for v, c := range col.Colors {
			if int(c) >= k {
				return nil, nil, fmt.Errorf("table: node %d has color %d ≥ k=%d", v, c, k)
			}
		}
	}
	if flags&flagSmartStars != 0 {
		if col == nil {
			return nil, nil, fmt.Errorf("table: smart-star table carries no coloring section")
		}
		deg := make([]uint32, n*k)
		for i := range deg {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, fmt.Errorf("table: smart-star degree section: %w", err)
			}
			if d >= uint64(n) {
				return nil, nil, fmt.Errorf("table: implausible colored degree %d (n=%d)", d, n)
			}
			deg[i] = uint32(d)
		}
		t.setSmartFromFile(col.Colors, deg)
	}
	for h := t.storedSizeMin(); h <= k; h++ {
		var alen uint64
		if err := read(&alen); err != nil {
			return nil, nil, fmt.Errorf("table: level %d header: %w", h, err)
		}
		if alen > maxArena {
			return nil, nil, fmt.Errorf("table: implausible level %d arena size %d", h, alen)
		}
		starts := make([]int64, n)
		if err := read(starts); err != nil {
			return nil, nil, fmt.Errorf("table: level %d offset index: %w", h, err)
		}
		arena := make([]byte, alen)
		if _, err := io.ReadFull(br, arena); err != nil {
			return nil, nil, fmt.Errorf("table: level %d arena: %w", h, err)
		}
		for v, off := range starts {
			if off < -1 || off > int64(alen) {
				return nil, nil, fmt.Errorf("table: level %d record %d offset %d out of range", h, v, off)
			}
		}
		t.levels[h] = level{arena: arena, starts: starts}
	}
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, col, nil
}

// ReadTable deserializes just the table, discarding any coloring section.
func ReadTable(r io.Reader) (*Table, error) {
	t, _, err := Load(r)
	return t, err
}

// SaveFile writes the table (and optional coloring) to path in format
// version 4, replacing any existing file. It returns the file size in
// bytes.
func SaveFile(path string, t *Table, col *coloring.Coloring) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := Save(f, t, col)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// SaveFileV3 is SaveFile in the legacy format version 3 (`motivo build
// -format 3`): readable by older binaries, heap-open only.
func SaveFileV3(path string, t *Table, col *coloring.Coloring) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := SaveV3(f, t, col)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// LoadFile opens a table written by SaveFile into heap memory, validating
// eagerly — every byte is read and checked before the first query. For
// large MvT4 tables OpenMapped serves the same file zero-copy in O(ms).
func LoadFile(path string) (*Table, *coloring.Coloring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f)
}
