//go:build unix

package table

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only in its entirety. The descriptor is closed
// before returning — the mapping keeps the file alive on its own.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		// Too small to be v4; mmap of zero bytes is invalid anyway. Let the
		// heap loader produce the real diagnosis.
		return nil, fmt.Errorf("%w: %d-byte file is below the v4 header size", ErrNotMappable, size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("table: file too large to map on this platform: %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("table: mmap %s: %w", path, err)
	}
	return data, nil
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
