//go:build unix

package table

import (
	"fmt"

	"repro/internal/mmapx"
)

// mmapFile maps path read-only in its entirety through the shared
// internal/mmapx shim. Files below the v4 header size are rejected before
// mapping — they cannot be v4 (and mmap of zero bytes is invalid anyway),
// so the heap loader should produce the real diagnosis.
func mmapFile(path string) ([]byte, error) {
	fi, err := statSize(path)
	if err != nil {
		return nil, err
	}
	if fi < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file is below the v4 header size", ErrNotMappable, fi)
	}
	return mmapx.Map(path)
}

func munmapFile(data []byte) error {
	return mmapx.Unmap(data)
}
