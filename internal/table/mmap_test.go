package table

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/coloring"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// mappedOrSkip opens path mapped, skipping the test on platforms where
// mapping is unavailable (the !unix stub).
func mappedOrSkip(t *testing.T, path string) (*Table, *coloring.Coloring) {
	t.Helper()
	tab, col, err := OpenMapped(path)
	if errors.Is(err, ErrNotMappable) {
		t.Skipf("mapping unavailable here: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tab.Close() })
	return tab, col
}

func TestOpenMappedMatchesHeap(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 42)
	path := t.TempDir() + "/graph.tbl"
	if _, err := SaveFile(path, tab, col); err != nil {
		t.Fatal(err)
	}
	heap, heapCol, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, mappedCol := mappedOrSkip(t, path)
	if !mapped.Mapped() || heap.Mapped() {
		t.Fatal("Mapped() misreports the open path")
	}
	equalTables(t, heap, mapped)
	if mapped.TotalK() != tab.TotalK() {
		t.Error("TotalK changed through the mapped path")
	}
	if mappedCol == nil || !bytes.Equal(mappedCol.Colors, heapCol.Colors) ||
		mappedCol.PColorful != heapCol.PColorful {
		t.Error("coloring mismatch between open paths")
	}

	// Accounting: the mapping covers the whole file; nothing of a
	// materialized mapped table lives on the heap, while the heap table's
	// bytes are all heap.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.MappedBytes() != st.Size() {
		t.Errorf("MappedBytes = %d, file is %d", mapped.MappedBytes(), st.Size())
	}
	if mapped.HeapBytes() != 0 {
		t.Errorf("HeapBytes = %d on a materialized mapped table", mapped.HeapBytes())
	}
	if heap.MappedBytes() != 0 || heap.HeapBytes() != heap.Bytes() {
		t.Error("heap table accounting wrong")
	}
	if mapped.Bytes() != heap.Bytes() {
		t.Errorf("logical Bytes differ: mapped %d, heap %d", mapped.Bytes(), heap.Bytes())
	}

	if err := mapped.Verify(); err != nil {
		t.Errorf("Verify on an intact mapped table: %v", err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
}

func TestOpenMappedSmartTable(t *testing.T) {
	tab, g, col := smartFixture(t)
	path := t.TempDir() + "/smart.tbl"
	if _, err := SaveFile(path, tab, col); err != nil {
		t.Fatal(err)
	}
	mapped, _ := mappedOrSkip(t, path)
	if !mapped.SmartStars() || mapped.GraphAttached() {
		t.Fatal("mapped table must be smart and detached")
	}
	if err := mapped.AttachGraph(g); err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= tab.K; h++ {
		for v := int32(0); int(v) < tab.N; v++ {
			want, wantC := recEntries(tab.Rec(h, v))
			have, haveC := recEntries(mapped.Rec(h, v))
			if len(want) != len(have) {
				t.Fatalf("h=%d v=%d entry count differs", h, v)
			}
			for i := range want {
				if want[i] != have[i] || wantC[i] != haveC[i] {
					t.Fatalf("h=%d v=%d entry %d differs", h, v, i)
				}
			}
		}
	}
	// The synthesis state is decoded onto the heap (it outlives nothing —
	// the mapping stays up — but AttachGraph needs mutable state); only
	// that is charged as heap bytes.
	if hb := mapped.HeapBytes(); hb <= 0 || hb >= mapped.Bytes() {
		t.Errorf("smart mapped HeapBytes = %d (total %d)", hb, mapped.Bytes())
	}
}

func TestOpenMappedRejectsLegacyFormats(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 7)
	path := t.TempDir() + "/v3.tbl"
	if _, err := SaveFileV3(path, tab, col); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenMapped(path)
	if !errors.Is(err, ErrNotMappable) {
		t.Fatalf("v3 file on the mapped path: %v (want ErrNotMappable)", err)
	}
	// The advertised fallback must actually work.
	got, _, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalTables(t, tab, got)
}

func TestMappedTableIsReadOnly(t *testing.T) {
	tab := testTable(t)
	path := t.TempDir() + "/ro.tbl"
	if _, err := SaveFile(path, tab, coloring.Uniform(tab.N, tab.K, 1)); err != nil {
		t.Fatal(err)
	}
	mapped, _ := mappedOrSkip(t, path)
	if err := mapped.SetLevel(2, nil, make([]int64, mapped.N)); err == nil {
		t.Fatal("SetLevel on a mapped table must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetRec on a mapped table must panic")
		}
	}()
	var p Pairs
	p.Append(treelet.MakeColored(treelet.Leaf, 0b001), u128.One)
	mapped.SetRec(1, 0, &p)
}

func TestMappedLazyVerification(t *testing.T) {
	tab := testTable(t)
	col := coloring.Uniform(tab.N, tab.K, 3)
	path := t.TempDir() + "/corrupt.tbl"
	if _, err := SaveFile(path, tab, col); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the last arena byte: the header, directory, and meta
	// region stay intact, so a mapped open succeeds — the damage is in the
	// last stored level and must surface on its first touch.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The heap loader checks everything eagerly and must refuse outright.
	if _, _, err := LoadFile(path); err == nil {
		t.Fatal("heap load of a corrupted file must fail")
	}

	mapped, _, err := OpenMapped(path)
	if errors.Is(err, ErrNotMappable) {
		t.Skipf("mapping unavailable here: %v", err)
	}
	if err != nil {
		t.Fatalf("mapped open is lazy and must succeed: %v", err)
	}
	defer mapped.Close()

	// Verify catches it as an error...
	if err := mapped.Verify(); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("Verify on a corrupted mapping: %v", err)
	}
	// ...and so does a fresh mapping's first record touch, as a panic.
	fresh, _, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Rec on a corrupted level must panic")
			}
			if !strings.Contains(r.(string), "checksum mismatch") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		fresh.Rec(fresh.K, 0)
	}()

	// Intact levels still serve: level 1's span is untouched.
	if got := fresh.Rec(1, 0).Len(); got != tab.Rec(1, 0).Len() {
		t.Errorf("intact level unusable after sibling corruption: %d entries", got)
	}
}
