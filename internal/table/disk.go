package table

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file implements the two flush sinks of the greedy flushing strategy
// (Section 3.1). While a size-h pass runs, each completed record is encoded
// once into the packed wire format (packed.go) and handed to a sink:
//
//   - LevelWriter appends it to an in-memory arena (the default);
//   - DiskStore appends it to a spill file and releases the memory, the
//     paper's out-of-core mode.
//
// Both record the per-node start offset and hand the finished level to
// Table.SetLevel, which compacts it into node order — so the resulting
// table is byte-identical whichever sink was used and however the
// concurrent producers were scheduled. The bytes written to disk are
// exactly the bytes that live in RAM: one wire format for spilling,
// in-memory storage, and persistence (serialize.go).

// LevelWriter collects the packed records of one size level in memory.
// Add may be called concurrently; callers encode outside the lock.
type LevelWriter struct {
	mu     sync.Mutex
	arena  []byte
	starts []int64
}

// NewLevelWriter prepares an in-memory sink for n nodes.
func NewLevelWriter(n int) *LevelWriter {
	lw := &LevelWriter{starts: make([]int64, n)}
	for i := range lw.starts {
		lw.starts[i] = -1
	}
	return lw
}

// Add appends the packed record of node v (copying rec, so callers may
// reuse their encode buffer). Empty records are skipped.
func (w *LevelWriter) Add(v int32, rec []byte) {
	if len(rec) == 0 {
		return
	}
	w.mu.Lock()
	w.starts[v] = int64(len(w.arena))
	w.arena = append(w.arena, rec...)
	w.mu.Unlock()
}

// Install hands the collected level to the table (compacted into node
// order). The writer must not be used afterwards.
func (w *LevelWriter) Install(t *Table, h int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return t.SetLevel(h, w.arena, w.starts)
}

// DiskStore spills the packed records of one size level to a file.
type DiskStore struct {
	f       *os.File
	w       *bufio.Writer
	offsets []int64 // offsets[v] = file offset of v's record, -1 if empty
	lens    []int32 // lens[v] = encoded record size in bytes
	pos     int64
}

// NewDiskStore creates a spill file for n nodes inside dir (or the default
// temp dir if dir is empty).
func NewDiskStore(dir string, n int) (*DiskStore, error) {
	return NewDiskStoreBuffered(dir, n, 1<<20)
}

// NewDiskStoreBuffered is NewDiskStore with an explicit write-buffer size.
// The sharded bounded-memory build keeps one live sink per open shard, so
// it uses small buffers to keep sink memory out of its budget; the
// single-sink greedy spill path sticks with the 1 MiB default.
func NewDiskStoreBuffered(dir string, n, bufSize int) (*DiskStore, error) {
	f, err := os.CreateTemp(dir, "motivo-table-*.spill")
	if err != nil {
		return nil, err
	}
	offs := make([]int64, n)
	for i := range offs {
		offs[i] = -1
	}
	return &DiskStore{
		f: f, w: bufio.NewWriterSize(f, bufSize),
		offsets: offs, lens: make([]int32, n),
	}, nil
}

// Flush appends the packed record of node v (as produced by AppendRecord)
// to the spill file so the caller can release the in-memory copy. Empty
// records are skipped.
func (d *DiskStore) Flush(v int32, rec []byte) error {
	if len(rec) == 0 {
		return nil
	}
	d.offsets[v] = d.pos
	d.lens[v] = int32(len(rec))
	if _, err := d.w.Write(rec); err != nil {
		return err
	}
	d.pos += int64(len(rec))
	return nil
}

// Load reads back the record of node v (an empty record if v was never
// flushed). The returned view owns its own copy of the bytes.
func (d *DiskStore) Load(v int32) (Record, error) {
	off := d.offsets[v]
	if off < 0 {
		return Record{}, nil
	}
	if err := d.w.Flush(); err != nil {
		return Record{}, err
	}
	buf := make([]byte, d.lens[v])
	if _, err := d.f.ReadAt(buf, off); err != nil {
		return Record{}, err
	}
	return ViewRecord(buf) // the one shared decoder, same as Table.Rec
}

// LoadAll reloads the whole level with one sequential read: the file
// contents are the arena (records sit at their flush offsets), so the
// result plugs straight into Table.SetLevel.
func (d *DiskStore) LoadAll() (arena []byte, starts []int64, err error) {
	arena = make([]byte, d.pos)
	if err := d.CopyInto(arena); err != nil {
		return nil, nil, err
	}
	starts = make([]int64, len(d.offsets))
	copy(starts, d.offsets)
	return arena, starts, nil
}

// CopyInto is the spill merge reader: it streams the whole spill file
// sequentially into dst (which must be exactly Size() bytes) through a
// bounded 1 MiB buffer. The sharded external merge points dst at a
// sub-range of the final level arena, so shard spills concatenate into
// node order without a second whole-level copy ever existing.
func (d *DiskStore) CopyInto(dst []byte) error {
	if int64(len(dst)) != d.pos {
		return fmt.Errorf("table: spill merge into %d bytes, file has %d", len(dst), d.pos)
	}
	if err := d.w.Flush(); err != nil {
		return err
	}
	if d.pos == 0 {
		return nil
	}
	if _, err := d.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := io.ReadFull(bufio.NewReaderSize(d.f, 1<<20), dst); err != nil {
		return fmt.Errorf("table: spill reload: %w", err)
	}
	return nil
}

// Offset returns the file offset record i was flushed at, or -1 if i was
// never flushed — the per-record index the sharded merge shifts into
// whole-level start offsets.
func (d *DiskStore) Offset(i int32) int64 { return d.offsets[i] }

// Size returns the current spill file size in bytes.
func (d *DiskStore) Size() int64 { return d.pos }

// Close removes the spill file.
func (d *DiskStore) Close() error {
	name := d.f.Name()
	if err := d.f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Remove(name)
}
