package table

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/treelet"
	"repro/internal/u128"
)

// This file implements the greedy flushing strategy of Section 3.1: while a
// size-h pass runs, each completed record is immediately serialized to a
// spill file and its memory released; when the pass finishes, the spill is
// re-read to serve as input for the next pass. (The paper writes unsorted
// records and sorts them in a second I/O pass; our records are sorted at
// flush time — the FromMap sort — so the second pass is a pure sequential
// reload, playing the role of the paper's memory-mapped reads.)

// DiskStore spills per-node records of one size level to a file.
type DiskStore struct {
	f       *os.File
	w       *bufio.Writer
	offsets []int64 // offsets[v] = file offset of v's record, -1 if empty
	pos     int64
}

// NewDiskStore creates a spill file for n nodes inside dir (or the default
// temp dir if dir is empty).
func NewDiskStore(dir string, n int) (*DiskStore, error) {
	f, err := os.CreateTemp(dir, "motivo-table-*.spill")
	if err != nil {
		return nil, err
	}
	offs := make([]int64, n)
	for i := range offs {
		offs[i] = -1
	}
	return &DiskStore{f: f, w: bufio.NewWriterSize(f, 1<<20), offsets: offs}, nil
}

// EncodeRecord serializes a record to the spill wire format: a 4-byte
// little-endian pair count followed by 24 bytes per (key, cumulative)
// pair. It is exposed separately from Flush so concurrent producers can
// encode outside whatever lock guards the store.
func EncodeRecord(r Record) []byte {
	buf := make([]byte, 4+24*r.Len())
	binary.LittleEndian.PutUint32(buf, uint32(r.Len()))
	for i, k := range r.Keys {
		binary.LittleEndian.PutUint64(buf[4+24*i:], uint64(k))
		binary.LittleEndian.PutUint64(buf[4+24*i+8:], r.Cum[i].Lo)
		binary.LittleEndian.PutUint64(buf[4+24*i+16:], r.Cum[i].Hi)
	}
	return buf
}

// Flush appends the record of node v to the spill file so the caller can
// release the in-memory copy.
func (d *DiskStore) Flush(v int32, r Record) error {
	if r.Len() == 0 {
		return nil
	}
	return d.FlushEncoded(v, EncodeRecord(r))
}

// FlushEncoded appends a record already serialized with EncodeRecord.
// Empty records (payload of just the zero pair count) are skipped.
func (d *DiskStore) FlushEncoded(v int32, buf []byte) error {
	if len(buf) <= 4 {
		return nil
	}
	d.offsets[v] = d.pos
	if _, err := d.w.Write(buf); err != nil {
		return err
	}
	d.pos += int64(len(buf))
	return nil
}

// Load reads back the record of node v (an empty record if v was never
// flushed).
func (d *DiskStore) Load(v int32) (Record, error) {
	off := d.offsets[v]
	if off < 0 {
		return Record{}, nil
	}
	if err := d.w.Flush(); err != nil {
		return Record{}, err
	}
	var hdr [4]byte
	if _, err := d.f.ReadAt(hdr[:], off); err != nil {
		return Record{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	buf := make([]byte, 24*n)
	if _, err := d.f.ReadAt(buf, off+4); err != nil {
		return Record{}, err
	}
	r := Record{Keys: make([]treelet.Colored, n), Cum: make([]u128.Uint128, n)}
	for i := 0; i < n; i++ {
		r.Keys[i] = treelet.Colored(binary.LittleEndian.Uint64(buf[24*i:]))
		r.Cum[i].Lo = binary.LittleEndian.Uint64(buf[24*i+8:])
		r.Cum[i].Hi = binary.LittleEndian.Uint64(buf[24*i+16:])
	}
	return r, nil
}

// LoadAll reloads every record into a size-level slice (the sequential
// second pass).
func (d *DiskStore) LoadAll() ([]Record, error) {
	if err := d.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := d.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(d.f, 1<<20)
	recs := make([]Record, len(d.offsets))
	// Records were written in flush order; reconstruct by walking offsets
	// in file order.
	type ent struct {
		v   int32
		off int64
	}
	var order []ent
	for v, off := range d.offsets {
		if off >= 0 {
			order = append(order, ent{int32(v), off})
		}
	}
	// Offsets are increasing in flush order but flush order is arbitrary
	// (concurrent producers flush in scheduling order); sort by offset
	// for one sequential scan.
	sort.Slice(order, func(i, j int) bool { return order[i].off < order[j].off })
	pos := int64(0)
	for _, e := range order {
		if e.off != pos {
			return nil, fmt.Errorf("table: spill corruption: offset %d != pos %d", e.off, pos)
		}
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		buf := make([]byte, 24*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		r := Record{Keys: make([]treelet.Colored, n), Cum: make([]u128.Uint128, n)}
		for i := 0; i < n; i++ {
			r.Keys[i] = treelet.Colored(binary.LittleEndian.Uint64(buf[24*i:]))
			r.Cum[i].Lo = binary.LittleEndian.Uint64(buf[24*i+8:])
			r.Cum[i].Hi = binary.LittleEndian.Uint64(buf[24*i+16:])
		}
		recs[e.v] = r
		pos += int64(4 + 24*n)
	}
	return recs, nil
}

// Size returns the current spill file size in bytes.
func (d *DiskStore) Size() int64 { return d.pos }

// Close removes the spill file.
func (d *DiskStore) Close() error {
	name := d.f.Name()
	if err := d.f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Remove(name)
}
