package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graphlet"
)

// TestSignaturesSumProperty is the conservation law of per-node vectors:
// every sampled occurrence touches exactly k distinct vertices, so summing
// the unfiltered node vectors recovers k × tally for every motif.
func TestSignaturesSumProperty(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 11)
	const k = 4
	eng, _ := engineFixture(t, g, k, 13)
	for _, strat := range []Strategy{Naive, AGS} {
		res, err := eng.Signatures(context.Background(), Query{
			Strategy: strat, Samples: 6000, CoverThreshold: 200, Seed: 29,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Motifs) == 0 || len(res.Nodes) == 0 {
			t.Fatalf("%v: empty signatures (motifs=%d nodes=%d)", strat, len(res.Motifs), len(res.Nodes))
		}
		for i, code := range res.Motifs {
			var sum int64
			for _, n := range res.Nodes {
				sum += n.Counts[i]
			}
			if want := int64(k) * res.Tallies[code]; sum != want {
				t.Errorf("%v: motif %v node-sum = %d, want k×tally = %d", strat, code, sum, want)
			}
		}
		var totals, tallies int64
		for _, n := range res.Nodes {
			totals += n.Total
		}
		for _, c := range res.Tallies {
			tallies += c
		}
		if totals != int64(k)*tallies {
			t.Errorf("%v: Σ totals = %d, want k×Σ tallies = %d", strat, totals, int64(k)*tallies)
		}
	}
}

// TestSignaturesDeterministicAcrossWorkers: signatures pin their stream
// decomposition, so a fixed seed must give bit-identical vectors at any
// SampleWorkers count — for both strategies.
func TestSignaturesDeterministicAcrossWorkers(t *testing.T) {
	g := gen.ErdosRenyi(50, 140, 23)
	eng, _ := engineFixture(t, g, 4, 31)
	for _, strat := range []Strategy{Naive, AGS} {
		var base *SignaturesResult
		for _, workers := range []int{0, 1, 4} {
			res, err := eng.Signatures(context.Background(), Query{
				Strategy: strat, Samples: 5000, CoverThreshold: 150,
				Seed: 41, SampleWorkers: workers,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			res.SampleTime = 0 // wall clock, legitimately varies
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(base.Motifs, res.Motifs) ||
				!reflect.DeepEqual(base.Nodes, res.Nodes) ||
				!reflect.DeepEqual(base.Tallies, res.Tallies) ||
				base.Samples != res.Samples || base.Covered != res.Covered {
				t.Fatalf("%v: signatures differ at SampleWorkers=%d", strat, workers)
			}
		}
	}
}

// TestSignaturesNodeFilter: an explicit node list restricts the vectors to
// exactly those nodes (deduplicated, sorted, zero vectors for untouched
// ones), and out-of-range ids are rejected.
func TestSignaturesNodeFilter(t *testing.T) {
	g := gen.StarHeavy(1, 200, 10, 7)
	eng, _ := engineFixture(t, g, 3, 17)
	res, err := eng.Signatures(context.Background(), Query{
		Strategy: Naive, Samples: 2000, Seed: 5,
	}, []int32{0, 5, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("filtered nodes = %d, want 3 (deduplicated)", len(res.Nodes))
	}
	for i, want := range []int32{0, 3, 5} {
		if res.Nodes[i].Node != want {
			t.Fatalf("node[%d] = %d, want %d (ascending)", i, res.Nodes[i].Node, want)
		}
	}
	// The hub touches every star sample; with k=3 every draw touches it.
	if res.Nodes[0].Total == 0 {
		t.Error("hub signature is empty")
	}
	if _, err := eng.Signatures(context.Background(), Query{Samples: 10, Seed: 1}, []int32{9999}); err == nil {
		t.Error("out-of-range node id must fail")
	}
}

// TestPrecisionWithinEpsOfExact is the acceptance test of run-to-precision
// mode: on a brute-force-checkable graph the run must terminate with a met
// certificate whose target-motif estimate is within the certified ε of the
// exact count. A cycle keeps Δ=2, so Theorem 3 certifies a tight ε fast.
func TestPrecisionWithinEpsOfExact(t *testing.T) {
	g := gen.Cycle(20000)
	const k = 3
	exactCounts, err := exact.Count(g, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(g, Config{
		K: k, Colorings: 1, Strategy: AGS, CoverThreshold: 500, Seed: 19,
		Epsilon: 0.15, Delta: 0.1, MaxSamples: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cert := res.Achieved
	if cert == nil {
		t.Fatal("precision run returned no certificate")
	}
	if !cert.Met {
		t.Fatalf("certificate not met: ε=%v after %d samples", cert.Eps, cert.Samples)
	}
	if cert.Eps > 0.15 || math.IsInf(cert.Eps, 1) {
		t.Fatalf("certified ε=%v exceeds requested 0.15", cert.Eps)
	}
	if cert.Samples != res.Samples || cert.Samples <= 0 {
		t.Fatalf("certificate samples %d vs result %d", cert.Samples, res.Samples)
	}
	// A cycle's only connected 3-graphlet is the path; check the estimate
	// against ground truth within the certified ε.
	for code, want := range exactCounts {
		got := res.Counts[code]
		if relErr := math.Abs(got-want) / want; relErr > cert.Eps {
			t.Errorf("motif %v: estimate %.4g vs exact %.4g, rel err %.4f > certified ε %.4f",
				code, got, want, relErr, cert.Eps)
		}
	}
}

// TestPrecisionValidation: precision fields are mutually exclusive with a
// fixed budget, require AGS, and reject nonsense ε/δ.
func TestPrecisionValidation(t *testing.T) {
	g := gen.ErdosRenyi(30, 80, 3)
	eng, _ := engineFixture(t, g, 3, 7)
	bad := []Query{
		{Strategy: AGS, Samples: 100, Epsilon: 0.1, Delta: 0.1},   // both budgets
		{Strategy: Naive, Epsilon: 0.1, Delta: 0.1},               // naive precision
		{Strategy: AGS, Epsilon: -1, Delta: 0.1},                  // bad ε
		{Strategy: AGS, Epsilon: 0.1, Delta: 1.5},                 // bad δ
		{Strategy: AGS, Epsilon: 0.1, Delta: 0.1, MaxSamples: -1}, // bad cap
	}
	for i, q := range bad {
		if _, err := eng.Count(context.Background(), q); err == nil {
			t.Errorf("bad query %d accepted: %+v", i, q)
		}
	}
	// A precision query with a target that is not canonical/connected fails.
	if _, err := eng.Count(context.Background(), Query{
		Strategy: AGS, Epsilon: 0.5, Delta: 0.1,
		TargetMotif: graphlet.Code{Lo: 1 << 60},
	}); err == nil {
		t.Error("non-canonical target accepted")
	}
}
