package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ags"
	"repro/internal/coloring"
	"repro/internal/estimate"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/sample"
	"repro/internal/table"
	"repro/internal/treelet"
)

// Engine is the long-lived serving half of the build-once / query-many
// workflow (paper, Section 3: the count table is expensive to build, but
// samples are cheap and independent). One Engine validates its table and
// builds the master sampling urn exactly once; every query then takes an
// O(1) Urn.Clone plus its own deterministic RNG stream, so a query at
// seed s is bit-identical to a one-shot Count at seed s while skipping the
// whole table open + urn construction cost the one-shot path pays every
// time.
//
// All fields are immutable after construction except the lazily-prepared
// AGS shape set (guarded by a sync.Once) and the σ caches (internally
// locked), so an Engine serves any number of goroutines concurrently.
type Engine struct {
	g   *graph.Graph
	tab *table.Table
	col *coloring.Coloring
	cat *treelet.Catalog
	sig *estimate.Sigma
	urn *sample.Urn

	// The AGS sample(T) machinery costs a pass over the size-k records per
	// shape; it is prepared on the first AGS query and shared (read-only)
	// by every later one.
	shapeOnce sync.Once
	shapeSet  *ags.ShapeSet
	shapeErr  error

	openTime time.Duration
}

// Open loads a count table persisted by BuildTable (or `motivo build -o`)
// and prepares an Engine over it: table validation, coloring recovery and
// master-urn construction all happen here, once, instead of on every
// query. It opens in MapAuto mode — MvT4 files are memory-mapped
// (zero-copy arenas, O(ms) open independent of table size, lazy per-level
// validation on first touch), everything else heap-loads.
func Open(g *graph.Graph, tablePath string) (*Engine, error) {
	return OpenMode(g, tablePath, MapAuto)
}

// OpenMode is Open with the table open path pinned: MapOff heap-loads
// with eager validation, MapRequire maps or fails, MapAuto maps when the
// file and platform allow it. Estimates are bit-identical across modes —
// the mapped table serves the same View interface over the same bytes.
func OpenMode(g *graph.Graph, tablePath string, mode MapMode) (*Engine, error) {
	start := time.Now()
	tab, col, err := openTable(tablePath, mode)
	if err != nil {
		return nil, err
	}
	if col == nil {
		return nil, fmt.Errorf("core: table %s carries no coloring section; rebuild it with BuildTable", tablePath)
	}
	eng, err := buildEngine(g, tab, col)
	if err != nil {
		return nil, fmt.Errorf("core: table %s: %w", tablePath, err)
	}
	eng.openTime = time.Since(start)
	return eng, nil
}

// openTable resolves a MapMode against one file. Only ErrNotMappable
// triggers the MapAuto fallback: a corrupt v4 file fails hard on both
// paths rather than being silently re-read onto the heap.
func openTable(path string, mode MapMode) (*table.Table, *coloring.Coloring, error) {
	switch mode {
	case MapOff:
		return table.LoadFile(path)
	case MapRequire:
		return table.OpenMapped(path)
	case MapAuto:
		tab, col, err := table.OpenMapped(path)
		if errors.Is(err, table.ErrNotMappable) {
			return table.LoadFile(path)
		}
		return tab, col, err
	}
	return nil, nil, fmt.Errorf("core: unknown map mode %d", int(mode))
}

// NewEngine prepares an Engine over an already-built table — the in-memory
// construction path shared by Count and by callers that run build.Run
// themselves.
func NewEngine(g *graph.Graph, tab *table.Table, col *coloring.Coloring) (*Engine, error) {
	eng, err := buildEngine(g, tab, col)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return eng, nil
}

// buildEngine validates and constructs without the "core:" prefix so each
// exported entry point adds its own context exactly once.
func buildEngine(g *graph.Graph, tab *table.Table, col *coloring.Coloring) (*Engine, error) {
	if tab == nil || tab.K < 2 || tab.K > treelet.MaxK {
		return nil, fmt.Errorf("engine needs a table with k in [2,%d]", treelet.MaxK)
	}
	cat := treelet.NewCatalog(tab.K)
	return newEngine(g, tab, col, cat, estimate.NewSigma(tab.K))
}

// newEngine is buildEngine with the catalog and σ cache supplied by the
// caller, so Count can share one of each across its γ colorings. Errors
// carry no "core:" prefix; exported callers add it.
func newEngine(g *graph.Graph, tab *table.Table, col *coloring.Coloring, cat *treelet.Catalog, sig *estimate.Sigma) (*Engine, error) {
	if col == nil || col.K != tab.K {
		return nil, fmt.Errorf("coloring has %d colors, table wants %d", colorK(col), tab.K)
	}
	if tab.N != g.NumNodes() {
		return nil, fmt.Errorf("table covers %d nodes, graph has %d", tab.N, g.NumNodes())
	}
	if tab.SmartStars() && !tab.GraphAttached() {
		// A loaded smart table synthesizes star records from the graph's
		// adjacency; binding verifies its degree summaries against g, so a
		// table paired with the wrong graph fails here, at open time.
		if err := tab.AttachGraph(g); err != nil {
			return nil, err
		}
	}
	urn, err := sample.NewUrn(g, col, tab, cat)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g, tab: tab, col: col, cat: cat, sig: sig, urn: urn}, nil
}

func colorK(c *coloring.Coloring) int {
	if c == nil {
		return 0
	}
	return c.K
}

// K returns the graphlet size the engine's table was built for.
func (e *Engine) K() int { return e.tab.K }

// Graph returns the host graph the engine serves.
func (e *Engine) Graph() *graph.Graph { return e.g }

// EngineStats describes an engine in one struct: graphlet size, host graph
// shape, resident table payload, and the one-time open cost it amortizes.
type EngineStats struct {
	// K is the graphlet size the table was built for.
	K int
	// Nodes and Edges describe the host graph.
	Nodes int
	Edges int64
	// TableBytes is the packed count-table payload (arenas + offset
	// indexes + smart synthesis state) regardless of where it resides;
	// HeapBytes and MappedBytes split it by residency. A heap-loaded
	// table is all HeapBytes; a mapped table is mostly MappedBytes
	// (page-cache-backed, reclaimable by the kernel) plus a small heap
	// part for the decoded smart-star state.
	TableBytes  int64
	HeapBytes   int64
	MappedBytes int64
	// OpenTime is how long Open spent loading and validating the table and
	// building the master urn (zero for engines built via NewEngine).
	OpenTime time.Duration
}

// Stats reports the engine's shape and cost in a single struct — the one
// metadata call the serving layers read instead of the K/OpenTime/
// TableBytes accessor trio.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		K:           e.tab.K,
		Nodes:       e.g.NumNodes(),
		Edges:       e.g.NumEdges(),
		TableBytes:  e.tab.Bytes(),
		HeapBytes:   e.tab.HeapBytes(),
		MappedBytes: e.tab.MappedBytes(),
		OpenTime:    e.openTime,
	}
}

// OpenTime reports how long Open spent loading and validating the table
// and building the master urn (zero for engines built via NewEngine).
func (e *Engine) OpenTime() time.Duration { return e.openTime }

// TableBytes is the packed in-memory count-table payload the engine holds.
func (e *Engine) TableBytes() int64 { return e.tab.Bytes() }

// shapes prepares the AGS per-shape urns on first use.
func (e *Engine) shapes() (*ags.ShapeSet, error) {
	e.shapeOnce.Do(func() {
		e.shapeSet, e.shapeErr = ags.PrepareShapes(e.urn)
	})
	return e.shapeSet, e.shapeErr
}

// Certificate is the (ε, δ) precision certificate returned by a
// run-to-precision query; see ags.Certificate for field semantics.
type Certificate = ags.Certificate

// Query parameterizes one count query against an Engine. The zero value of
// every field except Samples is usable: naive strategy, seed 0, sequential
// sampling, the paper's cover threshold. Setting any of Epsilon, Delta,
// TargetMotif or MaxSamples switches the query into run-to-precision mode,
// which is mutually exclusive with a fixed Samples budget.
//
// Query is a comparable value: the registry's seeded-result cache keys on
// the whole struct, so every field that changes what a query computes —
// including the precision fields — must stay a comparable scalar here.
type Query struct {
	// Strategy selects naive sampling or AGS.
	Strategy Strategy
	// Samples is the sampling budget (≥ 1). Must be 0 in precision mode.
	Samples int
	// CoverThreshold is AGS's c̄ (0 means the paper's default of 1000).
	CoverThreshold int
	// Seed makes the query reproducible: an Engine query at seed s is
	// bit-identical to a one-shot Count at seed s over the same table.
	Seed int64
	// SampleWorkers parallelizes this query across urn clones (≤ 1 =
	// sequential), exactly as Config.SampleWorkers does.
	SampleWorkers int
	// BufferThreshold overrides the neighbor-buffering degree threshold
	// (0 keeps the urn's default).
	BufferThreshold int
	// Epsilon and Delta request run-to-precision AGS: keep sampling until
	// Theorem 3 certifies the estimates within relative error Epsilon at
	// confidence 1−Delta (or MaxSamples is hit). Requires Strategy == AGS
	// and Samples == 0.
	Epsilon float64
	Delta   float64
	// TargetMotif restricts the certificate to one canonical motif code;
	// the zero Code certifies every tallied motif.
	TargetMotif graphlet.Code
	// MaxSamples caps a precision run (0 means ags.DefaultPrecisionCap).
	MaxSamples int
}

// PrecisionMode reports whether any run-to-precision field is set.
func (q Query) PrecisionMode() bool {
	return q.Epsilon != 0 || q.Delta != 0 || q.MaxSamples != 0 || q.TargetMotif != (graphlet.Code{})
}

// Validate checks the query's invariants: a known strategy, a positive
// sampling budget (or a well-formed precision request), a bounded worker
// count, and a positive cover threshold (0 meaning "the paper's default" is
// allowed). It is the single validation path shared by the engine itself,
// the registry, the HTTP layer and the CLI — a query that passes here is
// servable as-is.
func (q Query) Validate() error {
	if q.Strategy != Naive && q.Strategy != AGS {
		return fmt.Errorf("core: unknown strategy %d", int(q.Strategy))
	}
	if q.PrecisionMode() {
		if q.Strategy != AGS {
			return fmt.Errorf("core: run-to-precision requires the ags strategy")
		}
		if q.Samples != 0 {
			return fmt.Errorf("core: a fixed Samples budget and run-to-precision are mutually exclusive")
		}
		if !(q.Epsilon > 0) || math.IsInf(q.Epsilon, 1) {
			return fmt.Errorf("core: precision epsilon must be positive and finite, got %v", q.Epsilon)
		}
		if !(q.Delta > 0 && q.Delta < 1) {
			return fmt.Errorf("core: precision delta must be in (0, 1), got %v", q.Delta)
		}
		if q.MaxSamples < 0 {
			return fmt.Errorf("core: max samples must be ≥ 0, got %d", q.MaxSamples)
		}
	} else if q.Samples < 1 {
		return fmt.Errorf("core: samples must be ≥ 1, got %d", q.Samples)
	}
	if err := ValidateSampleWorkers(q.SampleWorkers); err != nil {
		return err
	}
	if q.CoverThreshold != 0 {
		if err := ValidateCoverThreshold(q.CoverThreshold); err != nil {
			return err
		}
	}
	return nil
}

// validateTarget checks a non-zero target motif against the engine's k: it
// must be a canonical connected k-graphlet code, or the certificate would
// quantify over a motif the sampler can never produce.
func (e *Engine) validateTarget(q Query) error {
	if q.TargetMotif == (graphlet.Code{}) {
		return nil
	}
	if !graphlet.IsConnected(e.K(), q.TargetMotif) {
		return fmt.Errorf("core: target motif %v is not a connected %d-graphlet", q.TargetMotif, e.K())
	}
	if graphlet.Canonical(e.K(), q.TargetMotif) != q.TargetMotif {
		return fmt.Errorf("core: target motif %v is not in canonical form", q.TargetMotif)
	}
	return nil
}

// QueryResult is the outcome of one Engine query.
type QueryResult struct {
	// Counts estimates the number of induced occurrences per graphlet;
	// Frequencies is Counts normalized to sum to 1.
	Counts      estimate.Counts
	Frequencies estimate.Counts
	// Samples is the number of draws made; Covered the number of
	// AGS-covered graphlets (0 under the naive strategy).
	Samples int
	Covered int
	// Achieved is the precision certificate of a run-to-precision query
	// (nil for fixed-budget queries).
	Achieved *Certificate
	// SampleTime is the wall-clock sampling duration of this query.
	SampleTime time.Duration
}

// Count serves one query: clone the master urn, derive the query's RNG
// stream from its seed, sample, estimate. It honors ctx — cancellation or
// a deadline stops the sampling loops promptly — and is safe to call from
// any number of goroutines concurrently.
func (e *Engine) Count(ctx context.Context, q Query) (*QueryResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := e.validateTarget(q); err != nil {
		return nil, err
	}
	cover := q.CoverThreshold
	if cover == 0 {
		cover = 1000
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &QueryResult{Counts: make(estimate.Counts)}
	if e.urn.Empty() {
		// An unlucky coloring of a tiny graph: every graphlet estimates to
		// zero, which is what the estimator semantics prescribe. A precision
		// query still reports a certificate — an empty urn certifies nothing.
		if q.PrecisionMode() {
			res.Achieved = &Certificate{Eps: math.Inf(1), Delta: q.Delta}
		}
		res.Frequencies = estimate.Frequencies(res.Counts)
		return res, nil
	}
	urn := e.urn.Clone()
	if q.BufferThreshold > 0 {
		urn.BufferThreshold = q.BufferThreshold
	}
	// Prepare the (lazily built, engine-wide) AGS shape urns before the
	// sampling clock starts: the first AGS query must not report one-time
	// engine setup as its own sampling time.
	var ss *ags.ShapeSet
	if q.Strategy == AGS {
		var err error
		if ss, err = e.shapes(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(q.Seed ^ 0x5DEECE66D))
	start := time.Now()
	switch q.Strategy {
	case Naive:
		tallies, err := naiveTallies(ctx, urn, q.Samples, q.SampleWorkers, q.SampleWorkers, rng, nil)
		if err != nil {
			return nil, err
		}
		res.Counts, err = estimate.Naive(tallies, int64(q.Samples), urn.Total().Float64(), e.sig, e.col.PColorful)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		res.Samples = q.Samples
	case AGS:
		aopts := ags.Options{
			CoverThreshold: cover,
			Rng:            rng,
			Workers:        q.SampleWorkers,
			Shapes:         ss,
		}
		if q.PrecisionMode() {
			aopts.Precision = &ags.Precision{
				Eps:        q.Epsilon,
				Delta:      q.Delta,
				Target:     q.TargetMotif,
				MaxSamples: q.MaxSamples,
			}
		} else {
			aopts.Budget = q.Samples
		}
		out, err := ags.Run(ctx, urn, aopts)
		if err != nil {
			return nil, err
		}
		res.Counts = out.Estimates
		res.Samples = out.Samples
		res.Covered = out.Covered
		res.Achieved = out.Achieved
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", q.Strategy)
	}
	res.SampleTime = time.Since(start)
	res.Frequencies = estimate.Frequencies(res.Counts)
	return res, nil
}
