package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// engineFixture builds a table for g once and opens an Engine over it.
func engineFixture(t *testing.T, g *graph.Graph, k int, seed int64) (*Engine, string) {
	t.Helper()
	path := t.TempDir() + "/engine.tbl"
	if _, _, err := BuildTable(g, Config{K: k, Seed: seed}, path); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(g, path)
	if err != nil {
		t.Fatal(err)
	}
	return eng, path
}

// TestEngineMatchesOneShot is the bit-identity acceptance test: an Engine
// query at seed s must equal the one-shot Count at seed s — both the
// TablePath mode (which now runs through an ephemeral engine) and the
// fully in-memory build — for both strategies.
func TestEngineMatchesOneShot(t *testing.T) {
	g := gen.ErdosRenyi(80, 240, 61)
	eng, path := engineFixture(t, g, 4, 67)
	for _, strat := range []Strategy{Naive, AGS} {
		cfg := Config{
			K: 4, Colorings: 1, SamplesPerColoring: 8000,
			Strategy: strat, CoverThreshold: 300, Seed: 67,
		}
		mem, err := Count(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		oneShot := cfg
		oneShot.TablePath = path
		srv, err := Count(g, oneShot)
		if err != nil {
			t.Fatal(err)
		}
		qres, err := eng.Count(context.Background(), cfg.query(cfg.Seed))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(qres.Counts, mem.Counts) {
			t.Fatalf("%v: engine query differs from in-memory one-shot Count", strat)
		}
		if !reflect.DeepEqual(qres.Counts, srv.Counts) {
			t.Fatalf("%v: engine query differs from one-shot Count(TablePath)", strat)
		}
		if qres.Samples != mem.Samples || qres.Covered != mem.Covered {
			t.Fatalf("%v: sampling trajectory differs (%d/%d samples, %d/%d covered)",
				strat, qres.Samples, mem.Samples, qres.Covered, mem.Covered)
		}
	}
}

// TestEngineConcurrentQueries hammers one engine from many goroutines with
// mixed naive/AGS queries (run under -race in CI) and asserts every result
// is bit-identical to a fresh one-shot Count at the same seed — the
// clone-per-query architecture must not let concurrent queries interfere.
func TestEngineConcurrentQueries(t *testing.T) {
	g := gen.ErdosRenyi(70, 210, 83)
	eng, path := engineFixture(t, g, 4, 89)

	type job struct {
		strat   Strategy
		seed    int64
		workers int
	}
	var jobs []job
	for i := 0; i < 4; i++ {
		// Mixed strategies, distinct seeds, sequential and parallel
		// sampling — every combination shares the one master urn.
		jobs = append(jobs,
			job{Naive, int64(100 + i), 0},
			job{AGS, int64(200 + i), 0},
			job{Naive, int64(300 + i), 3},
			job{AGS, int64(400 + i), 3},
		)
	}
	want := make([]*Result, len(jobs))
	for i, j := range jobs {
		cfg := Config{
			K: 4, Colorings: 1, SamplesPerColoring: 4000,
			Strategy: j.strat, CoverThreshold: 200,
			Seed: j.seed, SampleWorkers: j.workers, TablePath: path,
		}
		res, err := Count(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			qres, err := eng.Count(context.Background(), Query{
				Strategy: j.strat, Samples: 4000, CoverThreshold: 200,
				Seed: j.seed, SampleWorkers: j.workers,
			})
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(qres.Counts, want[i].Counts) {
				errs[i] = fmt.Errorf("job %d (%v seed %d workers %d): concurrent engine query differs from one-shot Count",
					i, j.strat, j.seed, j.workers)
			}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestEngineQueryValidation exercises the per-query error paths.
func TestEngineQueryValidation(t *testing.T) {
	g := gen.ErdosRenyi(50, 150, 71)
	eng, _ := engineFixture(t, g, 4, 3)
	ctx := context.Background()
	cases := []Query{
		{Samples: 0},                          // no budget
		{Samples: 10, SampleWorkers: -1},      // bad workers
		{Samples: 10, CoverThreshold: -2},     // bad c̄
		{Samples: 10, Strategy: Strategy(99)}, // unknown strategy
	}
	for i, q := range cases {
		if _, err := eng.Count(ctx, q); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestEngineOpenValidation exercises the engine construction error paths.
func TestEngineOpenValidation(t *testing.T) {
	g := gen.ErdosRenyi(50, 150, 71)
	_, path := engineFixture(t, g, 4, 3)
	if _, err := Open(g, path+".missing"); err == nil {
		t.Error("missing file: expected error")
	}
	// Same table, wrong graph.
	other := gen.ErdosRenyi(40, 120, 73)
	if _, err := Open(other, path); err == nil {
		t.Error("node-count mismatch: expected error")
	}
}

// TestEngineCancellation asserts a canceled context returns promptly from
// every sampling configuration, and that a mid-flight cancel of a large
// query aborts it instead of draining the full budget.
func TestEngineCancellation(t *testing.T) {
	g := gen.ErdosRenyi(80, 240, 97)
	eng, _ := engineFixture(t, g, 4, 101)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range []Query{
		{Strategy: Naive, Samples: 100000},
		{Strategy: Naive, Samples: 100000, SampleWorkers: 4},
		{Strategy: AGS, Samples: 100000},
		{Strategy: AGS, Samples: 100000, SampleWorkers: 4},
	} {
		if _, err := eng.Count(canceled, q); err != context.Canceled {
			t.Errorf("%v workers=%d: want context.Canceled, got %v", q.Strategy, q.SampleWorkers, err)
		}
	}

	// Mid-flight: cancel shortly after the query starts; a 50M-draw budget
	// would run for minutes if cancellation did not cut the loop short.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := eng.Count(ctx, Query{Strategy: Naive, Samples: 50_000_000})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("mid-flight cancel: want context.Canceled, got %v", err)
		}
		if d := time.Since(start); d > 10*time.Second {
			t.Errorf("cancellation took %v, not prompt", d)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled query did not return")
	}
}

// TestCountContextCancelsBuild asserts cancellation cuts the build-up
// phase short through the public pipeline entry point.
func TestCountContextCancelsBuild(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.ErdosRenyi(80, 240, 23)
	if _, err := CountContext(ctx, g, Config{K: 4, Colorings: 1, SamplesPerColoring: 100, Seed: 29}); err != context.Canceled {
		t.Errorf("want context.Canceled, got %v", err)
	}
	if _, _, err := BuildTableContext(ctx, g, Config{K: 4, Seed: 29}, t.TempDir()+"/x.tbl"); err != context.Canceled {
		t.Errorf("BuildTableContext: want context.Canceled, got %v", err)
	}
}

// TestNaiveWorkerClampOverBudget pins the degenerate-split fix: with more
// workers than samples the effective worker count clamps to the budget, so
// the run equals workers == budget exactly and the load is spread instead
// of one worker drawing everything.
func TestNaiveWorkerClampOverBudget(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 31)
	eng, _ := engineFixture(t, g, 4, 37)
	ctx := context.Background()
	over, err := eng.Count(ctx, Query{Strategy: Naive, Samples: 5, SampleWorkers: 64, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := eng.Count(ctx, Query{Strategy: Naive, Samples: 5, SampleWorkers: 5, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(over.Counts, clamped.Counts) {
		t.Fatal("workers > budget must behave exactly like workers == budget")
	}
	if over.Samples != 5 {
		t.Fatalf("samples = %d, want 5", over.Samples)
	}
}

// TestResultOpenTime pins the OpenTime/BuildTime split: a TablePath run
// reports its table open under OpenTime with BuildTime zero, an in-memory
// run the reverse.
func TestResultOpenTime(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 41)
	path := t.TempDir() + "/t.tbl"
	if _, _, err := BuildTable(g, Config{K: 4, Seed: 43}, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Count(g, Config{K: 4, Colorings: 1, SamplesPerColoring: 500, Seed: 43, TablePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.OpenTime <= 0 || loaded.BuildTime != 0 {
		t.Errorf("TablePath run: OpenTime=%v BuildTime=%v, want open>0 build=0", loaded.OpenTime, loaded.BuildTime)
	}
	mem, err := Count(g, Config{K: 4, Colorings: 1, SamplesPerColoring: 500, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if mem.BuildTime <= 0 || mem.OpenTime != 0 {
		t.Errorf("in-memory run: OpenTime=%v BuildTime=%v, want build>0 open=0", mem.OpenTime, mem.BuildTime)
	}
}
