package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ags"
	"repro/internal/estimate"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/treelet"
)

// SignatureStreams is the fixed number of deterministic sampling streams a
// signatures query decomposes into, independent of SampleWorkers. Pinning
// the decomposition is what makes per-node vectors bit-identical for a
// fixed seed at any physical worker count; 8 streams keep up to 8 cores
// busy without inflating the per-stream accumulator count.
const SignatureStreams = 8

// NodeSignature is one node's graphlet degree vector (GDV): how many of
// the query's sampled graphlet occurrences touched the node, per motif.
type NodeSignature struct {
	// Node is the vertex id in the host graph.
	Node int32
	// Total is the number of sampled occurrences touching the node — the
	// sum of Counts.
	Total int64
	// Counts is the per-motif incidence tally, aligned index-for-index
	// with SignaturesResult.Motifs.
	Counts []int64
}

// SignaturesResult is the outcome of one per-node signatures query.
//
// Summing Counts over all nodes (a nil node filter) recovers exactly
// k × Tallies[motif] for every motif: each sampled occurrence touches k
// distinct vertices and contributes one tally.
type SignaturesResult struct {
	// Motifs lists the tallied canonical codes in sorted order; every
	// NodeSignature.Counts vector is aligned with it.
	Motifs []graphlet.Code
	// Nodes holds the signatures in ascending node order: all touched
	// nodes when the query's node filter was empty, otherwise exactly the
	// requested nodes (untouched ones carry zero vectors).
	Nodes []NodeSignature
	// Tallies is the raw per-motif occurrence count over all draws.
	Tallies map[graphlet.Code]int64
	// Samples is the number of draws made; Covered the number of
	// AGS-covered graphlets (0 under the naive strategy).
	Samples int
	Covered int
	// Achieved is the precision certificate of a run-to-precision query
	// (nil for fixed-budget queries).
	Achieved *Certificate
	// SampleTime is the wall-clock sampling duration.
	SampleTime time.Duration
	// BuildTime, OpenTime and TableBytes are filled by the one-shot
	// SignaturesContext path (zero for Engine.Signatures, which amortizes
	// those costs across queries).
	BuildTime  time.Duration
	OpenTime   time.Duration
	TableBytes int64
}

// sigAccumulator collects per-stream incidence so no locking or
// cross-stream ordering is needed; streams are merged in index order with
// commutative integer adds, keeping the result independent of scheduling.
type sigAccumulator struct {
	filter map[int32]struct{}
	nodes  []map[int32]map[graphlet.Code]int64
}

func newSigAccumulator(nodes []int32, streams int) *sigAccumulator {
	a := &sigAccumulator{nodes: make([]map[int32]map[graphlet.Code]int64, streams)}
	if len(nodes) > 0 {
		a.filter = make(map[int32]struct{}, len(nodes))
		for _, v := range nodes {
			a.filter[v] = struct{}{}
		}
	}
	return a
}

// observe folds one draw into the stream's accumulator. Safe for
// concurrent calls with distinct stream indexes.
func (a *sigAccumulator) observe(stream int, code graphlet.Code, nodes []int32) {
	acc := a.nodes[stream]
	if acc == nil {
		acc = make(map[int32]map[graphlet.Code]int64)
		a.nodes[stream] = acc
	}
	for _, v := range nodes {
		if a.filter != nil {
			if _, ok := a.filter[v]; !ok {
				continue
			}
		}
		row := acc[v]
		if row == nil {
			row = make(map[graphlet.Code]int64)
			acc[v] = row
		}
		row[code]++
	}
}

// assemble merges the streams and renders the sorted, vector-aligned
// result. requested is the original node filter (nil = all touched nodes).
func (a *sigAccumulator) assemble(res *SignaturesResult, requested []int32) {
	merged := make(map[int32]map[graphlet.Code]int64)
	for _, acc := range a.nodes {
		for v, row := range acc {
			m := merged[v]
			if m == nil {
				m = make(map[graphlet.Code]int64, len(row))
				merged[v] = m
			}
			for c, n := range row {
				m[c] += n
			}
		}
	}

	res.Motifs = make([]graphlet.Code, 0, len(res.Tallies))
	for c := range res.Tallies {
		res.Motifs = append(res.Motifs, c)
	}
	sort.Slice(res.Motifs, func(i, j int) bool { return res.Motifs[i].Less(res.Motifs[j]) })

	var ids []int32
	if requested != nil {
		seen := make(map[int32]struct{}, len(requested))
		for _, v := range requested {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				ids = append(ids, v)
			}
		}
	} else {
		ids = make([]int32, 0, len(merged))
		for v := range merged {
			ids = append(ids, v)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	res.Nodes = make([]NodeSignature, 0, len(ids))
	for _, v := range ids {
		sig := NodeSignature{Node: v, Counts: make([]int64, len(res.Motifs))}
		row := merged[v]
		for i, c := range res.Motifs {
			sig.Counts[i] = row[c]
			sig.Total += row[c]
		}
		res.Nodes = append(res.Nodes, sig)
	}
}

// Signatures serves one per-node graphlet signature query: it samples
// exactly like Count (same strategies, budgets and precision mode) but
// streams every draw's vertex incidence into per-node motif-count vectors.
// nodes, when non-empty, restricts the vectors to those vertices (the
// sampling itself is unchanged); an empty or nil slice returns every node
// touched by at least one sample.
//
// Signatures pins its stream decomposition to SignatureStreams, so for a
// fixed seed the vectors are bit-identical at any SampleWorkers count —
// unlike Count, whose draw sequence follows the worker count.
func (e *Engine) Signatures(ctx context.Context, q Query, nodes []int32) (*SignaturesResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := e.validateTarget(q); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		nodes = nil // empty and nil both mean "all touched nodes"
	}
	for _, v := range nodes {
		if v < 0 || int(v) >= e.g.NumNodes() {
			return nil, fmt.Errorf("core: node %d out of range [0, %d)", v, e.g.NumNodes())
		}
	}
	cover := q.CoverThreshold
	if cover == 0 {
		cover = 1000
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &SignaturesResult{Tallies: make(map[graphlet.Code]int64)}
	acc := newSigAccumulator(nodes, SignatureStreams)
	if e.urn.Empty() {
		if q.PrecisionMode() {
			res.Achieved = &Certificate{Eps: math.Inf(1), Delta: q.Delta}
		}
		acc.assemble(res, nodes)
		return res, nil
	}
	urn := e.urn.Clone()
	if q.BufferThreshold > 0 {
		urn.BufferThreshold = q.BufferThreshold
	}
	var ss *ags.ShapeSet
	if q.Strategy == AGS {
		var err error
		if ss, err = e.shapes(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(q.Seed ^ 0x5DEECE66D))
	start := time.Now()
	switch q.Strategy {
	case Naive:
		tallies, err := naiveTallies(ctx, urn, q.Samples, q.SampleWorkers, SignatureStreams, rng, acc.observe)
		if err != nil {
			return nil, err
		}
		res.Tallies = tallies
		res.Samples = q.Samples
	case AGS:
		aopts := ags.Options{
			CoverThreshold: cover,
			Rng:            rng,
			Workers:        q.SampleWorkers,
			VirtualWorkers: SignatureStreams,
			Observe:        acc.observe,
			Shapes:         ss,
		}
		if q.PrecisionMode() {
			aopts.Precision = &ags.Precision{
				Eps:        q.Epsilon,
				Delta:      q.Delta,
				Target:     q.TargetMotif,
				MaxSamples: q.MaxSamples,
			}
		} else {
			aopts.Budget = q.Samples
		}
		out, err := ags.Run(ctx, urn, aopts)
		if err != nil {
			return nil, err
		}
		res.Tallies = out.Tallies
		res.Samples = out.Samples
		res.Covered = out.Covered
		res.Achieved = out.Achieved
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", q.Strategy)
	}
	res.SampleTime = time.Since(start)
	acc.assemble(res, nodes)
	return res, nil
}

// Signatures is the one-shot form of Engine.Signatures, mirroring Count:
// build (or open) a table for run 0 of the config, then serve a single
// signatures query through an ephemeral engine.
func Signatures(g *graph.Graph, cfg Config, nodes []int32) (*SignaturesResult, error) {
	return SignaturesContext(context.Background(), g, cfg, nodes)
}

// SignaturesContext is Signatures honoring a context.
func SignaturesContext(ctx context.Context, g *graph.Graph, cfg Config, nodes []int32) (*SignaturesResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Colorings > 1 {
		return nil, fmt.Errorf("core: signatures require Colorings == 1 (incidence tallies are per-coloring), got %d", cfg.Colorings)
	}

	if cfg.TablePath != "" {
		if cfg.BiasedLambda > 0 {
			return nil, fmt.Errorf("core: BiasedLambda has no effect with TablePath (the saved coloring is used); unset one")
		}
		eng, err := OpenMode(g, cfg.TablePath, cfg.MapTable)
		if err != nil {
			return nil, err
		}
		if eng.K() != cfg.K {
			return nil, fmt.Errorf("core: table %s was built for k=%d, run wants k=%d", cfg.TablePath, eng.K(), cfg.K)
		}
		res, err := eng.Signatures(ctx, cfg.query(cfg.Seed), nodes)
		if err != nil {
			return nil, err
		}
		res.OpenTime = eng.OpenTime()
		res.TableBytes = eng.TableBytes()
		return res, nil
	}

	cat := treelet.NewCatalog(cfg.K)
	col := colorFor(g, cfg, 0)
	tab, stats, err := buildFor(ctx, g, cfg, col, cat)
	if err != nil {
		return nil, err
	}
	eng, err := newEngine(g, tab, col, cat, estimate.NewSigma(cfg.K))
	if err != nil {
		return nil, err
	}
	res, err := eng.Signatures(ctx, cfg.query(cfg.Seed), nodes)
	if err != nil {
		return nil, err
	}
	res.BuildTime = stats.Duration
	res.TableBytes = stats.TableBytes
	return res, nil
}
