package core

import (
	"context"
	"errors"
	"os"
	"reflect"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/gen"
	"repro/internal/table"
)

// TestEngineMappedMatchesHeap is the serving-path bit-identity acceptance
// test: at equal seed, a query answered off a memory-mapped table must
// equal the same query answered off a heap-loaded table, byte for byte,
// for both sampling strategies — the mmap path changes where bytes live,
// never what they say.
func TestEngineMappedMatchesHeap(t *testing.T) {
	g := gen.ErdosRenyi(80, 240, 61)
	path := t.TempDir() + "/map.tbl"
	if _, _, err := BuildTable(g, Config{K: 4, Seed: 67}, path); err != nil {
		t.Fatal(err)
	}
	heap, err := OpenMode(g, path, MapOff)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMode(g, path, MapRequire)
	if err != nil {
		if errors.Is(err, table.ErrNotMappable) {
			t.Skipf("mmap unavailable on this platform: %v", err)
		}
		t.Fatal(err)
	}
	if st := heap.Stats(); st.MappedBytes != 0 {
		t.Errorf("MapOff engine reports MappedBytes=%d, want 0", st.MappedBytes)
	}
	if st := mapped.Stats(); st.MappedBytes == 0 {
		t.Error("MapRequire engine reports MappedBytes=0")
	} else if st.TableBytes <= 0 {
		t.Errorf("mapped engine TableBytes=%d, want > 0", st.TableBytes)
	}

	ctx := context.Background()
	for _, strat := range []Strategy{Naive, AGS} {
		for _, workers := range []int{0, 3} {
			q := Query{
				Strategy: strat, Samples: 6000, CoverThreshold: 300,
				Seed: 67, SampleWorkers: workers,
			}
			href, err := heap.Count(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			mres, err := mapped.Count(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mres.Counts, href.Counts) {
				t.Errorf("%v workers=%d: mapped estimates differ from heap estimates at equal seed", strat, workers)
			}
			if mres.Samples != href.Samples || mres.Covered != href.Covered {
				t.Errorf("%v workers=%d: sampling trajectory differs (%d/%d samples, %d/%d covered)",
					strat, workers, mres.Samples, href.Samples, mres.Covered, href.Covered)
			}
		}
	}
}

// TestMappedAutoFallsBackOnLegacyFile pins MapAuto's fallback contract:
// a v3 file cannot be mapped, so the auto mode must silently load it onto
// the heap — and MapRequire must refuse it with ErrNotMappable.
func TestMappedAutoFallsBackOnLegacyFile(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 41)
	path := t.TempDir() + "/v3.tbl"
	if _, _, err := BuildTable(g, Config{K: 4, Seed: 43}, path); err != nil {
		t.Fatal(err)
	}
	// Rewrite the table in the legacy v3 format.
	tab, col, err := table.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.SaveFileV3(path, tab, col); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenMode(g, path, MapRequire); !errors.Is(err, table.ErrNotMappable) {
		t.Errorf("MapRequire on a v3 file: want ErrNotMappable, got %v", err)
	}
	eng, err := OpenMode(g, path, MapAuto)
	if err != nil {
		t.Fatalf("MapAuto on a v3 file must fall back to the heap loader: %v", err)
	}
	if st := eng.Stats(); st.MappedBytes != 0 || st.HeapBytes <= 0 {
		t.Errorf("fallback engine: MappedBytes=%d HeapBytes=%d, want 0 and > 0", st.MappedBytes, st.HeapBytes)
	}
	if _, err := eng.Count(context.Background(), Query{Samples: 500, Seed: 43}); err != nil {
		t.Errorf("fallback engine query: %v", err)
	}
}

// TestMappedServesTableLargerThanHeapLimit is the out-of-core acceptance
// test: a materialized k=6 table whose file exceeds a debug.SetMemoryLimit-
// constrained Go heap still serves estimates bit-identical to the
// unconstrained heap path. Mapped pages are the kernel's, not the
// runtime's, so the soft memory limit never sees them.
func TestMappedServesTableLargerThanHeapLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a multi-MiB materialized table")
	}
	n, m := 16000, 128000
	if raceEnabled {
		// The build is ~10x slower under the race detector; a smaller graph
		// keeps the test quick. The memory-limit assertions are skipped
		// below — race-instrumented heaps dwarf the scaled-down table.
		n, m = 2000, 16000
	}
	g := gen.ErdosRenyi(n, m, 1033)
	path := t.TempDir() + "/big.tbl"
	if _, _, err := BuildTable(g, Config{K: 6, Seed: 1007, MaterializeStars: true}, path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fileSize := fi.Size()

	// Reference estimates off the unconstrained heap path.
	q := Query{Samples: 4000, Seed: 1009}
	heap, err := OpenMode(g, path, MapOff)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := heap.Count(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	heap = nil
	runtime.GC()

	mapped, err := OpenMode(g, path, MapRequire)
	if err != nil {
		if errors.Is(err, table.ErrNotMappable) {
			t.Skipf("mmap unavailable on this platform: %v", err)
		}
		t.Fatal(err)
	}
	if st := mapped.Stats(); st.MappedBytes != fileSize {
		t.Errorf("MappedBytes=%d, want the whole %d-byte file", st.MappedBytes, fileSize)
	}

	if !raceEnabled {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		// Constrain the runtime to well below the table file: enough slack
		// over the live heap for the query to run, but small enough that
		// heap-loading the table would not fit without thrashing the GC.
		limit := int64(ms.HeapAlloc) + fileSize/4
		if limit >= fileSize {
			t.Fatalf("live heap %d B leaves no room to constrain below the %d B table; grow the workload", ms.HeapAlloc, fileSize)
		}
		prev := debug.SetMemoryLimit(limit)
		defer debug.SetMemoryLimit(prev)
		if st := mapped.Stats(); st.MappedBytes <= limit {
			t.Errorf("mapped table (%d B) does not exceed the constrained heap limit (%d B)", st.MappedBytes, limit)
		}
	}

	got, err := mapped.Count(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counts, ref.Counts) {
		t.Error("out-of-core estimates differ from the unconstrained heap reference")
	}
}
