package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
)

// Smart-star synthesis must be invisible to every estimator: the same
// config with MaterializeStars toggled must produce bit-identical float
// estimates, because the synthesized records are entry-identical to the
// materialized ones and every RNG consumption point is unchanged.

func smartVsMaterialized(t *testing.T, cfg Config) {
	t.Helper()
	g := gen.ErdosRenyi(150, 600, 211)
	smart, err := Count(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaterializeStars = true
	mat, err := Count(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(smart.Counts) == 0 {
		t.Fatal("no graphlets estimated")
	}
	if !reflect.DeepEqual(smart.Counts, mat.Counts) {
		t.Fatalf("smart and materialized estimates differ:\nsmart: %v\nmat:   %v", smart.Counts, mat.Counts)
	}
	if !reflect.DeepEqual(smart.Frequencies, mat.Frequencies) {
		t.Fatal("smart and materialized frequencies differ")
	}
	if smart.Samples != mat.Samples || smart.Covered != mat.Covered {
		t.Fatalf("run shape differs: samples %d/%d, covered %d/%d",
			smart.Samples, mat.Samples, smart.Covered, mat.Covered)
	}
}

func TestSmartStarsBitIdenticalNaive(t *testing.T) {
	smartVsMaterialized(t, Config{
		K: 5, Colorings: 1, SamplesPerColoring: 4000, Seed: 99,
	})
}

func TestSmartStarsBitIdenticalAGS(t *testing.T) {
	smartVsMaterialized(t, Config{
		K: 5, Colorings: 1, SamplesPerColoring: 4000, Seed: 99,
		Strategy: AGS, CoverThreshold: 50,
	})
}

func TestSmartStarsBitIdenticalParallel(t *testing.T) {
	smartVsMaterialized(t, Config{
		K: 4, Colorings: 2, SamplesPerColoring: 3000, Seed: 7,
		SampleWorkers: 4,
	})
}

// TestSmartStarsBitIdenticalPersisted closes the loop across the persistent
// format: a smart table built by BuildTable and queried through TablePath
// (i.e. a long-lived Engine over MvT3 + AttachGraph) must reproduce the
// materialized in-memory run bit for bit.
func TestSmartStarsBitIdenticalPersisted(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	cfg := Config{K: 5, Colorings: 1, SamplesPerColoring: 3000, Seed: 31, Strategy: AGS, CoverThreshold: 40}

	path := filepath.Join(t.TempDir(), "smart.tbl")
	if _, _, err := BuildTable(g, cfg, path); err != nil {
		t.Fatal(err)
	}
	persisted := cfg
	persisted.TablePath = path
	viaFile, err := Count(g, persisted)
	if err != nil {
		t.Fatal(err)
	}
	mat := cfg
	mat.MaterializeStars = true
	inMem, err := Count(g, mat)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaFile.Counts) == 0 {
		t.Fatal("no graphlets estimated")
	}
	if !reflect.DeepEqual(viaFile.Counts, inMem.Counts) {
		t.Fatal("persisted smart run differs from materialized in-memory run")
	}
}
