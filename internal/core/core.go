// Package core orchestrates the full motivo pipeline: coloring, build-up
// phase, sampling phase (naive or AGS), estimation, and averaging over
// independent colorings (the paper averages over γ colorings to drive the
// failure probability down exponentially, Section 2.2).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/estimate"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/sample"
	"repro/internal/table"
	"repro/internal/treelet"
)

// Strategy selects the sampling algorithm.
type Strategy int

const (
	// Naive is CC-style uniform treelet sampling (Section 2.2) on top of
	// motivo's fast urn — the paper's "naive sampling" arm.
	Naive Strategy = iota
	// AGS is adaptive graphlet sampling (Section 4).
	AGS
)

func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case AGS:
		return "ags"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a strategy name (as accepted by CLI flags) into a
// Strategy; it is the inverse of Strategy.String.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "naive":
		return Naive, nil
	case "ags":
		return AGS, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q (want naive or ags)", name)
}

// MapMode selects how a persisted table file is opened: memory-mapped
// (zero-copy, O(ms) open, page-cache residency) or loaded onto the heap.
type MapMode int

const (
	// MapAuto — the default — maps MvT4 files and falls back to the heap
	// loader for anything mapping cannot serve (older format versions,
	// platforms without mmap). The right choice everywhere except tests
	// that pin one path.
	MapAuto MapMode = iota
	// MapOff always loads onto the heap with eager whole-file validation.
	MapOff
	// MapRequire maps or fails — for deployments where a silent fallback
	// to heap loading (and its RAM footprint) would be an outage, not a
	// convenience.
	MapRequire
)

func (m MapMode) String() string {
	switch m {
	case MapAuto:
		return "auto"
	case MapOff:
		return "off"
	case MapRequire:
		return "require"
	}
	return fmt.Sprintf("MapMode(%d)", int(m))
}

// ParseMapMode converts a mode name (as accepted by the -map CLI flag)
// into a MapMode; it is the inverse of MapMode.String.
func ParseMapMode(name string) (MapMode, error) {
	switch name {
	case "auto":
		return MapAuto, nil
	case "off":
		return MapOff, nil
	case "require":
		return MapRequire, nil
	}
	return 0, fmt.Errorf("core: unknown map mode %q (want auto, off or require)", name)
}

// ValidateCoverThreshold checks the AGS covering threshold c̄: it must be
// ≥ 1. (Config.CoverThreshold additionally accepts 0 as "use the paper's
// default of 1000".)
func ValidateCoverThreshold(c int) error {
	if c < 1 {
		return fmt.Errorf("core: cover threshold must be ≥ 1, got %d", c)
	}
	return nil
}

// MaxSampleWorkers bounds the sampling-phase worker count; beyond a few
// hundred goroutines the epoch barrier dominates and a larger value is
// almost certainly a misparsed flag.
const MaxSampleWorkers = 1024

// ValidateSampleWorkers checks the sampling-phase worker count: 0 and 1
// both mean sequential, anything up to MaxSampleWorkers fans out.
func ValidateSampleWorkers(w int) error {
	if w < 0 || w > MaxSampleWorkers {
		return fmt.Errorf("core: sample workers must be in [0, %d], got %d", MaxSampleWorkers, w)
	}
	return nil
}

// Config parameterizes a counting run.
type Config struct {
	// K is the graphlet size (2 ≤ K ≤ treelet.MaxK).
	K int
	// Colorings is γ, the number of independent colorings to average over
	// (≥ 1).
	Colorings int
	// SamplesPerColoring is the per-coloring sampling budget.
	SamplesPerColoring int
	// Strategy selects naive sampling or AGS.
	Strategy Strategy
	// CoverThreshold is AGS's c̄ (defaults to 1000 when 0).
	CoverThreshold int
	// BiasedLambda, when > 0, enables biased coloring with this λ
	// (Section 3.4); 0 means uniform coloring.
	BiasedLambda float64
	// Seed makes the whole run reproducible.
	Seed int64
	// Workers for the build-up phase; 0 = GOMAXPROCS.
	Workers int
	// SampleWorkers parallelizes the sampling phase across urn clones
	// ("samples are by definition independent and are taken by different
	// threads", Section 3.3). ≤ 1 samples sequentially. Naive sampling
	// fans the whole budget out; AGS runs epoch-based (per-worker batches
	// merged at barriers where cover detection and the shape switch run —
	// see package ags).
	SampleWorkers int
	// Spill enables greedy flushing of the count table to temp files.
	Spill bool
	// MemBudget, when > 0, runs the build-up phase in bounded-memory mode:
	// each level is computed in vertex-range shards pulled from a shared
	// work-stealing queue, records stream to per-shard spill files as they
	// complete, and the level is externally merged into its final arena.
	// The resulting table is bit-identical to an unbounded build. See
	// build.Options.MemBudget for the exact semantics of the bound.
	MemBudget int64
	// BufferThreshold overrides the neighbor-buffering degree threshold
	// (0 keeps the paper's default of 10^4).
	BufferThreshold int
	// MaterializeStars disables smart-star synthesis (on by default):
	// star-family records are computed by the DP and stored instead of
	// being synthesized from colored-degree summaries. Estimates and draw
	// sequences are bit-identical either way; materializing costs build
	// time and table bytes and exists for comparison and debugging.
	MaterializeStars bool
	// Epsilon and Delta request run-to-precision AGS: sample until
	// Theorem 3 certifies the estimates within relative error Epsilon at
	// confidence 1−Delta, or MaxSamples is hit. Mutually exclusive with
	// SamplesPerColoring; requires Strategy == AGS and Colorings == 1.
	Epsilon float64
	Delta   float64
	// TargetMotif restricts the certificate to one canonical motif code;
	// the zero Code certifies every tallied motif.
	TargetMotif graphlet.Code
	// MaxSamples caps a precision run (0 means ags.DefaultPrecisionCap).
	MaxSamples int
	// TablePath, when set, skips the build-up phase entirely: the count
	// table (and the coloring that produced it) is opened from a file
	// written by BuildTable or `motivo build -o` — the build-once /
	// query-many serving mode. It requires Colorings == 1 (a saved table
	// captures exactly one coloring) and K equal to the table's k; a run
	// with TablePath at seed s produces bit-identical estimates to an
	// in-memory run at seed s whose table was saved by BuildTable.
	TablePath string
	// MapTable selects how TablePath is opened: the MapAuto zero value
	// memory-maps MvT4 files (zero-copy, O(ms) open) and falls back to
	// heap loading where mapping is unavailable. Estimates are
	// bit-identical across modes.
	MapTable MapMode
}

// Result aggregates the estimates of a run.
type Result struct {
	// Counts estimates the number of induced occurrences per graphlet.
	Counts estimate.Counts
	// Frequencies is Counts normalized to sum to 1.
	Frequencies estimate.Counts
	// Samples is the total number of samples taken across colorings.
	Samples int
	// BuildTime and SampleTime aggregate phase durations across colorings.
	BuildTime  time.Duration
	SampleTime time.Duration
	// OpenTime is the table open + engine construction cost of a TablePath
	// run (zero when the table was built in-memory): opening a persisted
	// table is not a build, so it is reported separately from BuildTime.
	OpenTime time.Duration
	// BuildStats holds the per-coloring build statistics.
	BuildStats []*build.Stats
	// TableBytes is the compact count-table payload of the last coloring.
	TableBytes int64
	// Covered is the number of AGS-covered graphlets (last coloring).
	Covered int
	// Achieved is the precision certificate of a run-to-precision run (nil
	// for fixed-budget runs).
	Achieved *Certificate
}

// validate checks the parts of the config shared by Count and BuildTable.
func (cfg Config) validate() error {
	if cfg.K < 2 || cfg.K > treelet.MaxK {
		return fmt.Errorf("core: K=%d out of range [2,%d]", cfg.K, treelet.MaxK)
	}
	if cfg.BiasedLambda > 0 {
		if err := coloring.ValidateLambda(cfg.K, cfg.BiasedLambda); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// colorFor generates the coloring of run `run` — the one deterministic
// seed schedule shared by Count and BuildTable, so a table saved by
// BuildTable reproduces exactly the coloring Count would have built
// in-memory at the same seed.
func colorFor(g *graph.Graph, cfg Config, run int) *coloring.Coloring {
	seed := cfg.Seed + int64(run)*7919
	if cfg.BiasedLambda > 0 {
		return coloring.Biased(g.NumNodes(), cfg.K, cfg.BiasedLambda, seed)
	}
	return coloring.Uniform(g.NumNodes(), cfg.K, seed)
}

// buildFor runs the build-up phase with the config's build options.
func buildFor(ctx context.Context, g *graph.Graph, cfg Config, col *coloring.Coloring, cat *treelet.Catalog) (*table.Table, *build.Stats, error) {
	opts := build.DefaultOptions()
	opts.Workers = cfg.Workers
	opts.Spill = cfg.Spill
	opts.MemBudget = cfg.MemBudget
	opts.SmartStars = !cfg.MaterializeStars
	if cfg.BufferThreshold > 0 {
		opts.BufferThreshold = cfg.BufferThreshold
	}
	return build.Run(ctx, g, col, cfg.K, cat, opts)
}

// BuildTable runs the coloring and build-up phase for run 0 of cfg and
// persists the table (arena + offset index + coloring) to path, so later
// Count calls with Config.TablePath skip the build entirely.
func BuildTable(g *graph.Graph, cfg Config, path string) (*build.Stats, int64, error) {
	return BuildTableContext(context.Background(), g, cfg, path)
}

// BuildTableContext is BuildTable honoring a context: a canceled or
// expired ctx stops the build-up phase promptly.
func BuildTableContext(ctx context.Context, g *graph.Graph, cfg Config, path string) (*build.Stats, int64, error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	cat := treelet.NewCatalog(cfg.K)
	col := colorFor(g, cfg, 0)
	tab, stats, err := buildFor(ctx, g, cfg, col, cat)
	if err != nil {
		return nil, 0, err
	}
	fileBytes, err := table.SaveFile(path, tab, col)
	if err != nil {
		return nil, 0, err
	}
	return stats, fileBytes, nil
}

// query maps the config's sampling knobs onto an engine query at seed —
// the one translation shared by every mode, so the one-shot paths and a
// long-lived Engine cannot drift apart.
func (cfg Config) query(seed int64) Query {
	return Query{
		Strategy:        cfg.Strategy,
		Samples:         cfg.SamplesPerColoring,
		CoverThreshold:  cfg.CoverThreshold,
		Seed:            seed,
		SampleWorkers:   cfg.SampleWorkers,
		BufferThreshold: cfg.BufferThreshold,
		Epsilon:         cfg.Epsilon,
		Delta:           cfg.Delta,
		TargetMotif:     cfg.TargetMotif,
		MaxSamples:      cfg.MaxSamples,
	}
}

// precisionMode reports whether any run-to-precision field of the config
// is set (mirrors Query.PrecisionMode).
func (cfg Config) precisionMode() bool {
	return cfg.Epsilon != 0 || cfg.Delta != 0 || cfg.MaxSamples != 0 || cfg.TargetMotif != (graphlet.Code{})
}

// Count runs the motivo pipeline on g.
func Count(g *graph.Graph, cfg Config) (*Result, error) {
	return CountContext(context.Background(), g, cfg)
}

// CountContext runs the motivo pipeline on g under ctx: both the build-up
// phase and the sampling loops check the context periodically, so a
// deadline or cancellation stops the run promptly.
//
// It is a thin open-query-close over Engine: TablePath mode opens an
// engine from the file and serves one query through it; the in-memory mode
// builds one engine per coloring. Either way the sampling code path is
// Engine.Count, so a one-shot run is bit-identical to the same query
// against a long-lived engine at the same seed.
func CountContext(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Colorings < 1 {
		return nil, fmt.Errorf("core: Colorings must be ≥ 1, got %d", cfg.Colorings)
	}
	if cfg.precisionMode() {
		// The per-query invariants (AGS-only, positive ε, δ in (0,1)) are
		// checked by Query.Validate inside Engine.Count.
		if cfg.Colorings != 1 {
			return nil, fmt.Errorf("core: run-to-precision requires Colorings == 1 (the certificate covers one coloring), got %d", cfg.Colorings)
		}
		if cfg.SamplesPerColoring != 0 {
			return nil, fmt.Errorf("core: SamplesPerColoring and run-to-precision are mutually exclusive")
		}
	} else if cfg.SamplesPerColoring < 1 {
		return nil, fmt.Errorf("core: SamplesPerColoring must be ≥ 1, got %d", cfg.SamplesPerColoring)
	}
	if err := ValidateSampleWorkers(cfg.SampleWorkers); err != nil {
		return nil, err
	}
	cover := cfg.CoverThreshold
	if cover == 0 {
		cover = 1000
	}
	if err := ValidateCoverThreshold(cover); err != nil {
		return nil, err
	}
	res := &Result{Counts: make(estimate.Counts)}

	if cfg.TablePath != "" {
		if cfg.Colorings != 1 {
			return nil, fmt.Errorf("core: TablePath requires Colorings == 1 (a saved table captures one coloring), got %d", cfg.Colorings)
		}
		if cfg.BiasedLambda > 0 {
			return nil, fmt.Errorf("core: BiasedLambda has no effect with TablePath (the saved coloring is used); unset one")
		}
		eng, err := OpenMode(g, cfg.TablePath, cfg.MapTable)
		if err != nil {
			return nil, err
		}
		if eng.K() != cfg.K {
			return nil, fmt.Errorf("core: table %s was built for k=%d, run wants k=%d", cfg.TablePath, eng.K(), cfg.K)
		}
		res.OpenTime = eng.OpenTime()
		res.TableBytes = eng.TableBytes()
		qres, err := eng.Count(ctx, cfg.query(cfg.Seed))
		if err != nil {
			return nil, err
		}
		res.Counts = qres.Counts
		res.Frequencies = qres.Frequencies
		res.Samples = qres.Samples
		res.Covered = qres.Covered
		res.Achieved = qres.Achieved
		res.SampleTime = qres.SampleTime
		return res, nil
	}

	cat := treelet.NewCatalog(cfg.K)
	sig := estimate.NewSigma(cfg.K)
	for run := 0; run < cfg.Colorings; run++ {
		seed := cfg.Seed + int64(run)*7919
		col := colorFor(g, cfg, run)
		tab, stats, err := buildFor(ctx, g, cfg, col, cat)
		if err != nil {
			return nil, err
		}
		res.BuildTime += stats.Duration
		res.BuildStats = append(res.BuildStats, stats)
		res.TableBytes = stats.TableBytes
		eng, err := newEngine(g, tab, col, cat, sig)
		if err != nil {
			return nil, err
		}
		qres, err := eng.Count(ctx, cfg.query(seed))
		if err != nil {
			return nil, err
		}
		res.Samples += qres.Samples
		res.Covered = qres.Covered
		res.Achieved = qres.Achieved
		res.SampleTime += qres.SampleTime
		for code, v := range qres.Counts {
			res.Counts[code] += v / float64(cfg.Colorings)
		}
	}
	res.Frequencies = estimate.Frequencies(res.Counts)
	return res, nil
}

// naiveTallies draws `budget` samples across `streams` deterministic
// sampling streams (one urn clone and one derived rng per stream, seeded in
// stream order), executed on at most `workers` goroutines. Results depend
// only on (rng seed, streams), never on the physical worker count or
// goroutine scheduling: the count path passes streams == workers (the
// classic behavior, where changing SampleWorkers changes the draw
// sequence), while the signatures path pins streams so its vectors are
// bit-identical at any worker count. observe, when non-nil, receives every
// draw with its stream index and sampled vertices (scratch slice — copy to
// retain); it is never called concurrently for the same stream index. The
// context is checked every 1024 draws; on cancellation the partial tallies
// are discarded and ctx.Err() returned.
func naiveTallies(ctx context.Context, urn *sample.Urn, budget, workers, streams int, rng *rand.Rand, observe func(stream int, code graphlet.Code, nodes []int32)) (map[graphlet.Code]int64, error) {
	if streams > budget {
		// With more streams than samples the per-stream share rounds to
		// zero, which used to leave streams 0..n-2 idle while the last one
		// drew the whole budget; clamping gives every stream ≥ 1 draw.
		streams = budget
	}
	tallies := make(map[graphlet.Code]int64)
	if streams <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		i, canceled := 0, false
		urn.SampleBatch(rng, budget, func(code graphlet.Code, nodes []int32) bool {
			tallies[code]++
			if observe != nil {
				observe(0, code, nodes)
			}
			i++
			if i&1023 == 0 && ctx.Err() != nil {
				canceled = true
				return false
			}
			return true
		})
		if canceled {
			return nil, ctx.Err()
		}
		return tallies, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > streams {
		workers = streams
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	sem := make(chan struct{}, workers)
	per := budget / streams
	for w := 0; w < streams; w++ {
		n := per
		if w == streams-1 {
			n = budget - per*(streams-1)
		}
		seed := rng.Int63()
		wg.Add(1)
		go func(w, n int, seed int64) {
			defer wg.Done()
			sem <- struct{}{} // at most `workers` streams sample at once
			defer func() { <-sem }()
			clone := urn.Clone()
			local := make(map[graphlet.Code]int64)
			r := rand.New(rand.NewSource(seed))
			i, canceled := 0, false
			clone.SampleBatch(r, n, func(code graphlet.Code, nodes []int32) bool {
				local[code]++
				if observe != nil {
					observe(w, code, nodes)
				}
				i++
				if i&1023 == 0 && ctx.Err() != nil {
					canceled = true
					return false
				}
				return true
			})
			if canceled {
				return // partial stream tallies are discarded below
			}
			mu.Lock()
			for c, v := range local {
				tallies[c] += v
			}
			mu.Unlock()
		}(w, n, seed)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return tallies, nil
}
