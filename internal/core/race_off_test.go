//go:build !race

package core

// raceEnabled scales workload-heavy tests down under the race detector.
const raceEnabled = false
