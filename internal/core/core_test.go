package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestValidation(t *testing.T) {
	g := gen.Path(5)
	cases := []Config{
		{K: 1, Colorings: 1, SamplesPerColoring: 10},
		{K: 20, Colorings: 1, SamplesPerColoring: 10},
		{K: 3, Colorings: 0, SamplesPerColoring: 10},
		{K: 3, Colorings: 1, SamplesPerColoring: 0},
		{K: 3, Colorings: 1, SamplesPerColoring: 10, BiasedLambda: 0.9},
	}
	for i, cfg := range cases {
		if _, err := Count(g, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Unknown strategy: use a graph large enough that the urn is
	// non-empty, otherwise the coloring is skipped before the strategy
	// dispatch.
	big := gen.ErdosRenyi(100, 300, 1)
	if _, err := Count(big, Config{K: 3, Colorings: 1, SamplesPerColoring: 10, Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestStrategyString(t *testing.T) {
	if Naive.String() != "naive" || AGS.String() != "ags" {
		t.Error("strategy names wrong")
	}
	if Strategy(7).String() == "" {
		t.Error("unknown strategy should still format")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{Naive, AGS} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("exhaustive"); err == nil {
		t.Error("unknown strategy name must fail")
	}
}

func TestFlagValidators(t *testing.T) {
	if err := ValidateCoverThreshold(1); err != nil {
		t.Errorf("cover threshold 1 rejected: %v", err)
	}
	if err := ValidateCoverThreshold(0); err == nil {
		t.Error("cover threshold 0 accepted")
	}
	for _, w := range []int{0, 1, MaxSampleWorkers} {
		if err := ValidateSampleWorkers(w); err != nil {
			t.Errorf("sample workers %d rejected: %v", w, err)
		}
	}
	for _, w := range []int{-1, MaxSampleWorkers + 1} {
		if err := ValidateSampleWorkers(w); err == nil {
			t.Errorf("sample workers %d accepted", w)
		}
	}
	g := gen.ErdosRenyi(30, 90, 53)
	if _, err := Count(g, Config{K: 3, Colorings: 1, SamplesPerColoring: 10, SampleWorkers: -2}); err == nil {
		t.Error("Count accepted negative SampleWorkers")
	}
	if _, err := Count(g, Config{K: 3, Colorings: 1, SamplesPerColoring: 10, Strategy: AGS, CoverThreshold: -1}); err == nil {
		t.Error("Count accepted negative CoverThreshold")
	}
}

func TestNaiveAndAGSAgreeWithExact(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 3)
	truth, err := exact.Count(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Naive, AGS} {
		res, err := Count(g, Config{
			K: 4, Colorings: 6, SamplesPerColoring: 20000,
			Strategy: strat, CoverThreshold: 400, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if l1 := estimate.L1(res.Counts, truth); l1 > 0.12 {
			t.Errorf("%v: ℓ1 = %.3f", strat, l1)
		}
		if res.Samples != 6*20000 {
			t.Errorf("%v: samples = %d", strat, res.Samples)
		}
		if res.BuildTime <= 0 || res.SampleTime <= 0 || len(res.BuildStats) != 6 {
			t.Errorf("%v: stats incomplete", strat)
		}
		var fsum float64
		for _, f := range res.Frequencies {
			fsum += f
		}
		if math.Abs(fsum-1) > 1e-9 {
			t.Errorf("%v: frequencies sum to %v", strat, fsum)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 7)
	cfg := Config{K: 4, Colorings: 2, SamplesPerColoring: 3000, Seed: 11}
	a, err := Count(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatal("support differs between identical runs")
	}
	for c, v := range a.Counts {
		if b.Counts[c] != v {
			t.Fatalf("estimate for %v differs: %v vs %v", c, v, b.Counts[c])
		}
	}
}

func TestBiasedColoringPath(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 13)
	res, err := Count(g, Config{
		K: 4, Colorings: 3, SamplesPerColoring: 10000,
		BiasedLambda: 0.15, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) == 0 {
		t.Fatal("biased run produced nothing")
	}
}

func TestTinyGraphEmptyColorings(t *testing.T) {
	// On a 4-node graph with k=4, many colorings leave the urn empty;
	// Count must survive and still average the lucky ones.
	g := gen.Complete(4)
	res, err := Count(g, Config{K: 4, Colorings: 30, SamplesPerColoring: 100, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// The only graphlet is K4 with exact count 1; colorful probability is
	// 4!/4^4 ≈ 0.094, so ~3 of 30 colorings contribute 1/p_k ≈ 10.67 each
	// and the average should be within a factor ~3 of 1 (loose check: it
	// must at least be finite and non-negative).
	for _, v := range res.Counts {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("bad estimate %v", v)
		}
	}
}

func TestParallelSamplingMatchesSequential(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 31)
	truth, err := exact.Count(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Count(g, Config{
		K: 4, Colorings: 4, SamplesPerColoring: 20000,
		SampleWorkers: 4, Seed: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l1 := estimate.L1(par.Counts, truth); l1 > 0.12 {
		t.Errorf("parallel sampling ℓ1 = %.3f", l1)
	}
	// Deterministic for fixed seed and worker count.
	par2, err := Count(g, Config{
		K: 4, Colorings: 4, SamplesPerColoring: 20000,
		SampleWorkers: 4, Seed: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range par.Counts {
		if par2.Counts[c] != v {
			t.Fatalf("parallel run not deterministic for %v", c)
		}
	}
}

// TestParallelAGSThroughCore exercises the epoch-based AGS path end to
// end through core.Count: accurate vs exact ground truth and
// deterministic for a fixed (seed, workers) pair.
func TestParallelAGSThroughCore(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 31)
	truth, err := exact.Count(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		K: 4, Colorings: 4, SamplesPerColoring: 20000,
		Strategy: AGS, CoverThreshold: 400,
		SampleWorkers: 4, Seed: 41,
	}
	par, err := Count(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l1 := estimate.L1(par.Counts, truth); l1 > 0.12 {
		t.Errorf("parallel AGS ℓ1 = %.3f", l1)
	}
	if par.Samples != 4*20000 {
		t.Errorf("samples = %d", par.Samples)
	}
	par2, err := Count(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range par.Counts {
		if par2.Counts[c] != v {
			t.Fatalf("parallel AGS run not deterministic for %v", c)
		}
	}
}

func TestBufferThresholdReachesBuild(t *testing.T) {
	// K=4 so a DP pass actually runs: smart stars synthesize all of K ≤ 3.
	g := gen.StarHeavy(1, 120, 30, 43)
	res, err := Count(g, Config{
		K: 4, Colorings: 1, SamplesPerColoring: 500,
		BufferThreshold: 1, Seed: 47,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BuildStats) != 1 || res.BuildStats[0].BufferedNodes == 0 {
		t.Fatal("BufferThreshold override did not reach the build phase")
	}
}

func TestSpillPath(t *testing.T) {
	g := gen.ErdosRenyi(80, 240, 23)
	res, err := Count(g, Config{K: 4, Colorings: 1, SamplesPerColoring: 2000, Spill: true, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) == 0 {
		t.Fatal("spill run produced nothing")
	}
}

// TestPersistentTableRoundTrip is the build-once / query-many acceptance
// test: BuildTable → Count(TablePath) must produce bit-identical estimates
// to a fully in-memory Count at the same seed, for both strategies.
func TestPersistentTableRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(80, 240, 61)
	dir := t.TempDir()
	for _, strat := range []Strategy{Naive, AGS} {
		cfg := Config{
			K: 4, Colorings: 1, SamplesPerColoring: 8000,
			Strategy: strat, CoverThreshold: 300, Seed: 67,
		}
		mem, err := Count(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + strat.String() + ".tbl"
		stats, fileBytes, err := BuildTable(g, cfg, path)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Pairs == 0 || fileBytes == 0 {
			t.Fatalf("%v: empty build (%d pairs, %d file bytes)", strat, stats.Pairs, fileBytes)
		}
		loaded := cfg
		loaded.TablePath = path
		srv, err := Count(g, loaded)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mem.Counts, srv.Counts) {
			t.Fatalf("%v: estimates differ between in-memory build and loaded table", strat)
		}
		if srv.Samples != mem.Samples || srv.Covered != mem.Covered {
			t.Fatalf("%v: sampling trajectory differs (%d/%d samples, %d/%d covered)",
				strat, srv.Samples, mem.Samples, srv.Covered, mem.Covered)
		}
		// Query-many: a second query with a different budget works off the
		// same file without rebuilding.
		loaded.SamplesPerColoring = 2000
		if _, err := Count(g, loaded); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTablePathValidation exercises the persistent-path error cases.
func TestTablePathValidation(t *testing.T) {
	g := gen.ErdosRenyi(50, 150, 71)
	dir := t.TempDir()
	path := dir + "/k4.tbl"
	if _, _, err := BuildTable(g, Config{K: 4, Seed: 3}, path); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing file", Config{K: 4, Colorings: 1, SamplesPerColoring: 10, TablePath: dir + "/nope.tbl"}},
		{"colorings > 1", Config{K: 4, Colorings: 2, SamplesPerColoring: 10, TablePath: path}},
		{"lambda set", Config{K: 4, Colorings: 1, SamplesPerColoring: 10, BiasedLambda: 0.1, TablePath: path}},
		{"k mismatch", Config{K: 5, Colorings: 1, SamplesPerColoring: 10, TablePath: path}},
	}
	for _, tc := range cases {
		if _, err := Count(g, tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Node-count mismatch: same table, different graph.
	other := gen.ErdosRenyi(40, 120, 73)
	if _, err := Count(other, Config{K: 4, Colorings: 1, SamplesPerColoring: 10, TablePath: path}); err == nil {
		t.Error("node-count mismatch: expected error")
	}
}
