// Package estimate turns raw sample tallies into graphlet count estimates
// and provides the accuracy metrics of the paper's evaluation (Section 5):
// the ℓ1 error of the reconstructed graphlet frequency distribution, the
// per-graphlet count error err_H = (ĉ_H − c_H)/c_H, and the number of
// graphlets estimated within a relative-error band.
package estimate

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/graphlet"
	"repro/internal/treelet"
)

// Counts maps canonical graphlet codes to (estimated or exact) numbers of
// induced occurrences.
type Counts map[graphlet.Code]float64

// Sigma memoizes spanning-tree counts σ_i per canonical graphlet code
// (computed via Kirchhoff; motivo likewise caches σ to disk, Section 3.3).
// It is safe for concurrent use: a long-lived query engine shares one σ
// cache across all in-flight queries, and σ is a pure function of the code
// so cache hits and misses return identical values.
type Sigma struct {
	K     int
	mu    sync.Mutex
	cache map[graphlet.Code]int64
}

// NewSigma creates a σ cache for k-node graphlets.
func NewSigma(k int) *Sigma {
	return &Sigma{K: k, cache: make(map[graphlet.Code]int64)}
}

// Of returns σ_i for the graphlet.
func (s *Sigma) Of(c graphlet.Code) int64 {
	s.mu.Lock()
	if v, ok := s.cache[c]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := graphlet.SpanningTreeCount(s.K, c)
	s.mu.Lock()
	s.cache[c] = v
	s.mu.Unlock()
	return v
}

// SigmaShapes memoizes σ_ij tables (spanning trees of H_i by unrooted
// treelet shape T_j) per canonical graphlet code, for AGS. Like Sigma it is
// safe for concurrent use, so one cache can back every query of an engine;
// the returned rows are treated as immutable by all callers.
type SigmaShapes struct {
	K     int
	Cat   *treelet.Catalog
	mu    sync.Mutex
	cache map[graphlet.Code]map[treelet.Treelet]int64
}

// NewSigmaShapes creates a σ_ij cache.
func NewSigmaShapes(k int, cat *treelet.Catalog) *SigmaShapes {
	return &SigmaShapes{K: k, Cat: cat, cache: make(map[graphlet.Code]map[treelet.Treelet]int64)}
}

// Of returns the σ_ij row of the graphlet. Callers must not mutate the row.
func (s *SigmaShapes) Of(c graphlet.Code) map[treelet.Treelet]int64 {
	s.mu.Lock()
	if v, ok := s.cache[c]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := graphlet.SpanningTreeShapes(s.K, c, s.Cat)
	s.mu.Lock()
	s.cache[c] = v
	s.mu.Unlock()
	return v
}

// Naive converts naive-sampling tallies into induced-count estimates
// (Section 2.2): with x_i occurrences of H_i among S samples, t colorful
// k-treelets in the urn and σ_i spanning trees per copy,
// ĉ_i = (t/σ_i)(x_i/S) estimates the colorful copies and dividing by the
// colorful probability p_k gives the estimate of all copies.
//
// A tallied code with σ_i = 0 means the tally does not describe a connected
// k-graphlet — a corrupt or mismatched table — and dividing by it would
// poison every downstream Frequencies call with Inf/NaN, so it is reported
// as an error instead.
func Naive(tallies map[graphlet.Code]int64, samples int64, t float64, sig *Sigma, pColorful float64) (Counts, error) {
	out := make(Counts, len(tallies))
	if samples == 0 {
		return out, nil
	}
	for code, x := range tallies {
		sigma := float64(sig.Of(code))
		if sigma == 0 {
			return nil, fmt.Errorf("estimate: tallied code %v has zero spanning trees (corrupt or mismatched table)", code)
		}
		colorful := t / sigma * float64(x) / float64(samples)
		out[code] = colorful / pColorful
	}
	return out, nil
}

// Frequencies normalizes counts into a frequency vector. The total is
// accumulated in sorted-code order, not map order: float summation is not
// associative, so map-order accumulation made the last ulp of every
// frequency wobble between byte-identical runs — invisible to accuracy,
// fatal to the bit-identity guarantees the engine and smart-star tests
// assert.
func Frequencies(c Counts) Counts {
	codes := make([]graphlet.Code, 0, len(c))
	for k := range c {
		codes = append(codes, k)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].Less(codes[j]) })
	var total float64
	for _, k := range codes {
		total += c[k]
	}
	out := make(Counts, len(c))
	if total == 0 {
		return out
	}
	for k, v := range c {
		out[k] = v / total
	}
	return out
}

// L1 returns the ℓ1 distance between the frequency vectors of est and
// truth: Σ_i |f̂_i − f_i| over the union of supports.
func L1(est, truth Counts) float64 {
	fe, ft := Frequencies(est), Frequencies(truth)
	seen := make(map[graphlet.Code]bool)
	var sum float64
	for k, v := range fe {
		sum += math.Abs(v - ft[k])
		seen[k] = true
	}
	for k, v := range ft {
		if !seen[k] {
			sum += v
		}
	}
	return sum
}

// L2Norm returns the ℓ2 norm of the frequency vector of truth — the
// skewness diagnostic of Section 5.3 (AGS wins when it is close to 1).
func L2Norm(truth Counts) float64 {
	f := Frequencies(truth)
	var s float64
	for _, v := range f {
		s += v * v
	}
	return math.Sqrt(s)
}

// ErrH returns the per-graphlet count error (ĉ_H − c_H)/c_H (Eq. 4) for
// every graphlet in the ground truth; a missed graphlet has error −1.
func ErrH(est, truth Counts) map[graphlet.Code]float64 {
	out := make(map[graphlet.Code]float64, len(truth))
	for code, c := range truth {
		if c == 0 {
			continue
		}
		out[code] = (est[code] - c) / c
	}
	return out
}

// AccurateWithin returns how many ground-truth graphlets are estimated
// within relative error eps, and the ground-truth support size (the two
// panels of Figure 9).
func AccurateWithin(est, truth Counts, eps float64) (within, total int) {
	for _, e := range ErrH(est, truth) {
		total++
		if math.Abs(e) <= eps {
			within++
		}
	}
	return within, total
}

// RarestFound returns the smallest ground-truth frequency among graphlets
// tallied at least minSamples times (Figure 10); ok is false when nothing
// qualifies.
func RarestFound(tallies map[graphlet.Code]int64, truth Counts, minSamples int64) (freq float64, ok bool) {
	f := Frequencies(truth)
	best := math.Inf(1)
	for code, n := range tallies {
		if n < minSamples {
			continue
		}
		if fr, present := f[code]; present && fr < best {
			best = fr
			ok = true
		}
	}
	if !ok {
		return 0, false
	}
	return best, true
}
