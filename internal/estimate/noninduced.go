package estimate

import "repro/internal/graphlet"

// NonInduced converts induced occurrence counts into non-induced
// (subgraph) occurrence counts:
//
//	noninduced(H) = Σ_{H'} mult(H, H') · induced(H')
//
// where mult is the number of spanning subgraphs of H' isomorphic to H
// (Section 1 of the paper: non-induced counts "can be derived from the
// induced ones").
//
// support lists the canonical graphlet codes H to evaluate; a graphlet can
// have non-induced copies without any induced occurrence (every 4-subset
// of a clique contains paths but induces only K4), so the support cannot
// be inferred from counts. Pass graphlet.Enumerate(k) for all graphlets
// (k ≤ 7), or nil to default to the keys of counts.
func NonInduced(counts Counts, k int, support []graphlet.Code) Counts {
	if support == nil {
		support = make([]graphlet.Code, 0, len(counts))
		for c := range counts {
			support = append(support, c)
		}
	}
	out := make(Counts, len(support))
	for _, h := range support {
		var total float64
		for target, ind := range counts {
			if ind == 0 {
				continue
			}
			if m := graphlet.SubgraphMultiplicity(k, h, target); m > 0 {
				total += float64(m) * ind
			}
		}
		if total > 0 {
			out[h] = total
		}
	}
	return out
}
