package estimate

import (
	"math"
	"testing"
)

func TestTheoremThreeBoundBehaviour(t *testing.T) {
	// Pick a regime where the bound is informative (< 1):
	// k=5, Δ=10 → (k−1)!·Δ^(k−2) = 24·1000.
	b1 := TheoremThreeBound(0.1, 5, 0.038, 3e9, 10)
	if b1 >= 1 {
		t.Fatalf("reference bound not informative: %v", b1)
	}
	// More copies → tighter bound.
	b2 := TheoremThreeBound(0.1, 5, 0.038, 3e10, 10)
	if !(b2 < b1) {
		t.Errorf("bound should tighten with g_i: %v vs %v", b1, b2)
	}
	// Larger ε → tighter bound.
	b3 := TheoremThreeBound(0.5, 5, 0.038, 3e9, 10)
	if !(b3 < b1) {
		t.Errorf("bound should tighten with ε: %v vs %v", b1, b3)
	}
	// Larger max degree → weaker bound.
	b4 := TheoremThreeBound(0.1, 5, 0.038, 3e9, 20)
	if !(b4 > b1) {
		t.Errorf("bound should weaken with Δ: %v vs %v", b1, b4)
	}
	// Never exceeds 1.
	if b := TheoremThreeBound(1e-9, 8, 1e-4, 1, 1e6); b > 1 {
		t.Errorf("bound %v > 1", b)
	}
}

// TestTheoremThreeBoundDegenerate: the run-to-precision stopping rule calls
// the bound in a loop, so every degenerate input must return exactly the
// trivial bound 1 — never NaN (the loop would spin: NaN ≤ δ is false
// forever) and never a spurious 0 (the loop would certify garbage).
func TestTheoremThreeBoundDegenerate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name      string
		eps       float64
		k         int
		pColorful float64
		gi        float64
		maxDeg    int
	}{
		{"eps=0", 0, 5, 0.038, 1e6, 100},
		{"eps<0", -0.1, 5, 0.038, 1e6, 100},
		{"eps=NaN", nan, 5, 0.038, 1e6, 100},
		{"eps=Inf", inf, 5, 0.038, 1e6, 100},
		{"gi=0", 0.1, 5, 0.038, 0, 100},
		{"gi=NaN", 0.1, 5, 0.038, nan, 100},
		{"gi=Inf", 0.1, 5, 0.038, inf, 100},
		{"pk=0", 0.1, 5, 0, 1e6, 100},
		{"pk=NaN", 0.1, 5, nan, 1e6, 100},
		{"k<2", 0.1, 1, 0.038, 1e6, 100},
		{"maxDegree=0,k>2", 0.1, 5, 0.038, 1e6, 0}, // den = 24·0^3 = 0
	}
	for _, tc := range cases {
		if got := TheoremThreeBound(tc.eps, tc.k, tc.pColorful, tc.gi, tc.maxDeg); got != 1 {
			t.Errorf("%s: bound = %v, want trivial bound 1", tc.name, got)
		}
	}
	// maxDegree=0 with k=2 is fine: Δ^0 = 1, the bound stays defined.
	if got := TheoremThreeBound(0.5, 2, 0.5, 1e6, 0); !(got < 1) {
		t.Errorf("k=2, Δ=0: bound = %v, want informative (<1)", got)
	}
}

// TestTheoremThreeEpsInvertsBound: the achieved-ε helper must agree with
// the bound it inverts — at the returned ε the failure probability is ≤ δ,
// and just below it the bound exceeds δ.
func TestTheoremThreeEpsInvertsBound(t *testing.T) {
	const (
		delta = 0.05
		k     = 5
		pk    = 0.038
		gi    = 3e9
		maxD  = 10
	)
	eps := TheoremThreeEps(delta, k, pk, gi, maxD)
	if !(eps > 0) || math.IsInf(eps, 1) {
		t.Fatalf("achieved eps = %v, want finite positive", eps)
	}
	if b := TheoremThreeBound(eps, k, pk, gi, maxD); b > delta*(1+1e-9) {
		t.Errorf("bound at achieved eps = %v > delta %v", b, delta)
	}
	if b := TheoremThreeBound(eps*0.99, k, pk, gi, maxD); b <= delta {
		t.Errorf("bound just below achieved eps = %v, want > delta %v", b, delta)
	}
	// Degenerate inputs yield +Inf: nothing certified.
	for name, got := range map[string]float64{
		"gi=0":     TheoremThreeEps(delta, k, pk, 0, maxD),
		"gi=NaN":   TheoremThreeEps(delta, k, pk, math.NaN(), maxD),
		"delta=0":  TheoremThreeEps(0, k, pk, gi, maxD),
		"delta>=1": TheoremThreeEps(1, k, pk, gi, maxD),
		"Δ=0,k>2":  TheoremThreeEps(delta, k, pk, gi, 0),
	} {
		if !math.IsInf(got, 1) {
			t.Errorf("%s: achieved eps = %v, want +Inf", name, got)
		}
	}
}

func TestBiasedAccuracyLoss(t *testing.T) {
	// At λ = 1/k the biased distribution is uniform: loss factor 1.
	for k := 3; k <= 8; k++ {
		got, err := BiasedAccuracyLoss(k, 1/float64(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("k=%d: loss at uniform λ = %v, want 1", k, got)
		}
	}
	// Smaller λ → smaller colorful probability → loss < 1, monotone.
	prev := 1.0
	for _, lam := range []float64{0.18, 0.12, 0.06, 0.02} {
		got, err := BiasedAccuracyLoss(5, lam)
		if err != nil {
			t.Fatalf("λ=%v: %v", lam, err)
		}
		if got >= prev {
			t.Errorf("loss not decreasing at λ=%v: %v >= %v", lam, got, prev)
		}
		prev = got
	}
}

// TestBiasedAccuracyLossLambdaBoundary: table-driven sweep over the λ
// validity boundary. p_b = k!·λ^(k−1)·(1−(k−1)λ) is only a probability for
// λ ∈ (0, 1/(k−1)); past the boundary the old code returned a negative
// ratio. Now: in-range λ gives a non-negative finite ratio, the boundary
// itself clamps to exactly 0, and out-of-range λ is an error.
func TestBiasedAccuracyLossLambdaBoundary(t *testing.T) {
	for _, k := range []int{3, 4, 5, 7} {
		boundary := 1 / float64(k-1)
		cases := []struct {
			name    string
			lambda  float64
			wantErr bool
			want0   bool // expect (numerically) zero
		}{
			{"negative", -0.1, true, false},
			{"zero", 0, true, false},
			{"NaN", math.NaN(), true, false},
			{"tiny", 1e-6, false, false},
			{"uniform", 1 / float64(k), false, false},
			{"just inside", boundary * 0.999, false, false},
			{"boundary", boundary, false, true},
			{"just outside", boundary * 1.001, true, false},
			{"one", 1, true, false},
			{"huge", 10, true, false},
		}
		for _, tc := range cases {
			got, err := BiasedAccuracyLoss(k, tc.lambda)
			if tc.wantErr {
				if err == nil {
					t.Errorf("k=%d λ=%s: loss = %v, want error", k, tc.name, got)
				}
				continue
			}
			if err != nil {
				t.Errorf("k=%d λ=%s: unexpected error %v", k, tc.name, err)
				continue
			}
			if got < 0 || math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("k=%d λ=%s: loss = %v, want non-negative finite", k, tc.name, got)
			}
			if tc.want0 && got > 1e-9 {
				t.Errorf("k=%d λ=%s: loss = %v, want ~0", k, tc.name, got)
			}
		}
	}
}
