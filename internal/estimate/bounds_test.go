package estimate

import (
	"math"
	"testing"
)

func TestTheoremThreeBoundBehaviour(t *testing.T) {
	// Pick a regime where the bound is informative (< 1):
	// k=5, Δ=10 → (k−1)!·Δ^(k−2) = 24·1000.
	b1 := TheoremThreeBound(0.1, 5, 0.038, 3e9, 10)
	if b1 >= 1 {
		t.Fatalf("reference bound not informative: %v", b1)
	}
	// More copies → tighter bound.
	b2 := TheoremThreeBound(0.1, 5, 0.038, 3e10, 10)
	if !(b2 < b1) {
		t.Errorf("bound should tighten with g_i: %v vs %v", b1, b2)
	}
	// Larger ε → tighter bound.
	b3 := TheoremThreeBound(0.5, 5, 0.038, 3e9, 10)
	if !(b3 < b1) {
		t.Errorf("bound should tighten with ε: %v vs %v", b1, b3)
	}
	// Larger max degree → weaker bound.
	b4 := TheoremThreeBound(0.1, 5, 0.038, 3e9, 20)
	if !(b4 > b1) {
		t.Errorf("bound should weaken with Δ: %v vs %v", b1, b4)
	}
	// Degenerate inputs clamp to 1.
	if TheoremThreeBound(0, 5, 0.038, 1e6, 100) != 1 {
		t.Error("ε=0 must give the trivial bound")
	}
	if TheoremThreeBound(0.1, 5, 0.038, 0, 100) != 1 {
		t.Error("g=0 must give the trivial bound")
	}
	// Never exceeds 1.
	if b := TheoremThreeBound(1e-9, 8, 1e-4, 1, 1e6); b > 1 {
		t.Errorf("bound %v > 1", b)
	}
}

func TestBiasedAccuracyLoss(t *testing.T) {
	// At λ = 1/k the biased distribution is uniform: loss factor 1.
	for k := 3; k <= 8; k++ {
		if got := BiasedAccuracyLoss(k, 1/float64(k)); math.Abs(got-1) > 1e-9 {
			t.Errorf("k=%d: loss at uniform λ = %v, want 1", k, got)
		}
	}
	// Smaller λ → smaller colorful probability → loss < 1, monotone.
	prev := 1.0
	for _, lam := range []float64{0.18, 0.12, 0.06, 0.02} {
		got := BiasedAccuracyLoss(5, lam)
		if got >= prev {
			t.Errorf("loss not decreasing at λ=%v: %v >= %v", lam, got, prev)
		}
		prev = got
	}
}
