package estimate

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graphlet"
	"repro/internal/treelet"
)

func code(k int, edges [][2]int) graphlet.Code {
	return graphlet.Canonical(k, graphlet.FromEdges(k, edges))
}

var (
	tri   = code(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	wedge = code(3, [][2]int{{0, 1}, {1, 2}})
)

func TestSigmaCaches(t *testing.T) {
	s := NewSigma(3)
	if s.Of(tri) != 3 {
		t.Errorf("σ(triangle) = %d", s.Of(tri))
	}
	if s.Of(wedge) != 1 {
		t.Errorf("σ(wedge) = %d", s.Of(wedge))
	}
	// Second call hits the cache (same value).
	if s.Of(tri) != 3 {
		t.Error("cache changed the value")
	}
}

func TestSigmaShapes(t *testing.T) {
	cat := treelet.NewCatalog(4)
	s := NewSigmaShapes(4, cat)
	k4 := code(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	row := s.Of(k4)
	var sum int64
	for _, n := range row {
		sum += n
	}
	if sum != 16 {
		t.Errorf("Σσ_ij(K4) = %d, want 16", sum)
	}
}

func TestNaiveEstimator(t *testing.T) {
	// 60 of 100 samples are triangles, t=300 colorful treelets, p_k=0.5:
	// colorful triangles = (300/3)·0.6 = 60; estimate = 120.
	tallies := map[graphlet.Code]int64{tri: 60, wedge: 40}
	sig := NewSigma(3)
	est, err := Naive(tallies, 100, 300, sig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est[tri]-120) > 1e-9 {
		t.Errorf("triangle estimate %v, want 120", est[tri])
	}
	// wedges: (300/1)·0.4/0.5 = 240.
	if math.Abs(est[wedge]-240) > 1e-9 {
		t.Errorf("wedge estimate %v, want 240", est[wedge])
	}
	empty, err := Naive(tallies, 0, 300, sig, 0.5)
	if err != nil || len(empty) != 0 {
		t.Errorf("zero samples must give empty estimates (got %v, err %v)", empty, err)
	}
}

// TestNaiveRejectsZeroSigma: a tally whose code has no spanning trees (a
// disconnected "graphlet" — only possible with a corrupt or mismatched
// table) must surface as an error, not as Inf/NaN estimates that would
// poison Frequencies.
func TestNaiveRejectsZeroSigma(t *testing.T) {
	disconnected := code(3, [][2]int{{0, 1}}) // node 2 isolated: σ = 0
	sig := NewSigma(3)
	if sig.Of(disconnected) != 0 {
		t.Fatalf("σ(disconnected) = %d, want 0", sig.Of(disconnected))
	}
	tallies := map[graphlet.Code]int64{tri: 10, disconnected: 1}
	if est, err := Naive(tallies, 11, 300, sig, 0.5); err == nil {
		t.Fatalf("Naive accepted σ=0 tally: %v", est)
	}
}

func TestFrequencies(t *testing.T) {
	f := Frequencies(Counts{tri: 30, wedge: 70})
	if math.Abs(f[tri]-0.3) > 1e-12 || math.Abs(f[wedge]-0.7) > 1e-12 {
		t.Errorf("frequencies %v", f)
	}
	if len(Frequencies(Counts{})) != 0 {
		t.Error("empty counts must give empty frequencies")
	}
	if len(Frequencies(Counts{tri: 0})) != 0 {
		t.Error("all-zero counts must give empty frequencies")
	}
}

func TestL1(t *testing.T) {
	truth := Counts{tri: 50, wedge: 50}
	if l1 := L1(truth, truth); l1 != 0 {
		t.Errorf("L1(x,x) = %v", l1)
	}
	// est misses the wedge entirely: |1-0.5| + |0-0.5| = 1.
	if l1 := L1(Counts{tri: 10}, truth); math.Abs(l1-1) > 1e-12 {
		t.Errorf("L1 = %v, want 1", l1)
	}
	// est has mass on a graphlet truth lacks: that mass counts fully.
	extra := code(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	est := Counts{tri: 25, wedge: 25, extra: 50}
	// frequencies: est = (.25,.25,.5), truth = (.5,.5,0) → ℓ1 = 1.
	if l1 := L1(est, truth); math.Abs(l1-1) > 1e-12 {
		t.Errorf("L1 with extra graphlet = %v, want 1", l1)
	}
}

func TestErrH(t *testing.T) {
	truth := Counts{tri: 100, wedge: 200}
	est := Counts{tri: 150} // wedge missed
	errs := ErrH(est, truth)
	if math.Abs(errs[tri]-0.5) > 1e-12 {
		t.Errorf("err triangle %v", errs[tri])
	}
	if math.Abs(errs[wedge]-(-1)) > 1e-12 {
		t.Errorf("err wedge %v, want -1 (missed)", errs[wedge])
	}
}

func TestAccurateWithin(t *testing.T) {
	truth := Counts{tri: 100, wedge: 200}
	est := Counts{tri: 130, wedge: 350} // +30%, +75%
	within, total := AccurateWithin(est, truth, 0.5)
	if within != 1 || total != 2 {
		t.Errorf("within=%d total=%d", within, total)
	}
}

func TestL2Norm(t *testing.T) {
	// Uniform over 4 graphlets: ℓ2 = 1/2. Fully skewed: ℓ2 = 1.
	u := Counts{}
	for i, g := range gen4codes() {
		u[g] = 25
		_ = i
	}
	if got := L2Norm(u); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("uniform ℓ2 = %v", got)
	}
	if got := L2Norm(Counts{tri: 100}); math.Abs(got-1) > 1e-12 {
		t.Errorf("point-mass ℓ2 = %v", got)
	}
}

// gen4codes returns 4 distinct canonical codes.
func gen4codes() []graphlet.Code {
	return []graphlet.Code{
		code(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		code(4, [][2]int{{0, 1}, {0, 2}, {0, 3}}),
		code(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		graphlet.Canonical(4, graphlet.FromGraph(gen.Complete(4))),
	}
}

func TestRarestFound(t *testing.T) {
	truth := Counts{tri: 999000, wedge: 1000}
	tallies := map[graphlet.Code]int64{tri: 500, wedge: 12}
	freq, ok := RarestFound(tallies, truth, 10)
	if !ok || math.Abs(freq-0.001) > 1e-9 {
		t.Errorf("rarest = %v ok=%v", freq, ok)
	}
	// Below the min-sample filter nothing qualifies.
	if _, ok := RarestFound(map[graphlet.Code]int64{tri: 5}, truth, 10); ok {
		t.Error("expected no qualifying graphlet")
	}
}
