package estimate_test

import (
	"math"
	"testing"

	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
)

// bruteNonInduced counts non-induced (subgraph) copies of each k-graphlet
// by enumerating all k-subsets and, within each, all spanning subgraphs.
func bruteNonInduced(g *graph.Graph, k int) estimate.Counts {
	out := make(estimate.Counts)
	n := g.NumNodes()
	nodes := make([]int32, 0, k)
	var rec func(start int32)
	rec = func(start int32) {
		if len(nodes) == k {
			var edges [][2]int
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if g.HasEdge(nodes[i], nodes[j]) {
						edges = append(edges, [2]int{i, j})
					}
				}
			}
			// Enumerate all edge subsets that keep the k nodes connected
			// (spanning subgraphs).
			for mask := 0; mask < 1<<len(edges); mask++ {
				var sel [][2]int
				for b, e := range edges {
					if mask&(1<<b) != 0 {
						sel = append(sel, e)
					}
				}
				c := graphlet.FromEdges(k, sel)
				if graphlet.IsConnected(k, c) {
					out[graphlet.Canonical(k, c)]++
				}
			}
			return
		}
		for v := start; int(v) < n; v++ {
			nodes = append(nodes, v)
			rec(v + 1)
			nodes = nodes[:len(nodes)-1]
		}
	}
	rec(0)
	return out
}

func TestNonInducedMatchesBruteForce(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(10, 20, 7),
		gen.Complete(6),
		gen.Star(8),
		gen.Lollipop(5, 3),
	}
	for gi, g := range graphs {
		for k := 3; k <= 4; k++ {
			induced, err := exact.Count(g, k)
			if err != nil {
				t.Fatal(err)
			}
			got := estimate.NonInduced(induced, k, graphlet.Enumerate(k))
			want := bruteNonInduced(g, k)
			// NonInduced only has support where induced counts exist —
			// which covers every graphlet with ≥1 non-induced copy only
			// if it also appears induced OR as subgraph of one that does;
			// compare on the union.
			for code, w := range want {
				if math.Abs(got[code]-w) > 1e-6 {
					t.Errorf("graph %d k=%d %v: got %v, want %v", gi, k, code, got[code], w)
				}
			}
			for code, v := range got {
				if math.Abs(v-want[code]) > 1e-6 {
					t.Errorf("graph %d k=%d %v: got %v, brute %v", gi, k, code, v, want[code])
				}
			}
		}
	}
}

func TestNonInducedKnownFormulas(t *testing.T) {
	// In K5: non-induced P4 count = 5·4·3·2/2 = 60; non-induced 4-cycles
	// = C(5,4)·3 = 15; non-induced K4 = C(5,4) = 5.
	g := gen.Complete(5)
	induced, err := exact.Count(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	ni := estimate.NonInduced(induced, 4, graphlet.Enumerate(4))
	p4 := graphlet.Canonical(4, graphlet.FromGraph(gen.Path(4)))
	c4 := graphlet.Canonical(4, graphlet.FromGraph(gen.Cycle(4)))
	k4 := graphlet.Canonical(4, graphlet.FromGraph(gen.Complete(4)))
	star := graphlet.Canonical(4, graphlet.FromGraph(gen.Star(4)))
	if ni[p4] != 60 {
		t.Errorf("paths: %v, want 60", ni[p4])
	}
	if ni[c4] != 15 {
		t.Errorf("cycles: %v, want 15", ni[c4])
	}
	if ni[k4] != 5 {
		t.Errorf("cliques: %v, want 5", ni[k4])
	}
	// Stars K_{1,3} in K5: choose center (5) × choose 3 leaves C(4,3) = 20.
	if ni[star] != 20 {
		t.Errorf("stars: %v, want 20", ni[star])
	}
	// Triangles are their own induced form in any graph.
	ind3, err := exact.Count(gen.ErdosRenyi(20, 60, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	ni3 := estimate.NonInduced(ind3, 3, nil)
	tri := graphlet.Canonical(3, graphlet.FromGraph(gen.Complete(3)))
	if ni3[tri] != ind3[tri] {
		t.Errorf("non-induced triangles %v != induced %v", ni3[tri], ind3[tri])
	}
}
