package estimate

import "math"

// TheoremThreeBound evaluates the multiplicative concentration bound of
// Theorem 3 of the paper:
//
//	Pr[|ĝ_i − g_i| > ε·g_i] < 2·exp(−(ε²/2) · p_k·g_i / ((k−1)!·Δ^(k−2)))
//
// where p_k is the colorful probability, g_i the (estimated) number of
// copies of the graphlet, and Δ the maximum degree of the host graph. It
// returns the probability bound (clamped to 1). Callers use it to decide
// whether a coloring-induced estimate for a graphlet is trustworthy, and
// the biased-coloring λ selection uses it through BiasedAccuracyLoss.
func TheoremThreeBound(eps float64, k int, pColorful, gi float64, maxDegree int) float64 {
	if eps <= 0 || gi <= 0 || k < 2 {
		return 1
	}
	den := factorial(k-1) * math.Pow(float64(maxDegree), float64(k-2))
	exponent := eps * eps / 2 * pColorful * gi / den
	b := 2 * math.Exp(-exponent)
	if b > 1 {
		return 1
	}
	return b
}

// BiasedAccuracyLoss compares the Theorem 3 exponents under uniform and
// biased coloring: it returns the ratio p_biased/p_uniform, i.e. the factor
// by which the concentration exponent shrinks when using biased coloring
// with parameter λ (Section 3.4: "the accuracy loss remains negligible as
// long as λ^(k−1)·n/Δ^(k−2) is large").
func BiasedAccuracyLoss(k int, lambda float64) float64 {
	pu := 1.0
	for i := 1; i <= k; i++ {
		pu *= float64(i) / float64(k)
	}
	pb := factorial(k) * math.Pow(lambda, float64(k-1)) * (1 - float64(k-1)*lambda)
	return pb / pu
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
