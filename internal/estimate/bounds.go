package estimate

import (
	"fmt"
	"math"
)

// TheoremThreeBound evaluates the multiplicative concentration bound of
// Theorem 3 of the paper:
//
//	Pr[|ĝ_i − g_i| > ε·g_i] < 2·exp(−(ε²/2) · p_k·g_i / ((k−1)!·Δ^(k−2)))
//
// where p_k is the colorful probability, g_i the (estimated) number of
// copies of the graphlet, and Δ the maximum degree of the host graph. It
// returns the probability bound (clamped to 1). Callers use it to decide
// whether a coloring-induced estimate for a graphlet is trustworthy; the
// run-to-precision stopping rule calls it in a loop, so every degenerate
// input (NaN/Inf parameters, Δ=0 on a k>2 query, p_k≤0) must collapse to
// the trivial bound 1 rather than produce NaN or a spurious 0 that would
// certify garbage.
func TheoremThreeBound(eps float64, k int, pColorful, gi float64, maxDegree int) float64 {
	if !(eps > 0) || !(gi > 0) || !(pColorful > 0) || k < 2 {
		return 1 // also catches NaN: !(NaN > 0)
	}
	if math.IsInf(eps, 1) || math.IsInf(gi, 1) {
		// An infinite ε or ĝ_i is an upstream estimator failure (e.g. a
		// zero sampling weight), not evidence of concentration.
		return 1
	}
	den := factorial(k-1) * math.Pow(float64(maxDegree), float64(k-2))
	if !(den > 0) || math.IsInf(den, 1) {
		// Δ=0 with k>2 (empty or degenerate host graph) or an overflowed
		// denominator: the bound is uninformative.
		return 1
	}
	exponent := eps * eps / 2 * pColorful * gi / den
	if math.IsNaN(exponent) {
		return 1
	}
	b := 2 * math.Exp(-exponent)
	if b > 1 || math.IsNaN(b) {
		return 1
	}
	return b
}

// TheoremThreeEps inverts TheoremThreeBound: it returns the smallest ε for
// which the Theorem 3 failure probability is at most delta, i.e.
//
//	ε = sqrt(2·ln(2/δ) · (k−1)!·Δ^(k−2) / (p_k·g_i))
//
// Run-to-precision uses it both as the stopping rule (stop once ε ≤ the
// requested precision) and to report the precision actually achieved when
// the sample cap is hit first. Degenerate inputs (no copies seen, Δ=0 with
// k>2, NaN anywhere) yield +Inf: "nothing certified".
func TheoremThreeEps(delta float64, k int, pColorful, gi float64, maxDegree int) float64 {
	if !(delta > 0) || delta >= 1 || !(gi > 0) || !(pColorful > 0) || k < 2 {
		return math.Inf(1)
	}
	den := factorial(k-1) * math.Pow(float64(maxDegree), float64(k-2))
	if !(den > 0) || math.IsInf(den, 1) {
		return math.Inf(1)
	}
	eps := math.Sqrt(2 * math.Log(2/delta) * den / (pColorful * gi))
	if math.IsNaN(eps) {
		return math.Inf(1)
	}
	return eps
}

// BiasedAccuracyLoss compares the Theorem 3 exponents under uniform and
// biased coloring: it returns the ratio p_biased/p_uniform, i.e. the factor
// by which the concentration exponent shrinks when using biased coloring
// with parameter λ (Section 3.4: "the accuracy loss remains negligible as
// long as λ^(k−1)·n/Δ^(k−2) is large"). Biased coloring is only defined for
// λ ∈ (0, 1/(k−1)); out-of-range λ is rejected rather than silently
// returning a negative "probability ratio" (p_b = k!·λ^(k−1)·(1−(k−1)λ)
// goes negative past the boundary), and the boundary itself clamps to 0.
func BiasedAccuracyLoss(k int, lambda float64) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("estimate: biased accuracy loss needs k >= 2, got %d", k)
	}
	if !(lambda > 0) || lambda*float64(k-1) > 1 || math.IsNaN(lambda) {
		return 0, fmt.Errorf("estimate: biased coloring lambda %v out of range (0, 1/%d]", lambda, k-1)
	}
	pu := 1.0
	for i := 1; i <= k; i++ {
		pu *= float64(i) / float64(k)
	}
	pb := factorial(k) * math.Pow(lambda, float64(k-1)) * (1 - float64(k-1)*lambda)
	if pb < 0 {
		pb = 0 // λ = 1/(k−1) exactly: rounding may dip below zero
	}
	return pb / pu, nil
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
