// Package u128 implements unsigned 128-bit integers used as treelet
// counters throughout the library.
//
// Motivo stores 128-bit counts because 64-bit counters overflow already for
// moderate inputs: the number of 6-stars centered at a node of degree 2^16
// is about 2^80 (paper, Section 3.1). All operations are branch-light and
// allocation-free so they can sit in the innermost dynamic-programming loop.
package u128

import (
	"fmt"
	"math"
	"math/bits"
)

// Uint128 is an unsigned 128-bit integer. The zero value is 0.
type Uint128 struct {
	Hi, Lo uint64
}

// Zero is the zero value, exported for readability at call sites.
var Zero = Uint128{}

// One is the constant 1.
var One = Uint128{Lo: 1}

// From64 returns x as a Uint128.
func From64(x uint64) Uint128 { return Uint128{Lo: x} }

// IsZero reports whether u == 0.
func (u Uint128) IsZero() bool { return u.Hi == 0 && u.Lo == 0 }

// Add returns u + v, wrapping on overflow.
func (u Uint128) Add(v Uint128) Uint128 {
	lo, carry := bits.Add64(u.Lo, v.Lo, 0)
	hi, _ := bits.Add64(u.Hi, v.Hi, carry)
	return Uint128{Hi: hi, Lo: lo}
}

// Add64 returns u + x, wrapping on overflow.
func (u Uint128) Add64(x uint64) Uint128 {
	lo, carry := bits.Add64(u.Lo, x, 0)
	return Uint128{Hi: u.Hi + carry, Lo: lo}
}

// Sub returns u - v, wrapping on underflow.
func (u Uint128) Sub(v Uint128) Uint128 {
	lo, borrow := bits.Sub64(u.Lo, v.Lo, 0)
	hi, _ := bits.Sub64(u.Hi, v.Hi, borrow)
	return Uint128{Hi: hi, Lo: lo}
}

// Mul64 returns u * x truncated to 128 bits.
func (u Uint128) Mul64(x uint64) Uint128 {
	hi, lo := bits.Mul64(u.Lo, x)
	hi += u.Hi * x
	return Uint128{Hi: hi, Lo: lo}
}

// Mul returns u * v truncated to 128 bits.
func (u Uint128) Mul(v Uint128) Uint128 {
	hi, lo := bits.Mul64(u.Lo, v.Lo)
	hi += u.Lo*v.Hi + u.Hi*v.Lo
	return Uint128{Hi: hi, Lo: lo}
}

// Cmp compares u and v, returning -1, 0 or +1.
func (u Uint128) Cmp(v Uint128) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return +1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return +1
	}
	return 0
}

// Less reports whether u < v.
func (u Uint128) Less(v Uint128) bool { return u.Cmp(v) < 0 }

// QuoRem64 returns the quotient u/d and remainder u%d. It panics if d == 0.
func (u Uint128) QuoRem64(d uint64) (q Uint128, r uint64) {
	if d == 0 {
		panic("u128: division by zero")
	}
	if u.Hi == 0 {
		return Uint128{Lo: u.Lo / d}, u.Lo % d
	}
	q.Hi = u.Hi / d
	rem := u.Hi % d
	q.Lo, r = bits.Div64(rem, u.Lo, d)
	return q, r
}

// Float64 returns u as a float64, accurate to within 1 ulp (the two-step
// hi/lo conversion can double-round). Large values lose precision but never
// overflow (2^128 < max float64). The sampling phase uses these values as
// relative weights, where 1 ulp is immaterial.
func (u Uint128) Float64() float64 {
	return float64(u.Hi)*0x1p64 + float64(u.Lo)
}

// FromFloat64 converts a non-negative float to a Uint128, truncating the
// fractional part. Values ≥ 2^128 saturate to the maximum.
func FromFloat64(f float64) Uint128 {
	if f <= 0 || math.IsNaN(f) {
		return Zero
	}
	if f >= 0x1p128 {
		return Uint128{Hi: math.MaxUint64, Lo: math.MaxUint64}
	}
	if f < 0x1p64 {
		return Uint128{Lo: uint64(f)}
	}
	hi := uint64(f / 0x1p64)
	lo := uint64(f - float64(hi)*0x1p64)
	return Uint128{Hi: hi, Lo: lo}
}

// String formats u in decimal.
func (u Uint128) String() string {
	if u.Hi == 0 {
		return fmt.Sprintf("%d", u.Lo)
	}
	// Peel off 18 decimal digits at a time.
	const chunk = 1_000_000_000_000_000_000
	q, r := u.QuoRem64(chunk)
	if q.Hi == 0 {
		return fmt.Sprintf("%d%018d", q.Lo, r)
	}
	q2, r2 := q.QuoRem64(chunk)
	return fmt.Sprintf("%d%018d%018d", q2.Lo, r2, r)
}

// RandSource yields uniformly distributed uint64 values. *math/rand.Rand
// satisfies it.
type RandSource interface {
	Uint64() uint64
}

// RandN returns a uniformly random value in [0, n). It panics if n == 0.
func RandN(rng RandSource, n Uint128) Uint128 {
	if n.IsZero() {
		panic("u128: RandN with n == 0")
	}
	if n.Hi == 0 {
		// Fast path: reduce to 64-bit sampling without modulo bias by
		// rejection from the largest multiple of n.Lo.
		max := math.MaxUint64 - math.MaxUint64%n.Lo
		for {
			v := rng.Uint64()
			if v < max || max == 0 {
				return Uint128{Lo: v % n.Lo}
			}
		}
	}
	// General case: rejection-sample 128-bit values below the largest
	// multiple of n. The expected number of iterations is < 2.
	for {
		v := Uint128{Hi: rng.Uint64(), Lo: rng.Uint64()}
		// v mod n via subtract-shift would be slow; instead accept v if
		// v < floor(2^128/n)*n, then divide. Since n.Hi != 0, the quotient
		// floor(2^128-1 / n) fits in a uint64.
		q := maxDiv(n)
		limit := n.Mul64(q)
		if v.Cmp(limit) < 0 {
			return modSmallQuot(v, n)
		}
	}
}

// maxDiv returns floor((2^128 - 1) / n) for n with n.Hi != 0; the result
// fits in 64 bits because n ≥ 2^64.
func maxDiv(n Uint128) uint64 {
	// Binary search on q such that n*q <= 2^128-1.
	lo, hi := uint64(1), uint64(math.MaxUint64)
	allOnes := Uint128{Hi: math.MaxUint64, Lo: math.MaxUint64}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		p, overflow := mulCheck(n, mid)
		if !overflow && p.Cmp(allOnes) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// mulCheck returns n*q and whether the product overflowed 128 bits.
func mulCheck(n Uint128, q uint64) (Uint128, bool) {
	hi1, lo := bits.Mul64(n.Lo, q)
	hi2, hi3 := bits.Mul64(n.Hi, q)
	hi, carry := bits.Add64(hi1, hi3, 0)
	return Uint128{Hi: hi, Lo: lo}, hi2 != 0 || carry != 0
}

// modSmallQuot computes v mod n when v/n fits comfortably in a uint64
// (guaranteed here because n.Hi != 0 implies v/n < 2^64).
func modSmallQuot(v, n Uint128) Uint128 {
	// Estimate quotient using float division, then correct.
	q := uint64(v.Float64() / n.Float64())
	for {
		p := n.Mul64(q)
		if p.Cmp(v) > 0 {
			q--
			continue
		}
		r := v.Sub(p)
		if r.Cmp(n) >= 0 {
			q++
			continue
		}
		return r
	}
}
