package u128

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func toBig(u Uint128) *big.Int {
	b := new(big.Int).SetUint64(u.Hi)
	b.Lsh(b, 64)
	return b.Add(b, new(big.Int).SetUint64(u.Lo))
}

var mod128 = new(big.Int).Lsh(big.NewInt(1), 128)

func fromBig(b *big.Int) Uint128 {
	m := new(big.Int).Mod(b, mod128)
	lo := new(big.Int).And(m, new(big.Int).SetUint64(math.MaxUint64)).Uint64()
	hi := new(big.Int).Rsh(m, 64).Uint64()
	return Uint128{Hi: hi, Lo: lo}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := Uint128{ah, al}, Uint128{bh, bl}
		want := fromBig(new(big.Int).Add(toBig(a), toBig(b)))
		return a.Add(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := Uint128{ah, al}, Uint128{bh, bl}
		want := fromBig(new(big.Int).Sub(toBig(a), toBig(b)))
		return a.Sub(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := Uint128{ah, al}, Uint128{bh, bl}
		want := fromBig(new(big.Int).Mul(toBig(a), toBig(b)))
		return a.Mul(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64MatchesBig(t *testing.T) {
	f := func(ah, al, x uint64) bool {
		a := Uint128{ah, al}
		want := fromBig(new(big.Int).Mul(toBig(a), new(big.Int).SetUint64(x)))
		return a.Mul64(x) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuoRem64MatchesBig(t *testing.T) {
	f := func(ah, al, d uint64) bool {
		if d == 0 {
			d = 1
		}
		a := Uint128{ah, al}
		bd := new(big.Int).SetUint64(d)
		wantQ, wantR := new(big.Int).QuoRem(toBig(a), bd, new(big.Int))
		q, r := a.QuoRem64(d)
		return q == fromBig(wantQ) && r == wantR.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmp(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := Uint128{ah, al}, Uint128{bh, bl}
		return a.Cmp(b) == toBig(a).Cmp(toBig(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		u    Uint128
		want string
	}{
		{Zero, "0"},
		{One, "1"},
		{From64(math.MaxUint64), "18446744073709551615"},
		{Uint128{Hi: 1, Lo: 0}, "18446744073709551616"},
		{Uint128{Hi: math.MaxUint64, Lo: math.MaxUint64}, "340282366920938463463374607431768211455"},
	}
	for _, c := range cases {
		if got := c.u.String(); got != c.want {
			t.Errorf("String(%v,%v) = %q, want %q", c.u.Hi, c.u.Lo, got, c.want)
		}
	}
	f := func(hi, lo uint64) bool {
		u := Uint128{hi, lo}
		return u.String() == toBig(u).String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		u := Uint128{hi, lo}
		got := u.Float64()
		want, _ := new(big.Float).SetInt(toBig(u)).Float64()
		if got == want {
			return true
		}
		// The two-step conversion may double-round: allow 1 ulp.
		return math.Nextafter(got, want) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Exact for values that fit in 53 bits.
	for _, v := range []uint64{0, 1, 1 << 52, 1<<53 - 1} {
		if From64(v).Float64() != float64(v) {
			t.Errorf("Float64(%d) inexact", v)
		}
	}
}

func TestFromFloat64(t *testing.T) {
	if FromFloat64(-1) != Zero {
		t.Error("negative should map to zero")
	}
	if FromFloat64(math.NaN()) != Zero {
		t.Error("NaN should map to zero")
	}
	if got := FromFloat64(12345.9); got != From64(12345) {
		t.Errorf("got %v", got)
	}
	big := FromFloat64(0x1p127)
	if big.Hi != 1<<63 {
		t.Errorf("2^127: got hi=%x", big.Hi)
	}
	if got := FromFloat64(0x1p200); got.Hi != math.MaxUint64 || got.Lo != math.MaxUint64 {
		t.Error("overflow should saturate")
	}
}

func TestRandNInRangeAndRoughlyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 64-bit path.
	n := From64(10)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := RandN(rng, n)
		if v.Cmp(n) >= 0 {
			t.Fatalf("RandN out of range: %v", v)
		}
		counts[v.Lo]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has %d draws, expected ~1000", i, c)
		}
	}
	// 128-bit path.
	n2 := Uint128{Hi: 3, Lo: 12345}
	for i := 0; i < 1000; i++ {
		v := RandN(rng, n2)
		if v.Cmp(n2) >= 0 {
			t.Fatalf("RandN out of range: %v >= %v", v, n2)
		}
	}
}

func TestRandNPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandN(rand.New(rand.NewSource(1)), Zero)
}

func TestAdd64(t *testing.T) {
	u := Uint128{Hi: 0, Lo: math.MaxUint64}
	if got := u.Add64(1); got != (Uint128{Hi: 1, Lo: 0}) {
		t.Errorf("carry not propagated: %v", got)
	}
}
