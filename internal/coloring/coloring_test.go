package coloring

import (
	"math"
	"testing"
)

func TestPUniform(t *testing.T) {
	cases := map[int]float64{
		1: 1,
		2: 0.5,
		3: 6.0 / 27.0,
		5: 120.0 / 3125.0,
	}
	for k, want := range cases {
		if got := PUniform(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("PUniform(%d)=%g want %g", k, got, want)
		}
	}
}

func TestPBiasedRecoversUniformAtOneOverK(t *testing.T) {
	for k := 2; k <= 9; k++ {
		lam := 1.0 / float64(k)
		if got, want := PBiased(k, lam), PUniform(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d: PBiased(1/k)=%g want %g", k, got, want)
		}
	}
}

func TestUniformColoringDistribution(t *testing.T) {
	const n, k = 100000, 5
	c := Uniform(n, k, 11)
	if len(c.Colors) != n || c.K != k {
		t.Fatal("wrong shape")
	}
	counts := make([]int, k)
	for _, col := range c.Colors {
		if int(col) >= k {
			t.Fatalf("color %d out of range", col)
		}
		counts[col]++
	}
	for col, cnt := range counts {
		frac := float64(cnt) / n
		if math.Abs(frac-1.0/k) > 0.01 {
			t.Errorf("color %d frequency %.4f, want %.4f", col, frac, 1.0/k)
		}
	}
}

func TestBiasedColoringDistribution(t *testing.T) {
	const n, k = 200000, 6
	lambda := 0.05
	c := Biased(n, k, lambda, 13)
	counts := make([]int, k)
	for _, col := range c.Colors {
		counts[col]++
	}
	for col := 0; col < k-1; col++ {
		frac := float64(counts[col]) / n
		if math.Abs(frac-lambda) > 0.005 {
			t.Errorf("biased color %d frequency %.4f, want %.4f", col, frac, lambda)
		}
	}
	last := float64(counts[k-1]) / n
	want := 1 - float64(k-1)*lambda
	if math.Abs(last-want) > 0.005 {
		t.Errorf("absorbing color frequency %.4f, want %.4f", last, want)
	}
	if c.PColorful <= 0 || c.PColorful >= PUniform(k) {
		t.Errorf("biased PColorful %g should be positive and below uniform %g", c.PColorful, PUniform(k))
	}
}

func TestDeterminism(t *testing.T) {
	a := Uniform(1000, 7, 99)
	b := Uniform(1000, 7, 99)
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatal("same seed must give same coloring")
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("k too big", func() { Uniform(10, 17, 1) })
	mustPanic("k zero", func() { Uniform(10, 0, 1) })
	mustPanic("lambda too big", func() { Biased(10, 5, 0.3, 1) })
	mustPanic("lambda zero", func() { Biased(10, 5, 0, 1) })
}
