package coloring

import "testing"

func TestChooseLambdaStopsAtTarget(t *testing.T) {
	// Probe that saturates once λ crosses 0.01.
	probe := func(lambda float64) float64 {
		if lambda >= 0.01 {
			return 0.5
		}
		return 0
	}
	lam := ChooseLambda(100000, 5, 2, 0.1, probe)
	if lam < 0.01 || lam >= 0.016+1e-12 {
		t.Errorf("λ = %v, want the first geometric step ≥ 0.01", lam)
	}
}

func TestChooseLambdaCapsAtUniform(t *testing.T) {
	// A probe that never reaches the target: λ must cap below 1/k.
	lam := ChooseLambda(1000, 5, 2, 0.9, func(float64) float64 { return 0 })
	if lam >= 0.2 {
		t.Errorf("λ = %v must stay below 1/k", lam)
	}
	// The result must still be a valid Biased parameter.
	Biased(10, 5, lam, 1)
}

func TestChooseLambdaStartsAtPaperValue(t *testing.T) {
	var first float64
	ChooseLambda(1000, 5, 2, 0.1, func(l float64) float64 {
		if first == 0 {
			first = l
		}
		return 1 // stop immediately
	})
	want := 1 / (2.0 * 4 * 1000)
	if first != want {
		t.Errorf("starting λ = %v, want %v", first, want)
	}
}

func TestChooseLambdaDefaultsB(t *testing.T) {
	var first float64
	ChooseLambda(1000, 5, 0.5 /* invalid b */, 0.1, func(l float64) float64 {
		if first == 0 {
			first = l
		}
		return 1
	})
	if first != 1/(2.0*4*1000) {
		t.Errorf("invalid b should default to 2, got starting λ %v", first)
	}
}
