package coloring

import "math"

// ChooseLambda operationalizes the λ-selection heuristic of Section 3.4:
// "Start with λ = 1/(b(k−1)n) for some appropriate b > 1 … Grow λ
// progressively until a small but non-negligible fraction of counts are
// positive."
//
// probe(λ) must report the fraction of positive counts the caller observes
// under a biased coloring with that λ (e.g. the fraction of nodes with a
// non-empty small-treelet record from a cheap partial build). ChooseLambda
// grows λ geometrically from the paper's starting point until probe
// reaches target, and never exceeds 1/k (where biased coloring degenerates
// to uniform).
func ChooseLambda(n, k int, b float64, target float64, probe func(lambda float64) float64) float64 {
	if b <= 1 {
		b = 2
	}
	lambda := 1 / (b * float64(k-1) * float64(n))
	max := 1 / float64(k)
	for lambda < max {
		if probe(lambda) >= target {
			return lambda
		}
		lambda *= 1.6
	}
	return math.Min(lambda, max*0.999)
}
