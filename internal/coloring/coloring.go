// Package coloring assigns the k colors of the color-coding technique to
// host-graph nodes.
//
// Section 2.1 of the paper: each node independently receives a uniform color
// in [k]; a graphlet copy survives ("becomes colorful") with probability
// p_k = k!/k^k. Section 3.4 introduces biased coloring: colors 1..k-1 get a
// small probability λ each and color k absorbs the rest, which shrinks the
// count table at a quantified accuracy cost (Eq. 3).
//
// Color 0 plays a special role: 0-rooting (Section 3.2) stores size-k
// treelets only at their unique color-0 node.
package coloring

import (
	"fmt"
	"math"
	"math/rand"
)

// Coloring maps each node to a color in [0, K).
type Coloring struct {
	K      int
	Colors []uint8
	// PColorful is the probability that a fixed set of K nodes receives K
	// distinct colors under the distribution that generated this coloring.
	PColorful float64
}

// Uniform colors n nodes independently and uniformly with k colors.
func Uniform(n, k int, seed int64) *Coloring {
	if k < 1 || k > 16 {
		panic(fmt.Sprintf("coloring: k=%d out of range [1,16]", k))
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Coloring{K: k, Colors: make([]uint8, n), PColorful: PUniform(k)}
	for i := range c.Colors {
		c.Colors[i] = uint8(rng.Intn(k))
	}
	return c
}

// ValidateLambda checks the biased-coloring parameter range: k ≥ 2 and
// 0 < λ < 1/(k-1). Callers taking user input should run it before Biased,
// which panics on the same condition. Values near 1/k recover the uniform
// distribution.
func ValidateLambda(k int, lambda float64) error {
	if k < 2 {
		return fmt.Errorf("coloring: biased coloring needs k ≥ 2, got k=%d", k)
	}
	if lambda <= 0 || lambda*float64(k-1) >= 1 {
		return fmt.Errorf("coloring: lambda=%g out of range (0, 1/(k-1)) for k=%d", lambda, k)
	}
	return nil
}

// Biased colors n nodes with the biased distribution of Section 3.4:
// colors 0..k-2 have probability λ each and color k-1 has probability
// 1-(k-1)λ. λ must satisfy ValidateLambda; Biased panics otherwise.
func Biased(n, k int, lambda float64, seed int64) *Coloring {
	if k < 2 || k > 16 {
		panic(fmt.Sprintf("coloring: k=%d out of range [2,16]", k))
	}
	if err := ValidateLambda(k, lambda); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Coloring{K: k, Colors: make([]uint8, n), PColorful: PBiased(k, lambda)}
	threshold := lambda * float64(k-1)
	for i := range c.Colors {
		u := rng.Float64()
		if u < threshold {
			c.Colors[i] = uint8(u / lambda)
		} else {
			c.Colors[i] = uint8(k - 1)
		}
	}
	return c
}

// PUniform returns p_k = k!/k^k, the probability that k fixed nodes get
// pairwise distinct colors under the uniform coloring.
func PUniform(k int) float64 {
	p := 1.0
	for i := 1; i <= k; i++ {
		p *= float64(i) / float64(k)
	}
	return p
}

// PBiased returns the colorful probability under the biased distribution:
// k! · λ^(k-1) · (1-(k-1)λ) — each of the k! assignments of the k distinct
// colors to the k nodes has the same product of marginals.
func PBiased(k int, lambda float64) float64 {
	return factorial(k) * math.Pow(lambda, float64(k-1)) * (1 - float64(k-1)*lambda)
}

func factorial(k int) float64 {
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}

// Of returns the color of node v.
func (c *Coloring) Of(v int32) uint8 { return c.Colors[v] }
