// Package exact counts induced k-graphlets exactly by enumerating every
// connected induced k-subgraph once with the ESU algorithm (Wernicke 2006).
//
// The paper uses ESCAPE [19] for exact 5-graphlet ground truth; ESU plays
// that role here. It is exponential in general but comfortable at the
// scales our experiments need (graphs with up to ~10^5 small subgraphs per
// node and k ≤ 6).
package exact

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/graph"
	"repro/internal/graphlet"
)

// Count returns the exact number of induced occurrences of every connected
// k-graphlet in g, keyed by canonical code.
func Count(g *graph.Graph, k int) (estimate.Counts, error) {
	if k < 1 || k > graphlet.MaxK {
		return nil, fmt.Errorf("exact: k=%d out of range [1,%d]", k, graphlet.MaxK)
	}
	out := make(estimate.Counts)
	n := g.NumNodes()
	sub := make([]int32, 0, k)
	inSub := make([]bool, n)
	// neighborOfSub[v] is true when v is adjacent to (or part of) the
	// current subgraph or was already rejected as an exclusive extension —
	// the ESU rule that guarantees each subgraph is enumerated once.
	canon := make(map[graphlet.Code]graphlet.Code)

	var extend func(v int32, ext []int32)
	extend = func(v int32, ext []int32) {
		if len(sub) == k {
			raw := rawCode(g, sub)
			cc, ok := canon[raw]
			if !ok {
				cc = graphlet.Canonical(k, raw)
				canon[raw] = cc
			}
			out[cc]++
			return
		}
		// Take each extension candidate in turn; candidates after it stay
		// available, candidates before it are excluded (handled by slicing).
		for i := 0; i < len(ext); i++ {
			w := ext[i]
			// New extension set: remaining candidates plus exclusive
			// neighbors of w (neighbors > v not adjacent to the current
			// subgraph).
			next := make([]int32, len(ext)-i-1, len(ext)-i-1+g.Degree(w))
			copy(next, ext[i+1:])
			sub = append(sub, w)
			inSub[w] = true
			for _, u := range g.Neighbors(w) {
				if u <= v || inSub[u] {
					continue
				}
				if adjacentToSub(g, u, sub[:len(sub)-1]) {
					continue
				}
				// u must also not already be in ext (it would be counted
				// twice); ext members are adjacent to the earlier subgraph
				// only via... check directly.
				if contains(next, u) || contains(ext[:i], u) {
					continue
				}
				next = append(next, u)
			}
			extend(v, next)
			inSub[w] = false
			sub = sub[:len(sub)-1]
		}
	}

	for v := int32(0); int(v) < n; v++ {
		sub = append(sub, v)
		inSub[v] = true
		var ext []int32
		for _, u := range g.Neighbors(v) {
			if u > v {
				ext = append(ext, u)
			}
		}
		extend(v, ext)
		inSub[v] = false
		sub = sub[:0]
	}
	return out, nil
}

func adjacentToSub(g *graph.Graph, u int32, sub []int32) bool {
	for _, s := range sub {
		if g.HasEdge(u, s) {
			return true
		}
	}
	return false
}

func contains(xs []int32, x int32) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func rawCode(g *graph.Graph, nodes []int32) graphlet.Code {
	var edges [][2]int
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graphlet.FromEdges(len(nodes), edges)
}
