package exact

import (
	"testing"

	"repro/internal/estimate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphlet"
)

// bruteCount enumerates all k-subsets and counts connected induced
// subgraphs — an independent (slower) ground truth for ESU.
func bruteCount(g *graph.Graph, k int) estimate.Counts {
	out := make(estimate.Counts)
	n := g.NumNodes()
	nodes := make([]int32, 0, k)
	var rec func(start int32)
	rec = func(start int32) {
		if len(nodes) == k {
			var edges [][2]int
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if g.HasEdge(nodes[i], nodes[j]) {
						edges = append(edges, [2]int{i, j})
					}
				}
			}
			c := graphlet.FromEdges(k, edges)
			if graphlet.IsConnected(k, c) {
				out[graphlet.Canonical(k, c)]++
			}
			return
		}
		for v := start; int(v) < n; v++ {
			nodes = append(nodes, v)
			rec(v + 1)
			nodes = nodes[:len(nodes)-1]
		}
	}
	rec(0)
	return out
}

func assertEqualCounts(t *testing.T, got, want estimate.Counts) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("support sizes differ: got %d, want %d", len(got), len(want))
	}
	for code, w := range want {
		if got[code] != w {
			t.Fatalf("count mismatch for %v: got %v, want %v", code, got[code], w)
		}
	}
}

func TestESUMatchesBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":    gen.ErdosRenyi(12, 25, 3),
		"ba":    gen.BarabasiAlbert(12, 2, 5),
		"star":  gen.Star(10),
		"cycle": gen.Cycle(9),
		"lolli": gen.Lollipop(6, 3),
	}
	for name, g := range graphs {
		for k := 2; k <= 5; k++ {
			got, err := Count(g, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteCount(g, k)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s k=%d: %v", name, k, r)
					}
				}()
				assertEqualCounts(t, got, want)
			}()
		}
	}
}

func TestESUKnownCounts(t *testing.T) {
	// K4 contains exactly 4 triangles and nothing else at k=3.
	c3, err := Count(gen.Complete(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	tri := graphlet.Canonical(3, graphlet.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}))
	if len(c3) != 1 || c3[tri] != 4 {
		t.Fatalf("K4 triangles: %v", c3)
	}
	// P10 contains exactly n-k+1 induced paths at each k.
	for k := 2; k <= 6; k++ {
		cp, err := Count(gen.Path(10), k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cp) != 1 {
			t.Fatalf("P10 k=%d: %d shapes", k, len(cp))
		}
		for _, n := range cp {
			if n != float64(10-k+1) {
				t.Fatalf("P10 k=%d: %v paths, want %d", k, n, 10-k+1)
			}
		}
	}
	// Star K_{1,9}: induced k-subgraphs are the C(9, k-1) stars.
	c4, err := Count(gen.Star(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	star4 := graphlet.Canonical(4, graphlet.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}}))
	if len(c4) != 1 || c4[star4] != 84 { // C(9,3)
		t.Fatalf("star k=4 counts: %v", c4)
	}
}

func TestESUValidation(t *testing.T) {
	if _, err := Count(gen.Path(3), 0); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := Count(gen.Path(3), graphlet.MaxK+1); err == nil {
		t.Error("k too large must fail")
	}
}
