package treelet

// UnrootedCanonical maps a rooted treelet to the canonical code of its
// underlying unrooted tree: the tree is re-rooted at its centroid (taking
// the smaller code when there are two centroids). Two rooted treelets have
// the same UnrootedCanonical iff they are isomorphic as unrooted trees.
//
// AGS (Section 4) works with unrooted k-treelet shapes T_j — the spanning
// trees of graphlets — while the count table stores rooted codes; this is
// the bridge between the two.
func UnrootedCanonical(t Treelet) Treelet {
	if t.Size() <= 2 {
		return t // single node and single edge are symmetric
	}
	children := t.adjacency()
	n := t.Size()
	adj := make([][]int, n)
	for p, cs := range children {
		for _, c := range cs {
			adj[p] = append(adj[p], c)
			adj[c] = append(adj[c], p)
		}
	}
	best := Treelet(^uint32(0))
	for _, c := range centroids(adj) {
		code := encodeRootedAt(adj, c)
		if code < best {
			best = code
		}
	}
	return best
}

// centroids returns the 1 or 2 centroids of the tree.
func centroids(adj [][]int) []int {
	n := len(adj)
	if n == 1 {
		return []int{0}
	}
	size := make([]int, n)
	// Iterative post-order from node 0 to get subtree sizes.
	type frame struct{ v, parent int }
	order := make([]frame, 0, n)
	stack := []frame{{0, -1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, f)
		for _, u := range adj[f.v] {
			if u != f.parent {
				stack = append(stack, frame{u, f.v})
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		f := order[i]
		size[f.v]++
		if f.parent >= 0 {
			size[f.parent] += size[f.v]
		}
	}
	parent := make([]int, n)
	for _, f := range order {
		parent[f.v] = f.parent
	}
	bestScore := n + 1
	var cs []int
	for v := 0; v < n; v++ {
		// Largest component after removing v.
		score := n - size[v] // the side containing the root
		for _, u := range adj[v] {
			if u != parent[v] && size[u] > score {
				score = size[u]
			}
		}
		if score < bestScore {
			bestScore = score
			cs = cs[:0]
		}
		if score == bestScore {
			cs = append(cs, v)
		}
	}
	return cs
}

// encodeRootedAt computes the canonical rooted code of the tree adj rooted
// at r.
func encodeRootedAt(adj [][]int, r int) Treelet {
	var encode func(v, parent int) Treelet
	encode = func(v, parent int) Treelet {
		var codes []Treelet
		for _, u := range adj[v] {
			if u != parent {
				codes = append(codes, encode(u, v))
			}
		}
		for i := 1; i < len(codes); i++ {
			for j := i; j > 0 && codes[j] < codes[j-1]; j-- {
				codes[j], codes[j-1] = codes[j-1], codes[j]
			}
		}
		t := Leaf
		for i := len(codes) - 1; i >= 0; i-- {
			t = Merge(t, codes[i])
		}
		return t
	}
	return encode(r, -1)
}
