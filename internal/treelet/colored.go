package treelet

import "math/bits"

// ColorSet is a subset of the k ≤ 16 colors as a characteristic bit vector
// (paper, Section 3.1): union is OR, intersection is AND.
type ColorSet uint16

// Singleton returns the set {c}.
func Singleton(c uint8) ColorSet { return 1 << c }

// Card returns the number of colors in the set.
func (s ColorSet) Card() int { return bits.OnesCount16(uint16(s)) }

// Disjoint reports whether s and t share no color.
func (s ColorSet) Disjoint(t ColorSet) bool { return s&t == 0 }

// Union returns s ∪ t.
func (s ColorSet) Union(t ColorSet) ColorSet { return s | t }

// Has reports whether color c is in the set.
func (s ColorSet) Has(c uint8) bool { return s&(1<<c) != 0 }

// ColorBits is the width of the color-set field in a Colored key: one bit
// per color, and the coloring layer caps k at 16.
const ColorBits = 16

// MaxColorSet is the largest value the color field of a Colored key can
// hold (all ColorBits colors present). It doubles as the mask that extracts
// the color field, and as the upper sentinel when searching for the last
// coloring of a shape in a sorted record.
const MaxColorSet ColorSet = 1<<ColorBits - 1

// Colored packs a colored rooted treelet (T, C) into one word: the treelet
// code in the high 32 bits (only 30 used) and the color characteristic
// vector in the low ColorBits bits — 46 significant bits, as in the paper.
// The integer order over Colored values sorts first by treelet, then by
// color set, which is the key order of the count table: all colorings of
// the same shape are contiguous in a record.
type Colored uint64

// MakeColored packs t and its color set.
func MakeColored(t Treelet, cs ColorSet) Colored {
	return Colored(t)<<ColorBits | Colored(cs)
}

// Tree returns the treelet part.
func (c Colored) Tree() Treelet { return Treelet(c >> ColorBits) }

// Colors returns the color-set part.
func (c Colored) Colors() ColorSet { return ColorSet(c) & MaxColorSet }

// Size returns the number of nodes (= number of colors, since only colorful
// treelets are stored).
func (c Colored) Size() int { return c.Tree().Size() }

// MergeColored combines colored parts (T', C') and (T”, C”); callers must
// have checked CanMerge on the shapes and disjointness of the color sets.
func MergeColored(cp, cpp Colored) Colored {
	return MakeColored(Merge(cp.Tree(), cpp.Tree()), cp.Colors()|cpp.Colors())
}
