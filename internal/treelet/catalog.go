package treelet

import (
	"fmt"
	"sort"
)

// Catalog pre-enumerates every canonical rooted treelet on up to k nodes
// and caches the decomposition data the dynamic program needs in its inner
// loop: the first-child code, the remainder code, and βT. It also maps each
// size-k rooted shape to its unrooted canonical form, the grouping AGS
// samples by.
type Catalog struct {
	K int
	// BySize[s] lists canonical treelets of size s in increasing code order.
	BySize [][]Treelet

	firstChild map[Treelet]Treelet
	rest       map[Treelet]Treelet
	beta       map[Treelet]int
	height     map[Treelet]int
	unrooted   map[Treelet]Treelet
	rootings   map[Treelet][]Treelet

	// UnrootedK lists the distinct unrooted canonical k-treelet shapes in
	// increasing code order (e.g. 1 for k=2..3, 2 for k=4, 3 for k=5, 6 for
	// k=6 — the free trees, OEIS A000055).
	UnrootedK []Treelet
}

// NewCatalog enumerates all treelets for the given k (2 ≤ k ≤ MaxK).
func NewCatalog(k int) *Catalog {
	if k < 1 || k > MaxK {
		panic(fmt.Sprintf("treelet: catalog k=%d out of range [1,%d]", k, MaxK))
	}
	c := &Catalog{
		K:          k,
		BySize:     make([][]Treelet, k+1),
		firstChild: make(map[Treelet]Treelet),
		rest:       make(map[Treelet]Treelet),
		beta:       make(map[Treelet]int),
		height:     make(map[Treelet]int),
		unrooted:   make(map[Treelet]Treelet),
		rootings:   make(map[Treelet][]Treelet),
	}
	c.BySize[1] = []Treelet{Leaf}
	c.height[Leaf] = 0
	for s := 2; s <= k; s++ {
		var ts []Treelet
		for spp := 1; spp < s; spp++ {
			sp := s - spp
			for _, tpp := range c.BySize[spp] {
				for _, tp := range c.BySize[sp] {
					if CanMerge(tp, tpp) {
						ts = append(ts, Merge(tp, tpp))
					}
				}
			}
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		c.BySize[s] = ts
		for _, t := range ts {
			first, rest := t.Decomp()
			c.firstChild[t] = first
			c.rest[t] = rest
			c.beta[t] = t.Beta()
			// Merge attaches first as a new child of rest's root, so the
			// height recurrence reuses the two cached sub-heights.
			h := c.height[first] + 1
			if rh := c.height[rest]; rh > h {
				h = rh
			}
			c.height[t] = h
		}
	}
	seen := make(map[Treelet]bool)
	for _, t := range c.BySize[k] {
		u := UnrootedCanonical(t)
		c.unrooted[t] = u
		c.rootings[u] = append(c.rootings[u], t)
		if !seen[u] {
			seen[u] = true
			c.UnrootedK = append(c.UnrootedK, u)
		}
	}
	sort.Slice(c.UnrootedK, func(i, j int) bool { return c.UnrootedK[i] < c.UnrootedK[j] })
	return c
}

// FirstChild returns the first-child part T” of t's canonical
// decomposition. The catalog must contain t.
func (c *Catalog) FirstChild(t Treelet) Treelet { return c.firstChild[t] }

// Rest returns the remainder part T' of t's canonical decomposition.
func (c *Catalog) Rest(t Treelet) Treelet { return c.rest[t] }

// Beta returns βT.
func (c *Catalog) Beta(t Treelet) int { return c.beta[t] }

// Height returns the cached Treelet.Height of a catalog treelet.
func (c *Catalog) Height(t Treelet) int { return c.height[t] }

// Unrooted returns the unrooted canonical shape of a size-k rooted treelet.
func (c *Catalog) Unrooted(t Treelet) Treelet { return c.unrooted[t] }

// NumRooted returns the number of canonical rooted treelets of size s.
func (c *Catalog) NumRooted(s int) int { return len(c.BySize[s]) }

// Rootings returns the size-k rooted treelet codes whose unrooted canonical
// form is u, in increasing code order. AGS uses this to restrict the urn to
// one unrooted shape.
func (c *Catalog) Rootings(u Treelet) []Treelet { return c.rootings[u] }
