// Package treelet implements motivo's succinct rooted-treelet encoding
// (paper, Section 3.1).
//
// A rooted treelet T on at most 16 nodes is encoded as the bitstring of its
// DFS traversal: the i-th bit is 1 if the i-th edge traversal moves away
// from the root and 0 if it moves towards it (a balanced-parentheses
// string). For k ≤ 16 the string has at most 30 bits and fits in a uint32.
// We keep it MSB-aligned so that integer comparison of codes is the
// lexicographic comparison of the strings, which doubles as the total order
// over treelets used by the dynamic program.
//
// Canonical form: the children of every node appear in non-decreasing order
// of their subtree codes. Consequently
//
//   - the unique decomposition of T (Section 2.1) detaches the FIRST child
//     subtree T” of the root, leaving T' (both again canonical);
//   - Merge(T', T”) re-attaches T” as a new first child — the pure bit
//     concatenation 1·s(T”)·0·s(T') — and yields a canonical tree exactly
//     when code(T”) ≤ code(firstChild(T')), the paper's "T” comes before
//     the smallest subtree of T'" check;
//   - βT (the sub() operation) is the multiplicity of the first child
//     subtree among the root's children.
//
// The size of a treelet is recoverable as popcount+1 (each 1-bit is a
// distinct edge), so no length field is stored and all operations reduce to
// a few shift/mask/popcount instructions, as in the paper.
package treelet

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxK is the largest supported treelet size. The encoding itself allows 16;
// we cap at 11 because graphlet codes (k(k-1)/2 bits) and the experiment
// range of the paper (k ≤ 9) need no more.
const MaxK = 11

// Treelet is a canonical rooted treelet code. The zero value is the
// single-node treelet.
type Treelet uint32

// Leaf is the single-node treelet.
const Leaf Treelet = 0

// Size returns the number of vertices of t.
func (t Treelet) Size() int { return bits.OnesCount32(uint32(t)) + 1 }

// bitLen returns the length of the encoding string in bits.
func (t Treelet) bitLen() int { return 2 * bits.OnesCount32(uint32(t)) }

// Merge attaches tpp as a new first child of the root of tp:
// the string 1 · s(tpp) · 0 · s(tp). The result is canonical iff
// CanMerge(tp, tpp).
func Merge(tp, tpp Treelet) Treelet {
	return 1<<31 | tpp>>1 | tp>>(2+tpp.bitLen())
}

// CanMerge reports whether Merge(tp, tpp) yields a canonical treelet, i.e.
// tpp does not come after the first child of tp in the total order.
func CanMerge(tp, tpp Treelet) bool {
	if tp == Leaf {
		return true
	}
	first, _ := tp.Decomp()
	return tpp <= first
}

// Decomp splits t into its first child subtree tpp and the remainder tp
// (t's root with the first child removed); it is the inverse of Merge.
// Decomp panics on the leaf, which has no decomposition.
func (t Treelet) Decomp() (tpp, tp Treelet) {
	if t == Leaf {
		panic("treelet: Decomp on single-node treelet")
	}
	// Scan for the position where the parenthesis depth returns to zero:
	// that closing 0 ends the first child subtree.
	depth := 0
	for i := 0; i < 32; i++ {
		if t&(1<<(31-i)) != 0 {
			depth++
		} else {
			depth--
		}
		if depth == 0 {
			childLen := i - 1
			tpp = (t << 1) & mask(childLen)
			tp = t << (i + 1)
			return tpp, tp
		}
	}
	panic("treelet: corrupt encoding (unbalanced)")
}

// mask returns a uint32 with the top n bits set.
func mask(n int) Treelet {
	if n <= 0 {
		return 0
	}
	return Treelet(^uint32(0) << (32 - n))
}

// Beta returns βT of Eq. (1): the number of subtrees of t isomorphic to the
// decomposition part T” that are rooted at a child of t's root. With
// canonical child order this is the multiplicity of the first child.
func (t Treelet) Beta() int {
	first, rest := t.Decomp()
	beta := 1
	for rest != Leaf {
		c, r := rest.Decomp()
		if c != first {
			break
		}
		beta++
		rest = r
	}
	return beta
}

// Height returns the depth of the deepest node below the root: 0 for the
// leaf, 1 for stars rooted at their center, 2 for "stars of stars" —
// exactly the families whose colorful counts are closed-form functions of
// colored degrees (the smart-star synthesis of table/smart.go).
func (t Treelet) Height() int {
	h := 0
	for rest := t; rest != Leaf; {
		var c Treelet
		c, rest = rest.Decomp()
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// IsStar reports whether t is a star rooted at its center: every child of
// the root is a leaf (the single-node treelet counts as the trivial star).
// Per size there is exactly one such code, and it is the smallest treelet
// code of its size, so star entries always lead a sorted record.
func (t Treelet) IsStar() bool { return t.Height() <= 1 }

// Star returns the size-n star rooted at its center (n ≥ 1).
func Star(n int) Treelet {
	t := Leaf
	for i := 1; i < n; i++ {
		t = Merge(t, Leaf)
	}
	return t
}

// StarCenter identifies the center of a star-shaped treelet: the DFS index
// of the unique node all others attach to, under the treelet's own node
// numbering (root = 0). It returns 0 when t is rooted at the center, 1 when
// t is the star rooted at a leaf, and -1 when the underlying unrooted tree
// is not a star. Size-1 and size-2 treelets are symmetric stars; their
// center is the root.
func (t Treelet) StarCenter() int {
	if t.Size() <= 2 {
		return 0
	}
	if t.IsStar() {
		return 0
	}
	// A leaf-rooted star is the root with exactly one child subtree that is
	// a center-rooted star: nodes are root(0), center(1), leaves(2..).
	first, rest := t.Decomp()
	if rest == Leaf && first.IsStar() {
		return 1
	}
	return -1
}

// RootDegree returns the number of children of the root.
func (t Treelet) RootDegree() int {
	d := 0
	for t != Leaf {
		_, t = t.Decomp()
		d++
	}
	return d
}

// Children returns the child subtrees of the root in canonical
// (non-decreasing) order.
func (t Treelet) Children() []Treelet {
	var cs []Treelet
	for t != Leaf {
		var c Treelet
		c, t = t.Decomp()
		cs = append(cs, c)
	}
	return cs
}

// Valid reports whether t is a canonical encoding: balanced, within MaxK
// nodes, and with children in canonical order at every level.
func (t Treelet) Valid() bool {
	if t == Leaf {
		return true
	}
	if t.Size() > MaxK {
		return false
	}
	// Balance check over the declared length; all trailing bits must be 0.
	L := t.bitLen()
	if uint32(t)<<L != 0 && L < 32 {
		return false
	}
	depth := 0
	for i := 0; i < L; i++ {
		if t&(1<<(31-i)) != 0 {
			depth++
		} else {
			depth--
		}
		if depth < 0 {
			return false
		}
	}
	if depth != 0 {
		return false
	}
	// Recursive canonical-order check.
	var prev Treelet
	rest := t
	firstIter := true
	for rest != Leaf {
		c, r := rest.Decomp()
		if !c.Valid() {
			return false
		}
		if !firstIter && c < prev {
			return false
		}
		prev, rest, firstIter = c, r, false
	}
	return true
}

// String renders t as a nested-parentheses expression, e.g. the 3-star is
// "(()())" — handy in tests and debug output.
func (t Treelet) String() string {
	var b strings.Builder
	b.WriteByte('(')
	L := t.bitLen()
	for i := 0; i < L; i++ {
		if t&(1<<(31-i)) != 0 {
			b.WriteByte('(')
		} else {
			b.WriteByte(')')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// FromParents builds the canonical code of the rooted tree given by a
// parent array: parent[0] is ignored (node 0 is the root), parent[i] < i.
// It panics if the input is not a valid tree on ≤ MaxK nodes.
func FromParents(parent []int) Treelet {
	n := len(parent)
	if n == 0 || n > MaxK {
		panic(fmt.Sprintf("treelet: FromParents size %d out of range", n))
	}
	children := make([][]int, n)
	for i := 1; i < n; i++ {
		p := parent[i]
		if p < 0 || p >= i {
			panic(fmt.Sprintf("treelet: bad parent[%d]=%d", i, p))
		}
		children[p] = append(children[p], i)
	}
	var encode func(v int) Treelet
	encode = func(v int) Treelet {
		codes := make([]Treelet, 0, len(children[v]))
		for _, c := range children[v] {
			codes = append(codes, encode(c))
		}
		// Insertion sort ascending: children in canonical order.
		for i := 1; i < len(codes); i++ {
			for j := i; j > 0 && codes[j] < codes[j-1]; j-- {
				codes[j], codes[j-1] = codes[j-1], codes[j]
			}
		}
		// Build by merging from the largest child down so each Merge
		// prepends a child no larger than the current first.
		t := Leaf
		for i := len(codes) - 1; i >= 0; i-- {
			t = Merge(t, codes[i])
		}
		return t
	}
	return encode(0)
}

// adjacency reconstructs the rooted tree of t as a children list with the
// root at index 0 and nodes numbered in DFS order.
func (t Treelet) adjacency() [][]int {
	n := t.Size()
	children := make([][]int, n)
	// Parse the parenthesis string.
	stack := []int{0}
	next := 1
	L := t.bitLen()
	for i := 0; i < L; i++ {
		if t&(1<<(31-i)) != 0 {
			cur := stack[len(stack)-1]
			children[cur] = append(children[cur], next)
			stack = append(stack, next)
			next++
		} else {
			stack = stack[:len(stack)-1]
		}
	}
	return children
}
