package treelet

import (
	"math/rand"
	"testing"
)

// Rooted trees on n nodes: OEIS A000081.
var numRootedTrees = map[int]int{1: 1, 2: 1, 3: 2, 4: 4, 5: 9, 6: 20, 7: 48, 8: 115, 9: 286, 10: 719, 11: 1842}

// Free (unrooted) trees on n nodes: OEIS A000055.
var numFreeTrees = map[int]int{1: 1, 2: 1, 3: 1, 4: 2, 5: 3, 6: 6, 7: 11, 8: 23, 9: 47, 10: 106, 11: 235}

func TestLeaf(t *testing.T) {
	if Leaf.Size() != 1 {
		t.Fatalf("leaf size %d", Leaf.Size())
	}
	if !Leaf.Valid() {
		t.Fatal("leaf must be valid")
	}
	if Leaf.String() != "()" {
		t.Fatalf("leaf string %q", Leaf.String())
	}
}

func TestMergeDecompInverse(t *testing.T) {
	cat := NewCatalog(8)
	for s := 2; s <= 8; s++ {
		for _, tr := range cat.BySize[s] {
			tpp, tp := tr.Decomp()
			if got := Merge(tp, tpp); got != tr {
				t.Fatalf("Merge(Decomp(%v)) = %v", tr, got)
			}
			if tpp.Size()+tp.Size() != s {
				t.Fatalf("decomp sizes of %v: %d + %d != %d", tr, tpp.Size(), tp.Size(), s)
			}
		}
	}
}

func TestEnumerationCountsMatchOEIS(t *testing.T) {
	cat := NewCatalog(MaxK)
	for s := 1; s <= MaxK; s++ {
		if got := cat.NumRooted(s); got != numRootedTrees[s] {
			t.Errorf("rooted trees of size %d: got %d, want %d", s, got, numRootedTrees[s])
		}
	}
}

func TestEnumerationDistinctAndValid(t *testing.T) {
	cat := NewCatalog(9)
	for s := 1; s <= 9; s++ {
		seen := make(map[Treelet]bool)
		for _, tr := range cat.BySize[s] {
			if seen[tr] {
				t.Fatalf("duplicate treelet %v at size %d", tr, s)
			}
			seen[tr] = true
			if !tr.Valid() {
				t.Fatalf("enumerated treelet %v (%s) not canonical", tr, tr)
			}
			if tr.Size() != s {
				t.Fatalf("treelet %v has size %d, want %d", tr, tr.Size(), s)
			}
		}
	}
}

func TestUnrootedCountsMatchOEIS(t *testing.T) {
	for k := 2; k <= 9; k++ {
		cat := NewCatalog(k)
		if got := len(cat.UnrootedK); got != numFreeTrees[k] {
			t.Errorf("free trees on %d nodes: got %d, want %d", k, got, numFreeTrees[k])
		}
	}
}

func TestUnrootedCanonicalInvariantUnderRerooting(t *testing.T) {
	// All rootings of the same underlying tree must map to one shape.
	cat := NewCatalog(7)
	for _, tr := range cat.BySize[7] {
		want := UnrootedCanonical(tr)
		adj := symmetricAdj(tr)
		for r := 0; r < len(adj); r++ {
			code := encodeRootedAt(adj, r)
			if got := UnrootedCanonical(code); got != want {
				t.Fatalf("rerooting %v at %d changed unrooted form: %v vs %v", tr, r, got, want)
			}
		}
	}
}

func symmetricAdj(t Treelet) [][]int {
	children := t.adjacency()
	adj := make([][]int, len(children))
	for p, cs := range children {
		for _, c := range cs {
			adj[p] = append(adj[p], c)
			adj[c] = append(adj[c], p)
		}
	}
	return adj
}

func TestKnownShapes(t *testing.T) {
	// Path P3 rooted at an end: root-child-grandchild = "1100" MSB-aligned.
	p3end := FromParents([]int{0, 0, 1})
	if uint32(p3end) != 0b11<<30 {
		t.Errorf("P3 end-rooted code = %032b", uint32(p3end))
	}
	// P3 rooted at the middle: two leaf children = "1010".
	p3mid := FromParents([]int{0, 0, 0})
	if uint32(p3mid) != 0b1010<<28 {
		t.Errorf("P3 mid-rooted code = %032b", uint32(p3mid))
	}
	if UnrootedCanonical(p3end) != UnrootedCanonical(p3mid) {
		t.Error("both rootings of P3 must have the same unrooted form")
	}
	// Star K_{1,3} rooted at center: "101010".
	star4 := FromParents([]int{0, 0, 0, 0})
	if uint32(star4) != 0b101010<<26 {
		t.Errorf("4-star code = %032b", uint32(star4))
	}
	if star4.Beta() != 3 {
		t.Errorf("4-star beta = %d, want 3", star4.Beta())
	}
	if star4.RootDegree() != 3 {
		t.Errorf("4-star root degree = %d", star4.RootDegree())
	}
}

func TestBetaSpider(t *testing.T) {
	// Root with children {leaf, leaf, path2}: beta = 2 (two leaf children,
	// and the leaf is the first child).
	spider := FromParents([]int{0, 0, 0, 0, 3})
	if spider.Beta() != 2 {
		t.Errorf("spider beta = %d, want 2", spider.Beta())
	}
	// Root with three path2 children: beta = 3.
	broom := FromParents([]int{0, 0, 1, 0, 3, 0, 5})
	if broom.Beta() != 3 {
		t.Errorf("broom beta = %d, want 3", broom.Beta())
	}
}

func TestFromParentsMatchesCatalog(t *testing.T) {
	// Random parent arrays must always land inside the catalog enumeration.
	cat := NewCatalog(8)
	inCat := make(map[Treelet]bool)
	for s := 1; s <= 8; s++ {
		for _, tr := range cat.BySize[s] {
			inCat[tr] = true
		}
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(8)
		parent := make([]int, n)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
		}
		tr := FromParents(parent)
		if !inCat[tr] {
			t.Fatalf("FromParents(%v) = %v not in catalog", parent, tr)
		}
		if !tr.Valid() {
			t.Fatalf("FromParents(%v) = %v invalid", parent, tr)
		}
	}
}

func TestCanMergeGeneratesEachTreeOnce(t *testing.T) {
	// Every canonical tree of size s must arise from exactly one valid
	// (tp, tpp) pair — this is the uniqueness the DP relies on.
	cat := NewCatalog(7)
	for s := 2; s <= 7; s++ {
		count := make(map[Treelet]int)
		for spp := 1; spp < s; spp++ {
			for _, tpp := range cat.BySize[spp] {
				for _, tp := range cat.BySize[s-spp] {
					if CanMerge(tp, tpp) {
						count[Merge(tp, tpp)]++
					}
				}
			}
		}
		for tr, c := range count {
			if c != 1 {
				t.Errorf("size %d: treelet %v generated %d times", s, tr, c)
			}
		}
		if len(count) != cat.NumRooted(s) {
			t.Errorf("size %d: generated %d trees, want %d", s, len(count), cat.NumRooted(s))
		}
	}
}

func TestRootingsPartitionSizeK(t *testing.T) {
	// Every rooted k-treelet appears in exactly one unrooted group, and
	// the groups cover all of BySize[k].
	for k := 3; k <= 8; k++ {
		cat := NewCatalog(k)
		total := 0
		for _, u := range cat.UnrootedK {
			for _, r := range cat.Rootings(u) {
				if cat.Unrooted(r) != u {
					t.Fatalf("k=%d: rooting %v maps to %v, expected %v", k, r, cat.Unrooted(r), u)
				}
				total++
			}
		}
		if total != cat.NumRooted(k) {
			t.Errorf("k=%d: rootings cover %d of %d rooted treelets", k, total, cat.NumRooted(k))
		}
	}
}

func TestCatalogDecompCaches(t *testing.T) {
	cat := NewCatalog(6)
	for s := 2; s <= 6; s++ {
		for _, tr := range cat.BySize[s] {
			tpp, tp := tr.Decomp()
			if cat.FirstChild(tr) != tpp || cat.Rest(tr) != tp || cat.Beta(tr) != tr.Beta() {
				t.Fatalf("catalog cache mismatch for %v", tr)
			}
		}
	}
}

func TestColorSet(t *testing.T) {
	a := Singleton(0).Union(Singleton(3))
	if a.Card() != 2 || !a.Has(0) || !a.Has(3) || a.Has(1) {
		t.Fatal("color set ops wrong")
	}
	b := Singleton(1)
	if !a.Disjoint(b) {
		t.Error("disjoint sets reported overlapping")
	}
	if a.Disjoint(Singleton(3)) {
		t.Error("overlapping sets reported disjoint")
	}
}

func TestColoredPacking(t *testing.T) {
	tr := FromParents([]int{0, 0, 0})
	cs := ColorSet(0b1011)
	c := MakeColored(tr, cs)
	if c.Tree() != tr || c.Colors() != cs || c.Size() != 3 {
		t.Fatal("packing round trip failed")
	}
	// Integer order groups by tree shape first.
	c2 := MakeColored(tr, ColorSet(0b1101))
	other := MakeColored(FromParents([]int{0, 0, 1}), ColorSet(0b0001))
	if !(c < c2) {
		t.Error("same tree: color order must decide")
	}
	if (tr < FromParents([]int{0, 0, 1})) != (c < other) {
		t.Error("tree order must dominate color order")
	}
}

func TestMergeColored(t *testing.T) {
	edge := FromParents([]int{0, 0})
	cp := MakeColored(edge, 0b0011)
	cpp := MakeColored(Leaf, 0b0100)
	m := MergeColored(cp, cpp)
	if m.Size() != 3 || m.Colors() != 0b0111 {
		t.Fatalf("merge colored: size=%d colors=%04b", m.Size(), m.Colors())
	}
}

func TestValidRejectsGarbage(t *testing.T) {
	bad := []Treelet{
		Treelet(0b01 << 30),   // starts with 0: unbalanced
		Treelet(0b1001 << 28), // "1001": child order can't produce this... balanced but non-canonical trailing
		Treelet(1),            // stray low bit: not MSB-aligned
	}
	for _, b := range bad {
		if b.Valid() {
			t.Errorf("Valid(%032b) = true, want false", uint32(b))
		}
	}
}

func TestDecompPanicsOnLeaf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Leaf.Decomp()
}

func TestChildren(t *testing.T) {
	spider := FromParents([]int{0, 0, 0, 0, 3})
	cs := spider.Children()
	if len(cs) != 3 {
		t.Fatalf("children = %d, want 3", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] < cs[i-1] {
			t.Fatal("children must be in canonical order")
		}
	}
}

func TestHeightAndStarDetection(t *testing.T) {
	for k := 2; k <= 7; k++ {
		star := Star(k)
		if !star.IsStar() || star.Height() > 1 || star.StarCenter() != 0 {
			t.Fatalf("Star(%d) misclassified: height %d, center %d", k, star.Height(), star.StarCenter())
		}
		// The star is the smallest code of its size — the property that puts
		// synthesized star entries at the head of every sorted record.
		cat := NewCatalog(k)
		for _, u := range cat.BySize[k] {
			if u < star {
				t.Fatalf("size-%d treelet %v sorts before the star", k, u)
			}
			if got := u.Height(); got != cat.Height(u) {
				t.Fatalf("catalog height cache disagrees for %v: %d vs %d", u, cat.Height(u), got)
			}
		}
	}
	path4 := FromParents([]int{0, 0, 1, 2})
	if path4.Height() != 3 || path4.IsStar() || path4.StarCenter() != -1 {
		t.Fatalf("path4 misclassified: height %d, center %d", path4.Height(), path4.StarCenter())
	}
	leafStar4 := FromParents([]int{0, 0, 1, 1})
	if leafStar4.Height() != 2 || leafStar4.IsStar() || leafStar4.StarCenter() != 1 {
		t.Fatalf("leaf-rooted star misclassified: height %d, center %d", leafStar4.Height(), leafStar4.StarCenter())
	}
	if Leaf.Height() != 0 || !Leaf.IsStar() || Leaf.StarCenter() != 0 {
		t.Fatal("leaf misclassified")
	}
	if Star(2).StarCenter() != 0 {
		t.Fatal("edge misclassified")
	}
}

func TestHeightMatchesMergeRecurrence(t *testing.T) {
	cat := NewCatalog(6)
	for s := 2; s <= 6; s++ {
		for _, tr := range cat.BySize[s] {
			first, rest := tr.Decomp()
			want := first.Height() + 1
			if rh := rest.Height(); rh > want {
				want = rh
			}
			if tr.Height() != want {
				t.Fatalf("height(%v) = %d, want %d", tr, tr.Height(), want)
			}
		}
	}
}
