package registry

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// buildGraph persists a small k=4 table for an ER graph and returns the
// graph, the table path and the packed table payload size.
func buildGraph(t *testing.T, n, m int, seed int64) (*graph.Graph, string, int64) {
	t.Helper()
	g := gen.ErdosRenyi(n, m, seed)
	path := filepath.Join(t.TempDir(), "g.tbl")
	stats, _, err := core.BuildTable(g, core.Config{K: 4, Seed: seed}, path)
	if err != nil {
		t.Fatal(err)
	}
	return g, path, stats.TableBytes
}

func TestRegistryOpenGetList(t *testing.T) {
	gA, pA, _ := buildGraph(t, 50, 120, 3)
	gB, pB, _ := buildGraph(t, 40, 90, 7)
	r := New(Config{})
	if _, err := r.Open("beta", gB, pB); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("alpha", gA, pA); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("alpha", gA, pA); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	eng, err := r.Get(context.Background(), "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.K != 4 || st.Nodes != 50 {
		t.Fatalf("alpha engine stats: %+v", st)
	}
	infos := r.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("List not sorted by name: %+v", infos)
	}
	for _, in := range infos {
		if !in.Resident || in.Opens != 1 || in.K != 4 || in.TableBytes <= 0 || in.OpenTime <= 0 {
			t.Fatalf("info after eager open: %+v", in)
		}
	}
}

func TestRegistryUnknownAndFailedOpen(t *testing.T) {
	g, p, _ := buildGraph(t, 30, 60, 1)
	r := New(Config{})
	var unknown *UnknownGraphError
	if _, err := r.Get(context.Background(), "nope"); !errors.As(err, &unknown) || unknown.Name != "nope" {
		t.Fatalf("Get unknown = %v, want UnknownGraphError", err)
	}
	// A registration whose table never opened must not linger.
	if _, err := r.Open("broken", g, p+".missing"); err == nil {
		t.Fatal("Open with missing table succeeded")
	}
	if _, err := r.Get(context.Background(), "broken"); !errors.As(err, &unknown) {
		t.Fatalf("failed registration still resolvable: %v", err)
	}
	if _, err := r.Open("ok", g, p); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryLRUEviction pins the eviction order under a memory budget:
// the least-recently-*used* engine goes first (a Get refreshes recency,
// not just Open), evicted graphs transparently reopen on the next Get,
// and the eviction counter advances.
func TestRegistryLRUEviction(t *testing.T) {
	gA, pA, bA := buildGraph(t, 50, 120, 3)
	gB, pB, bB := buildGraph(t, 50, 120, 7)
	gC, pC, bC := buildGraph(t, 50, 120, 11)
	// Any two tables fit, all three never do. MapOff pins heap loading:
	// the budget caps heap bytes, and a mapped table would charge almost
	// none (see TestRegistryMappedAccounting).
	budget := bA + bB + bC - min(bA, min(bB, bC))/2 - 1
	r := New(Config{MemBudget: budget, MapTable: core.MapOff})
	ctx := context.Background()
	if _, err := r.Open("a", gA, pA); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("b", gB, pB); err != nil {
		t.Fatal(err)
	}
	// Touch a: now b is the least recently used.
	if _, err := r.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("c", gC, pC); err != nil {
		t.Fatal(err)
	}
	resident := residency(r)
	if !resident["a"] || resident["b"] || !resident["c"] {
		t.Fatalf("after opening c, want b evicted (LRU), got residency %v", resident)
	}
	if st := r.Stats(); st.Evictions != 1 || st.Resident != 2 {
		t.Fatalf("stats after one eviction: %+v", st)
	}
	if st := r.Stats(); st.ResidentBytes > budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.ResidentBytes, budget)
	}
	// Reopening b evicts the now-least-recently-used a (order was c, a
	// after c's open — the just-loaded engine is never its own victim).
	if _, err := r.Get(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	resident = residency(r)
	if resident["a"] || !resident["b"] || !resident["c"] {
		t.Fatalf("after reloading b, want a evicted, got residency %v", resident)
	}
	for _, in := range r.List() {
		if in.Name == "b" && in.Opens != 2 {
			t.Fatalf("b reopened, want Opens=2, got %d", in.Opens)
		}
	}
	// Manual eviction drops the engine but keeps the registration.
	if !r.Evict("c") {
		t.Fatal("Evict(c) found nothing resident")
	}
	if r.Evict("c") {
		t.Fatal("double Evict(c) claims residency")
	}
	if _, err := r.Get(ctx, "c"); err != nil {
		t.Fatalf("c gone after manual eviction: %v", err)
	}
}

func residency(r *Registry) map[string]bool {
	out := make(map[string]bool)
	for _, in := range r.List() {
		out[in.Name] = in.Resident
	}
	return out
}

// TestRegistryConcurrentGetOpensOnce: N concurrent Gets of an evicted
// name must share a single table load (singleflight), all observing the
// same engine.
func TestRegistryConcurrentGetOpensOnce(t *testing.T) {
	g, p, _ := buildGraph(t, 50, 120, 3)
	r := New(Config{})
	if _, err := r.Open("g", g, p); err != nil {
		t.Fatal(err)
	}
	r.Evict("g")
	const workers = 16
	engines := make([]*core.Engine, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, err := r.Get(context.Background(), "g")
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = eng
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if engines[i] != engines[0] {
			t.Fatalf("concurrent Gets returned distinct engines (%d vs 0)", i)
		}
	}
	if in := r.List()[0]; in.Opens != 2 {
		t.Fatalf("16 concurrent Gets after eviction opened the table %d times, want 2 total (initial + one reload)", in.Opens)
	}
}

// TestResultCacheBitIdentity: a cache hit returns exactly what the cold
// run computed — the same estimates a fresh engine produces at the same
// seed — and the hit/miss counters track lookups.
func TestResultCacheBitIdentity(t *testing.T) {
	g, p, _ := buildGraph(t, 50, 120, 3)
	r := New(Config{CacheSize: 8})
	if _, err := r.Open("g", g, p); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := core.Query{Samples: 2000, Seed: 17}
	cold, hit, err := r.Count(ctx, "g", q, true)
	if err != nil || hit {
		t.Fatalf("cold query: hit=%v err=%v", hit, err)
	}
	warm, hit, err := r.Count(ctx, "g", q, true)
	if err != nil || !hit {
		t.Fatalf("repeat query: hit=%v err=%v", hit, err)
	}
	if warm != cold {
		t.Fatal("cache hit returned a different result object than the cold run")
	}
	// Cross-check against an engine with no registry in the loop.
	eng, err := core.Open(g, p)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.Count(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Counts, direct.Counts) || !reflect.DeepEqual(cold.Frequencies, direct.Frequencies) {
		t.Fatal("registry-served estimates differ from a direct engine query at the same seed")
	}
	st := r.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Fatalf("cache counters: %+v", st)
	}
	if st.Queries != 2 || st.Samples != 2000 {
		t.Fatalf("traffic counters (cached query must not re-add samples): %+v", st)
	}
}

// TestResultCacheBypass: non-cacheable queries (no explicit seed) never
// touch the cache — no stored entry, no counter movement.
func TestResultCacheBypass(t *testing.T) {
	g, p, _ := buildGraph(t, 50, 120, 3)
	r := New(Config{CacheSize: 8})
	if _, err := r.Open("g", g, p); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := core.Query{Samples: 1000, Seed: 1}
	for i := 0; i < 2; i++ {
		if _, hit, err := r.Count(ctx, "g", q, false); err != nil || hit {
			t.Fatalf("bypass query %d: hit=%v err=%v", i, hit, err)
		}
	}
	st := r.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Fatalf("bypass queries touched the cache: %+v", st)
	}
	if st.Samples != 2000 {
		t.Fatalf("both bypass runs must sample: %+v", st)
	}
}

// TestResultCacheLRU: the cache evicts by entry count, least recently
// used first.
func TestResultCacheLRU(t *testing.T) {
	g, p, _ := buildGraph(t, 50, 120, 3)
	r := New(Config{CacheSize: 2})
	if _, err := r.Open("g", g, p); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q1 := core.Query{Samples: 500, Seed: 1}
	q2 := core.Query{Samples: 500, Seed: 2}
	q3 := core.Query{Samples: 500, Seed: 3}
	for _, q := range []core.Query{q1, q2, q3} {
		if _, _, err := r.Count(ctx, "g", q, true); err != nil {
			t.Fatal(err)
		}
	}
	// q1 was evicted when q3 landed; q3 and q2 are still warm.
	if _, hit, _ := r.Count(ctx, "g", q3, true); !hit {
		t.Fatal("q3 should be cached")
	}
	if _, hit, _ := r.Count(ctx, "g", q1, true); hit {
		t.Fatal("q1 should have been evicted by entry-count LRU")
	}
	if st := r.Stats(); st.CacheEntries != 2 || st.CacheCap != 2 {
		t.Fatalf("cache size: %+v", st)
	}
}

// TestRegistryCountValidates: the registry rejects invalid queries before
// resolving any engine — one validation path end to end.
func TestRegistryCountValidates(t *testing.T) {
	g, p, _ := buildGraph(t, 30, 60, 1)
	r := New(Config{})
	if _, err := r.Open("g", g, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Count(context.Background(), "g", core.Query{Samples: -1, Seed: 1}, false); err == nil {
		t.Fatal("invalid query accepted")
	}
	var unknown *UnknownGraphError
	if _, _, err := r.Count(context.Background(), "nope", core.Query{Samples: 100, Seed: 1}, false); !errors.As(err, &unknown) {
		t.Fatalf("Count on unknown graph: %v", err)
	}
}

// TestRegistryMappedAccounting pins the memory model of mapped serving:
// a mapped engine's page-cache-backed bytes are reported in MappedBytes
// (registry-wide and per graph) but charge almost nothing against the
// heap budget, and evicting it returns both sums to zero.
func TestRegistryMappedAccounting(t *testing.T) {
	g, p, tableBytes := buildGraph(t, 50, 120, 3)
	r := New(Config{}) // MapAuto: the MvT4 file opens mapped where supported
	eng, err := r.Open("g", g, p)
	if err != nil {
		t.Fatal(err)
	}
	est := eng.Stats()
	if est.MappedBytes == 0 {
		t.Skip("mapping unavailable on this platform; heap fallback has its own tests")
	}
	if est.HeapBytes >= tableBytes {
		t.Fatalf("mapped engine charges %d heap bytes of a %d-byte table", est.HeapBytes, tableBytes)
	}
	st := r.Stats()
	if st.MappedBytes != est.MappedBytes {
		t.Fatalf("registry MappedBytes = %d, engine reports %d", st.MappedBytes, est.MappedBytes)
	}
	if st.ResidentBytes != est.HeapBytes {
		t.Fatalf("ResidentBytes = %d, want the heap part %d", st.ResidentBytes, est.HeapBytes)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].MappedBytes != est.MappedBytes {
		t.Fatalf("List mapped bytes: %+v", infos)
	}
	if !r.Evict("g") {
		t.Fatal("nothing to evict")
	}
	if st := r.Stats(); st.MappedBytes != 0 || st.ResidentBytes != 0 {
		t.Fatalf("after eviction both sums must be zero: %+v", st)
	}
	// The evicted engine stays usable (immutable memory / live mapping).
	if _, err := eng.Count(context.Background(), core.Query{Samples: 100, Seed: 1}); err != nil {
		t.Fatalf("evicted engine unusable: %v", err)
	}
}

// TestCacheKeyCoversPrecisionFields is the regression test for the
// seeded-result cache key: a fixed-budget query and a run-to-precision
// query at the same (graph, seed) must not alias each other's entries, and
// a repeated precision query must come back as a bit-identical hit.
func TestCacheKeyCoversPrecisionFields(t *testing.T) {
	g, p, _ := buildGraph(t, 50, 120, 3)
	r := New(Config{CacheSize: 8})
	if _, err := r.Open("g", g, p); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fixed := core.Query{Strategy: core.AGS, Samples: 3000, CoverThreshold: 200, Seed: 17}
	precise := core.Query{
		Strategy: core.AGS, CoverThreshold: 200, Seed: 17,
		Epsilon: 0.5, Delta: 0.1, MaxSamples: 3000,
	}
	if _, hit, err := r.Count(ctx, "g", fixed, true); err != nil || hit {
		t.Fatalf("cold fixed query: hit=%v err=%v", hit, err)
	}
	cold, hit, err := r.Count(ctx, "g", precise, true)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("precision query aliased the fixed-budget cache entry")
	}
	if cold.Achieved == nil {
		t.Fatal("precision run returned no certificate")
	}
	warm, hit, err := r.Count(ctx, "g", precise, true)
	if err != nil || !hit {
		t.Fatalf("repeat precision query: hit=%v err=%v", hit, err)
	}
	if warm != cold {
		t.Fatal("precision cache hit returned a different result object than the cold run")
	}
	// Varying only a precision field must miss again.
	tighter := precise
	tighter.Epsilon = 0.4
	if _, hit, err := r.Count(ctx, "g", tighter, true); err != nil || hit {
		t.Fatalf("distinct epsilon aliased the cache: hit=%v err=%v", hit, err)
	}
	st := r.Stats()
	if st.PrecisionQueries != 3 {
		t.Fatalf("PrecisionQueries = %d, want 3 (cache hits count as served queries)", st.PrecisionQueries)
	}
}

// TestRegistrySignatures: the signatures path serves per-node vectors off
// the named engine, bumps its own counters, and never caches.
func TestRegistrySignatures(t *testing.T) {
	g, p, _ := buildGraph(t, 50, 120, 3)
	r := New(Config{CacheSize: 8})
	if _, err := r.Open("g", g, p); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := core.Query{Strategy: core.AGS, Samples: 2000, CoverThreshold: 200, Seed: 9}
	first, err := r.Signatures(ctx, "g", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Nodes) == 0 || len(first.Motifs) == 0 {
		t.Fatal("empty signatures result")
	}
	second, err := r.Signatures(ctx, "g", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Fatal("signatures results must not be cached/shared")
	}
	if !reflect.DeepEqual(first.Nodes, second.Nodes) || !reflect.DeepEqual(first.Motifs, second.Motifs) {
		t.Fatal("repeated seeded signatures query is not reproducible")
	}
	st := r.Stats()
	if st.SignatureQueries != 2 || st.Queries != 2 {
		t.Fatalf("signature counters: %+v", st)
	}
	if st.Samples != 4000 {
		t.Fatalf("samples counter = %d, want 4000", st.Samples)
	}
	if _, err := r.Signatures(ctx, "missing", q, nil); err == nil {
		t.Fatal("unknown graph must fail")
	}
}
