package registry

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// cacheKey identifies one cacheable query: the graph name plus the full
// engine query. core.Query is a flat struct of comparable scalars —
// including the run-to-precision fields (Epsilon, Delta, TargetMotif,
// MaxSamples) — so the pair is comparable and two requests collide exactly
// when the engine would run the identical deterministic sampling run; two
// queries at the same (graph, seed, samples) that differ only in ε/δ/target
// get distinct entries.
type cacheKey struct {
	graph string
	query core.Query
}

// resultCache is an LRU map from seeded queries to their results. Entries
// are bounded by count, not bytes: a QueryResult is a few KB of estimates,
// so even thousands of entries are noise next to one resident table.
// Cached *QueryResult values are shared and must be treated as immutable
// by every reader (the serving layer only renders them).
type resultCache struct {
	cap int

	mu  sync.Mutex
	lru *list.List // of *cacheEntry, front = most recent
	m   map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key cacheKey
	res *core.QueryResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, lru: list.New(), m: make(map[cacheKey]*list.Element)}
}

// get returns the cached result for key, bumping the hit/miss counters.
func (c *resultCache) get(key cacheKey) (*core.QueryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) key's result, evicting the least recently
// used entry beyond capacity.
func (c *resultCache) put(key cacheKey, res *core.QueryResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
