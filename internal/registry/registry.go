// Package registry is the multi-tenant serving core: a named collection
// of query engines behind one process, so a single `motivo serve` can
// hold many graphs and absorb repeated queries cheaply.
//
// Three mechanisms make that affordable at production scale:
//
//   - LRU eviction under a memory budget: resident engines are accounted
//     by the heap part of their table payload (EngineStats.HeapBytes);
//     when the sum exceeds Config.MemBudget the least-recently-queried
//     engines are dropped, and a later query transparently reopens them
//     from the persisted table. Memory-mapped tables are page-cache
//     residency the kernel already reclaims under pressure, so their
//     bytes are tracked separately (Stats.MappedBytes) and do not consume
//     budget — evicting a mapped engine frees almost nothing, and
//     reopening one costs O(ms), which makes a mapped fleet dramatically
//     denser per host.
//   - Singleflight opens: concurrent Gets of an evicted (or still
//     loading) name share one table load instead of each paying it.
//   - A seeded-result cache: an explicitly seeded query is deterministic,
//     so an identical (graph, Query) pair short-circuits the entire
//     sampling run and returns the previously computed result.
//
// All methods are safe for concurrent use.
package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Config bounds a Registry.
type Config struct {
	// MemBudget caps the total resident heap table payload in bytes;
	// engines beyond it are LRU-evicted. 0 means unlimited. A single
	// engine larger than the whole budget stays resident while in use (it
	// could not be served otherwise) but evicts everything else. Mapped
	// table bytes are page-cache residency and do not count against the
	// budget.
	MemBudget int64
	// CacheSize is the seeded-result cache capacity in entries; 0 disables
	// the cache.
	CacheSize int
	// MapTable selects how table files are opened (passed through to
	// core.OpenMode); the zero value maps MvT4 files and heap-loads the
	// rest.
	MapTable core.MapMode
}

// UnknownGraphError reports a name no graph was registered under. The
// serving layer maps it to 404 + code "unknown_graph".
type UnknownGraphError struct{ Name string }

func (e *UnknownGraphError) Error() string {
	return fmt.Sprintf("registry: unknown graph %q", e.Name)
}

// Registry is a named collection of engines with LRU eviction, dedup'd
// opens and a seeded-result cache.
type Registry struct {
	budget  int64
	mapMode core.MapMode
	cache   *resultCache

	mu     sync.Mutex
	graphs map[string]*graphEntry
	// lru orders the resident entries, most recently used first; resident
	// is the sum of their heap table payloads (what MemBudget caps) and
	// mappedRes the sum of their mapped bytes (page-cache residency,
	// reported but never budgeted).
	lru       []*graphEntry
	resident  int64
	mappedRes int64

	queries     atomic.Int64 // queries served (fresh + cached)
	samples     atomic.Int64 // samples actually drawn (cache hits draw none)
	evictions   atomic.Int64 // engines dropped (budget pressure or Evict)
	sigQueries  atomic.Int64 // signatures queries served
	precQueries atomic.Int64 // run-to-precision queries served
	precMet     atomic.Int64 // ...of which certified the requested (ε, δ)
}

// graphEntry is one registered graph: the immutable source (host graph +
// table path) plus the resident engine, if any. All mutable fields are
// guarded by Registry.mu except the atomic query counter.
type graphEntry struct {
	name      string
	g         *graph.Graph
	tablePath string

	eng     *core.Engine  // nil while evicted
	opening chan struct{} // non-nil while an open is in flight
	openEng *core.Engine  // the in-flight open's outcome, valid once opening is closed
	openErr error

	k           int
	tableBytes  int64 // total payload; heapBytes + mappedBytes splits it
	heapBytes   int64
	mappedBytes int64
	openTime    time.Duration // last open's duration
	opens       int64         // first open + every reload after eviction
	queries     atomic.Int64
}

// New creates an empty registry under cfg's budget.
func New(cfg Config) *Registry {
	r := &Registry{budget: cfg.MemBudget, mapMode: cfg.MapTable, graphs: make(map[string]*graphEntry)}
	if cfg.CacheSize > 0 {
		r.cache = newResultCache(cfg.CacheSize)
	}
	return r
}

// Open registers g under name and eagerly opens its engine, so a missing
// or corrupt table fails at registration time rather than on the first
// query. Names must be unique.
func (r *Registry) Open(name string, g *graph.Graph, tablePath string) (*core.Engine, error) {
	if name == "" {
		return nil, fmt.Errorf("registry: graph name must be non-empty")
	}
	r.mu.Lock()
	if _, ok := r.graphs[name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: graph %q already registered", name)
	}
	// The opening channel is installed before the lock drops so a Get
	// racing with registration waits on this load instead of starting a
	// second one.
	e := &graphEntry{name: name, g: g, tablePath: tablePath, opening: make(chan struct{})}
	r.graphs[name] = e
	r.mu.Unlock()
	eng, err := r.open(e)
	if err != nil {
		// Registration is load-or-nothing: a name whose table never opened
		// is not kept around to 500 on every later query.
		r.mu.Lock()
		delete(r.graphs, name)
		r.mu.Unlock()
		return nil, err
	}
	return eng, nil
}

// Get returns the named engine, reopening it from the persisted table if
// it was evicted. Concurrent Gets of the same non-resident name share one
// open (singleflight); ctx bounds only the wait, not the load itself,
// which completes for the benefit of the other waiters.
func (r *Registry) Get(ctx context.Context, name string) (*core.Engine, error) {
	r.mu.Lock()
	e, ok := r.graphs[name]
	if !ok {
		r.mu.Unlock()
		return nil, &UnknownGraphError{name}
	}
	if e.eng != nil {
		r.touchLocked(e)
		eng := e.eng
		r.mu.Unlock()
		return eng, nil
	}
	if wait := e.opening; wait != nil {
		r.mu.Unlock()
		select {
		case <-wait:
			// The opener published its outcome before closing the channel.
			// Returning its engine directly (rather than re-checking
			// residency) is correct even if the entry was already evicted
			// again: engines are immutable memory, usable until GC'd.
			return e.openEng, e.openErr
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e.opening = make(chan struct{})
	r.mu.Unlock()
	return r.open(e)
}

// open loads e's table (the caller must have set e.opening under the lock,
// or hold the only reference as Open does), installs the engine, and
// applies the memory budget.
func (r *Registry) open(e *graphEntry) (*core.Engine, error) {
	start := time.Now()
	eng, err := core.OpenMode(e.g, e.tablePath, r.mapMode)
	elapsed := time.Since(start)

	r.mu.Lock()
	e.openEng, e.openErr = eng, err
	if e.opening != nil {
		close(e.opening)
		e.opening = nil
	}
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	st := eng.Stats()
	e.eng = eng
	e.k = st.K
	e.tableBytes = st.TableBytes
	e.heapBytes = st.HeapBytes
	e.mappedBytes = st.MappedBytes
	e.openTime = elapsed
	e.opens++
	r.lru = append([]*graphEntry{e}, r.lru...)
	r.resident += e.heapBytes
	r.mappedRes += e.mappedBytes
	r.enforceBudgetLocked(e)
	r.mu.Unlock()
	return eng, nil
}

// touchLocked moves e to the front of the LRU order.
func (r *Registry) touchLocked(e *graphEntry) {
	for i, o := range r.lru {
		if o == e {
			copy(r.lru[1:i+1], r.lru[:i])
			r.lru[0] = e
			return
		}
	}
}

// enforceBudgetLocked evicts least-recently-used engines until the
// resident payload fits the budget. keep (the engine just loaded for a
// live caller) is never evicted — a lone engine above the whole budget
// stays resident, it just evicts everyone else.
func (r *Registry) enforceBudgetLocked(keep *graphEntry) {
	if r.budget <= 0 {
		return
	}
	for r.resident > r.budget {
		victim := -1
		for i := len(r.lru) - 1; i >= 0; i-- {
			if r.lru[i] != keep {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		r.evictLocked(r.lru[victim])
	}
}

// evictLocked drops e's resident engine. It only releases the reference —
// never the engine's resources: outstanding Get callers may still be
// querying it (see the comment in Get), so a mapped table's mapping is
// released by its finalizer once the engine is truly unreachable.
func (r *Registry) evictLocked(e *graphEntry) {
	for i, o := range r.lru {
		if o == e {
			r.lru = append(r.lru[:i], r.lru[i+1:]...)
			break
		}
	}
	r.resident -= e.heapBytes
	r.mappedRes -= e.mappedBytes
	e.eng = nil
	r.evictions.Add(1)
}

// Evict drops the named engine's resident state; the registration stays,
// so a later Get reopens it. It reports whether an engine was resident.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	if !ok || e.eng == nil {
		return false
	}
	r.evictLocked(e)
	return true
}

// Count resolves the named engine and serves one query. When cacheable is
// true (the caller saw an explicit seed) an identical previously answered
// (graph, Query) returns the cached result without sampling; hit reports
// which path answered.
func (r *Registry) Count(ctx context.Context, name string, q core.Query, cacheable bool) (res *core.QueryResult, hit bool, err error) {
	if err := q.Validate(); err != nil {
		return nil, false, err
	}
	key := cacheKey{graph: name, query: q}
	if cacheable && r.cache != nil {
		if cached, ok := r.cache.get(key); ok {
			r.queries.Add(1)
			// Like Queries, the precision counters report queries served,
			// fresh and cached alike (a hit re-serves its certificate).
			r.notePrecision(cached.Achieved)
			if e := r.entry(name); e != nil {
				e.queries.Add(1)
			}
			return cached, true, nil
		}
	}
	eng, err := r.Get(ctx, name)
	if err != nil {
		return nil, false, err
	}
	qres, err := eng.Count(ctx, q)
	if err != nil {
		return nil, false, err
	}
	r.queries.Add(1)
	r.samples.Add(int64(qres.Samples))
	r.notePrecision(qres.Achieved)
	if e := r.entry(name); e != nil {
		e.queries.Add(1)
	}
	if cacheable && r.cache != nil {
		r.cache.put(key, qres)
	}
	return qres, false, nil
}

// notePrecision advances the run-to-precision counters for a completed
// query's certificate (nil = fixed-budget query, counted nowhere).
func (r *Registry) notePrecision(c *core.Certificate) {
	if c == nil {
		return
	}
	r.precQueries.Add(1)
	if c.Met {
		r.precMet.Add(1)
	}
}

// Signatures resolves the named engine and serves one per-node signatures
// query (core.Engine.Signatures). Signature results are not cached: their
// bodies are per-node and typically orders of magnitude larger than count
// responses, and the fixed stream decomposition already makes them
// reproducible per seed on the client side.
func (r *Registry) Signatures(ctx context.Context, name string, q core.Query, nodes []int32) (*core.SignaturesResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	eng, err := r.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	res, err := eng.Signatures(ctx, q, nodes)
	if err != nil {
		return nil, err
	}
	r.queries.Add(1)
	r.sigQueries.Add(1)
	r.samples.Add(int64(res.Samples))
	r.notePrecision(res.Achieved)
	if e := r.entry(name); e != nil {
		e.queries.Add(1)
	}
	return res, nil
}

// Meta returns the graphlet size and packed table payload size of the
// named graph's table. Both are known from registration time (Open loads
// eagerly) and do not require — or cause — the engine to be resident, so
// cache hits can be rendered without reopening an evicted engine.
func (r *Registry) Meta(name string) (k int, tableBytes int64, err error) {
	e := r.entry(name)
	if e == nil {
		return 0, 0, &UnknownGraphError{name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return e.k, e.tableBytes, nil
}

func (r *Registry) entry(name string) *graphEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.graphs[name]
}

// Info describes one registered graph.
type Info struct {
	// Name is the registration name.
	Name string
	// Resident reports whether the engine is currently loaded.
	Resident bool
	// K is the graphlet size of the graph's table.
	K int
	// Nodes and Edges describe the host graph.
	Nodes int
	Edges int64
	// TableBytes is the packed table payload (last known when evicted);
	// MappedBytes is the part served off a read-only file mapping (0 for
	// heap-loaded tables — the mapped-vs-heap signal per graph).
	TableBytes  int64
	MappedBytes int64
	// OpenTime is the duration of the most recent table open.
	OpenTime time.Duration
	// Opens counts table loads: the first open plus every reload after an
	// eviction.
	Opens int64
	// Queries counts queries served for this graph (fresh + cached).
	Queries int64
}

// List describes every registered graph, sorted by name.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, Info{
			Name:        e.name,
			Resident:    e.eng != nil,
			K:           e.k,
			Nodes:       e.g.NumNodes(),
			Edges:       e.g.NumEdges(),
			TableBytes:  e.tableBytes,
			MappedBytes: e.mappedBytes,
			OpenTime:    e.openTime,
			Opens:       e.opens,
			Queries:     e.queries.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats aggregates the registry's traffic, cache and eviction counters.
type Stats struct {
	// Graphs is the number of registered names; Resident how many of them
	// hold a loaded engine; ResidentBytes their summed heap table payload
	// (what MemBudget caps); MappedBytes their summed memory-mapped table
	// bytes (page-cache residency, never budgeted); MemBudget the
	// configured cap (0 = unlimited).
	Graphs        int
	Resident      int
	ResidentBytes int64
	MappedBytes   int64
	MemBudget     int64
	// Queries counts queries served (fresh + cached); Samples the samples
	// actually drawn (cache hits draw none).
	Queries int64
	Samples int64
	// SignatureQueries counts per-node signatures queries (also included
	// in Queries); PrecisionQueries counts run-to-precision queries, and
	// PrecisionMet how many of them certified the requested (ε, δ) before
	// their sample cap.
	SignatureQueries int64
	PrecisionQueries int64
	PrecisionMet     int64
	// CacheHits/CacheMisses count seeded-result cache lookups;
	// CacheEntries/CacheCap its current and maximum size. Unseeded queries
	// touch none of these.
	CacheHits    int64
	CacheMisses  int64
	CacheEntries int
	CacheCap     int
	// Evictions counts engines dropped, by budget pressure or Evict.
	Evictions int64
}

// Stats reports the registry-wide counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		Graphs:        len(r.graphs),
		Resident:      len(r.lru),
		ResidentBytes: r.resident,
		MappedBytes:   r.mappedRes,
		MemBudget:     r.budget,
	}
	r.mu.Unlock()
	st.Queries = r.queries.Load()
	st.Samples = r.samples.Load()
	st.SignatureQueries = r.sigQueries.Load()
	st.PrecisionQueries = r.precQueries.Load()
	st.PrecisionMet = r.precMet.Load()
	st.Evictions = r.evictions.Load()
	if r.cache != nil {
		st.CacheHits = r.cache.hits.Load()
		st.CacheMisses = r.cache.misses.Load()
		st.CacheEntries = r.cache.len()
		st.CacheCap = r.cache.cap
	}
	return st
}
