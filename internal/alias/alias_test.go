package alias

import (
	"math"
	"math/rand"
	"testing"
)

func TestEmptyAndZero(t *testing.T) {
	if New(nil) != nil {
		t.Error("nil weights should give nil table")
	}
	if New([]float64{0, 0, 0}) != nil {
		t.Error("all-zero weights should give nil table")
	}
}

func TestSingleCategory(t *testing.T) {
	tab := New([]float64{3.5})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if tab.Next(rng) != 0 {
			t.Fatal("single category must always be drawn")
		}
	}
}

func TestDistributionMatchesWeights(t *testing.T) {
	weights := []float64{1, 0, 4, 2, 0.5, 0, 2.5}
	tab := New(weights)
	if tab.Len() != len(weights) {
		t.Fatalf("Len = %d", tab.Len())
	}
	rng := rand.New(rand.NewSource(42))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Next(rng)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / total
		if w == 0 {
			if counts[i] != 0 {
				t.Errorf("zero-weight category %d drawn %d times", i, counts[i])
			}
			continue
		}
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: got frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestNegativeWeightsTreatedAsZero(t *testing.T) {
	tab := New([]float64{-5, 1})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if tab.Next(rng) == 0 {
			t.Fatal("negative-weight category drawn")
		}
	}
}

func TestSkewedWeights(t *testing.T) {
	// One huge and many tiny weights — the regime the root sampler sees on
	// hub-dominated graphs.
	weights := make([]float64, 1000)
	weights[0] = 1e9
	for i := 1; i < 1000; i++ {
		weights[i] = 1
	}
	tab := New(weights)
	rng := rand.New(rand.NewSource(3))
	zero := 0
	for i := 0; i < 100000; i++ {
		if tab.Next(rng) == 0 {
			zero++
		}
	}
	if zero < 99900 {
		t.Errorf("hub drawn only %d/100000 times", zero)
	}
}
