// Package alias implements Vose's alias method for O(1) sampling from a
// fixed categorical distribution (Vose 1991, cited as [24] in the paper).
//
// Motivo uses an alias table to draw the root node v with probability
// proportional to the number of colorful k-treelets rooted at v
// (paper, Section 3.3, "Alias method sampling"). Building the table is
// linear in the support; each draw costs one uniform variate and one
// comparison.
package alias

import "math/rand"

// Table is an immutable alias table over n categories.
type Table struct {
	prob  []float64 // acceptance probability of the home category
	alias []int32   // fallback category
}

// New builds an alias table from non-negative weights. Weights need not be
// normalized. It returns nil if all weights are zero or the slice is empty.
func New(weights []float64) *Table {
	n := len(weights)
	if n == 0 {
		return nil
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return nil
	}
	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scale weights so the average is 1, then split into small/large piles.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are all probability-1 home draws.
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

// Len returns the number of categories.
func (t *Table) Len() int { return len(t.prob) }

// Next draws one category index.
func (t *Table) Next(rng *rand.Rand) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
