package build

import (
	"sync"
	"sync/atomic"
)

// parallelFor shards [0, n) across `workers` goroutines in dynamically
// scheduled chunks, calling fn(lo, hi) for each chunk. Chunks are claimed
// by an atomic cursor, so fast workers steal the remaining range from slow
// ones — vertices differ wildly in cost (a hub costs orders of magnitude
// more than a leaf), which makes static sharding a straggler factory.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	// Chunks small enough to load-balance, large enough to amortize the
	// atomic claim; clamped to [1, 256].
	chunk := n / (workers * 16)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}
	var (
		cursor int64
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&cursor, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
