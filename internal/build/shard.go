package build

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/table"
)

// This file implements the bounded-memory level pass (Options.MemBudget):
// the vertex range is cut into contiguous shards that form a shared work
// queue, the worker pool pulls shards off the queue (work-stealing — a
// worker stuck on a shard of hubs never strands the rest of the range,
// unlike a static 1/workers split), and every completed record streams
// straight into the claimed shard's packed spill file. Because exactly one
// worker owns a shard at a time and walks its vertices in ascending order,
// each spill file is already compact and node-ordered — which is what lets
// merge.go concatenate them into the level arena with a bounded buffer
// instead of re-sorting (see mergeShards for the equivalence argument).

// shardsPerWorker is the queue's over-subscription factor: enough shards
// per worker that stealing can balance skewed degree distributions, few
// enough that per-shard spill files stay coarse.
const shardsPerWorker = 8

// minShards/maxShards clamp the shard count: below the floor stealing
// cannot help, above the ceiling the temp-file count stops paying for
// itself.
const (
	minShards = 16
	maxShards = 512
)

// shard is one work unit of a bounded-memory level pass: a contiguous
// vertex range and the spill sink its records stream to. The sink is
// created on first flush, so shards whose range produces no records cost
// no file.
type shard struct {
	lo, hi int32
	sink   *table.DiskStore
}

// makeShards cuts [0, n) into the work queue's contiguous vertex ranges.
func makeShards(n, workers int) []shard {
	count := workers * shardsPerWorker
	if count < minShards {
		count = minShards
	}
	if count > maxShards {
		count = maxShards
	}
	if count > n {
		count = n
	}
	if count < 1 {
		count = 1
	}
	span := (n + count - 1) / count
	shards := make([]shard, 0, count)
	for lo := 0; lo < n; lo += span {
		hi := lo + span
		if hi > n {
			hi = n
		}
		shards = append(shards, shard{lo: int32(lo), hi: int32(hi)})
	}
	return shards
}

// levelSharded runs the size-h pass under the memory budget: workers pull
// shards from the shared queue, stream records to per-shard spill files,
// and the shards are externally merged into the level arena. The result
// is byte-identical to the unbounded level() pass — records are the same
// bytes (the per-vertex recurrence is deterministic) and the merge
// produces the same node-ordered compact arena SetLevel's compaction
// would.
func (b *builder) levelSharded(ctx context.Context, h int) error {
	lvl := time.Now()
	n := b.g.NumNodes()
	shards := makeShards(n, b.opts.workers())
	defer func() {
		// Merge closes (and removes) each sink it consumed; this sweep
		// covers error exits mid-pass.
		for i := range shards {
			if shards[i].sink != nil {
				shards[i].sink.Close()
				shards[i].sink = nil
			}
		}
	}()

	workers := b.opts.workers()
	if workers > len(shards) {
		workers = len(shards)
	}
	var (
		ops      int64
		buffered int64
		firstErr atomic.Pointer[error]
		cursor   atomic.Int64
		wg       sync.WaitGroup
	)
	fail := func(err error) { firstErr.CompareAndSwap(nil, &err) }
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go func() {
			defer wg.Done()
			w := newWorker(b, h)
			for {
				si := int(cursor.Add(1)) - 1
				if si >= len(shards) || firstErr.Load() != nil {
					break
				}
				if err := b.runShard(ctx, w, &shards[si]); err != nil {
					fail(err)
					break
				}
			}
			atomic.AddInt64(&ops, w.ops)
			atomic.AddInt64(&buffered, w.buffered)
		}()
	}
	wg.Wait()
	if perr := firstErr.Load(); perr != nil {
		return *perr
	}
	b.stats.CheckMergeOps += ops
	b.stats.BufferedNodes += buffered

	if err := b.mergeShards(h, shards); err != nil {
		return err
	}
	b.stats.LevelTime[h] = time.Since(lvl)
	return nil
}

// runShard computes the records of one claimed shard in ascending vertex
// order, streaming each encoded record to the shard's spill file — the
// in-RAM footprint of a shard is one record at a time, whatever the
// shard's total output size.
func (b *builder) runShard(ctx context.Context, w *worker, s *shard) error {
	for v := s.lo; v < s.hi; v++ {
		// Same cadence as the unbounded pass: a canceled context stops a
		// long shard mid-flight, without putting ctx.Err on every vertex.
		if (v-s.lo)&0xFF == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if b.topLevelSkip(w.h, v) {
			continue
		}
		rec := w.vertexRecord(v)
		if rec.Len() == 0 {
			continue
		}
		w.enc = table.AppendRecord(w.enc[:0], rec)
		if s.sink == nil {
			// Small write buffers: every open shard holds a live sink until
			// the merge consumes it, so at the default shard count 1 MiB
			// buffers alone would rival a small budget.
			sink, err := table.NewDiskStoreBuffered(b.opts.SpillDir, int(s.hi-s.lo), 64<<10)
			if err != nil {
				return err
			}
			s.sink = sink
		}
		if err := s.sink.Flush(v-s.lo, w.enc); err != nil {
			return err
		}
	}
	return nil
}
