//go:build race

package build_test

// raceEnabled scales workload-heavy tests down under the race detector.
const raceEnabled = true
