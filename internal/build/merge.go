package build

// The external merge of the bounded-memory build: shard spill files
// concatenate into the final level arena. Correctness rests on two
// orderings that hold by construction — shards partition [0, n) in
// ascending contiguous ranges, and within a shard the owning worker
// flushed records in ascending vertex order — so appending the files in
// shard order yields records in global node order, compact, with no gaps.
// That is exactly the layout Table.SetLevel's compaction produces from an
// arbitrarily-ordered arena, so the bounded and unbounded builds install
// byte-identical levels (SetLevelOrdered re-checks the contiguity rather
// than trusting it).

// mergeShards streams every shard spill into one exact-size level arena
// and installs it. Transient memory is the arena itself (which the table
// keeps — there is no second copy) plus the spill reader's bounded
// buffer; each spill file is deleted as soon as it has been consumed.
func (b *builder) mergeShards(h int, shards []shard) error {
	var total int64
	for i := range shards {
		if shards[i].sink != nil {
			total += shards[i].sink.Size()
		}
	}
	arena := make([]byte, total)
	starts := make([]int64, b.g.NumNodes())
	for i := range starts {
		starts[i] = -1
	}
	var off int64
	for i := range shards {
		s := &shards[i]
		if s.sink == nil {
			continue
		}
		size := s.sink.Size()
		if err := s.sink.CopyInto(arena[off : off+size]); err != nil {
			return err
		}
		for v := s.lo; v < s.hi; v++ {
			if o := s.sink.Offset(v - s.lo); o >= 0 {
				starts[v] = off + o
			}
		}
		off += size
		if err := s.sink.Close(); err != nil {
			return err
		}
		s.sink = nil
	}
	b.stats.SpillBytes += total
	return b.tab.SetLevelOrdered(h, arena, starts)
}
