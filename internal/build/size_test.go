package build_test

import (
	"context"
	"testing"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/treelet"
)

// TestPackedTableBeatsDenseLayout is the storage-engine acceptance test:
// on the benchmark ER graph the packed table (arena + block index + offset
// index, as accounted by Table.Bytes) must be at least 2.5x smaller than
// the former 24-byte/pair word-aligned slice layout.
func TestPackedTableBeatsDenseLayout(t *testing.T) {
	g := gen.ErdosRenyi(800, 2400, 1033)
	k := 5
	col := coloring.Uniform(g.NumNodes(), k, 1007)
	cat := treelet.NewCatalog(k)
	tab, stats, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs == 0 {
		t.Fatal("empty table")
	}
	if tab.Bytes() != stats.TableBytes || tab.Pairs() != stats.Pairs {
		t.Fatalf("stats disagree with table accounting: %d/%d bytes, %d/%d pairs",
			stats.TableBytes, tab.Bytes(), stats.Pairs, tab.Pairs())
	}
	bytesPerPair := float64(stats.TableBytes) / float64(stats.Pairs)
	const dense = 24.0 // 8-byte key + 16-byte cumulative count per pair
	t.Logf("packed table: %d pairs, %d bytes, %.2f bytes/pair (%.1fx vs dense)",
		stats.Pairs, stats.TableBytes, bytesPerPair, dense/bytesPerPair)
	if dense/bytesPerPair < 2.5 {
		t.Errorf("packed table only %.2fx smaller than the 24-byte/pair layout (%.2f bytes/pair), want ≥ 2.5x",
			dense/bytesPerPair, bytesPerPair)
	}
}
