package build_test

import (
	"context"
	"testing"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/treelet"
)

// TestPackedTableBeatsDenseLayout is the packed-codec acceptance test: on
// the benchmark ER graph the fully materialized packed table (arena +
// block index + offset index, as accounted by Table.Bytes) must be at
// least 2.5x smaller than the former 24-byte/pair word-aligned slice
// layout. Smart stars are off here on purpose — this measures the codec's
// bytes/pair, not the synthesis win (TestSmartStarsTableBytes does that).
func TestPackedTableBeatsDenseLayout(t *testing.T) {
	g := gen.ErdosRenyi(800, 2400, 1033)
	k := 5
	col := coloring.Uniform(g.NumNodes(), k, 1007)
	cat := treelet.NewCatalog(k)
	opts := build.DefaultOptions()
	opts.SmartStars = false
	tab, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs == 0 {
		t.Fatal("empty table")
	}
	if tab.Bytes() != stats.TableBytes || tab.Pairs() != stats.Pairs {
		t.Fatalf("stats disagree with table accounting: %d/%d bytes, %d/%d pairs",
			stats.TableBytes, tab.Bytes(), stats.Pairs, tab.Pairs())
	}
	bytesPerPair := float64(stats.TableBytes) / float64(stats.Pairs)
	const dense = 24.0 // 8-byte key + 16-byte cumulative count per pair
	t.Logf("packed table: %d pairs, %d bytes, %.2f bytes/pair (%.1fx vs dense)",
		stats.Pairs, stats.TableBytes, bytesPerPair, dense/bytesPerPair)
	if dense/bytesPerPair < 2.5 {
		t.Errorf("packed table only %.2fx smaller than the 24-byte/pair layout (%.2f bytes/pair), want ≥ 2.5x",
			dense/bytesPerPair, bytesPerPair)
	}
}

// TestSmartStarsTableBytes is the smart-star acceptance test: at k=6 on
// the benchmark ER graph, synthesizing the star family (all height-≤2
// shapes) instead of materializing it must cut total table bytes — arenas,
// offset indexes, and the degree summaries the synthesis needs — by at
// least 2x against the fully materialized build of the same coloring.
func TestSmartStarsTableBytes(t *testing.T) {
	g := gen.ErdosRenyi(800, 2400, 1033)
	k := 6
	col := coloring.Uniform(g.NumNodes(), k, 1007)
	cat := treelet.NewCatalog(k)

	mat := build.DefaultOptions()
	mat.SmartStars = false
	tabMat, _, err := build.Run(context.Background(), g, col, k, cat, mat)
	if err != nil {
		t.Fatal(err)
	}
	tabSmart, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	matB, smartB := tabMat.Bytes(), tabSmart.Bytes()
	if smartB <= 0 || matB <= 0 {
		t.Fatalf("implausible byte accounting: materialized %d, smart %d", matB, smartB)
	}
	ratio := float64(matB) / float64(smartB)
	t.Logf("k=%d ER bench graph: materialized %d bytes, smart %d bytes (%.2fx)", k, matB, smartB, ratio)
	if ratio < 2 {
		t.Errorf("smart stars shrink the table only %.2fx (materialized %d bytes, smart %d), want ≥ 2x",
			ratio, matB, smartB)
	}
	// The smart table must serve the same urn: identical grand total.
	if tabMat.TotalK() != tabSmart.TotalK() {
		t.Errorf("TotalK differs: materialized %v, smart %v", tabMat.TotalK(), tabSmart.TotalK())
	}
}
