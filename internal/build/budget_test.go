package build_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/gen"
	"repro/internal/treelet"
)

// TestBudgetBuildBitIdentical is the sharded-build determinism anchor
// (acceptance criterion): a MemBudget build must produce a table
// byte-identical to the unsharded in-RAM build of the same coloring,
// across worker counts, the legacy greedy-spill mode, and budgets small
// enough to force memo drops — shard boundaries, the work-stealing
// schedule, and the external merge may change where bytes transit, never
// what the table says.
func TestBudgetBuildBitIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 11)
	k := 5
	col := coloring.Uniform(g.NumNodes(), k, 13)
	cat := treelet.NewCatalog(k)

	for _, smart := range []bool{true, false} {
		base := build.DefaultOptions()
		base.SmartStars = smart
		base.Workers = 1
		ref, _, err := build.Run(context.Background(), g, col, k, cat, base)
		if err != nil {
			t.Fatal(err)
		}
		want := tableBytes(t, ref, col)

		cases := []struct {
			name string
			mut  func(*build.Options)
		}{
			{"budget/workers=1", func(o *build.Options) { o.MemBudget = 64 << 20; o.Workers = 1 }},
			{"budget/workers=4", func(o *build.Options) { o.MemBudget = 64 << 20; o.Workers = 4 }},
			{"budget/tiny", func(o *build.Options) { o.MemBudget = 1; o.Workers = 4 }},
			{"spill/workers=4", func(o *build.Options) { o.Spill = true; o.Workers = 4 }},
			{"budget+spilldir", func(o *build.Options) { o.MemBudget = 32 << 20; o.SpillDir = t.TempDir(); o.Workers = 3 }},
		}
		for _, tc := range cases {
			opts := build.DefaultOptions()
			opts.SmartStars = smart
			tc.mut(&opts)
			tab, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
			if err != nil {
				t.Fatalf("smart=%v %s: %v", smart, tc.name, err)
			}
			if !bytes.Equal(want, tableBytes(t, tab, col)) {
				t.Errorf("smart=%v %s: table differs from the unsharded in-RAM build", smart, tc.name)
			}
			if opts.MemBudget > 0 && stats.SpillBytes == 0 && stats.Pairs > 0 {
				t.Errorf("smart=%v %s: budget build reports zero spill bytes", smart, tc.name)
			}
		}
	}
}

// TestBudgetBuildCancels: the sharded pass must honor context
// cancellation mid-level, like the unbounded pass does.
func TestBudgetBuildCancels(t *testing.T) {
	g := gen.ErdosRenyi(600, 3000, 29)
	col := coloring.Uniform(g.NumNodes(), 5, 31)
	cat := treelet.NewCatalog(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := build.DefaultOptions()
	opts.MemBudget = 1 << 20
	if _, _, err := build.Run(ctx, g, col, 5, cat, opts); err != context.Canceled {
		t.Fatalf("canceled budget build returned %v, want context.Canceled", err)
	}
}

// peakHeap samples HeapAlloc while fn runs and returns the maximum seen —
// coarse (sampling can miss a spike between GCs) but directionally solid
// for the multi-x gaps this file asserts on.
func peakHeap(fn func()) uint64 {
	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			for {
				old := peak.Load()
				if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	fn()
	close(done)
	return peak.Load()
}

// TestBudgetBuildUnderMemoryLimit is the bounded-memory acceptance smoke:
// a k=6 materialized build on the benchmark ER graph must complete under
// a debug.SetMemoryLimit set well below the unbounded path's peak heap —
// the limit that would drive the unbounded build into GC death spiral /
// OOM territory — and still produce the byte-identical table. Skipped
// under the race detector (instrumented heaps dwarf the workload) and in
// -short runs.
func TestBudgetBuildUnderMemoryLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a multi-MiB materialized k=6 table twice")
	}
	if raceEnabled {
		t.Skip("race-instrumented allocation defeats heap-peak accounting")
	}
	g := gen.ErdosRenyi(2000, 16000, 1033)
	k := 6
	col := coloring.Uniform(g.NumNodes(), k, 1007)
	cat := treelet.NewCatalog(k)
	// Materialized records make the in-flight levels as heavy as they get
	// (smart stars would synthesize the bulkiest shapes away).
	mat := build.DefaultOptions()
	mat.SmartStars = false
	mat.Workers = 4

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Keep only a digest of the reference table: retaining the serialized
	// bytes (or the table itself) across the budgeted run would raise its
	// live floor by the very size the limit is supposed to squeeze.
	var refSum [sha256.Size]byte
	unboundedPeak := peakHeap(func() {
		tab, _, err := build.Run(context.Background(), g, col, k, cat, mat)
		if err != nil {
			t.Fatal(err)
		}
		refSum = sha256.Sum256(tableBytes(t, tab, col))
	})
	runtime.GC()

	// Constrain the heap to the baseline plus half of what the unbounded
	// build transiently piled on top: generous slack for the budgeted
	// path, hopeless for the unbounded one.
	transient := int64(unboundedPeak) - int64(before.HeapAlloc)
	if transient < 8<<20 {
		t.Fatalf("unbounded build peaked only %d B over baseline; workload too small to constrain", transient)
	}
	limit := int64(before.HeapAlloc) + transient/2
	prev := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prev)

	budget := mat
	budget.MemBudget = transient / 8
	budget.SpillDir = t.TempDir()
	var gotSum [sha256.Size]byte
	budgetPeak := peakHeap(func() {
		tab, stats, err := build.Run(context.Background(), g, col, k, cat, budget)
		if err != nil {
			t.Fatal(err)
		}
		if stats.SpillBytes == 0 {
			t.Error("budget build reports zero spill bytes")
		}
		gotSum = sha256.Sum256(tableBytes(t, tab, col))
	})
	debug.SetMemoryLimit(prev)

	t.Logf("baseline %.1f MiB, unbounded peak %.1f MiB, limit %.1f MiB, budget peak %.1f MiB",
		float64(before.HeapAlloc)/(1<<20), float64(unboundedPeak)/(1<<20),
		float64(limit)/(1<<20), float64(budgetPeak)/(1<<20))
	if int64(budgetPeak) > limit {
		t.Errorf("budgeted build peaked at %d B, above the %d B memory limit", budgetPeak, limit)
	}
	if refSum != gotSum {
		t.Error("budgeted build differs from the unbounded build under the same coloring")
	}
}
