// Package build implements motivo's color-coding build-up phase (paper,
// Sections 3.1–3.3): the dynamic program that fills the succinct treelet
// count table.
//
// For every node v and every treelet size h = 1..k it computes c(T_C, v),
// the number of colorful copies of the canonical rooted treelet T with
// color set C rooted at v, by the canonical-decomposition recurrence
// (Eq. 1 of the paper):
//
//	c(T_C, v) = (1/β_T) · Σ_{u ~ v} Σ_{C' ⊎ C'' = C} c(T'_{C'}, v) · c(T''_{C''}, u)
//
// where T = Merge(T', T”) is the unique canonical decomposition detaching
// the first child subtree T” of the root, and β_T corrects for the copies
// generated once per identical first child. Because records are sorted by
// (treelet, colorset) and the treelet occupies the key's high bits, the
// inner loop walks contiguous shape runs of two records and performs the
// check-and-merge test as a single integer comparison of succinct codes —
// the optimization Figure 2 of the paper measures against CC's
// pointer-based treelets.
//
// Performance machinery implemented here, matching the paper:
//
//   - a vertex-sharded worker pool: nodes of a level are processed
//     concurrently by Options.Workers goroutines (0 = GOMAXPROCS); each
//     node's record only reads completed lower levels, so the result is
//     bit-identical regardless of scheduling;
//   - 0-rooting (Section 3.2): with Options.ZeroRooted the size-k level is
//     computed only at color-0 nodes, counting each colorful k-treelet copy
//     exactly once (it has exactly one color-0 node) and cutting both time
//     and table space at the top level;
//   - neighbor buffering (Section 3.3): for nodes of degree ≥
//     Options.BufferThreshold the neighbor records of one size are
//     pre-aggregated into a single sorted record, turning the
//     deg(v)·|r_u|·|r_v| pair scan into deg(v)·|r_u| + |agg|·|r_v| —
//     the same counts, a fraction of the work on hubs;
//   - greedy flushing (Section 3.1): with Options.Spill each completed
//     record is serialized to a temp file through table.DiskStore and its
//     memory released; when the level pass finishes the spill is re-read
//     sequentially to serve as input for the next pass. Note the scope of
//     the current implementation: the reload stands in for the paper's
//     memory-mapped reads, so it bounds the working set only *during* a
//     pass — completed lower levels stay resident (they are randomly
//     accessed by every later pass and by the sampler). Larger-than-RAM
//     tables are a serving-side feature: persist with `motivo build -o`
//     and reopen through table.OpenMapped, which serves every level
//     zero-copy off the page cache (see internal/table/mmap.go).
package build

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// DefaultBufferThreshold is the degree at which neighbor buffering kicks in
// (paper: 10^4).
const DefaultBufferThreshold = 10000

// Options parameterizes the build-up phase.
type Options struct {
	// Workers bounds the vertex-sharded worker pool; 0 = GOMAXPROCS.
	Workers int
	// ZeroRooted enables 0-rooting (Section 3.2): size-k records are
	// computed only at color-0 nodes, each unrooted copy counted once.
	ZeroRooted bool
	// Spill enables greedy flushing of completed records through temp
	// files (Section 3.1): the level being built streams to disk instead
	// of accumulating in memory, and is reloaded once the pass finishes
	// (see the package comment for what this does and does not bound).
	// SpillDir != "" also enables it.
	Spill bool
	// SpillDir is the directory for spill files (the default temp dir
	// when empty). Setting it implies Spill.
	SpillDir string
	// BufferThreshold is the degree at which neighbor buffering starts
	// (0 keeps the paper's default of 10^4).
	BufferThreshold int
	// SmartStars enables smart-star synthesis (Section 3.2): star-family
	// treelets (every rooted shape of height ≤ 2) are never materialized —
	// the DP skips producing them, levels below size 4 are not stored at
	// all, and the table synthesizes their records on demand from per-node
	// colored-degree summaries. Counts, estimates and sampled draw
	// sequences are bit-identical to a materialized build at equal seed.
	SmartStars bool
	// MemBudget, when > 0, bounds the build's transient memory (bytes):
	// each level pass shards the vertex range into work units pulled from
	// a shared queue by the worker pool (work-stealing, so a shard full of
	// hubs cannot serialize the others behind a static split), every
	// completed record streams straight to its shard's packed spill file,
	// and the shards are externally merged into the level arena through a
	// bounded buffer — so the pass never holds an uncompacted level copy
	// in RAM, and per-worker decoded-record memos are capped at roughly
	// MemBudget/(8·workers). Completed lower levels stay resident (every
	// later pass random-accesses them); the budget bounds what the pass
	// itself adds on top. The resulting table is byte-identical to an
	// unbounded in-RAM build of the same coloring at any worker count.
	MemBudget int64
}

// DefaultOptions returns the paper's defaults: GOMAXPROCS workers,
// 0-rooting on, smart stars on, no spilling, buffering above degree 10^4.
func DefaultOptions() Options {
	return Options{ZeroRooted: true, BufferThreshold: DefaultBufferThreshold, SmartStars: true}
}

// spillEnabled reports whether greedy flushing is active.
func (o Options) spillEnabled() bool { return o.Spill || o.SpillDir != "" }

// bufferThreshold returns the effective neighbor-buffering threshold.
func (o Options) bufferThreshold() int {
	if o.BufferThreshold > 0 {
		return o.BufferThreshold
	}
	return DefaultBufferThreshold
}

// workers returns the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports what the build did, per the measurements the paper's
// evaluation tracks.
type Stats struct {
	// Duration is the wall-clock time of the whole build.
	Duration time.Duration
	// LevelTime[h] is the wall-clock time of the size-h pass (index 0
	// unused).
	LevelTime []time.Duration
	// CheckMergeOps counts check-and-merge operations: one per
	// (colored treelet, colored treelet) pair considered by the inner
	// loop, matching the accounting of the CC baseline so Figure 2's
	// ns/op comparison is apples to apples.
	CheckMergeOps int64
	// Pairs is the number of (key, count) pairs stored in the table.
	Pairs int64
	// TableBytes is the in-memory payload of the final table.
	TableBytes int64
	// SpillBytes is the total size of the spill files written (0 when
	// spilling is off).
	SpillBytes int64
	// BufferedNodes counts node/level passes that took the
	// neighbor-buffered path.
	BufferedNodes int64
}

// Run executes the build-up phase on g under col, filling the count table
// for treelet sizes 1..k using the shapes pre-enumerated in cat. The
// context is checked between level passes and periodically inside the
// vertex loop, so a canceled build returns promptly with ctx.Err() — a
// deadline on the caller bounds the expensive half of the pipeline.
func Run(ctx context.Context, g *graph.Graph, col *coloring.Coloring, k int, cat *treelet.Catalog, opts Options) (*table.Table, *Stats, error) {
	if k < 1 || k > treelet.MaxK {
		return nil, nil, fmt.Errorf("build: k=%d out of range [1,%d]", k, treelet.MaxK)
	}
	if col == nil || col.K != k {
		return nil, nil, fmt.Errorf("build: coloring has %d colors, want %d", colK(col), k)
	}
	n := g.NumNodes()
	if len(col.Colors) != n {
		return nil, nil, fmt.Errorf("build: coloring covers %d nodes, graph has %d", len(col.Colors), n)
	}
	if cat == nil || cat.K < k {
		return nil, nil, fmt.Errorf("build: catalog k=%d < build k=%d", catK(cat), k)
	}

	start := time.Now()
	b := &builder{
		g: g, col: col, k: k, cat: cat, opts: opts,
		tab:   table.New(n, k, opts.ZeroRooted),
		stats: &Stats{LevelTime: make([]time.Duration, k+1)},
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	firstPass := 2
	if opts.SmartStars {
		// Smart stars: sizes 1..3 are fully synthesized from the
		// colored-degree summaries — no DP pass, no stored level. The first
		// DP pass is size 4, reading the synthetic views below it.
		if err := b.tab.EnableSmartStars(g, col); err != nil {
			return nil, nil, err
		}
		firstPass = 4
	} else if err := b.levelOne(); err != nil {
		return nil, nil, err
	}
	for h := firstPass; h <= k; h++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if err := b.level(ctx, h); err != nil {
			return nil, nil, err
		}
	}
	b.stats.Duration = time.Since(start)
	b.stats.Pairs = b.tab.Pairs()
	b.stats.TableBytes = b.tab.Bytes()
	return b.tab, b.stats, nil
}

func colK(c *coloring.Coloring) int {
	if c == nil {
		return 0
	}
	return c.K
}

func catK(c *treelet.Catalog) int {
	if c == nil {
		return 0
	}
	return c.K
}

// builder carries the shared state of one Run.
type builder struct {
	g    *graph.Graph
	col  *coloring.Coloring
	k    int
	cat  *treelet.Catalog
	opts Options

	tab   *table.Table
	stats *Stats
}

// topLevelSkip reports whether node v is excluded from the size-h pass
// (0-rooting restricts the top level to color-0 nodes).
func (b *builder) topLevelSkip(h int, v int32) bool {
	return b.opts.ZeroRooted && h == b.k && b.col.Of(v) != 0
}

// levelOne seeds the base case: one pair (Leaf, {color(v)}) ↦ 1 per node.
func (b *builder) levelOne() error {
	lvl := time.Now()
	var p table.Pairs
	for v := int32(0); int(v) < b.g.NumNodes(); v++ {
		if b.topLevelSkip(1, v) {
			continue
		}
		p.Reset()
		p.Append(treelet.MakeColored(treelet.Leaf, treelet.Singleton(b.col.Of(v))), u128.One)
		b.tab.SetRec(1, v, &p)
	}
	b.stats.LevelTime[1] = time.Since(lvl)
	return nil
}

// level runs the size-h pass: the worker pool shards nodes, each worker
// accumulates records from completed lower levels, encodes them into
// packed form, and hands the bytes to a sink — the in-memory level arena,
// or (with spilling) a temp file whose contents become the arena after the
// pass. Either way Table.SetLevel compacts the level into node order, so
// the resulting table is byte-identical regardless of scheduling and sink.
func (b *builder) level(ctx context.Context, h int) error {
	if b.opts.MemBudget > 0 {
		// The bounded-memory path: sharded work queue, per-shard spill
		// files, external merge (shard.go / merge.go).
		return b.levelSharded(ctx, h)
	}
	lvl := time.Now()
	n := b.g.NumNodes()
	var (
		spill *spillSink
		mem   *table.LevelWriter
	)
	if b.opts.spillEnabled() {
		s, err := newSpillSink(b.opts.SpillDir, n)
		if err != nil {
			return err
		}
		spill = s
		defer spill.close()
	} else {
		mem = table.NewLevelWriter(n)
	}

	var (
		ops      int64
		buffered int64
		firstErr atomic.Pointer[error]
	)
	fail := func(err error) { firstErr.CompareAndSwap(nil, &err) }
	parallelFor(n, b.opts.workers(), func(lo, hi int) {
		w := newWorker(b, h)
		for v := lo; v < hi; v++ {
			if firstErr.Load() != nil {
				return
			}
			// A canceled context must stop a long level pass mid-flight,
			// not only at the next level barrier; checking every 256 nodes
			// keeps the mutex in ctx.Err off the per-node path.
			if (v-lo)&0xFF == 0 {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
			}
			node := int32(v)
			if b.topLevelSkip(h, node) {
				continue
			}
			rec := w.vertexRecord(node)
			if rec.Len() == 0 {
				continue
			}
			// Encode outside any lock; both sinks copy, so the buffer is
			// reusable immediately.
			w.enc = table.AppendRecord(w.enc[:0], rec)
			if spill != nil {
				if err := spill.flush(node, w.enc); err != nil {
					fail(err)
					return
				}
				continue // memory released: the record lives on disk now
			}
			mem.Add(node, w.enc)
		}
		atomic.AddInt64(&ops, w.ops)
		atomic.AddInt64(&buffered, w.buffered)
	})
	if perr := firstErr.Load(); perr != nil {
		return *perr
	}
	b.stats.CheckMergeOps += ops
	b.stats.BufferedNodes += buffered

	if spill != nil {
		// The sequential second pass: reload the level to serve as input
		// for the next one.
		arena, starts, err := spill.loadAll()
		if err != nil {
			return err
		}
		if err := b.tab.SetLevel(h, arena, starts); err != nil {
			return err
		}
		b.stats.SpillBytes += spill.size()
	} else if err := mem.Install(b.tab, h); err != nil {
		return err
	}
	b.stats.LevelTime[h] = time.Since(lvl)
	return nil
}

// maxMemoRecords caps the per-worker decoded-record memo: a level pass
// consults each lower-level record once per consumer (deg(v) times across
// the shard), and decoding — or, with smart stars, synthesizing — it anew
// every time dominates the pass. 1<<15 records bound the memo to a few
// tens of MB per worker on dense graphs; when the cap is hit the memo is
// simply dropped and refills (correctness never depends on it).
const maxMemoRecords = 1 << 15

// worker is the per-goroutine state of the level pass: the accumulation
// map, the decoded-record memo (lower levels are packed or synthesized;
// each record consulted is materialized into slice form at most once per
// pass), and local stat counters (merged once at the end, so the hot loop
// is contention-free).
type worker struct {
	b   *builder
	h   int
	acc map[treelet.Colored]u128.Uint128

	recMemo   map[int64]*table.Pairs // decoded (size, node) records
	memoBytes int64                  // approximate decoded bytes held by recMemo
	memoLimit int64                  // byte cap on the memo (0 = record-count cap only)
	outBuf    table.Pairs            // sorted result of the accumulation map
	aggBuf    table.Pairs            // neighbor-buffered aggregate record
	enc       []byte                 // packed encoding handed to the sink
	cache     *table.SynthCache      // memo for smart-star neighbor sums (nil when materialized)

	ops      int64
	buffered int64
}

func newWorker(b *builder, h int) *worker {
	w := &worker{
		b: b, h: h,
		acc:     make(map[treelet.Colored]u128.Uint128),
		recMemo: make(map[int64]*table.Pairs),
	}
	if b.opts.SmartStars {
		// Smart inputs are synthesized on read; the per-worker memo keeps
		// the neighbor-sum terms from being recomputed per consumer.
		w.cache = table.NewSynthCache()
	}
	if budget := b.opts.MemBudget; budget > 0 {
		// Bounded-memory builds cap the memo by bytes, not just record
		// count: the worker pool's memos are the one scratch structure
		// that scales with record size, so they get an equal slice of a
		// fraction of the budget (floored so tiny budgets still memoize
		// the hot lower levels).
		w.memoLimit = max(budget/int64(8*b.opts.workers()), 256<<10)
	}
	return w
}

// pairs returns the decoded record of node v at size h, memoized per
// worker. The result is shared and must be treated as read-only.
func (w *worker) pairs(h int, v int32) *table.Pairs {
	key := int64(h)<<32 | int64(uint32(v))
	if p, ok := w.recMemo[key]; ok {
		return p
	}
	p := new(table.Pairs)
	w.b.tab.Rec(h, v).WithCache(w.cache).AppendPairs(p)
	if len(w.recMemo) >= maxMemoRecords || (w.memoLimit > 0 && w.memoBytes > w.memoLimit) {
		// Cap hit: drop the memo and let it refill (correctness never
		// depends on it, only the recompute rate).
		clear(w.recMemo)
		w.memoBytes = 0
	}
	w.recMemo[key] = p
	w.memoBytes += int64(24*p.Len()) + 64 // 8B key + 16B count per pair, plus slice headers
	return p
}

// vertexRecord computes the full size-h record of node v by the
// decomposition recurrence, returning the sorted pairs (backed by worker
// scratch, valid until the next call).
func (w *worker) vertexRecord(v int32) *table.Pairs {
	b := w.b
	clear(w.acc)
	deg := b.g.Degree(v)
	useBuffer := deg >= b.opts.bufferThreshold()
	if useBuffer {
		w.buffered++
	}
	for hpp := 1; hpp < w.h; hpp++ {
		hp := w.h - hpp
		rv := w.pairs(hp, v)
		if rv.Len() == 0 {
			continue
		}
		if useBuffer {
			// Neighbor buffering: Σ_u Σ c(T',v)·c(T'',u) factors as
			// Σ c(T',v)·(Σ_u c(T'',u)) — aggregate the neighborhood once,
			// then combine against a single record.
			w.aggregateNeighbors(v, hpp)
			if w.aggBuf.Len() == 0 {
				continue
			}
			w.combine(&w.aggBuf, rv)
			continue
		}
		for _, u := range b.g.Neighbors(v) {
			ru := w.pairs(hpp, u)
			if ru.Len() == 0 {
				continue
			}
			w.combine(ru, rv)
		}
	}
	w.outBuf.Reset()
	if len(w.acc) == 0 {
		return &w.outBuf
	}
	// β_T correction: the recurrence generated each copy once per
	// identical first child; the division is exact.
	for key, c := range w.acc {
		if beta := b.cat.Beta(key.Tree()); beta > 1 {
			q, _ := c.QuoRem64(uint64(beta))
			w.acc[key] = q
		}
	}
	w.outBuf.FromMap(w.acc)
	return &w.outBuf
}

// aggregateNeighbors sums the size-hpp records of v's neighbors into
// w.aggBuf as one sorted pair list.
func (w *worker) aggregateNeighbors(v int32, hpp int) {
	b := w.b
	agg := make(map[treelet.Colored]u128.Uint128)
	for _, u := range b.g.Neighbors(v) {
		ru := w.pairs(hpp, u)
		for i := 0; i < ru.Len(); i++ {
			agg[ru.Keys[i]] = agg[ru.Keys[i]].Add(ru.Counts[i])
			w.ops++
		}
	}
	w.aggBuf.Reset()
	w.aggBuf.FromMap(agg)
}

// combine walks the shape runs of ru (first-child side T”) and rv
// (remainder side T'), performs one succinct check-and-merge per run pair,
// and accumulates the color-disjoint products into the map. Pair keys
// sort by (treelet, colorset), so each shape's colorings are contiguous.
func (w *worker) combine(ru, rv *table.Pairs) {
	cat := w.b.cat
	smart := w.b.opts.SmartStars
	i := 0
	for i < ru.Len() {
		tpp := ru.Keys[i].Tree()
		iEnd := i + 1
		for iEnd < ru.Len() && ru.Keys[iEnd].Tree() == tpp {
			iEnd++
		}
		// Merge(tp, tpp) has height max(height(tp), height(tpp)+1); with
		// smart stars every height-≤2 result is synthesized on demand, so
		// the DP never produces it — the star half of the smart-star win.
		hpp := cat.Height(tpp)
		j := 0
		for j < rv.Len() {
			tp := rv.Keys[j].Tree()
			jEnd := j + 1
			for jEnd < rv.Len() && rv.Keys[jEnd].Tree() == tp {
				jEnd++
			}
			if smart && hpp <= 1 && cat.Height(tp) <= 2 {
				j = jEnd
				continue
			}
			// One pair of shape runs = (iEnd-i)·(jEnd-j) candidate pairs;
			// count them all, as CC does, whether or not the merge is
			// canonical.
			w.ops += int64(iEnd-i) * int64(jEnd-j)
			// The check: T'' must not come after the first child of T'.
			// One integer comparison on succinct codes (vs CC's recursive
			// pointer walk).
			if tp == treelet.Leaf || tpp <= cat.FirstChild(tp) {
				merged := treelet.Merge(tp, tpp)
				for a := i; a < iEnd; a++ {
					cs := ru.Keys[a].Colors()
					cu := ru.Counts[a]
					for bi := j; bi < jEnd; bi++ {
						cp := rv.Keys[bi].Colors()
						if !cp.Disjoint(cs) {
							continue
						}
						key := treelet.MakeColored(merged, cp|cs)
						w.acc[key] = w.acc[key].Add(rv.Counts[bi].Mul(cu))
					}
				}
			}
			j = jEnd
		}
		i = iEnd
	}
}
