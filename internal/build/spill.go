package build

import (
	"sync"

	"repro/internal/table"
)

// spillSink serializes completed records of one level pass to a temp file
// (the greedy flushing strategy, Section 3.1). table.DiskStore does the
// encoding; this wrapper adds the mutex the concurrent worker pool needs —
// flush order is arbitrary, DiskStore.LoadAll reorders by offset.
type spillSink struct {
	mu sync.Mutex
	ds *table.DiskStore
}

func newSpillSink(dir string, n int) (*spillSink, error) {
	ds, err := table.NewDiskStore(dir, n)
	if err != nil {
		return nil, err
	}
	return &spillSink{ds: ds}, nil
}

func (s *spillSink) flush(v int32, r table.Record) error {
	if r.Len() == 0 {
		return nil
	}
	// Encode outside the lock: the per-record packing dominates the
	// append, and serializing it would collapse the worker pool to one
	// effective writer on encode-heavy levels.
	buf := table.EncodeRecord(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.FlushEncoded(v, buf)
}

func (s *spillSink) loadAll() ([]table.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.LoadAll()
}

func (s *spillSink) size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Size()
}

func (s *spillSink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Close()
}
