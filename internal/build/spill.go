package build

import (
	"sync"

	"repro/internal/table"
)

// spillSink streams packed records of one level pass to a temp file (the
// greedy flushing strategy, Section 3.1). table.DiskStore does the I/O in
// the shared wire format; this wrapper adds the mutex the concurrent
// worker pool needs — flush order is arbitrary, Table.SetLevel compacts
// the reloaded arena into node order.
type spillSink struct {
	mu sync.Mutex
	ds *table.DiskStore
}

func newSpillSink(dir string, n int) (*spillSink, error) {
	ds, err := table.NewDiskStore(dir, n)
	if err != nil {
		return nil, err
	}
	return &spillSink{ds: ds}, nil
}

// flush appends one packed record; callers encode outside the lock (the
// per-record packing dominates the append, and serializing it would
// collapse the worker pool to one effective writer on encode-heavy
// levels).
func (s *spillSink) flush(v int32, rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Flush(v, rec)
}

func (s *spillSink) loadAll() ([]byte, []int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.LoadAll()
}

func (s *spillSink) size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Size()
}

func (s *spillSink) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Close()
}
