package build_test

import (
	"bytes"
	"context"
	"math/bits"
	"testing"
	"time"

	"repro/internal/build"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/table"
	"repro/internal/treelet"
	"repro/internal/u128"
)

// triangleWithTail is the 5-node fixture: a triangle {0,1,2} with the tail
// 2–3–4.
func triangleWithTail(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.Build(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fixtures returns the small graphs the brute-force cross-check runs on.
func fixtures(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"path6":            gen.Path(6),
		"star6":            gen.Star(6),
		"triangleWithTail": triangleWithTail(t),
		"K5":               gen.Complete(5),
	}
}

// bruteForce enumerates every colorful rooted subtree copy of g directly:
// for each vertex subset with pairwise-distinct colors and each spanning
// tree of the induced subgraph, the tree rooted at each of its nodes is one
// copy. It returns counts[h][v][coloredTreelet].
func bruteForce(t *testing.T, g *graph.Graph, col *coloring.Coloring, k int) [][]map[treelet.Colored]u128.Uint128 {
	t.Helper()
	n := g.NumNodes()
	out := make([][]map[treelet.Colored]u128.Uint128, k+1)
	for h := 1; h <= k; h++ {
		out[h] = make([]map[treelet.Colored]u128.Uint128, n)
		for v := range out[h] {
			out[h][v] = make(map[treelet.Colored]u128.Uint128)
		}
	}
	for set := 1; set < 1<<n; set++ {
		h := bits.OnesCount(uint(set))
		if h > k {
			continue
		}
		var cs treelet.ColorSet
		colorful := true
		nodes := []int32{}
		for v := 0; v < n; v++ {
			if set&(1<<v) == 0 {
				continue
			}
			c := treelet.Singleton(col.Of(int32(v)))
			if !cs.Disjoint(c) {
				colorful = false
				break
			}
			cs = cs.Union(c)
			nodes = append(nodes, int32(v))
		}
		if !colorful {
			continue
		}
		// Edges of the induced subgraph, as index pairs into nodes.
		var edges [][2]int
		for i := 0; i < h; i++ {
			for j := i + 1; j < h; j++ {
				if g.HasEdge(nodes[i], nodes[j]) {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		if len(edges) < h-1 {
			continue
		}
		// Every (h-1)-subset of the edges that spans the node set is one
		// tree copy; root it at each node in turn.
		for em := 0; em < 1<<len(edges); em++ {
			if bits.OnesCount(uint(em)) != h-1 {
				continue
			}
			var chosen [][2]int
			for e := range edges {
				if em&(1<<e) != 0 {
					chosen = append(chosen, edges[e])
				}
			}
			if !spans(h, chosen) {
				continue
			}
			for root := 0; root < h; root++ {
				code := rootedCode(h, chosen, root)
				key := treelet.MakeColored(code, cs)
				m := out[h][nodes[root]]
				m[key] = m[key].Add64(1)
			}
		}
	}
	return out
}

// spans reports whether the chosen edges connect all h nodes.
func spans(h int, edges [][2]int) bool {
	adj := make([][]int, h)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, h)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	return cnt == h
}

// rootedCode canonicalizes the tree given by edges, rooted at root, via a
// BFS relabeling and treelet.FromParents.
func rootedCode(h int, edges [][2]int, root int) treelet.Treelet {
	adj := make([][]int, h)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	order := []int{root}
	index := make([]int, h)
	for i := range index {
		index[i] = -1
	}
	index[root] = 0
	parent := make([]int, 0, h)
	parent = append(parent, 0)
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, u := range adj[v] {
			if index[u] >= 0 {
				continue
			}
			index[u] = len(order)
			order = append(order, u)
			parent = append(parent, index[v])
		}
	}
	return treelet.FromParents(parent)
}

// TestRunMatchesBruteForce cross-checks every c(T_C, v) at every level
// against direct enumeration, with 0-rooting off so all levels are full.
func TestRunMatchesBruteForce(t *testing.T) {
	for name, g := range fixtures(t) {
		for _, k := range []int{2, 3, 4, 5} {
			col := coloring.Uniform(g.NumNodes(), k, int64(100+k))
			cat := treelet.NewCatalog(k)
			opts := build.DefaultOptions()
			opts.ZeroRooted = false
			tab, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			// Smart stars synthesize every size ≤ 3 level, so the first DP
			// pass (and with it any check-and-merge op) happens at k ≥ 4.
			if stats.CheckMergeOps <= 0 && k > 3 {
				t.Errorf("%s k=%d: no check-merge ops recorded", name, k)
			}
			want := bruteForce(t, g, col, k)
			for h := 1; h <= k; h++ {
				for v := 0; v < g.NumNodes(); v++ {
					rec := tab.Rec(h, int32(v))
					if rec.Len() != len(want[h][v]) {
						t.Fatalf("%s k=%d h=%d v=%d: %d pairs, brute force %d",
							name, k, h, v, rec.Len(), len(want[h][v]))
					}
					for key, cnt := range want[h][v] {
						if got := rec.Count(key); got != cnt {
							t.Fatalf("%s k=%d h=%d v=%d key=%v: got %v, want %v",
								name, k, h, v, key, got, cnt)
						}
					}
				}
			}
		}
	}
}

// TestZeroRootingCountsEachCopyOnce checks that with 0-rooting the size-k
// level holds records only at color-0 nodes and that TotalK equals the
// brute-force number of distinct colorful k-treelet copies.
func TestZeroRootingCountsEachCopyOnce(t *testing.T) {
	for name, g := range fixtures(t) {
		k := 4
		col := coloring.Uniform(g.NumNodes(), k, 7)
		cat := treelet.NewCatalog(k)
		tab, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !tab.ZeroRooted {
			t.Fatalf("%s: table not marked zero-rooted", name)
		}
		want := bruteForce(t, g, col, k)
		// Distinct copies: every colorful size-k copy is counted k times
		// across all rootings, once per node.
		total := u128.Zero
		for v := 0; v < g.NumNodes(); v++ {
			for _, c := range want[k][v] {
				total = total.Add(c)
			}
			if col.Of(int32(v)) != 0 && tab.Rec(k, int32(v)).Len() != 0 {
				t.Fatalf("%s: non-color-0 node %d has a size-k record", name, v)
			}
		}
		distinct, rem := total.QuoRem64(uint64(k))
		if rem != 0 {
			t.Fatalf("%s: rooting count %v not divisible by k", name, total)
		}
		if got := tab.TotalK(); got != distinct {
			t.Fatalf("%s: TotalK = %v, brute force %v", name, got, distinct)
		}
	}
}

// TestParallelMatchesSequential: Workers:4 and Workers:1 must produce
// byte-identical tables (the per-vertex recurrence is deterministic and
// FromMap sorts, so scheduling cannot leak into the result).
func TestParallelMatchesSequential(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 11)
	k := 5
	col := coloring.Uniform(g.NumNodes(), k, 13)
	cat := treelet.NewCatalog(k)

	seq := build.DefaultOptions()
	seq.Workers = 1
	tabSeq, _, err := build.Run(context.Background(), g, col, k, cat, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := build.DefaultOptions()
	par.Workers = 4
	tabPar, _, err := build.Run(context.Background(), g, col, k, cat, par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tableBytes(t, tabSeq, col), tableBytes(t, tabPar, col)) {
		t.Fatal("parallel and sequential builds are not byte-identical")
	}
}

// TestSpillRoundTrip: the spill path must reproduce the in-memory table
// exactly, and report the spill volume.
func TestSpillRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(120, 500, 17)
	k := 4
	col := coloring.Uniform(g.NumNodes(), k, 19)
	cat := treelet.NewCatalog(k)

	mem, _, err := build.Run(context.Background(), g, col, k, cat, build.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := build.DefaultOptions()
	opts.Spill = true
	opts.SpillDir = t.TempDir()
	opts.Workers = 4
	spilled, stats, err := build.Run(context.Background(), g, col, k, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpillBytes == 0 {
		t.Error("spill run reports zero spill bytes")
	}
	if !bytes.Equal(tableBytes(t, mem, col), tableBytes(t, spilled, col)) {
		t.Fatal("spilled table differs from in-memory table")
	}
}

// tableBytes serializes a table for byte-identity comparisons: SetLevel
// compacts every level into node order, so equal tables serialize equal.
// The coloring travels along because smart tables require it to save.
func tableBytes(t *testing.T, tab *table.Table, col *coloring.Coloring) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := table.Save(&buf, tab, col); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBufferedMatchesUnbuffered: forcing the neighbor-buffered path on
// every node must not change any count.
func TestBufferedMatchesUnbuffered(t *testing.T) {
	g := gen.StarHeavy(2, 200, 60, 23)
	k := 4
	col := coloring.Uniform(g.NumNodes(), k, 29)
	cat := treelet.NewCatalog(k)

	plain := build.DefaultOptions()
	plain.BufferThreshold = 1 << 30
	tabPlain, statsPlain, err := build.Run(context.Background(), g, col, k, cat, plain)
	if err != nil {
		t.Fatal(err)
	}
	if statsPlain.BufferedNodes != 0 {
		t.Fatal("buffering active despite huge threshold")
	}
	forced := build.DefaultOptions()
	forced.BufferThreshold = 1
	tabBuf, statsBuf, err := build.Run(context.Background(), g, col, k, cat, forced)
	if err != nil {
		t.Fatal(err)
	}
	if statsBuf.BufferedNodes == 0 {
		t.Fatal("buffering never used despite threshold 1")
	}
	if !bytes.Equal(tableBytes(t, tabPlain, col), tableBytes(t, tabBuf, col)) {
		t.Fatal("buffered table differs from unbuffered table")
	}
}

// TestEndToEndMatchesExact drives build.Run through the full pipeline
// (core.Count, naive sampling) and compares against exhaustive ESU
// enumeration.
func TestEndToEndMatchesExact(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 31)
	k := 4
	truth, err := exact.Count(g, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Count(g, core.Config{
		K: k, Colorings: 8, SamplesPerColoring: 20000, Seed: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l1 := estimate.L1(res.Counts, truth); l1 > 0.12 {
		t.Errorf("end-to-end ℓ1 error %.3f too large", l1)
	}
	if len(res.BuildStats) != 8 {
		t.Errorf("expected 8 build stats, got %d", len(res.BuildStats))
	}
	for _, st := range res.BuildStats {
		if st.Duration <= 0 || st.Pairs <= 0 || st.TableBytes <= 0 {
			t.Errorf("incomplete build stats: %+v", st)
		}
		if len(st.LevelTime) != k+1 {
			t.Errorf("LevelTime has %d entries, want %d", len(st.LevelTime), k+1)
		}
	}
}

// TestRunValidation exercises the error paths.
func TestRunValidation(t *testing.T) {
	g := gen.Path(5)
	col := coloring.Uniform(g.NumNodes(), 3, 1)
	cat := treelet.NewCatalog(3)
	cases := []struct {
		name string
		run  func() error
	}{
		{"k too small", func() error {
			_, _, err := build.Run(context.Background(), g, col, 0, cat, build.DefaultOptions())
			return err
		}},
		{"k too large", func() error {
			_, _, err := build.Run(context.Background(), g, col, treelet.MaxK+1, treelet.NewCatalog(treelet.MaxK), build.DefaultOptions())
			return err
		}},
		{"coloring k mismatch", func() error {
			_, _, err := build.Run(context.Background(), g, coloring.Uniform(g.NumNodes(), 4, 1), 3, cat, build.DefaultOptions())
			return err
		}},
		{"coloring size mismatch", func() error {
			_, _, err := build.Run(context.Background(), g, coloring.Uniform(3, 3, 1), 3, cat, build.DefaultOptions())
			return err
		}},
		{"catalog too small", func() error {
			_, _, err := build.Run(context.Background(), g, coloring.Uniform(g.NumNodes(), 4, 1), 4, cat, build.DefaultOptions())
			return err
		}},
		{"nil coloring", func() error {
			_, _, err := build.Run(context.Background(), g, nil, 3, cat, build.DefaultOptions())
			return err
		}},
		{"nil catalog", func() error {
			_, _, err := build.Run(context.Background(), g, col, 3, nil, build.DefaultOptions())
			return err
		}},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestSpillErrorPath: an unusable spill directory must surface as an error,
// not a panic or a silent in-memory fallback.
func TestSpillErrorPath(t *testing.T) {
	g := gen.Path(6)
	k := 4 // the first stored (spillable) level of a smart build is size 4
	col := coloring.Uniform(g.NumNodes(), k, 41)
	cat := treelet.NewCatalog(k)
	opts := build.DefaultOptions()
	opts.SpillDir = "/nonexistent-dir-for-motivo-tests"
	if _, _, err := build.Run(context.Background(), g, col, k, cat, opts); err == nil {
		t.Fatal("expected error for unusable spill dir")
	}
}

// TestRunCancellation: a canceled context stops the build both before it
// starts and mid-flight inside a level pass, returning ctx.Err() promptly.
func TestRunCancellation(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 47)
	k := 5
	col := coloring.Uniform(g.NumNodes(), k, 47)
	cat := treelet.NewCatalog(k)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := build.Run(pre, g, col, k, cat, build.DefaultOptions()); err != context.Canceled {
		t.Errorf("pre-canceled: want context.Canceled, got %v", err)
	}

	// Mid-flight: cancel concurrently with the level passes; whether the
	// vertex loop or a level barrier notices first, the error must be the
	// context's.
	ctx, cancelMid := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := build.Run(ctx, g, col, k, cat, build.DefaultOptions())
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancelMid()
	select {
	case err := <-done:
		// A tiny build can legitimately finish before the cancel lands;
		// anything else must be context.Canceled.
		if err != nil && err != context.Canceled {
			t.Errorf("mid-flight: want nil or context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled build did not return")
	}
}
