package motivo

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/graphlet"
)

func TestCountNaiveEndToEnd(t *testing.T) {
	g := ErdosRenyi(40, 120, 3)
	truth, err := ExactCount(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(g, Options{K: 4, Colorings: 6, Samples: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 6*20000 {
		t.Errorf("samples = %d", res.Samples)
	}
	if res.K != 4 || res.BuildTime <= 0 || res.SampleTime <= 0 || res.TableBytes <= 0 {
		t.Error("result metadata incomplete")
	}
	if l1 := L1Error(res.Counts, truth); l1 > 0.1 {
		t.Errorf("ℓ1 error %.3f", l1)
	}
}

func TestCountAGSEndToEnd(t *testing.T) {
	g := StarHeavy(1, 300, 30, 5)
	res, err := Count(g, Options{K: 4, Samples: 10000, Strategy: AGS, CoverThreshold: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) < 2 {
		t.Errorf("AGS found only %d graphlets on a star-heavy graph", len(res.Counts))
	}
	// The star must dominate.
	top := res.Top(1)
	if len(top) != 1 || !graphlet.IsStar(4, top[0].Code) {
		t.Errorf("top graphlet is not the star: %v", top)
	}
}

func TestCountAGSParallelOption(t *testing.T) {
	g := StarHeavy(1, 300, 30, 5)
	seq, err := Count(g, Options{K: 4, Samples: 10000, Strategy: AGS, CoverThreshold: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Count(g, Options{K: 4, Samples: 10000, Strategy: AGS, CoverThreshold: 300, Seed: 11, SampleWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Samples != seq.Samples {
		t.Errorf("parallel samples %d != sequential %d", par.Samples, seq.Samples)
	}
	// Both arms must agree on the dominant graphlet.
	st, pt := seq.Top(1), par.Top(1)
	if len(pt) != 1 || !graphlet.IsStar(4, pt[0].Code) || pt[0].Code != st[0].Code {
		t.Errorf("parallel AGS top graphlet diverges: %v vs %v", pt, st)
	}
}

func TestTopOrderingAndTruncation(t *testing.T) {
	g := ErdosRenyi(30, 80, 13)
	res, err := Count(g, Options{K: 4, Samples: 5000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	all := res.Top(0)
	for i := 1; i < len(all); i++ {
		if all[i].Count > all[i-1].Count {
			t.Fatal("Top not sorted descending")
		}
	}
	var fsum float64
	for _, e := range all {
		fsum += e.Frequency
	}
	if math.Abs(fsum-1) > 1e-9 {
		t.Errorf("frequencies sum to %v", fsum)
	}
	if got := res.Top(2); len(got) != 2 {
		t.Errorf("Top(2) returned %d", len(got))
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := ErdosRenyi(20, 40, 19)
	res, err := Count(g, Options{Samples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Errorf("default K = %d", res.K)
	}
}

func TestCountValidation(t *testing.T) {
	g := PathGraph(5)
	if _, err := Count(g, Options{K: 1, Samples: 10}); err == nil {
		t.Error("K=1 must fail")
	}
	if _, err := Count(g, Options{K: MaxK + 1, Samples: 10}); err == nil {
		t.Error("K > MaxK must fail")
	}
}

func TestDescribe(t *testing.T) {
	cases := []struct {
		k    int
		g    *Graph
		want string
	}{
		{4, Complete(4), "4-clique"},
		{5, StarGraph(5), "5-star"},
		{5, PathGraph(5), "5-path"},
		{5, CycleGraph(5), "5-cycle"},
	}
	for _, c := range cases {
		truth, err := ExactCount(c.g, c.k)
		if err != nil {
			t.Fatal(err)
		}
		for code := range truth {
			if got := Describe(c.k, code); got != c.want {
				t.Errorf("Describe = %q, want %q", got, c.want)
			}
		}
	}
	// Generic description mentions vertex and edge counts.
	paw := graphlet.Canonical(4, graphlet.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}))
	if d := Describe(4, paw); !strings.Contains(d, "4v/4e") {
		t.Errorf("paw description %q", d)
	}
}

func TestNumGraphletsFacade(t *testing.T) {
	if NumGraphlets(5) != 21 {
		t.Errorf("NumGraphlets(5) = %d", NumGraphlets(5))
	}
}

func TestBiasedColoringOption(t *testing.T) {
	g := BarabasiAlbert(300, 3, 23)
	res, err := Count(g, Options{K: 4, Samples: 20000, Lambda: 0.15, Colorings: 4, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ExactCount(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Biased coloring trades accuracy for table size; the distribution
	// must still be broadly right.
	if l1 := L1Error(res.Counts, truth); l1 > 0.25 {
		t.Errorf("biased ℓ1 error %.3f", l1)
	}
}

func TestSpillOption(t *testing.T) {
	g := ErdosRenyi(50, 150, 31)
	res, err := Count(g, Options{K: 4, Samples: 2000, Spill: true, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) == 0 {
		t.Error("spill run produced no estimates")
	}
}

// TestEngineFacade drives the public serving API end to end: BuildTable →
// Open → concurrent-safe queries that are bit-identical to one-shot Count
// runs over the same table, with the open cost paid once.
func TestEngineFacade(t *testing.T) {
	g := ErdosRenyi(70, 210, 19)
	path := t.TempDir() + "/facade.tbl"
	if _, err := BuildTable(g, Options{K: 4, Seed: 23}, path); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(g, path)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.K != 4 || st.Nodes != 70 || st.Edges != 210 || st.OpenTime <= 0 || st.TableBytes <= 0 {
		t.Fatalf("engine stats: %+v", st)
	}
	// The deprecated per-field accessors must keep agreeing with Stats.
	if eng.K() != st.K || eng.OpenTime() != st.OpenTime || eng.TableBytes() != st.TableBytes {
		t.Fatalf("deprecated accessors diverge from Stats(): k=%d open=%v bytes=%d vs %+v",
			eng.K(), eng.OpenTime(), eng.TableBytes(), st)
	}
	for _, strat := range []Strategy{Naive, AGS} {
		res, err := eng.Count(context.Background(), Query{
			Strategy: strat, Samples: 4000, CoverThreshold: 200, Seed: 23,
		})
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := Count(g, Options{
			K: 4, Samples: 4000, Strategy: strat, CoverThreshold: 200,
			Seed: 23, TablePath: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Counts) != len(oneShot.Counts) {
			t.Fatalf("%v: support differs (%d vs %d)", strat, len(res.Counts), len(oneShot.Counts))
		}
		for c, v := range oneShot.Counts {
			if res.Counts[c] != v {
				t.Fatalf("%v: engine estimate for %v differs from one-shot", strat, c)
			}
		}
		if res.BuildTime != 0 || res.OpenTime != 0 {
			t.Errorf("%v: engine query reports phase times it did not pay (build=%v open=%v)",
				strat, res.BuildTime, res.OpenTime)
		}
	}
	if oneShot, err := Count(g, Options{K: 4, Samples: 1000, Seed: 23, TablePath: path}); err != nil {
		t.Fatal(err)
	} else if oneShot.OpenTime <= 0 || oneShot.BuildTime != 0 {
		t.Errorf("one-shot TablePath run: open=%v build=%v, want open>0 build=0", oneShot.OpenTime, oneShot.BuildTime)
	}
}

// TestCountContextCancellation: the public context entry points honor a
// canceled ctx in both the build and sampling phases.
func TestCountContextCancellation(t *testing.T) {
	g := ErdosRenyi(60, 180, 29)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountContext(ctx, g, Options{K: 4, Samples: 100}); err == nil {
		t.Error("canceled build: expected error")
	}
	if _, err := BuildTableContext(ctx, g, Options{K: 4}, t.TempDir()+"/c.tbl"); err == nil {
		t.Error("canceled BuildTable: expected error")
	}
	path := t.TempDir() + "/c2.tbl"
	if _, err := BuildTable(g, Options{K: 4, Seed: 31}, path); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Count(ctx, Query{Samples: 100000}); err == nil {
		t.Error("canceled query: expected error")
	}
}

func TestQueryValidate(t *testing.T) {
	cases := []struct {
		name string
		q    Query
		ok   bool
	}{
		{"zero-value-defaults", Query{}, true},
		{"explicit", Query{Strategy: AGS, Samples: 1000, Seed: 5, CoverThreshold: 100}, true},
		{"negative-samples", Query{Samples: -1}, false},
		{"bad-workers", Query{SampleWorkers: -1}, false},
		{"bad-cover", Query{CoverThreshold: -3}, false},
	}
	for _, tc := range cases {
		if err := tc.q.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestRegistryFacade drives the public multi-tenant surface: named
// engines behind one registry, the seeded-result cache, and the /v1
// handler wired by NewServer.
func TestRegistryFacade(t *testing.T) {
	g := ErdosRenyi(50, 150, 41)
	path := t.TempDir() + "/reg.tbl"
	if _, err := BuildTable(g, Options{K: 4, Seed: 43}, path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(RegistryConfig{CacheSize: 16})
	if err := reg.Open("er", g, path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Open("er", g, path); err == nil {
		t.Fatal("duplicate name accepted")
	}
	ctx := context.Background()
	if _, err := reg.Get(ctx, "nope"); err == nil {
		t.Fatal("unknown graph resolved")
	}
	eng, err := reg.Get(ctx, "er")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().K != 4 {
		t.Fatalf("engine stats: %+v", eng.Stats())
	}

	q := Query{Samples: 2000, Seed: 43}
	cold, cached, err := reg.Count(ctx, "er", q)
	if err != nil || cached {
		t.Fatalf("cold count: cached=%v err=%v", cached, err)
	}
	warm, cached, err := reg.Count(ctx, "er", q)
	if err != nil || !cached {
		t.Fatalf("warm count: cached=%v err=%v", cached, err)
	}
	if len(warm.Counts) != len(cold.Counts) || warm.K != cold.K {
		t.Fatalf("cached result shape differs: %d/%d vs %d/%d", warm.K, len(warm.Counts), cold.K, len(cold.Counts))
	}
	for code, v := range cold.Counts {
		if warm.Counts[code] != v {
			t.Fatalf("cached estimate for %v differs: %v vs %v", code, warm.Counts[code], v)
		}
	}
	if _, cached, err = reg.Count(ctx, "er", Query{Samples: 500}); err != nil || cached {
		t.Fatalf("unseeded query must bypass the cache: cached=%v err=%v", cached, err)
	}

	if infos := reg.List(); len(infos) != 1 || infos[0].Name != "er" || !infos[0].Resident {
		t.Fatalf("List: %+v", infos)
	}
	if st := reg.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 || st.Queries != 3 {
		t.Fatalf("registry stats: %+v", st)
	}
	if !reg.Evict("er") {
		t.Fatal("Evict found nothing")
	}
	if _, _, err := reg.Count(ctx, "er", q); err != nil {
		t.Fatalf("evicted engine must transparently reopen: %v", err)
	}

	// The handler answers the versioned API off the same registry.
	h := NewServer(reg, ServeConfig{DefaultGraph: "er"})
	req := httptest.NewRequest(http.MethodPost, "/v1/graphs/er/count",
		strings.NewReader(`{"samples":500,"seed":3}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"graph": "er"`) {
		t.Fatalf("NewServer /v1 count = %d: %s", w.Code, w.Body.String())
	}
}
